(** The hd_server job runner: many concurrent solves time-sliced over
    a {!Hd_parallel.Scheduler}.

    Each submitted instance becomes a job wrapping an [Engine.run]
    call in a resumable {!Hd_engine.Step.t}, submitted to the
    scheduler as a resumable turn ({!Hd_parallel.Scheduler.resume}).
    Each turn runs {e one} slice of one job — park on
    [Budget.Slice_expired], re-enqueue at the back of the scheduler's
    FIFO, move on — so two in-flight jobs both make progress even on a
    single worker, and a newly submitted job never waits behind an
    unbounded solve.  Parked time is credited back to the job's
    budget, so a ["time_limit"] bounds compute time, not queue time.
    Because the jobs share the scheduler's domains with every other
    parallel layer, a bulk query evaluation can hand the same instance
    to [Yannakakis.run ?par] (see {!scheduler}) without
    oversubscribing the machine.

    Submissions consult the {!Cache} first (unless [use_cache] is
    false): a hit births the job already [done] with the cached result
    — its ordering mapped into the submitting instance's vertex ids —
    and a finished exact solve is stored back, with its ordering in
    canonical ids.

    Cancellation is cooperative: {!cancel} trips the job's budget, the
    in-flight or next slice observes it and returns fast with the
    bounds found so far.  Parked continuations are never dropped — a
    cancelled job is always driven to completion, so no fiber leaks.

    Every slice emits a ["server.slice"] {!Hd_obs.Obs.Tap} event and
    appends it to the job's pending-event list (capped; oldest dropped)
    drained by {!poll}.  Counters: [server.jobs_submitted],
    [server.jobs_completed], [server.jobs_cancelled],
    [server.jobs_failed], [server.slices], [server.parks]. *)

type t

type snapshot = {
  id : int;
  label : string option;
  state : string;
      (** ["queued"], ["running"], ["cancelling"], ["done"],
          ["cancelled"], or ["failed"] *)
  cached : bool;  (** served from the decomposition cache *)
  slices : int;
  elapsed : float;  (** compute seconds consumed so far *)
  lb : int;
  ub : int;  (** best bounds so far; [max_int] while unknown *)
  result : Hd_engine.Solver.result option;
  error : string option;
  events : Hd_obs.Obs.Json.t list;
      (** pending slice events, oldest first; reading a snapshot drains
          them *)
}

val create : ?workers:int -> ?slice:float -> cache:Cache.t -> unit -> t
(** [create ~workers ~slice ~cache ()] starts a fresh
    [workers]-domain (default 2) work-stealing scheduler; each job
    turn runs [slice] (default 0.05) seconds of one job.  A zero slice
    yields on every budget poll — maximal interleaving, used by the
    deterministic scheduler tests.
    @raise Invalid_argument when [workers < 1] or [slice] is negative
    or not finite. *)

val scheduler : t -> Hd_parallel.Scheduler.t
(** The underlying scheduler, so request handlers (bulk query
    evaluation) can run their own parallel work on the same domains. *)

val submit :
  t ->
  solver:Hd_engine.Solver.t ->
  spec:Hd_engine.Budget.spec ->
  ?seed:int ->
  ?label:string ->
  ?use_cache:bool ->
  signature:Signature.t ->
  Hd_engine.Solver.problem ->
  snapshot
(** [submit t ~solver ~spec ~signature problem] enqueues a solve and
    returns its initial snapshot — already terminal ([state = "done"],
    [cached = true]) on a cache hit.
    @raise Invalid_argument after {!shutdown}. *)

val poll : t -> int -> snapshot option
(** [poll t id] is the job's current snapshot ([None] for unknown
    ids), draining its pending events. *)

val cancel : t -> int -> snapshot option
(** [cancel t id] requests cooperative cancellation (no-op on terminal
    jobs) and returns the post-request snapshot. *)

val wait : t -> int -> timeout:float -> snapshot option
(** [wait t id ~timeout] blocks — polling, not subscribing — until the
    job is terminal or [timeout] seconds elapse, and returns the last
    snapshot seen. *)

val resolve_ordering :
  t ->
  solver:Hd_engine.Solver.t ->
  spec:Hd_engine.Budget.spec ->
  ?seed:int ->
  ?label:string ->
  ?use_cache:bool ->
  timeout:float ->
  signature:Signature.t ->
  Hd_engine.Solver.problem ->
  snapshot * int array option
(** [resolve_ordering t ~solver ~spec ~timeout ~signature problem]
    submits, waits (up to [timeout] seconds) for the terminal
    snapshot, and returns it together with the witness ordering in the
    submitting instance's vertex ids when the solve produced one.  The
    server's bulk op calls this once per cyclic query: the first
    member of an isomorphism class solves and populates the
    {!Cache}; every later member is answered from it instantly
    ([cached = true], zero slices). *)

val stats : t -> Hd_obs.Obs.Json.t
(** Scheduler-level stats object for the server's [stats] response. *)

val shutdown : t -> unit
(** [shutdown t] cancels every live job and shuts the scheduler down;
    its drain resumes each parked job until its continuation completes,
    so no fiber leaks.  Idempotent. *)
