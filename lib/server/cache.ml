module Obs = Hd_obs.Obs
module Solver = Hd_engine.Solver

let c_hits = Obs.Counter.make "server.cache_hits"
let c_misses = Obs.Counter.make "server.cache_misses"
let c_insertions = Obs.Counter.make "server.cache_insertions"
let c_evictions = Obs.Counter.make "server.cache_evictions"

type entry = {
  solver : string;
  kind : Solver.kind;
  outcome : Solver.outcome;
  ordering : int array option;
  visited : int;
  generated : int;
  elapsed : float;
}

type slot = { entry : entry; mutable last_used : int }

type t = {
  m : Mutex.t;
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    m = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* One slot per (width kind, canonical key): a ghw answer must not be
   served for a tw query on the same instance. *)
let slot_key kind key = Solver.kind_name kind ^ ":" ^ key

let find t ~kind signature =
  let k = slot_key kind (Signature.key signature) in
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table k with
      | Some slot when (match slot.entry.outcome with
                       | Solver.Exact _ -> true
                       | Solver.Bounds _ -> false) ->
          slot.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Obs.Counter.incr c_hits;
          Some slot.entry
      | _ ->
          (* a Bounds entry is deliberately a miss: re-solving may
             tighten it, and [store] will replace the weaker slot *)
          t.misses <- t.misses + 1;
          Obs.Counter.incr c_misses;
          None)

(* Is [a] at least as good an answer as [b]?  Exact beats Bounds;
   among Bounds, a smaller gap then a smaller ub wins. *)
let at_least_as_good a b =
  match (a, b) with
  | Solver.Exact _, _ -> true
  | Solver.Bounds _, Solver.Exact _ -> false
  | Solver.Bounds x, Solver.Bounds y ->
      let gx = x.ub - x.lb and gy = y.ub - y.lb in
      gx < gy || (gx = gy && x.ub <= y.ub)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k slot ->
      match !victim with
      | Some (_, age) when age <= slot.last_used -> ()
      | _ -> victim := Some (k, slot.last_used))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      Obs.Counter.incr c_evictions
  | None -> ()

let store t ~kind signature entry =
  let k = slot_key kind (Signature.key signature) in
  locked t (fun () ->
      t.tick <- t.tick + 1;
      let keep =
        match Hashtbl.find_opt t.table k with
        | Some old -> not (at_least_as_good entry.outcome old.entry.outcome)
        | None -> false
      in
      if not keep then begin
        if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity
        then evict_lru t;
        Hashtbl.replace t.table k { entry; last_used = t.tick };
        Obs.Counter.incr c_insertions
      end)

let size t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let stats t =
  locked t (fun () ->
      Obs.Json.Obj
        [
          ("size", Obs.Json.Int (Hashtbl.length t.table));
          ("capacity", Obs.Json.Int t.capacity);
          ("hits", Obs.Json.Int t.hits);
          ("misses", Obs.Json.Int t.misses);
        ])
