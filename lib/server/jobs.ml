module Obs = Hd_obs.Obs
module Solver = Hd_engine.Solver
module Budget = Hd_engine.Budget
module Step = Hd_engine.Step
module Engine = Hd_engine.Engine
module Incumbent = Hd_core.Incumbent
module Scheduler = Hd_parallel.Scheduler

let c_submitted = Obs.Counter.make "server.jobs_submitted"
let c_completed = Obs.Counter.make "server.jobs_completed"
let c_cancelled = Obs.Counter.make "server.jobs_cancelled"
let c_failed = Obs.Counter.make "server.jobs_failed"
let c_slices = Obs.Counter.make "server.slices"
let c_parks = Obs.Counter.make "server.parks"

let max_pending_events = 64

type status =
  | Queued
  | Running
  | Finished of Solver.result
  | Cancelled of Solver.result option
  | Failed of string

type job = {
  id : int;
  label : string option;
  solver : Solver.t;
  signature : Signature.t;
  inc : Incumbent.t;
  budget : Budget.t;
  step : Solver.result Step.t option;  (* [None] for cache-served jobs *)
  cached : bool;
  store_in_cache : bool;
  mutable status : status;
  mutable cancel_requested : bool;
  mutable nslices : int;
  mutable events : Obs.Json.t list;  (* newest first, capped *)
  mutable n_events : int;
}

type t = {
  sched : Scheduler.t;
  cache : Cache.t;
  slice : float;
  m : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable stopping : bool;
}

type snapshot = {
  id : int;
  label : string option;
  state : string;
  cached : bool;
  slices : int;
  elapsed : float;
  lb : int;
  ub : int;
  result : Solver.result option;
  error : string option;
  events : Obs.Json.t list;  (* oldest first; drained by the read *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- snapshots (caller holds the lock) ---------------------------- *)

let state_of (job : job) =
  match job.status with
  | Finished _ -> "done"
  | Cancelled _ -> "cancelled"
  | Failed _ -> "failed"
  | Queued | Running ->
      if job.cancel_requested then "cancelling"
      else if job.nslices = 0 then "queued"
      else "running"

let terminal (job : job) =
  match job.status with
  | Finished _ | Cancelled _ | Failed _ -> true
  | Queued | Running -> false

let snapshot_locked (job : job) : snapshot =
  let result =
    match job.status with
    | Finished r | Cancelled (Some r) -> Some r
    | Cancelled None | Failed _ | Queued | Running -> None
  in
  let lb, ub =
    match result with
    | Some r -> Solver.bounds_of r.Solver.outcome
    | None -> Incumbent.bounds job.inc
  in
  let events = List.rev job.events in
  job.events <- [];
  job.n_events <- 0;
  {
    id = job.id;
    label = job.label;
    state = state_of job;
    cached = job.cached;
    slices = job.nslices;
    elapsed = Budget.elapsed job.budget;
    lb;
    ub;
    result;
    error = (match job.status with Failed msg -> Some msg | _ -> None);
    events;
  }

let push_event (job : job) ev =
  job.events <- ev :: job.events;
  job.n_events <- job.n_events + 1;
  if job.n_events > max_pending_events then begin
    (* drop the oldest pending event; poll clients see a gap, never
       unbounded growth *)
    job.events <- List.filteri (fun i _ -> i < max_pending_events) job.events;
    job.n_events <- max_pending_events
  end

(* --- the worker loop ---------------------------------------------- *)

let slice_event (job : job) =
  let lb, ub = Incumbent.bounds job.inc in
  Obs.Json.Obj
    [
      ("job", Obs.Json.Int job.id);
      ("slice", Obs.Json.Int job.nslices);
      ("state", Obs.Json.String (state_of job));
      ("elapsed", Obs.Json.Float (Budget.elapsed job.budget));
      ("lb", Obs.Json.Int lb);
      ("ub", Obs.Json.Int (if ub = max_int then -1 else ub));
    ]

let finish_locked t job (r : Solver.result) =
  let exact = match r.Solver.outcome with
    | Solver.Exact _ -> true
    | Solver.Bounds _ -> false
  in
  if job.cancel_requested && not exact then begin
    job.status <- Cancelled (Some r);
    Obs.Counter.incr c_cancelled
  end
  else begin
    job.status <- Finished r;
    Obs.Counter.incr c_completed
  end;
  (* an exact answer is worth caching even if a cancel raced it *)
  if job.store_in_cache && exact then
    Cache.store t.cache ~kind:job.solver.Solver.kind job.signature
      {
        Cache.solver = job.solver.Solver.name;
        kind = job.solver.Solver.kind;
        outcome = r.Solver.outcome;
        ordering =
          Option.map (Signature.to_canonical job.signature) r.Solver.ordering;
        visited = r.Solver.visited;
        generated = r.Solver.generated;
        elapsed = Budget.elapsed job.budget;
      }

(* one scheduling turn = one slice of one job; returning [`Again]
   re-enqueues the job at the back of the scheduler's injector FIFO, so
   in-flight jobs round-robin exactly as the old dedicated worker loops
   did, but on the same domains every other parallel layer uses *)
let turn t (job : job) =
  let step = Option.get job.step in
  locked t (fun () -> job.status <- Running);
  let verdict =
    try `Out (Step.slice step ~seconds:t.slice)
    with e -> `Err (Printexc.to_string e)
  in
  Obs.Counter.incr c_slices;
  let again, ev =
    locked t (fun () ->
        job.nslices <- job.nslices + 1;
        let again =
          match verdict with
          | `Out (Step.Done r) ->
              finish_locked t job r;
              false
          | `Out Step.Yielded ->
              Obs.Counter.incr c_parks;
              job.status <- Queued;
              true
          | `Err msg ->
              job.status <- Failed msg;
              Obs.Counter.incr c_failed;
              false
        in
        let ev = slice_event job in
        push_event job ev;
        (again, ev))
  in
  Obs.Tap.emit "server.slice" ev;
  if again then `Again else `Done

(* --- lifecycle ----------------------------------------------------- *)

let create ?(workers = 2) ?(slice = 0.05) ~cache () =
  if workers < 1 then invalid_arg "Jobs.create: workers must be >= 1";
  if not (Float.is_finite slice) || slice < 0.0 then
    invalid_arg "Jobs.create: slice must be a non-negative finite float";
  {
    sched = Scheduler.create ~workers ();
    cache;
    slice;
    m = Mutex.create ();
    jobs = Hashtbl.create 32;
    next_id = 0;
    stopping = false;
  }

let scheduler t = t.sched

let submit t ~solver ~spec ?seed ?label ?(use_cache = true) ~signature problem =
  Obs.Counter.incr c_submitted;
  locked t (fun () ->
      if t.stopping then invalid_arg "Jobs.submit: scheduler is shut down";
      let id = t.next_id in
      t.next_id <- id + 1;
      let cached_entry =
        if use_cache then Cache.find t.cache ~kind:solver.Solver.kind signature
        else None
      in
      let job =
        match cached_entry with
        | Some e ->
            let r =
              {
                Solver.outcome = e.Cache.outcome;
                visited = e.Cache.visited;
                generated = e.Cache.generated;
                elapsed = e.Cache.elapsed;
                ordering =
                  Option.map (Signature.of_canonical signature) e.Cache.ordering;
              }
            in
            Obs.Counter.incr c_completed;
            {
              id;
              label;
              solver;
              signature;
              inc = Incumbent.create ();
              budget = Budget.create ();
              step = None;
              cached = true;
              store_in_cache = false;
              status = Finished r;
              cancel_requested = false;
              nslices = 0;
              events = [];
              n_events = 0;
            }
        | None ->
            let inc = Incumbent.create () in
            let budget = Budget.of_spec ~incumbent:inc spec in
            let step =
              Step.make budget (fun () -> Engine.run ?seed solver budget problem)
            in
            {
              id;
              label;
              solver;
              signature;
              inc;
              budget;
              step = Some step;
              cached = false;
              store_in_cache = use_cache;
              status = Queued;
              cancel_requested = false;
              nslices = 0;
              events = [];
              n_events = 0;
            }
      in
      Hashtbl.replace t.jobs id job;
      if not (terminal job) then Scheduler.resume t.sched (fun () -> turn t job);
      snapshot_locked job)

let poll t id =
  locked t (fun () ->
      Option.map snapshot_locked (Hashtbl.find_opt t.jobs id))

let cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> None
      | Some job ->
          if not (terminal job) then begin
            job.cancel_requested <- true;
            (* the budget trips the incumbent too; the next ticker poll
               inside the running slice sees it and returns fast *)
            Budget.cancel job.budget
          end;
          Some (snapshot_locked job))

(* Waiting polls rather than subscribes: terminal transitions happen on
   worker domains and a poll every 2ms is far below slice granularity. *)
let wait t id ~timeout =
  let deadline = Hd_engine.Clock.now () +. timeout in
  let rec go () =
    match poll t id with
    | None -> None
    | Some s ->
        if s.state = "done" || s.state = "cancelled" || s.state = "failed"
        then Some s
        else if Hd_engine.Clock.now () >= deadline then Some s
        else begin
          Unix.sleepf 0.002;
          go ()
        end
  in
  go ()

(* submit-and-wait for batch drivers (the bulk op): one call resolves
   a decomposition for an instance, serving isomorphic repeats from
   the cache.  Returns the terminal snapshot plus the witness ordering
   already mapped into the submitting instance's vertex ids. *)
let resolve_ordering t ~solver ~spec ?seed ?label ?(use_cache = true)
    ~timeout ~signature problem =
  let snap =
    submit t ~solver ~spec ?seed ?label ~use_cache ~signature problem
  in
  let snap =
    match snap.state with
    | "done" | "cancelled" | "failed" -> snap
    | _ -> ( match wait t snap.id ~timeout with Some s -> s | None -> snap)
  in
  let ordering =
    match snap.result with Some r -> r.Solver.ordering | None -> None
  in
  (snap, ordering)

let stats t =
  locked t (fun () ->
      let queued = ref 0 and running = ref 0 and done_ = ref 0 in
      let cancelled = ref 0 and failed = ref 0 in
      Hashtbl.iter
        (fun _ job ->
          match job.status with
          | Queued -> incr queued
          | Running -> incr running
          | Finished _ -> incr done_
          | Cancelled _ -> incr cancelled
          | Failed _ -> incr failed)
        t.jobs;
      Obs.Json.Obj
        [
          ("submitted", Obs.Json.Int t.next_id);
          ("queued", Obs.Json.Int !queued);
          ("running", Obs.Json.Int !running);
          ("done", Obs.Json.Int !done_);
          ("cancelled", Obs.Json.Int !cancelled);
          ("failed", Obs.Json.Int !failed);
          ("workers", Obs.Json.Int (Scheduler.size t.sched));
          ("slice", Obs.Json.Float t.slice);
        ])

let shutdown t =
  locked t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (* cancelled budgets make every parked job's next slice return
           fast, so the scheduler's drain-on-shutdown terminates
           promptly; re-injected turns keep running until they report
           [`Done], so no continuation is ever dropped *)
        Hashtbl.iter
          (fun _ job -> if not (terminal job) then Budget.cancel job.budget)
          t.jobs
      end);
  Scheduler.shutdown t.sched
