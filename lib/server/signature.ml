module Hypergraph = Hd_hypergraph.Hypergraph
module Bitset = Hd_graph.Bitset

type t = {
  hash : int;
  key : string;
  canon_of_orig : int array;
  orig_of_canon : int array;
}

let fnv_prime = 0x100000001b3
let mix h x = ((h lxor x) * fnv_prime) land max_int

(* Rank-normalise [colors] in place (distinct values -> 0..k-1 in value
   order) and return k.  Keeps refinement hashes from growing and makes
   the fixpoint test a plain count comparison. *)
let normalize colors =
  let sorted = Array.copy colors in
  Array.sort compare sorted;
  let rank = Hashtbl.create 16 in
  let k = ref 0 in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem rank c) then begin
        Hashtbl.add rank c !k;
        incr k
      end)
    sorted;
  Array.iteri (fun i c -> colors.(i) <- Hashtbl.find rank c) colors;
  !k

let max_rounds = 8

let of_hypergraph h =
  let n = Hypergraph.n_vertices h in
  let m = Hypergraph.n_edges h in
  let edges = Array.init m (fun e -> Hypergraph.edge h e) in
  let incident = Array.init n (fun v -> Hypergraph.incident h v) in
  let degrees = Array.map List.length incident in
  (* --- colour refinement (1-WL on the incidence structure) -------- *)
  let color = Array.copy degrees in
  let distinct = ref (normalize color) in
  let rounds = ref 0 in
  let stable = ref (!distinct = n) in
  while (not !stable) && !rounds < max_rounds do
    incr rounds;
    (* an edge's signature: its size and the sorted multiset of its
       members' colours — invariant under edge and vertex reordering *)
    let esig =
      Array.map
        (fun vs ->
          let cs = Array.map (fun v -> color.(v)) vs in
          Array.sort compare cs;
          Array.fold_left mix
            (mix Bitset.fnv_offset_basis (Array.length vs))
            cs)
        edges
    in
    let next =
      Array.init n (fun v ->
          let sigs =
            List.sort compare (List.map (fun e -> esig.(e)) incident.(v))
          in
          List.fold_left mix
            (mix Bitset.fnv_offset_basis color.(v))
            sigs)
    in
    Array.blit next 0 color 0 n;
    let k = normalize color in
    (* refinement is monotone (the new colour mixes in the old), so no
       growth means a fixpoint; hash collisions could only merge
       classes, which the same test catches *)
    if k <= !distinct || k = n then stable := true;
    distinct := k
  done;
  (* --- canonical labelling ---------------------------------------- *)
  (* stable colour order; ties broken by original index, which keeps
     the labelling deterministic (identical submissions always collide)
     and sound — the key below spells out the whole relabelled edge
     list, so equal keys really are isomorphic instances *)
  let orig_of_canon = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare color.(a) color.(b) with 0 -> compare a b | c -> c)
    orig_of_canon;
  let canon_of_orig = Array.make n 0 in
  Array.iteri (fun i v -> canon_of_orig.(v) <- i) orig_of_canon;
  let cedges =
    Array.to_list edges
    |> List.map (fun vs ->
           List.sort compare
             (Array.to_list (Array.map (fun v -> canon_of_orig.(v)) vs)))
    |> List.sort compare
  in
  (* --- key and hash ------------------------------------------------ *)
  let sorted_degrees = Array.copy degrees in
  Array.sort compare sorted_degrees;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "v%d;e%d;d[" n m);
  Array.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int d))
    sorted_degrees;
  Buffer.add_string buf "];";
  List.iter
    (fun vs ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v))
        vs;
      Buffer.add_char buf ')')
    cedges;
  let key = Buffer.contents buf in
  let hash = ref (mix (mix Bitset.fnv_offset_basis n) m) in
  Array.iter (fun d -> hash := mix !hash d) sorted_degrees;
  List.iter
    (fun vs ->
      let bs = Bitset.create n in
      List.iter (Bitset.add bs) vs;
      hash := mix !hash (Bitset.fnv_hash bs))
    cedges;
  { hash = !hash; key; canon_of_orig; orig_of_canon }

let hash t = t.hash
let key t = t.key
let to_canonical t ordering = Array.map (fun v -> t.canon_of_orig.(v)) ordering
let of_canonical t ordering = Array.map (fun c -> t.orig_of_canon.(c)) ordering
