(** Decomposition-as-a-service: the hd_server session loop.

    [serve] reads line-JSON requests ({!Protocol}) from an input
    channel and answers each with one line on the output channel,
    running solves asynchronously on a {!Jobs} scheduler so the
    connection stays responsive while solves are in flight — submit
    returns immediately with a job id, poll/wait/cancel manage it,
    repeat submissions of isomorphic-modulo-ordering instances are
    answered from the {!Cache}.  The ["bulk"] op answers N conjunctive
    queries over one relational instance in a single request: one
    decomposition per isomorphism class of cyclic query structure
    (resolved through the cache), every query evaluated by the
    columnar Yannakakis engine.  See docs/SERVER.md for the protocol
    reference and worked transcripts.

    The loop is single-connection by design (stdin/stdout of the
    [hd_server] binary, or a pipe pair in tests); concurrency lives in
    the scheduler, not the transport.  Counters: [server.requests],
    [server.protocol_errors] — enable {!Hd_obs.Obs} recording (the
    binary's default) to collect them. *)

type config = {
  workers : int;  (** scheduler worker domains *)
  slice : float;  (** seconds of compute per job slice *)
  cache_capacity : int;
  default_solver : string;  (** used when a submit names none *)
  default_time_limit : float option;
      (** compute-seconds budget for submits that set none; [None]
          means unlimited — with many queued jobs, prefer a limit *)
  default_max_states : int option;
}

val default_config : config
(** 2 workers, 50ms slices, 1024 cache slots, solver ["bb-ghw"], 30s
    default time limit, no state cap. *)

val ensure_registry : unit -> unit
(** Force registration of every solver library ([Hd_search],
    [Hd_ga]) — [serve] calls it; exposed for tests and embedders. *)

type outcome = [ `Eof | `Shutdown ]

val serve : ?config:config -> in_channel -> out_channel -> outcome
(** [serve ic oc] runs the session until the client sends
    [{"op":"shutdown"}] ([`Shutdown]) or closes the stream ([`Eof]),
    then cancels and drains outstanding jobs and shuts the scheduler
    down (also on exceptions). *)
