(** The hd_server wire protocol: one JSON object per line, each
    request answered by exactly one JSON line (docs/SERVER.md has the
    full schema and transcript examples).

    Requests are dispatched on their ["op"] field:
    ["submit"], ["bulk"], ["poll"], ["wait"], ["cancel"], ["stats"],
    ["solvers"], ["shutdown"].  A submit carries its instance inline as hypergraph
    text (["hypergraph"]), conjunctive-query text (["cq"]), or a server-
    side file path (["file"]) — exactly one of the three.  Responses
    always carry ["ok"]: [true] with op-specific fields, or [false]
    with an ["error"] string (a protocol error never kills the
    connection). *)

type source =
  | Hypergraph_text of string  (** inline [Hg_format] text *)
  | Cq_text of string  (** inline conjunctive-query text *)
  | File of string  (** server-side path; [.cq] parses as a query *)

type submit = {
  source : source;
  solver : string option;  (** registry name; server default if absent *)
  time_limit : float option;  (** seconds of {e compute} time *)
  max_states : int option;
  seed : int option;
  label : string option;  (** echoed back in poll responses *)
  use_cache : bool;  (** ["cache"], default [true] *)
  with_ordering : bool;  (** ["ordering"], default [false] *)
}

(** One request, N conjunctive queries over one relational instance:
    the server loads [data] once, resolves one decomposition per
    isomorphism class of cyclic query structure (through the
    {!Cache}), and answers every query with the columnar engine.
    Fields: ["cqs"] (list of rule texts, required), ["data"] (CSV/TSV
    files or directories, server-side paths), ["mode"]
    (["answers"]/["count"]/["boolean"], default ["count"]),
    ["solver"], ["time_limit"], ["max_states"], ["seed"], ["cache"]
    (default [true]), ["limit"] (answers returned per query in
    ["answers"] mode). *)
type bulk = {
  cqs : string list;
  data : string list;
  mode : string;
  bulk_solver : string option;
  bulk_time_limit : float option;
  bulk_max_states : int option;
  bulk_seed : int option;
  bulk_use_cache : bool;
  answer_limit : int option;
}

type request =
  | Submit of submit
  | Bulk of bulk
  | Poll of int
  | Wait of { job : int; timeout : float }
      (** block until the job is terminal or [timeout] seconds pass *)
  | Cancel of int
  | Stats
  | Solvers
  | Shutdown

val parse : string -> (request, string) result
(** [parse line] parses one request line; [Error] carries the message
    to send back in an error response. *)

val ok : string -> (string * Hd_obs.Obs.Json.t) list -> Hd_obs.Obs.Json.t
(** [ok op fields] is [{"ok":true,"op":op,...fields}]. *)

val error : string -> Hd_obs.Obs.Json.t
(** [error msg] is [{"ok":false,"error":msg}]. *)

val result_json :
  ?with_ordering:bool ->
  cached:bool ->
  solver:string ->
  Hd_engine.Solver.result ->
  Hd_obs.Obs.Json.t
(** [result_json ~cached ~solver r] renders a solver result for the
    wire: outcome, width, bounds, search counts, elapsed compute
    seconds, and (when [with_ordering], default false) the witness
    ordering in the submitting instance's vertex ids. *)

val write_line : out_channel -> Hd_obs.Obs.Json.t -> unit
(** [write_line oc j] writes [j] compactly, newline-terminates, and
    flushes — the one framing primitive both server and tests use. *)
