(** The hd_server decomposition cache: canonical signature -> solved
    result.

    Entries are keyed by (width {!Hd_engine.Solver.kind}, canonical
    {!Signature.key}), so isomorphic-modulo-ordering resubmissions of
    an instance hit the same slot while tw/ghw/hw answers stay
    separate.  Witness orderings are stored in {e canonical} vertex
    ids; callers map them through {!Signature.of_canonical} before
    replaying them on a concrete submission.

    Serving policy: only [Exact] outcomes are served.  A stored
    [Bounds] entry counts as a {e miss} — the caller re-solves, and
    {!store} replaces the slot if the new outcome is at least as good
    (exact beats bounds; among bounds, narrower gap wins).  This keeps
    the cache monotonically improving and means a served answer is
    always a proved optimum.

    Eviction is least-recently-used once [capacity] slots are filled.
    All operations are mutex-protected and safe to call from scheduler
    worker domains.

    Counters (live regardless of the cache instance; see
    docs/OBSERVABILITY.md): [server.cache_hits], [server.cache_misses],
    [server.cache_insertions], [server.cache_evictions].  The
    per-instance {!hits}/{!misses} accessors count even while hd_obs
    recording is disabled. *)

type entry = {
  solver : string;  (** registry name of the solver that produced it *)
  kind : Hd_engine.Solver.kind;
  outcome : Hd_engine.Solver.outcome;
  ordering : int array option;  (** witness, in canonical vertex ids *)
  visited : int;
  generated : int;
  elapsed : float;  (** compute seconds of the original solve *)
}

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] makes an empty cache holding at most
    [capacity] (default 1024) entries.
    @raise Invalid_argument when [capacity < 1]. *)

val find : t -> kind:Hd_engine.Solver.kind -> Signature.t -> entry option
(** [find t ~kind s] is the cached exact answer for [s]'s instance, or
    [None] (counted as a miss) when absent or only bounded. *)

val store : t -> kind:Hd_engine.Solver.kind -> Signature.t -> entry -> unit
(** [store t ~kind s e] records [e], unless an at-least-as-good entry
    already occupies the slot. *)

val size : t -> int
val hits : t -> int
val misses : t -> int

val stats : t -> Hd_obs.Obs.Json.t
(** [stats t] is [{"size";"capacity";"hits";"misses"}] for the server's
    [stats] response. *)
