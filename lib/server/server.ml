module Obs = Hd_obs.Obs
module Json = Obs.Json
module Solver = Hd_engine.Solver
module Budget = Hd_engine.Budget

let c_requests = Obs.Counter.make "server.requests"
let c_errors = Obs.Counter.make "server.protocol_errors"

(* the bulk op: N CQs amortised over one decomposition per structure *)
let c_bulk_requests = Obs.Counter.make "server.bulk_requests"
let c_bulk_queries = Obs.Counter.make "server.bulk_queries"
let c_bulk_decompositions = Obs.Counter.make "server.bulk_decompositions"
let c_bulk_cached = Obs.Counter.make "server.bulk_cached_decompositions"

type config = {
  workers : int;
  slice : float;
  cache_capacity : int;
  default_solver : string;
  default_time_limit : float option;
  default_max_states : int option;
}

let default_config =
  {
    workers = 2;
    slice = 0.05;
    cache_capacity = 1024;
    default_solver = "bb-ghw";
    default_time_limit = Some 30.0;
    default_max_states = None;
  }

let ensure_registry () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ()

(* --- loading problems --------------------------------------------- *)

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let load_problem (source : Protocol.source) =
  try
    let h =
      match source with
      | Protocol.Hypergraph_text text ->
          Hd_hypergraph.Hg_format.parse_string ~source:"submit" text
      | Protocol.Cq_text text ->
          Hd_query.Cq.hypergraph
            (Hd_query.Cq.parse_string ~source:"submit" text)
      | Protocol.File path ->
          if has_suffix ".cq" path then
            Hd_query.Cq.hypergraph (Hd_query.Cq.parse_file path)
          else Hd_hypergraph.Hg_format.parse_file path
    in
    Ok h
  with
  | Failure msg | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg

(* --- responses ----------------------------------------------------- *)

let snapshot_fields ?(with_ordering = false) (s : Jobs.snapshot) =
  let base =
    [
      ("job", Json.Int s.id);
      ("state", Json.String s.state);
      ("cached", Json.Bool s.cached);
      ("slices", Json.Int s.slices);
      ("elapsed", Json.Float s.elapsed);
      ("lb", Json.Int s.lb);
      ("ub", Json.Int (if s.ub = max_int then -1 else s.ub));
    ]
  in
  let label =
    match s.label with Some l -> [ ("label", Json.String l) ] | None -> []
  in
  let result =
    match s.result with
    | Some r ->
        [
          ( "result",
            Protocol.result_json ~with_ordering ~cached:s.cached
              ~solver:"" r );
        ]
    | None -> []
  in
  let error =
    match s.error with Some e -> [ ("error", Json.String e) ] | None -> []
  in
  base @ label @ result @ error

(* The solver name is threaded separately because a snapshot does not
   carry it; patch it into the rendered result. *)
let snapshot_fields_with ~solver ?with_ordering s =
  List.map
    (function
      | ("result", Json.Obj fields) ->
          ( "result",
            Json.Obj
              (List.map
                 (function
                   | ("solver", Json.String _) ->
                       ("solver", Json.String solver)
                   | f -> f)
                 fields) )
      | f -> f)
    (snapshot_fields ?with_ordering s)

type outcome = [ `Eof | `Shutdown ]

type session = {
  config : config;
  cache : Cache.t;
  jobs : Jobs.t;
  (* per-job rendering context: solver name, ordering flag *)
  meta : (int, string * bool) Hashtbl.t;
}

let handle_submit session (s : Protocol.submit) =
  let name = Option.value ~default:session.config.default_solver s.solver in
  match Solver.find name with
  | None ->
      Protocol.error
        (Printf.sprintf "unknown solver %S (try op \"solvers\")" name)
  | Some solver -> (
      match load_problem s.source with
      | Error msg -> Protocol.error msg
      | Ok h ->
          let signature = Signature.of_hypergraph h in
          let spec =
            {
              Budget.time_limit =
                (match s.time_limit with
                | Some _ as t -> t
                | None -> session.config.default_time_limit);
              max_states =
                (match s.max_states with
                | Some _ as m -> m
                | None -> session.config.default_max_states);
            }
          in
          let snap =
            Jobs.submit session.jobs ~solver ~spec ?seed:s.seed
              ?label:s.label ~use_cache:s.use_cache ~signature
              (Solver.Hypergraph h)
          in
          Hashtbl.replace session.meta snap.Jobs.id (name, s.with_ordering);
          Protocol.ok "submit"
            (("hash", Json.String (Printf.sprintf "%016x" (Signature.hash signature)))
            :: snapshot_fields_with ~solver:name ~with_ordering:s.with_ordering
                 snap))

(* --- bulk: N CQs over one shared instance -------------------------- *)

let mode_of_string = function
  | "answers" -> Hd_query.Yannakakis.Answers
  | "count" -> Hd_query.Yannakakis.Count
  | _ -> Hd_query.Yannakakis.Boolean

let handle_bulk session (b : Protocol.bulk) =
  let module Y = Hd_query.Yannakakis in
  let module Cq = Hd_query.Cq in
  Obs.Counter.incr c_bulk_requests;
  let solver_name =
    Option.value ~default:session.config.default_solver b.bulk_solver
  in
  match Solver.find solver_name with
  | None ->
      Protocol.error
        (Printf.sprintf "unknown solver %S (try op \"solvers\")" solver_name)
  | Some solver -> (
      if b.data = [] then Protocol.error "bulk needs \"data\" paths"
      else
        try
          let started = Hd_engine.Clock.now () in
          let db = Hd_query.Db.create () in
          List.iter
            (fun path ->
              if Sys.is_directory path then Hd_query.Db.load_dir db path
              else Hd_query.Db.load_file db path)
            b.data;
          let queries =
            List.mapi
              (fun i text ->
                try Cq.parse_string ~source:(Printf.sprintf "cqs[%d]" i) text
                with Failure msg -> failwith msg)
              b.cqs
          in
          let spec =
            {
              Budget.time_limit =
                (match b.bulk_time_limit with
                | Some _ as t -> t
                | None -> session.config.default_time_limit);
              max_states =
                (match b.bulk_max_states with
                | Some _ as m -> m
                | None -> session.config.default_max_states);
            }
          in
          let wait_timeout =
            match spec.Budget.time_limit with
            | Some t -> (2.0 *. t) +. 60.0
            | None -> 600.0
          in
          let mode = mode_of_string b.mode in
          let decompositions = ref 0 and cache_hits = ref 0 in
          let results =
            List.mapi
              (fun i q ->
                Obs.Counter.incr c_bulk_queries;
                (* one decomposition per cyclic structure, via the
                   canonical-signature cache: the first member of an
                   isomorphism class solves, later members are served
                   cached with the ordering remapped to their ids *)
                let ordering, job_fields =
                  match Cq.hypergraph q with
                  | exception Invalid_argument _ -> (None, [])
                  | h ->
                      if Hd_hypergraph.Acyclicity.is_acyclic h then (None, [])
                      else begin
                        let signature = Signature.of_hypergraph h in
                        let snap, ordering =
                          Jobs.resolve_ordering session.jobs ~solver ~spec
                            ?seed:b.bulk_seed
                            ~label:(Printf.sprintf "bulk[%d]" i)
                            ~use_cache:b.bulk_use_cache ~timeout:wait_timeout
                            ~signature (Solver.Hypergraph h)
                        in
                        if snap.Jobs.cached then begin
                          incr cache_hits;
                          Obs.Counter.incr c_bulk_cached
                        end
                        else begin
                          incr decompositions;
                          Obs.Counter.incr c_bulk_decompositions
                        end;
                        ( ordering,
                          [
                            ("job", Json.Int snap.Jobs.id);
                            ("cached", Json.Bool snap.Jobs.cached);
                          ] )
                      end
                in
                let r, elapsed =
                  Hd_engine.Clock.time @@ fun () ->
                  (* evaluation shares the jobs scheduler's domains:
                     columnar passes run partitioned-parallel without
                     oversubscribing the serve loop *)
                  Y.run ?seed:b.bulk_seed ?ordering
                    ~par:(Jobs.scheduler session.jobs)
                    ~mode db q
                in
                let answers =
                  match mode with
                  | Y.Answers ->
                      let shown =
                        match b.answer_limit with
                        | Some k ->
                            List.filteri (fun j _ -> j < k)
                              (List.sort compare r.Y.answers)
                        | None -> List.sort compare r.Y.answers
                      in
                      [
                        ( "answers",
                          Json.List
                            (List.map
                               (fun row ->
                                 Json.List
                                   (Array.to_list
                                      (Array.map
                                         (fun s -> Json.String s)
                                         row)))
                               shown) );
                      ]
                  | Y.Count | Y.Boolean -> []
                in
                Json.Obj
                  ([
                     ("query", Json.Int i);
                     ("head", Json.String q.Cq.head_pred);
                     ("count", Json.Int r.Y.count);
                     ("nonempty", Json.Bool r.Y.nonempty);
                     ("width", Json.Int r.Y.stats.Y.width);
                     ( "plan",
                       Json.String
                         (if r.Y.stats.Y.acyclic then "acyclic" else "ghd") );
                     ("elapsed", Json.Float elapsed);
                   ]
                  @ job_fields @ answers))
              queries
          in
          Protocol.ok "bulk"
            [
              ("mode", Json.String b.mode);
              ("queries", Json.List results);
              ("n", Json.Int (List.length results));
              ("decompositions", Json.Int !decompositions);
              ("cache_hits", Json.Int !cache_hits);
              ("elapsed", Json.Float (Hd_engine.Clock.now () -. started));
            ]
        with
        | Failure msg -> Protocol.error msg
        | Sys_error msg -> Protocol.error msg)

let render_snapshot session op = function
  | None -> Protocol.error "unknown job id"
  | Some snap ->
      let solver, with_ordering =
        Option.value ~default:("", false)
          (Hashtbl.find_opt session.meta snap.Jobs.id)
      in
      Protocol.ok op (snapshot_fields_with ~solver ~with_ordering snap)

let handle session req =
  match req with
  | Protocol.Submit s -> (handle_submit session s, false)
  | Protocol.Bulk b -> (handle_bulk session b, false)
  | Protocol.Poll id -> (render_snapshot session "poll" (Jobs.poll session.jobs id), false)
  | Protocol.Wait { job; timeout } ->
      (render_snapshot session "wait" (Jobs.wait session.jobs job ~timeout), false)
  | Protocol.Cancel id ->
      (render_snapshot session "cancel" (Jobs.cancel session.jobs id), false)
  | Protocol.Stats ->
      let counters =
        Obs.Counter.all ()
        |> List.filter_map (fun c ->
               let n = Obs.Counter.name c in
               if
                 String.length n >= 7
                 && (String.sub n 0 7 = "server." || String.sub n 0 7 = "engine.")
               then Some (n, Json.Int (Obs.Counter.value c))
               else None)
        |> List.sort compare
      in
      ( Protocol.ok "stats"
          [
            ("jobs", Jobs.stats session.jobs);
            ("cache", Cache.stats session.cache);
            ("counters", Json.Obj counters);
          ],
        false )
  | Protocol.Solvers ->
      let solvers =
        Solver.all ()
        |> List.map (fun (s : Solver.t) ->
               Json.Obj
                 [
                   ("name", Json.String s.name);
                   ("kind", Json.String (Solver.kind_name s.kind));
                   ("doc", Json.String s.doc);
                 ])
      in
      (Protocol.ok "solvers" [ ("solvers", Json.List solvers) ], false)
  | Protocol.Shutdown -> (Protocol.ok "shutdown" [], true)

let serve ?(config = default_config) ic oc =
  ensure_registry ();
  let cache = Cache.create ~capacity:config.cache_capacity () in
  let jobs =
    Jobs.create ~workers:config.workers ~slice:config.slice ~cache ()
  in
  let session = { config; cache; jobs; meta = Hashtbl.create 32 } in
  let rec loop () : outcome =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line when String.trim line = "" -> loop ()
    | line -> (
        Obs.Counter.incr c_requests;
        match Protocol.parse line with
        | Error msg ->
            Obs.Counter.incr c_errors;
            Protocol.write_line oc (Protocol.error msg);
            loop ()
        | Ok req ->
            let resp, quit = handle session req in
            Protocol.write_line oc resp;
            if quit then `Shutdown else loop ())
  in
  Fun.protect ~finally:(fun () -> Jobs.shutdown jobs) loop
