module Json = Hd_obs.Obs.Json
module Solver = Hd_engine.Solver

type source =
  | Hypergraph_text of string
  | Cq_text of string
  | File of string

type submit = {
  source : source;
  solver : string option;
  time_limit : float option;
  max_states : int option;
  seed : int option;
  label : string option;
  use_cache : bool;
  with_ordering : bool;
}

type bulk = {
  cqs : string list;
  data : string list;
  mode : string;
  bulk_solver : string option;
  bulk_time_limit : float option;
  bulk_max_states : int option;
  bulk_seed : int option;
  bulk_use_cache : bool;
  answer_limit : int option;
}

type request =
  | Submit of submit
  | Bulk of bulk
  | Poll of int
  | Wait of { job : int; timeout : float }
  | Cancel of int
  | Stats
  | Solvers
  | Shutdown

(* --- field accessors --------------------------------------------- *)

let str_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Ok None

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Ok None

let num_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some (Json.Float f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  | None -> Ok None

let bool_field ~default name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
  | None -> Ok default

(* a list of strings; a bare string is the singleton list *)
let str_list_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok (Some [ s ])
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must list strings" name)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
  | None -> Ok None

let ( let* ) = Result.bind

let require_job j k =
  let* job = int_field "job" j in
  match job with
  | Some id when id >= 0 -> k id
  | Some _ -> Error "field \"job\" must be non-negative"
  | None -> Error "missing field \"job\""

let parse_submit j =
  let* hg = str_field "hypergraph" j in
  let* cq = str_field "cq" j in
  let* file = str_field "file" j in
  let* source =
    match (hg, cq, file) with
    | Some s, None, None -> Ok (Hypergraph_text s)
    | None, Some s, None -> Ok (Cq_text s)
    | None, None, Some s -> Ok (File s)
    | None, None, None ->
        Error "submit needs one of \"hypergraph\", \"cq\", \"file\""
    | _ -> Error "submit takes only one of \"hypergraph\", \"cq\", \"file\""
  in
  let* solver = str_field "solver" j in
  let* time_limit = num_field "time_limit" j in
  let* max_states = int_field "max_states" j in
  let* seed = int_field "seed" j in
  let* label = str_field "label" j in
  let* use_cache = bool_field ~default:true "cache" j in
  let* with_ordering = bool_field ~default:false "ordering" j in
  Ok
    (Submit
       {
         source;
         solver;
         time_limit;
         max_states;
         seed;
         label;
         use_cache;
         with_ordering;
       })

let parse_bulk j =
  let* cqs = str_list_field "cqs" j in
  let* cqs =
    match cqs with
    | Some (_ :: _ as l) -> Ok l
    | Some [] | None -> Error "bulk needs a non-empty \"cqs\" list"
  in
  let* data = str_list_field "data" j in
  let data = Option.value ~default:[] data in
  let* mode = str_field "mode" j in
  let mode = Option.value ~default:"count" mode in
  let* () =
    match mode with
    | "answers" | "count" | "boolean" -> Ok ()
    | m ->
        Error
          (Printf.sprintf
             "field \"mode\" must be \"answers\", \"count\" or \"boolean\" \
              (got %S)" m)
  in
  let* bulk_solver = str_field "solver" j in
  let* bulk_time_limit = num_field "time_limit" j in
  let* bulk_max_states = int_field "max_states" j in
  let* bulk_seed = int_field "seed" j in
  let* bulk_use_cache = bool_field ~default:true "cache" j in
  let* answer_limit = int_field "limit" j in
  Ok
    (Bulk
       {
         cqs;
         data;
         mode;
         bulk_solver;
         bulk_time_limit;
         bulk_max_states;
         bulk_seed;
         bulk_use_cache;
         answer_limit;
       })

let parse line =
  match Json.parse_opt line with
  | None -> Error "malformed JSON"
  | Some j -> (
      match Json.member "op" j with
      | Some (Json.String op) -> (
          match op with
          | "submit" -> parse_submit j
          | "bulk" -> parse_bulk j
          | "poll" -> require_job j (fun id -> Ok (Poll id))
          | "cancel" -> require_job j (fun id -> Ok (Cancel id))
          | "wait" ->
              require_job j (fun id ->
                  let* timeout = num_field "timeout" j in
                  let timeout = Option.value ~default:60.0 timeout in
                  if timeout < 0.0 then
                    Error "field \"timeout\" must be non-negative"
                  else Ok (Wait { job = id; timeout }))
          | "stats" -> Ok Stats
          | "solvers" -> Ok Solvers
          | "shutdown" -> Ok Shutdown
          | other -> Error (Printf.sprintf "unknown op %S" other))
      | Some _ -> Error "field \"op\" must be a string"
      | None -> Error "missing field \"op\"")

(* --- response builders ------------------------------------------- *)

let ok op fields = Json.Obj (("ok", Json.Bool true) :: ("op", Json.String op) :: fields)

let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let result_json ?(with_ordering = false) ~cached ~solver (r : Solver.result) =
  let lb, ub = Solver.bounds_of r.outcome in
  let base =
    [
      ( "outcome",
        Json.String
          (match r.outcome with Exact _ -> "exact" | Bounds _ -> "bounds") );
      ("width", Json.Int (Solver.value r.outcome));
      ("lb", Json.Int lb);
      ("ub", Json.Int ub);
      ("solver", Json.String solver);
      ("visited", Json.Int r.visited);
      ("generated", Json.Int r.generated);
      ("elapsed", Json.Float r.elapsed);
      ("cached", Json.Bool cached);
    ]
  in
  let ordering =
    match (with_ordering, r.ordering) with
    | true, Some o ->
        [ ("ordering", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) o))) ]
    | _ -> []
  in
  Json.Obj (base @ ordering)

let write_line oc json =
  output_string oc (Json.to_compact json);
  output_char oc '\n';
  flush oc
