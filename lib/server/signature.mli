(** Canonical hypergraph signatures for the hd_server decomposition
    cache.

    [of_hypergraph] relabels an instance into a canonical form that is
    stable under vertex renaming and edge reordering (up to the
    colour-refinement limit below), so that resubmissions of the same
    instance — possibly parsed from a differently-ordered file — map to
    the same cache entry.

    The canonical labelling comes from colour refinement (1-WL on the
    incidence structure): vertices start coloured by degree, then
    rounds mix each vertex's colour with the sorted signatures of its
    incident edges until a fixpoint.  Vertices are ordered by final
    colour, ties broken by original index; the {!key} spells out the
    full relabelled, sorted edge list.

    Soundness: equal keys imply isomorphic instances — the key is the
    entire canonical edge list, not a hash — so a cache backed by
    {!key} can never serve a wrong answer.  Completeness is best-effort:
    two isomorphic instances whose symmetry defeats colour refinement
    (the tie-break falls back to input order) may get different keys and
    merely miss the cache.  {!hash} is a 63-bit FNV-style fold over the
    canonical form ({!Hd_graph.Bitset.fnv_hash} of each canonical edge)
    for cheap bucketing; only {!key} decides equality. *)

type t = {
  hash : int;  (** 63-bit non-negative hash of the canonical form *)
  key : string;  (** canonical form; equal keys <=> same cached slot *)
  canon_of_orig : int array;  (** original vertex id -> canonical id *)
  orig_of_canon : int array;  (** canonical id -> original vertex id *)
}

val of_hypergraph : Hd_hypergraph.Hypergraph.t -> t
(** [of_hypergraph h] computes the canonical signature of [h].  Pure;
    cost is a handful of refinement rounds over the incidence lists. *)

val hash : t -> int
val key : t -> string

val to_canonical : t -> int array -> int array
(** [to_canonical t ordering] maps an array of original vertex ids
    (e.g. a solver's elimination-ordering witness) into canonical ids,
    the form stored in the cache. *)

val of_canonical : t -> int array -> int array
(** [of_canonical t ordering] maps a cached canonical ordering back
    into {e this} instance's vertex ids — the step that lets a witness
    computed for one submission be replayed on an isomorphic later
    one. *)
