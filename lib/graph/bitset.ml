let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

type t = { words : int array; capacity : int }

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  assert (n >= 0);
  { words = Array.make (max 1 (words_for n)) 0; capacity = n }

let capacity s = s.capacity

let check s i = assert (i >= 0 && i < s.capacity)

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let full n =
  let s = create n in
  for i = 0 to n - 1 do
    add s i
  done;
  s

let copy s = { words = Array.copy s.words; capacity = s.capacity }

let blit ~src ~dst =
  assert (src.capacity = dst.capacity);
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

(* Kernighan-style popcount is fast enough here: adjacency rows are
   sparse in the instances we handle. *)
let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let equal a b =
  assert (a.capacity = b.capacity);
  let rec go i =
    i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1))
  in
  go 0

let subset a b =
  assert (a.capacity = b.capacity);
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let union_into ~src ~dst =
  assert (src.capacity = dst.capacity);
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into ~src ~dst =
  assert (src.capacity = dst.capacity);
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let inter_into ~src ~dst =
  assert (src.capacity = dst.capacity);
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let inter_cardinal a b =
  assert (a.capacity = b.capacity);
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_word (a.words.(i) land b.words.(i))
  done;
  !acc

(* Count-trailing-zeros of an isolated bit [b = w land (-w)] in O(1):
   2 is a primitive root modulo the prime 67, so the powers 2^0..2^62
   are pairwise distinct mod 67 and one table lookup recovers the
   exponent.  (A de Bruijn multiply needs the full 64-bit wrap-around,
   which OCaml's 63-bit ints don't provide; the mod-67 variant costs
   one division instead of up to 62 shift iterations per bit.) *)
let ctz_table =
  let t = Array.make 67 (-1) in
  for k = 0 to bits_per_word - 2 do
    t.((1 lsl k) mod 67) <- k
  done;
  (* the top bit is the sign bit: [land max_int] below maps it to 0,
     a slot no genuine power of two occupies (2^k mod 67 <> 0) *)
  t.(0) <- bits_per_word - 1;
  t

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let w = ref s.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      let lsb = !w land - !w in
      f (base + Array.unsafe_get ctz_table (lsb land max_int mod 67));
      w := !w land (!w - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

exception Found of int

let choose s =
  try
    iter (fun i -> raise (Found i)) s;
    raise Not_found
  with Found i -> i

let exists p s =
  try
    iter (fun i -> if p i then raise (Found i)) s;
    false
  with Found _ -> true

let for_all p s = not (exists (fun i -> not (p i)) s)

let hash s = Hashtbl.hash s.words

(* FNV-1a over the elements in increasing order (iter is ordered), so
   the hash is canonical for the set's contents regardless of how the
   set was built.  The offset basis is the standard 64-bit one
   (0xcbf29ce484222325) truncated to OCaml's 63-bit native int: bit 63
   is dropped and bit 62 lands in the native sign bit, hence the [lor]
   (the 64-bit literal itself does not fit in a native int).
   Arithmetic wraps modulo the native width and the final mask keeps
   the result non-negative. *)
let fnv_offset_basis = 0xbf29ce484222325 lor (1 lsl 62)

let fnv_hash s =
  let h = ref fnv_offset_basis in
  iter (fun i -> h := (!h lxor i) * 0x100000001b3) s;
  !h land max_int

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
