(** Chordal graphs and perfect elimination orderings.

    Chordal (triangulated) graphs are where elimination orderings
    originate (Section 2.5.3): a graph is chordal iff some ordering
    eliminates every vertex without fill, and on chordal graphs the
    treewidth equals the largest clique size minus one.  These
    utilities verify orderings, recognise chordality via maximum
    cardinality search, and read off cliques — the oracle half of
    several property tests. *)

(** [is_perfect_elimination_ordering g sigma] holds when eliminating
    [sigma.(n-1), ..., sigma.(0)] (this library's convention) never
    adds a fill edge. *)
val is_perfect_elimination_ordering : Graph.t -> int array -> bool

(** [mcs_ordering g] is the maximum-cardinality-search ordering; it is
    a perfect elimination ordering iff [g] is chordal.  Deterministic
    (smallest-index tie-breaks).  [start] forces the first visited
    vertex — which this library's convention eliminates {e last}
    ([sigma.(0) = start]); on a chordal graph the result is a perfect
    elimination ordering for any choice of [start]. *)
val mcs_ordering : ?start:int -> Graph.t -> int array

(** [is_chordal g] recognises chordal graphs in O(n . m). *)
val is_chordal : Graph.t -> bool

(** [max_clique_size_if_chordal g] is the clique number of a chordal
    graph, [None] on non-chordal input.  On chordal graphs the
    treewidth is this minus one. *)
val max_clique_size_if_chordal : Graph.t -> int option

(** [triangulate rng g] returns a chordal supergraph of [g] via
    min-fill elimination, together with the ordering used, which is a
    perfect elimination ordering of the result. *)
val triangulate : Random.State.t -> Graph.t -> Graph.t * int array
