(** Indexed bucket queues: a monotone priority queue over the items
    [0 .. n - 1] with small non-negative integer priorities.

    Buckets are intrusive doubly-linked lists threaded through two
    [int array]s, so {!insert}, {!remove} and {!update} are O(1) (plus
    amortised growth of the bucket directory when a priority larger
    than any seen before appears).  {!min_priority} advances a cached
    minimum pointer past empty buckets, which is amortised O(1) across
    a greedy-elimination run because priorities of popped items only
    grow between consecutive scans.

    This is the key structure behind the incremental min-fill /
    min-degree heuristics (see docs/PERFORMANCE.md): each elimination
    step touches only the items whose key actually changed instead of
    re-scoring every alive vertex. *)

type t

(** [create n] is an empty queue over items [0 .. n - 1]. *)
val create : int -> t

(** [capacity t] is the item count the queue was created with. *)
val capacity : t -> int

(** [cardinal t] is the number of items currently queued. *)
val cardinal : t -> int

(** [mem t v] holds when [v] is queued. *)
val mem : t -> int -> bool

(** [priority t v] is the priority [v] was inserted or updated with.
    Undefined (asserts) when [v] is not queued. *)
val priority : t -> int -> int

(** [insert t v p] queues absent item [v] with priority [p >= 0]. *)
val insert : t -> int -> int -> unit

(** [remove t v] unlinks queued item [v] in O(1). *)
val remove : t -> int -> unit

(** [update t v p] changes the priority of queued item [v] to [p]:
    an O(1) unlink plus relink (both decrease- and increase-key). *)
val update : t -> int -> int -> unit

(** [min_priority t] is the smallest priority of any queued item.
    Asserts on an empty queue. *)
val min_priority : t -> int

(** [iter_bucket f t p] applies [f] to every item of priority [p], in
    unspecified (insertion-history dependent) order.  [f] must not
    mutate the queue. *)
val iter_bucket : (int -> unit) -> t -> int -> unit
