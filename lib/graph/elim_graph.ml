type step = { vertex : int; nbrs : int list; fill : (int * int) list }

type t = {
  size : int;
  adj : Bitset.t array;
  live : Bitset.t;
  mutable live_count : int;
  mutable undo : step list;
  mutable undo_len : int;
}

let of_graph g =
  let size = Graph.n g in
  {
    size;
    adj = Array.init size (fun v -> Bitset.copy (Graph.adjacency g v));
    live = Bitset.full size;
    live_count = size;
    undo = [];
    undo_len = 0;
  }

let capacity t = t.size
let n_alive t = t.live_count
let is_alive t v = Bitset.mem t.live v
let alive t = t.live
let alive_list t = Bitset.elements t.live
let iter_alive f t = Bitset.iter f t.live
let fold_alive f t init = Bitset.fold f t.live init
let degree t v = Bitset.cardinal t.adj.(v)
let neighbors t v = Bitset.elements t.adj.(v)
let adjacency t v = t.adj.(v)
let mem_edge t u v = u <> v && Bitset.mem t.adj.(u) v

let fill_count t v =
  let nbrs = t.adj.(v) in
  let missing = ref 0 in
  Bitset.iter
    (fun u ->
      (* count neighbours of [v] that are not adjacent to [u]
         (excluding [u] itself and discounting [v]) *)
      let common = Bitset.inter_cardinal t.adj.(u) nbrs in
      let deg_in_nbrs = Bitset.cardinal nbrs - 1 in
      missing := !missing + (deg_in_nbrs - common))
    nbrs;
  !missing / 2

let eliminate t v =
  assert (is_alive t v);
  let nbrs = neighbors t v in
  (* connect neighbours pairwise, remembering the fill edges *)
  let fill = ref [] in
  let rec connect = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if not (Bitset.mem t.adj.(a) b) then begin
              Bitset.add t.adj.(a) b;
              Bitset.add t.adj.(b) a;
              fill := (a, b) :: !fill
            end)
          rest;
        connect rest
  in
  connect nbrs;
  (* detach [v] *)
  List.iter (fun u -> Bitset.remove t.adj.(u) v) nbrs;
  Bitset.clear t.adj.(v);
  Bitset.remove t.live v;
  t.live_count <- t.live_count - 1;
  t.undo <- { vertex = v; nbrs; fill = !fill } :: t.undo;
  t.undo_len <- t.undo_len + 1

let restore_last t =
  match t.undo with
  | [] -> invalid_arg "Elim_graph.restore_last: nothing to restore"
  | { vertex = v; nbrs; fill } :: rest ->
      List.iter
        (fun (a, b) ->
          Bitset.remove t.adj.(a) b;
          Bitset.remove t.adj.(b) a)
        fill;
      List.iter
        (fun u ->
          Bitset.add t.adj.(u) v;
          Bitset.add t.adj.(v) u)
        nbrs;
      Bitset.add t.live v;
      t.live_count <- t.live_count + 1;
      t.undo <- rest;
      t.undo_len <- t.undo_len - 1

let depth t = t.undo_len

(* Affected sets of the most recent elimination, for incremental key
   maintenance (docs/PERFORMANCE.md).  Eliminating [v] changes the
   degree of exactly its old neighbours (they lose [v] and may gain
   fill edges among themselves), and can change the fill count only of
   a vertex whose neighbourhood changed or that is adjacent to both
   endpoints of a fill edge — all of which lie in N(v) u N(N(v)) of
   the post-elimination graph.  Vertices may be visited repeatedly. *)

let iter_degree_affected f t =
  match t.undo with
  | [] -> ()
  | { nbrs; _ } :: _ -> List.iter f nbrs

let iter_fill_affected f t =
  match t.undo with
  | [] -> ()
  | { nbrs; _ } :: _ ->
      List.iter
        (fun u ->
          f u;
          Bitset.iter f t.adj.(u))
        nbrs

let last_step t = match t.undo with [] -> None | s :: _ -> Some s
let trail t = t.undo

let restore_all t =
  while t.undo <> [] do
    restore_last t
  done

let is_simplicial t v =
  let nbrs = t.adj.(v) in
  Bitset.for_all
    (fun u ->
      (* [u] must see every other neighbour of [v] *)
      Bitset.inter_cardinal t.adj.(u) nbrs = Bitset.cardinal nbrs - 1)
    nbrs

let is_almost_simplicial t v =
  let nbrs = neighbors t v in
  let d = List.length nbrs in
  if d < 2 || is_simplicial t v then false
  else
    (* all but one neighbour induce a clique: dropping some neighbour w
       must leave the remaining neighbours pairwise adjacent *)
    let clique_without w =
      List.for_all
        (fun u ->
          u = w
          || List.for_all
               (fun x -> x = w || x = u || Bitset.mem t.adj.(u) x)
               nbrs)
        nbrs
    in
    List.exists clique_without nbrs

let find_reducible t ~lb =
  let result = ref None in
  (try
     Bitset.iter
       (fun v ->
         if is_simplicial t v then begin
           result := Some v;
           raise Exit
         end)
       t.live;
     Bitset.iter
       (fun v ->
         if degree t v <= lb && is_almost_simplicial t v then begin
           result := Some v;
           raise Exit
         end)
       t.live
   with Exit -> ());
  !result

let to_graph t =
  let g = Graph.create t.size in
  Bitset.iter
    (fun v -> Bitset.iter (fun u -> Graph.add_edge g v u) t.adj.(v))
    t.live;
  g
