let is_perfect_elimination_ordering g sigma =
  let n = Graph.n g in
  if Array.length sigma <> n then false
  else begin
    let eg = Elim_graph.of_graph g in
    let rec go i =
      i < 0
      ||
      let v = sigma.(i) in
      Elim_graph.fill_count eg v = 0
      &&
      (Elim_graph.eliminate eg v;
       go (i - 1))
    in
    go (n - 1)
  end

let mcs_ordering ?start g =
  let n = Graph.n g in
  let weight = Array.make n 0 in
  let numbered = Array.make n false in
  let sigma = Array.make n 0 in
  for i = 0 to n - 1 do
    let best = ref (-1) in
    (match start with
    | Some s when i = 0 ->
        if s < 0 || s >= n then invalid_arg "Chordal.mcs_ordering: bad start";
        best := s
    | _ ->
        for v = 0 to n - 1 do
          if
            (not numbered.(v))
            && (!best < 0 || weight.(v) > weight.(!best))
          then best := v
        done);
    sigma.(i) <- !best;
    numbered.(!best) <- true;
    List.iter
      (fun u -> if not numbered.(u) then weight.(u) <- weight.(u) + 1)
      (Graph.neighbors g !best)
  done;
  sigma

let is_chordal g = is_perfect_elimination_ordering g (mcs_ordering g)

let max_clique_size_if_chordal g =
  let sigma = mcs_ordering g in
  if not (is_perfect_elimination_ordering g sigma) then None
  else begin
    (* along a perfect elimination ordering every bag {v} u N(v) is a
       clique; the largest is a maximum clique *)
    let eg = Elim_graph.of_graph g in
    let best = ref (min 1 (Graph.n g)) in
    for i = Graph.n g - 1 downto 0 do
      let v = sigma.(i) in
      best := max !best (Elim_graph.degree eg v + 1);
      Elim_graph.eliminate eg v
    done;
    Some !best
  end

let triangulate rng g =
  let n = Graph.n g in
  let eg = Elim_graph.of_graph g in
  let sigma = Array.make n 0 in
  let fill = ref [] in
  for i = n - 1 downto 0 do
    (* min-fill choice with random tie-breaks *)
    let best = ref max_int and ties = ref 0 and pick = ref (-1) in
    Elim_graph.iter_alive
      (fun v ->
        let f = Elim_graph.fill_count eg v in
        if f < !best then begin
          best := f;
          ties := 1;
          pick := v
        end
        else if f = !best then begin
          incr ties;
          if Random.State.int rng !ties = 0 then pick := v
        end)
      eg;
    sigma.(i) <- !pick;
    Elim_graph.eliminate eg !pick;
    match Elim_graph.last_step eg with
    | Some step -> fill := step.Elim_graph.fill @ !fill
    | None -> assert false
  done;
  let chordal = Graph.copy g in
  List.iter (fun (a, b) -> Graph.add_edge chordal a b) !fill;
  (chordal, sigma)
