(** Mutable elimination graphs with undo.

    This is the data structure of Section 5.2.1 of the paper: a single
    graph object that all search states of the branch-and-bound / A*
    algorithms share.  Eliminating a vertex [v] connects all of [v]'s
    current neighbours pairwise (the {e fill} edges) and removes [v];
    {!restore_last} undoes the most recent elimination exactly.  The
    sequence of {!eliminate}/{!restore_last} calls therefore moves the
    object along the branch-and-bound tree without ever copying the
    graph. *)

type t

(** One undo record: the eliminated vertex, its neighbourhood at
    elimination time, and the fill edges the elimination introduced. *)
type step = { vertex : int; nbrs : int list; fill : (int * int) list }

(** [of_graph g] is a fresh elimination graph over a copy of [g]. *)
val of_graph : Graph.t -> t

(** [capacity t] is the vertex count of the original graph. *)
val capacity : t -> int

(** [n_alive t] is the number of not-yet-eliminated vertices. *)
val n_alive : t -> int

val is_alive : t -> int -> bool

(** [alive t] is the set of live vertices (internal set: do not
    mutate). *)
val alive : t -> Bitset.t

(** [alive_list t] lists live vertices in increasing order.  Allocates
    one list cell per vertex; prefer {!iter_alive}/{!fold_alive} on hot
    paths. *)
val alive_list : t -> int list

(** [iter_alive f t] applies [f] to every live vertex in increasing
    order, without allocating. *)
val iter_alive : (int -> unit) -> t -> unit

(** [fold_alive f t init] folds [f] over the live vertices in
    increasing order, without allocating. *)
val fold_alive : (int -> 'a -> 'a) -> t -> 'a -> 'a

val degree : t -> int -> int
val neighbors : t -> int -> int list

(** [adjacency t v] is the internal adjacency row of the live vertex
    [v] (do not mutate). *)
val adjacency : t -> int -> Bitset.t

val mem_edge : t -> int -> int -> bool

(** [fill_count t v] is the number of edges elimination of [v] would
    add, i.e. the number of non-adjacent pairs among [v]'s neighbours. *)
val fill_count : t -> int -> int

(** [eliminate t v] removes live vertex [v], making its neighbourhood a
    clique, and pushes an undo record. *)
val eliminate : t -> int -> unit

(** [restore_last t] undoes the most recent {!eliminate}.
    @raise Invalid_argument when no elimination is outstanding. *)
val restore_last : t -> unit

(** [depth t] is the number of outstanding eliminations. *)
val depth : t -> int

(** [iter_degree_affected f t] applies [f] to every live vertex whose
    {!degree} may have been changed by the most recent elimination —
    the eliminated vertex's old neighbourhood.  Does nothing when no
    elimination is outstanding.  [f] may be called more than once per
    vertex. *)
val iter_degree_affected : (int -> unit) -> t -> unit

(** [iter_fill_affected f t] applies [f] to every live vertex whose
    {!fill_count} may have been changed by the most recent elimination:
    a superset of N(v) u N(N(v)) in the current graph.  [f] may be
    called more than once per vertex. *)
val iter_fill_affected : (int -> unit) -> t -> unit

(** [last_step t] is the undo record of the most recent elimination, if
    any. *)
val last_step : t -> step option

(** [trail t] lists all outstanding undo records, most recent first. *)
val trail : t -> step list

(** [restore_all t] undoes every outstanding elimination. *)
val restore_all : t -> unit

(** [is_simplicial t v] holds when the live neighbours of [v] are
    pairwise adjacent. *)
val is_simplicial : t -> int -> bool

(** [is_almost_simplicial t v] holds when all but one neighbour of [v]
    induce a clique (and [v] is not simplicial). *)
val is_almost_simplicial : t -> int -> bool

(** [find_reducible t ~lb] searches for a vertex the reduction rules of
    Section 4.4.3 allow to eliminate next without loss: a simplicial
    vertex, or an almost simplicial vertex of degree [<= lb]. *)
val find_reducible : t -> lb:int -> int option

(** [to_graph t] materialises the current live graph, with the original
    vertex numbering ([Graph.n] equals {!capacity}; eliminated vertices
    are isolated). *)
val to_graph : t -> Graph.t
