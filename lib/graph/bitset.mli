(** Fixed-capacity sets of small integers backed by an [int array] bit
    vector.

    All operations assume their integer arguments lie in
    [0 .. capacity - 1]; this is enforced with assertions.  Bitsets are the
    workhorse representation for vertex sets, adjacency rows and
    decomposition bags throughout the library, so the interface favours
    cheap in-place mutation plus explicit {!copy}. *)

type t

(** [create n] is the empty set with capacity [n]. *)
val create : int -> t

(** [capacity s] is the capacity [s] was created with. *)
val capacity : t -> int

(** [full n] is the set [{0, ..., n - 1}] with capacity [n]. *)
val full : int -> t

(** [copy s] is a fresh set with the same elements and capacity as [s]. *)
val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with the contents of [src].  Both
    sets must have the same capacity. *)
val blit : src:t -> dst:t -> unit

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

(** [cardinal s] is the number of elements of [s] (population count). *)
val cardinal : t -> int

val is_empty : t -> bool

(** [equal a b] holds when [a] and [b] contain the same elements.  The
    sets must have the same capacity. *)
val equal : t -> t -> bool

(** [subset a b] holds when every element of [a] belongs to [b]. *)
val subset : t -> t -> bool

(** [union_into ~src ~dst] adds every element of [src] to [dst]. *)
val union_into : src:t -> dst:t -> unit

(** [diff_into ~src ~dst] removes every element of [src] from [dst]. *)
val diff_into : src:t -> dst:t -> unit

(** [inter_into ~src ~dst] keeps in [dst] only elements also in [src]. *)
val inter_into : src:t -> dst:t -> unit

(** [inter_cardinal a b] is [cardinal (a intersect b)] without
    materialising the intersection. *)
val inter_cardinal : t -> t -> int

(** [iter f s] applies [f] to the elements of [s] in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] lists the elements of [s] in increasing order. *)
val elements : t -> int list

(** [choose s] is the smallest element of [s].
    @raise Not_found when [s] is empty. *)
val choose : t -> int

(** [exists p s] holds when some element of [s] satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [for_all p s] holds when every element of [s] satisfies [p]. *)
val for_all : (int -> bool) -> t -> bool

(** [hash s] is a content hash, suitable for use with [Hashtbl]. *)
val hash : t -> int

(** [fnv_hash s] is an FNV-1a hash of the elements of [s] in increasing
    order — a canonical content hash used to key set-cover memo tables
    on decomposition bags (docs/PERFORMANCE.md) and the hd_server
    decomposition cache (docs/SERVER.md).  Always non-negative. *)
val fnv_hash : t -> int

(** The standard 64-bit FNV-1a offset basis [0xcbf29ce484222325]
    truncated to OCaml's 63-bit native int — the seed of {!fnv_hash},
    exported so derived canonical hashes (hd_server signatures) mix
    from the same basis. *)
val fnv_offset_basis : int

(** [of_list n xs] is the set with capacity [n] containing [xs]. *)
val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit
