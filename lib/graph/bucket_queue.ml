type t = {
  size : int;
  mutable head : int array; (* priority -> first item of its bucket, or -1 *)
  next : int array; (* item -> successor in its bucket, or -1 *)
  prev : int array; (* item -> predecessor in its bucket, or -1 *)
  prio : int array; (* item -> queued priority, or -1 when absent *)
  mutable min_prio : int; (* lower bound on the smallest occupied bucket *)
  mutable cardinal : int;
}

let create n =
  assert (n >= 0);
  {
    size = n;
    head = Array.make (max 4 (min 64 (n + 1))) (-1);
    next = Array.make (max 1 n) (-1);
    prev = Array.make (max 1 n) (-1);
    prio = Array.make (max 1 n) (-1);
    min_prio = 0;
    cardinal = 0;
  }

let capacity t = t.size
let cardinal t = t.cardinal
let mem t v = t.prio.(v) >= 0

let priority t v =
  assert (mem t v);
  t.prio.(v)

let ensure_bucket t p =
  let len = Array.length t.head in
  if p >= len then begin
    let bigger = Array.make (max (2 * len) (p + 1)) (-1) in
    Array.blit t.head 0 bigger 0 len;
    t.head <- bigger
  end

let insert t v p =
  assert (p >= 0);
  assert (not (mem t v));
  ensure_bucket t p;
  let first = t.head.(p) in
  t.next.(v) <- first;
  t.prev.(v) <- -1;
  if first >= 0 then t.prev.(first) <- v;
  t.head.(p) <- v;
  t.prio.(v) <- p;
  if p < t.min_prio then t.min_prio <- p;
  t.cardinal <- t.cardinal + 1

let remove t v =
  let p = t.prio.(v) in
  assert (p >= 0);
  let nx = t.next.(v) and pv = t.prev.(v) in
  if pv >= 0 then t.next.(pv) <- nx else t.head.(p) <- nx;
  if nx >= 0 then t.prev.(nx) <- pv;
  t.prio.(v) <- -1;
  t.cardinal <- t.cardinal - 1

let update t v p =
  if t.prio.(v) <> p then begin
    remove t v;
    insert t v p
  end

let min_priority t =
  assert (t.cardinal > 0);
  let len = Array.length t.head in
  while t.min_prio < len && t.head.(t.min_prio) < 0 do
    t.min_prio <- t.min_prio + 1
  done;
  assert (t.min_prio < len);
  t.min_prio

let iter_bucket f t p =
  if p < Array.length t.head then begin
    let v = ref t.head.(p) in
    while !v >= 0 do
      let nx = t.next.(!v) in
      f !v;
      v := nx
    done
  end
