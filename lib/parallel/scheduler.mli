(** The shared work-stealing task scheduler.

    One instance owns a fixed set of worker domains, each draining its
    own {!Deque} (LIFO for the owner, stolen FIFO by idle peers) plus a
    global FIFO injector queue for external submissions and
    fairness-sensitive resubmissions.  Every parallel layer in the tree
    — biconnected block solves ({!Hd_engine.Exec}), the HDA* [-par]
    solvers ({!Hdastar}), partitioned columnar query passes
    ({!Hd_query.Colexec}) and the server's time-sliced jobs
    ([Server.Jobs]) — submits plain closures here, so they all share
    one domain pool and never oversubscribe the machine.

    Two task shapes cover all of them: a plain [unit -> unit] closure
    ({!spawn} / {!inject}), and a resumable turn ({!resume}) that
    re-enqueues itself at the back of the injector while it returns
    [`Again] — the building block for one-[Step.slice]-per-turn jobs.

    [workers = 0] is the deterministic sequential mode: {!run_all}
    runs its closures inline, in list order, on the calling domain —
    byte-identical to a plain [List.iter].

    Counters: [parallel.tasks] (closures executed), [parallel.steals]
    (successful deque steals), [parallel.park_ns] (cumulative
    nanoseconds workers and joiners spent parked).  A ["scheduler"]
    {!Hd_obs.Obs.Tap} stream reports [spawn]/[park]/[resume] events;
    see docs/OBSERVABILITY.md. *)

type t

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains (default
    [Domain.recommended_domain_count () - 1], clamped at 0).  With
    [workers = 0] no domain is spawned and every submission runs on
    the caller at the next join point. *)

val size : t -> int
(** Number of worker domains (0 in sequential mode). *)

val shutdown : t -> unit
(** Drain outstanding tasks, then join every worker.  Idempotent.
    Tasks injected after shutdown raise [Invalid_argument]. *)

val with_scheduler : ?workers:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

val spawn : t -> (unit -> unit) -> unit
(** Submit a closure.  From a worker of [t] it lands on that worker's
    own deque (LIFO, cache-warm, stealable); from any other domain it
    goes to the injector.  A closure that raises does not kill the
    worker: the exception is dropped after a ["scheduler"] Tap event —
    fork/join callers should use {!run_all}, which re-raises. *)

val inject : t -> (unit -> unit) -> unit
(** Submit at the back of the global FIFO regardless of the calling
    domain — round-robin fairness for peers such as job slices. *)

val resume : t -> (unit -> [ `Again | `Done ]) -> unit
(** [resume t turn] injects a task that runs [turn ()] once per
    scheduling turn and re-injects itself while the result is
    [`Again]: the resumable-[Step]-slice task shape. *)

val run_all : t -> (unit -> unit) list -> unit
(** Structured fork/join.  Runs every closure to completion before
    returning; the calling domain helps (executes pending tasks, its
    own children first) instead of blocking, so nested [run_all] from
    inside a task cannot deadlock.  If closures raised, the first one
    (in list order) is re-raised after all have finished.  With
    [workers = 0] this is exactly [List.iter (fun f -> f ())]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Fork/join map preserving order ({!run_all} underneath). *)

val on_worker : t -> bool
(** Whether the calling domain is one of [t]'s workers. *)

val default_workers : unit -> int
(** The process-wide worker-count default used by {!shared}:
    initially [Domain.recommended_domain_count () - 1]. *)

val set_default_workers : int -> unit
(** Override {!default_workers} (clamped at 0) — the [-j] flag calls
    this with [jobs - 1] {e before} the first {!shared} use; later
    calls do not resize an already-created shared scheduler. *)

val shared : unit -> t
(** The lazily-created process-wide scheduler, used by solvers that
    receive no explicit instance (the registered [-par] variants).  It
    is never shut down. *)

val install_engine_runner : t -> unit
(** Point {!Hd_engine.Exec} at [t]: [Engine.run] block solves fork
    through {!run_all} from then on.  [Exec.clear] undoes it. *)
