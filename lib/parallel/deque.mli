(** A fixed-capacity Chase–Lev work-stealing deque.

    One owner domain pushes and pops at the bottom (LIFO — hot tasks
    stay cache-warm); any number of thief domains steal from the top
    (FIFO — the oldest, typically largest, task migrates).  All three
    operations are lock-free; the only blocking anywhere in the
    scheduler is the parking condition variable in {!Scheduler}.

    Memory-model note: every slot is its own [Atomic.t] (like
    {!Ring}), so a thief that wins the CAS on [top] is guaranteed to
    have read the element the owner published — the slot write
    happens-before the [bottom] publication, which happens-before the
    thief's [top] read.  The buffer does not grow: {!push} reports
    [`Full] and the {!Scheduler} overflows into its global injector
    queue instead, which keeps the hot path allocation-free. *)

type 'a t

val create : int -> 'a t
(** [create capacity] is an empty deque holding at least [capacity]
    elements (rounded up to a power of two).
    @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> [ `Ok | `Full ]
(** Owner side only: append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner side only: remove the most recently pushed element. *)

val steal : 'a t -> 'a option
(** Thief side: remove the oldest element.  [None] means empty {e or}
    lost a race — callers just move to the next victim. *)

val length : 'a t -> int
(** Snapshot of the current size (exact only on the owner domain). *)
