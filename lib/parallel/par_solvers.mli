(** Registry entries for the parallel solver variants.

    {!ensure} registers [astar-tw-par] and [astar-ghw-par] — the
    {!Hdastar} hash-distributed searches running on
    {!Scheduler.shared} — into the {!Hd_engine.Solver} registry, so
    portfolios, the bench harness, the server and the CLI can name
    them like any sequential solver.  Idempotent. *)

val ensure : unit -> unit
