module S = Hd_engine.Solver

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    S.register
      {
        S.name = "astar-tw-par";
        kind = S.Tw;
        doc = "hash-distributed parallel A* treewidth (HDA* on the scheduler)";
        run =
          (fun ?seed b p -> Hdastar.solve_tw ~within:b ?seed (S.primal_of p));
      };
    S.register
      {
        S.name = "astar-ghw-par";
        kind = S.Ghw;
        doc = "hash-distributed parallel A* ghw (HDA* on the scheduler)";
        run =
          (fun ?seed b p ->
            Hdastar.solve_ghw ~within:b ?seed (S.hypergraph_of p));
      }
  end
