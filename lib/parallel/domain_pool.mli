(** A fixed-size pool of worker domains with futures.

    [Domain.spawn] involves a stop-the-world synchronisation of every
    running domain, so callers that issue repeated work (the portfolio,
    the benchmark harness) create one pool and reuse it.  Jobs run in
    submission order; with fewer domains than jobs the excess jobs
    queue, which on a single-core machine degrades gracefully into
    sequential execution.

    Cancellation is two-level: {!cancel} drops a job that no worker has
    picked up yet, while a {e running} job can only be stopped
    cooperatively — solver jobs poll their shared
    {!Hd_core.Incumbent.t} and return early when it is cancelled. *)

type t

type 'a future

exception Cancelled
(** Raised by {!await} on a future whose job was {!cancel}led before it
    started. *)

val create : domains:int -> t
(** [create ~domains:n] spawns [n >= 1] worker domains (plus the
    calling domain, the process then uses [n + 1]).
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** [submit pool f] enqueues [f] and returns immediately.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** [await fut] blocks until the job finishes and returns its result,
    re-raises the job's exception, or raises {!Cancelled}. *)

val cancel : 'a future -> bool
(** [cancel fut] drops the job if it is still queued; [true] on
    success, [false] when it already started (stop it through its
    incumbent instead) or finished. *)

val shutdown : t -> unit
(** Waits for queued jobs to drain, then joins every worker.
    Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val default_window : t -> int
(** The canonical in-flight window for {!map}: [2 * size pool], at
    least 1.  Every streaming-map call site shares this single
    derivation; override [?window] only in tests. *)

val map : ?window:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item on the pool's worker
    domains and returns the results in input order.  At most [window]
    jobs (default {!default_window}) are in flight — queued
    or running — ahead of the next result being awaited, so
    corpus-scale item lists are streamed rather than enqueued whole.
    [f] must be safe to run concurrently with itself.  If a job
    raises, [map] re-raises that exception at the item's position in
    order; jobs already submitted keep running. *)
