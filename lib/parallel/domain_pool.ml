(* A fixed set of worker domains draining one shared job queue.

   Spawning a domain costs a runtime-wide stop-the-world section, so
   solvers that issue many small jobs must not Domain.spawn per job;
   the pool pays the spawn cost once.  The queue is a plain Queue under
   a mutex + condition — submission is rare (a handful of portfolio
   members), so a lock-free queue would buy nothing. *)

exception Cancelled

type 'a state =
  | Pending
  | Running
  | Done of 'a
  | Failed of exn
  | Dropped  (* cancelled before a worker picked it up *)

type 'a future = {
  fm : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type t = {
  m : Mutex.t;
  cond : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let rec worker pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.jobs && not pool.stopping do
    Condition.wait pool.cond pool.m
  done;
  if Queue.is_empty pool.jobs then Mutex.unlock pool.m (* stopping *)
  else begin
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.m;
    job ();
    worker pool
  end

let create ~domains:n =
  if n < 1 then invalid_arg "Domain_pool.create: need at least one domain";
  let pool =
    {
      m = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
    }
  in
  pool.domains <- List.init n (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = List.length pool.domains

let submit pool f =
  let fut = { fm = Mutex.create (); fcond = Condition.create (); state = Pending } in
  let run () =
    let proceed =
      Mutex.protect fut.fm (fun () ->
          match fut.state with
          | Pending ->
              fut.state <- Running;
              true
          | _ -> false)
    in
    if proceed then begin
      let res = try Done (f ()) with e -> Failed e in
      Mutex.protect fut.fm (fun () ->
          fut.state <- res;
          Condition.broadcast fut.fcond)
    end
  in
  Mutex.protect pool.m (fun () ->
      if pool.stopping then
        invalid_arg "Domain_pool.submit: pool is shut down";
      Queue.push run pool.jobs;
      Condition.signal pool.cond);
  fut

let await fut =
  Mutex.lock fut.fm;
  while match fut.state with Pending | Running -> true | _ -> false do
    Condition.wait fut.fcond fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Dropped -> raise Cancelled
  | Pending | Running -> assert false

let cancel fut =
  Mutex.protect fut.fm (fun () ->
      match fut.state with
      | Pending ->
          fut.state <- Dropped;
          Condition.broadcast fut.fcond;
          true
      | _ -> false)

let shutdown pool =
  Mutex.protect pool.m (fun () ->
      pool.stopping <- true;
      Condition.broadcast pool.cond);
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
