(* A fixed set of worker domains draining one shared job queue.

   Spawning a domain costs a runtime-wide stop-the-world section, so
   solvers that issue many small jobs must not Domain.spawn per job;
   the pool pays the spawn cost once.  The queue is a plain Queue under
   a mutex + condition — submission is rare (a handful of portfolio
   members), so a lock-free queue would buy nothing. *)

exception Cancelled

type 'a state =
  | Pending
  | Running
  | Done of 'a
  | Failed of exn
  | Dropped  (* cancelled before a worker picked it up *)

type 'a future = {
  fm : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type t = {
  m : Mutex.t;
  cond : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let rec worker pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.jobs && not pool.stopping do
    Condition.wait pool.cond pool.m
  done;
  if Queue.is_empty pool.jobs then Mutex.unlock pool.m (* stopping *)
  else begin
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.m;
    job ();
    worker pool
  end

let create ~domains:n =
  if n < 1 then invalid_arg "Domain_pool.create: need at least one domain";
  let pool =
    {
      m = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
    }
  in
  pool.domains <- List.init n (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = List.length pool.domains

let submit pool f =
  let fut = { fm = Mutex.create (); fcond = Condition.create (); state = Pending } in
  let run () =
    let proceed =
      Mutex.protect fut.fm (fun () ->
          match fut.state with
          | Pending ->
              fut.state <- Running;
              true
          | _ -> false)
    in
    if proceed then begin
      let res = try Done (f ()) with e -> Failed e in
      Mutex.protect fut.fm (fun () ->
          fut.state <- res;
          Condition.broadcast fut.fcond)
    end
  in
  Mutex.protect pool.m (fun () ->
      if pool.stopping then
        invalid_arg "Domain_pool.submit: pool is shut down";
      Queue.push run pool.jobs;
      Condition.signal pool.cond);
  fut

let await fut =
  Mutex.lock fut.fm;
  while match fut.state with Pending | Running -> true | _ -> false do
    Condition.wait fut.fcond fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Dropped -> raise Cancelled
  | Pending | Running -> assert false

let cancel fut =
  Mutex.protect fut.fm (fun () ->
      match fut.state with
      | Pending ->
          fut.state <- Dropped;
          Condition.broadcast fut.fcond;
          true
      | _ -> false)

let shutdown pool =
  Mutex.protect pool.m (fun () ->
      pool.stopping <- true;
      Condition.broadcast pool.cond);
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* the one place the in-flight window is derived from the pool size:
   two queued jobs per worker keeps every domain busy across awaits
   without materialising corpus-scale queues *)
let default_window pool = max 1 (2 * size pool)

let map ?window pool f items =
  let window =
    match window with Some w -> max 1 w | None -> default_window pool
  in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let futs = Array.make n None in
  let submitted = ref 0 in
  (* keep at most [window] jobs in flight ahead of the await point:
     corpus-scale inputs (thousands of items) never materialise a
     thousand queued closures and their pending results at once *)
  let fill upto =
    while !submitted < upto do
      let i = !submitted in
      futs.(i) <- Some (submit pool (fun () -> f arr.(i)));
      incr submitted
    done
  in
  let out = ref [] in
  for i = 0 to n - 1 do
    fill (min n (i + window));
    match futs.(i) with
    | Some fut ->
        let r = await fut in
        futs.(i) <- None;
        out := r :: !out
    | None -> assert false
  done;
  List.rev !out
