(* Bounded single-producer single-consumer queue, lock-free and
   non-blocking on both ends.

   Indices grow without wrapping (63-bit counters cannot overflow in
   practice); a slot is addressed by [index land (capacity - 1)] with
   capacity rounded up to a power of two.  Every slot is its own
   [Atomic.t]: under the OCaml memory model the producer's atomic slot
   write happens-before the consumer's read of the tail value that
   published it, so the payload is transferred race-free without any
   fence gymnastics.  Overflow drops at the producer (try_push = false)
   and underflow at the consumer (try_pop = None) — island migration
   wants exactly these semantics, a migrant is advisory and never worth
   blocking a generation for. *)

type 'a t = {
  slots : 'a option Atomic.t array;
  head : int Atomic.t; (* next index to read; advanced only by the consumer *)
  tail : int Atomic.t; (* next index to write; advanced only by the producer *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  {
    slots = Array.init (next_pow2 capacity) (fun _ -> Atomic.make None);
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Array.length t.slots

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let is_empty t = length t = 0

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= Array.length t.slots then false
  else begin
    Atomic.set t.slots.(tail land (Array.length t.slots - 1)) (Some x);
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let x = Atomic.exchange t.slots.(head land (Array.length t.slots - 1)) None in
    Atomic.set t.head (head + 1);
    (* in SPSC use the slot a published tail points at is always full *)
    assert (x <> None);
    x
  end
