(** Hash-distributed A* — HDA-star — for exact treewidth and ghw.

    The open list is partitioned across W workers (the {!Scheduler}'s
    domains plus the calling one) by owner-computes hashing: a state
    belongs to worker [Bitset.fnv_hash (eliminated set) mod W], so
    duplicate elimination sets always land on the same worker and its
    local [seen] table deduplicates them without any shared structure.
    Generated states owned elsewhere travel in batches over SPSC
    {!Ring}s; a full ring degrades gracefully — the sender keeps the
    state locally, which costs dedup precision, never soundness.
    Bounds flow through one shared {!Hd_core.Incumbent}: every worker
    prunes on the best global upper bound the moment it is published.

    Workers register themselves as they come online (a busy shared
    pool may start them late) and states are only ever routed to live
    workers, so the search makes progress from the first worker
    onward.  Termination is all-idle detection: when every live worker
    is idle, no message is in flight and nothing changed during the
    check, the frontier is exhausted and the incumbent upper bound is
    the exact width.  On budget exhaustion the result degrades to the
    incumbent bounds, exactly like the sequential A*.

    With a sequential scheduler (0 workers) the solve runs entirely on
    the calling domain and is deterministic for a fixed seed.

    Counters: [hdastar.messages] (states shipped cross-worker),
    [hdastar.batches] (ring pushes), [hdastar.ring_full] (local
    fallbacks), plus the shared [search.*] family. *)

val solve_tw :
  ?sched:Scheduler.t ->
  ?within:Hd_engine.Budget.t ->
  ?seed:int ->
  Hd_graph.Graph.t ->
  Hd_engine.Solver.result
(** Exact treewidth by distributed best-first search over elimination
    prefixes — the parallel counterpart of [Astar_tw.solve].  [sched]
    defaults to {!Scheduler.shared}. *)

val solve_ghw :
  ?sched:Scheduler.t ->
  ?within:Hd_engine.Budget.t ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  Hd_engine.Solver.result
(** Exact generalized hypertree width, the parallel counterpart of
    [Astar_ghw.solve].  Each worker keeps its own cover oracle. *)
