module Incumbent = Hd_core.Incumbent
module Search_types = Hd_search.Search_types
module Obs = Hd_obs.Obs

let c_members = Obs.Counter.make "parallel.portfolio.members"
let c_closed = Obs.Counter.make "parallel.portfolio.closed"

type member_report = {
  member : string;
  outcome : Search_types.outcome;
  elapsed : float;
}

type t = {
  outcome : Search_types.outcome;
  ordering : int array option;
  winner : string option;
  members : member_report list;
  domains : int;
  elapsed : float;
}

let default_jobs () = Domain.recommended_domain_count ()

(* the incumbent read back as an outcome: closed means some racer
   proved optimality, whoever it was *)
let outcome_of inc =
  let lb, ub = Incumbent.bounds inc in
  if lb >= ub then Search_types.Exact ub else Search_types.Bounds { lb; ub }

(* GA racers are pure upper-bounders: generous generation caps, the
   incumbent (closing or cancellation) is their real stopping rule *)
let ga_config ~budget ~seed =
  let open Hd_ga.Ga_engine in
  {
    (default_config ~population_size:300 ~max_iterations:100_000 ~seed ()) with
    time_limit = budget.Search_types.time_limit;
  }

let saiga_config ~budget ~seed =
  let open Hd_ga.Saiga_ghw in
  {
    (default_config ~n_islands:4 ~island_population:60 ~max_epochs:10_000
       ~seed ())
    with
    time_limit = budget.Search_types.time_limit;
  }

(* Race [members] on a pool of [jobs] domains sharing [inc].  With
   fewer domains than members the tail members queue; by the time they
   start the incumbent is usually closed and they return instantly, so
   -j 1 degenerates to running the first member alone. *)
let race ~jobs ~inc members =
  let jobs = max 1 jobs in
  let members = List.filteri (fun i _ -> i < jobs) members in
  let started = Unix.gettimeofday () in
  let winner = Atomic.make None in
  let reports =
    Domain_pool.with_pool ~domains:(List.length members) (fun pool ->
        members
        |> List.map (fun (name, job) ->
               Obs.Counter.incr c_members;
               let fut =
                 Domain_pool.submit pool (fun () ->
                     let t0 = Unix.gettimeofday () in
                     (* skip the real work when the race is already over *)
                     let outcome =
                       if Incumbent.closed inc || Incumbent.cancelled inc then
                         outcome_of inc
                       else job ()
                     in
                     (match outcome with
                     | Search_types.Exact _ ->
                         (* first exact finisher is the winner *)
                         ignore
                           (Atomic.compare_and_set winner None (Some name))
                     | Search_types.Bounds _ -> ());
                     (outcome, Unix.gettimeofday () -. t0))
               in
               (name, fut))
        |> List.map (fun (name, fut) ->
               let outcome, elapsed = Domain_pool.await fut in
               { member = name; outcome; elapsed }))
  in
  let outcome = outcome_of inc in
  (match outcome with
  | Search_types.Exact _ -> Obs.Counter.incr c_closed
  | Search_types.Bounds _ -> ());
  {
    outcome;
    ordering = Incumbent.witness inc;
    winner = Atomic.get winner;
    members = reports;
    domains = List.length reports;
    elapsed = Unix.gettimeofday () -. started;
  }

let solve_tw ?jobs ?(budget = Search_types.no_budget) ?(seed = 0x90f) g =
  Obs.with_span "portfolio.solve_tw" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let inc = Incumbent.create () in
  let exact name f = (name, fun () -> (f () : Search_types.result).outcome) in
  let ga name seed =
    ( name,
      fun () ->
        ignore (Hd_ga.Ga_tw.run ~incumbent:inc (ga_config ~budget ~seed) g);
        outcome_of inc )
  in
  (* ordered by expected usefulness: the first [jobs] entries run *)
  let members =
    [
      exact "astar-tw" (fun () ->
          Hd_search.Astar_tw.solve ~budget ~incumbent:inc ~seed g);
      exact "bb-tw" (fun () ->
          Hd_search.Bb_tw.solve ~budget ~incumbent:inc ~seed:(seed + 1) g);
      ga "ga-tw" (seed + 2);
      exact "astar-tw-dedup" (fun () ->
          Hd_search.Astar_tw.solve ~budget ~incumbent:inc ~dedup:true
            ~seed:(seed + 3) g);
      exact "bb-tw-nopr2" (fun () ->
          Hd_search.Bb_tw.solve ~budget ~incumbent:inc ~seed:(seed + 4)
            ~use_pr2:false g);
      ga "ga-tw-b" (seed + 5);
      exact "bb-tw-noreduce" (fun () ->
          Hd_search.Bb_tw.solve ~budget ~incumbent:inc ~seed:(seed + 6)
            ~use_reductions:false g);
      ga "ga-tw-c" (seed + 7);
    ]
  in
  race ~jobs ~inc members

let solve_ghw ?jobs ?(budget = Search_types.no_budget) ?(seed = 0x91f) h =
  Obs.with_span "portfolio.solve_ghw" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let inc = Incumbent.create () in
  let exact name f = (name, fun () -> (f () : Search_types.result).outcome) in
  let members =
    [
      exact "astar-ghw" (fun () ->
          Hd_search.Astar_ghw.solve ~budget ~incumbent:inc ~seed h);
      exact "bb-ghw" (fun () ->
          Hd_search.Bb_ghw.solve ~budget ~incumbent:inc ~seed:(seed + 1) h);
      ( "saiga-ghw",
        fun () ->
          ignore
            (Hd_ga.Saiga_ghw.run ~incumbent:inc
               (saiga_config ~budget ~seed:(seed + 2))
               h);
          outcome_of inc );
      exact "astar-ghw-dedup" (fun () ->
          Hd_search.Astar_ghw.solve ~budget ~incumbent:inc ~dedup:true
            ~seed:(seed + 3) h);
      ( "ga-ghw",
        fun () ->
          ignore
            (Hd_ga.Ga_ghw.run ~incumbent:inc (ga_config ~budget ~seed:(seed + 4)) h);
          outcome_of inc );
      exact "bb-ghw-greedy" (fun () ->
          Hd_search.Bb_ghw.solve ~budget ~incumbent:inc ~seed:(seed + 5)
            ~cover:`Greedy h);
      ( "saiga-ghw-b",
        fun () ->
          ignore
            (Hd_ga.Saiga_ghw.run ~incumbent:inc
               (saiga_config ~budget ~seed:(seed + 6))
               h);
          outcome_of inc );
      ( "ga-ghw-b",
        fun () ->
          ignore
            (Hd_ga.Ga_ghw.run ~incumbent:inc (ga_config ~budget ~seed:(seed + 7)) h);
          outcome_of inc );
    ]
  in
  race ~jobs ~inc members

let pp ppf t =
  Format.fprintf ppf "%a on %d domain%s" Search_types.pp_outcome t.outcome
    t.domains
    (if t.domains = 1 then "" else "s");
  match t.winner with
  | Some w -> Format.fprintf ppf ", won by %s" w
  | None -> ()
