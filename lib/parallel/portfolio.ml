module Incumbent = Hd_core.Incumbent
module Search_types = Hd_search.Search_types
module Engine = Hd_engine.Engine
module Solver = Hd_engine.Solver
module Budget = Hd_engine.Budget
module Obs = Hd_obs.Obs

let c_members = Obs.Counter.make "parallel.portfolio.members"
let c_closed = Obs.Counter.make "parallel.portfolio.closed"

type member_report = {
  member : string;
  outcome : Search_types.outcome;
  elapsed : float;
}

type t = {
  outcome : Search_types.outcome;
  ordering : int array option;
  winner : string option;
  members : member_report list;
  domains : int;
  elapsed : float;
}

let default_jobs () = Domain.recommended_domain_count ()

(* every roster member comes from the engine's solver registry; both
   provider libraries register here before any lookup *)
let ensure_registry () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ()

(* the incumbent read back as an outcome: closed means some racer
   proved optimality, whoever it was *)
let outcome_of inc =
  let lb, ub = Incumbent.bounds inc in
  if lb >= ub then Search_types.Exact ub else Search_types.Bounds { lb; ub }

(* Race [members] on a pool of [jobs] domains sharing [inc].  With
   fewer domains than members the tail members queue; by the time they
   start the incumbent is usually closed and they return instantly, so
   -j 1 degenerates to running the first member alone. *)
let race ~jobs ~inc members =
  let jobs = max 1 jobs in
  let members = List.filteri (fun i _ -> i < jobs) members in
  let started = Hd_engine.Clock.now () in
  let winner = Atomic.make None in
  let reports =
    Domain_pool.with_pool ~domains:(List.length members) (fun pool ->
        members
        |> List.map (fun (name, job) ->
               Obs.Counter.incr c_members;
               let fut =
                 Domain_pool.submit pool (fun () ->
                     let t0 = Hd_engine.Clock.now () in
                     (* skip the real work when the race is already over *)
                     let outcome =
                       if Incumbent.closed inc || Incumbent.cancelled inc then
                         outcome_of inc
                       else job ()
                     in
                     (match outcome with
                     | Search_types.Exact _ ->
                         (* first exact finisher is the winner *)
                         ignore
                           (Atomic.compare_and_set winner None (Some name))
                     | Search_types.Bounds _ -> ());
                     (outcome, Hd_engine.Clock.now () -. t0))
               in
               (name, fut))
        |> List.map (fun (name, fut) ->
               let outcome, elapsed = Domain_pool.await fut in
               { member = name; outcome; elapsed }))
  in
  let outcome = outcome_of inc in
  (match outcome with
  | Search_types.Exact _ -> Obs.Counter.incr c_closed
  | Search_types.Bounds _ -> ());
  {
    outcome;
    ordering = Incumbent.witness inc;
    winner = Atomic.get winner;
    members = reports;
    domains = List.length reports;
    elapsed = Hd_engine.Clock.now () -. started;
  }

(* Resolve a roster of (label, registry name) pairs into race members.
   Resolution happens eagerly on the calling domain so an unknown name
   fails before any domain spawns.  All members share one engine
   budget — one race-wide deadline, shared cancellation, and the shared
   incumbent — but each runs its own ticker, so [max_states] still caps
   each member separately.  Members run without block splitting: the
   race cooperates through the incumbent, and splitting (which isolates
   per-block sub-budgets) belongs above the portfolio, not below it. *)
let members_of ~budget ~inc ~seed roster problem =
  let b = Budget.of_spec ~incumbent:inc budget in
  List.mapi
    (fun i (label, name) ->
      let solver =
        match Solver.find name with
        | Some s -> s
        | None ->
            invalid_arg
              (Printf.sprintf "Portfolio: unknown solver %S (available: %s)"
                 name
                 (String.concat ", " (Solver.names ())))
      in
      ( label,
        fun () ->
          (Engine.run ~blocks:false ~seed:(seed + i) solver b problem)
            .Solver.outcome ))
    roster

let run_roster ?jobs ?(budget = Search_types.no_budget) ~seed roster problem =
  ensure_registry ();
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let inc = Incumbent.create () in
  race ~jobs ~inc (members_of ~budget ~inc ~seed roster problem)

(* ordered by expected usefulness: the first [jobs] entries run; the
   [-b]/[-c] labels are reseeded copies of the same registered solver *)
let tw_roster =
  [
    ("astar-tw", "astar-tw");
    ("bb-tw", "bb-tw");
    ("ga-tw", "ga-tw");
    ("astar-tw-dedup", "astar-tw-dedup");
    ("bb-tw-nopr2", "bb-tw-nopr2");
    ("ga-tw-b", "ga-tw");
    ("bb-tw-noreduce", "bb-tw-noreduce");
    ("ga-tw-c", "ga-tw");
  ]

let ghw_roster =
  [
    ("astar-ghw", "astar-ghw");
    ("bb-ghw", "bb-ghw");
    ("saiga-ghw", "saiga-ghw");
    ("astar-ghw-dedup", "astar-ghw-dedup");
    ("ga-ghw", "ga-ghw");
    ("bb-ghw-greedy", "bb-ghw-greedy");
    ("saiga-ghw-b", "saiga-ghw");
    ("ga-ghw-b", "ga-ghw");
  ]

let solve_tw ?jobs ?budget ?(seed = 0x90f) g =
  Obs.with_span "portfolio.solve_tw" @@ fun () ->
  run_roster ?jobs ?budget ~seed tw_roster (Solver.Graph g)

let solve_ghw ?jobs ?budget ?(seed = 0x91f) h =
  Obs.with_span "portfolio.solve_ghw" @@ fun () ->
  run_roster ?jobs ?budget ~seed ghw_roster (Solver.Hypergraph h)

let solve_named ?jobs ?budget ?(seed = 0x92f) ~names problem =
  Obs.with_span "portfolio.solve_named" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> List.length names in
  run_roster ~jobs ?budget ~seed (List.map (fun n -> (n, n)) names) problem

let pp ppf t =
  Format.fprintf ppf "%a on %d domain%s" Search_types.pp_outcome t.outcome
    t.domains
    (if t.domains = 1 then "" else "s");
  match t.winner with
  | Some w -> Format.fprintf ppf ", won by %s" w
  | None -> ()
