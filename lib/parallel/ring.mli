(** A bounded, lock-free, single-producer single-consumer ring buffer.

    Exactly one domain may push and exactly one domain may pop (they
    can be the same).  Both operations are constant-time, non-blocking
    and allocation-free apart from the [Some] cell.  The parallel SAIGA
    islands use one ring per directed ring edge: a full inbox drops the
    migrant, an empty inbox skips migration — no island ever waits on a
    neighbour, which is what makes the topology deadlock-free.

    Memory-model note: the payload is written into a per-slot
    [Atomic.t] {e before} the tail counter is advanced, and read after
    the tail is observed; the two atomic accesses give the
    happens-before edge that makes the transfer race-free.  See
    {e docs/PARALLELISM.md}. *)

type 'a t

val create : int -> 'a t
(** [create capacity] is an empty ring holding at least [capacity]
    elements (rounded up to a power of two).
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
(** Actual capacity (the rounded-up power of two). *)

val try_push : 'a t -> 'a -> bool
(** [try_push t x] appends [x]; [false] when the ring is full (the
    element is dropped — callers treat migrants as advisory).  Producer
    side only. *)

val try_pop : 'a t -> 'a option
(** [try_pop t] removes the oldest element; [None] when empty.
    Consumer side only. *)

val length : 'a t -> int
(** Snapshot of the number of queued elements (exact only when called
    from one of the two endpoint domains). *)

val is_empty : 'a t -> bool
