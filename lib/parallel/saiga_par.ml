module Hypergraph = Hd_hypergraph.Hypergraph
module Incumbent = Hd_core.Incumbent
module Ga_engine = Hd_ga.Ga_engine
module Saiga_ghw = Hd_ga.Saiga_ghw
module Obs = Hd_obs.Obs

let c_epochs = Obs.Counter.make "parallel.saiga.epochs"
let c_migrations = Obs.Counter.make "parallel.saiga.migrations"
let c_dropped = Obs.Counter.make "parallel.saiga.migrants_dropped"

(* a migrant carries the sender's best fitness + individual and its
   control parameters, so the receiver can orient as well as inject *)
type migrant = { fitness : int; individual : int array; params : Ga_engine.params }

let run ?incumbent ?within (config : Saiga_ghw.config) h =
  Obs.with_span "saiga_par.run" @@ fun () ->
  let budget =
    match within with
    | Some b -> b
    | None -> Hd_engine.Budget.create ?time_limit:config.time_limit ?incumbent ()
  in
  Hd_engine.Budget.start budget;
  let n_genes = Hypergraph.n_vertices h in
  let k = max 1 config.n_islands in
  let inc =
    match incumbent with
    | Some i -> i
    | None -> (
        match Hd_engine.Budget.incumbent budget with
        | Some i -> i
        | None -> Incumbent.create ())
  in
  (* one inbox per island; migrants flow along the directed ring
     i -> i+1, so each ring has exactly one producer (island i) and one
     consumer (island i+1): the SPSC contract Ring requires *)
  let inboxes = Array.init k (fun _ -> Ring.create 4) in
  let island i () =
    let rng = Random.State.make [| config.seed; i |] in
    (* each island runs its own ticker on the shared budget, so the
       deadline is global while the amortized clock stays domain-local *)
    let tk = Hd_engine.Budget.ticker budget in
    (* per-island evaluator: suffix-reuse workspaces (and their
       set-cover memo tables) hold mutable scratch and must never be
       shared across domains — each island builds its own inside its
       domain, so the memo needs no locking *)
    let ws =
      Hd_ga.Suffix_eval.of_hypergraph ~seed:(config.seed lxor 0x717 lxor i) h
    in
    let eval sigma =
      Hd_engine.Budget.tick_generated tk;
      Hd_engine.Budget.check tk;
      Hd_ga.Suffix_eval.width ws sigma
    in
    let params = ref (Saiga_ghw.random_params rng) in
    let pop =
      Ga_engine.Population.init rng ~n_genes
        ~size:(max 2 config.island_population)
        ~eval
    in
    let out_of_time () = Hd_engine.Budget.out_of_budget tk in
    let publish () =
      let f, ind = Ga_engine.Population.best pop in
      if Array.length ind > 0 then
        ignore (Incumbent.offer_ub inc ~witness:ind f)
    in
    let stop () =
      out_of_time ()
      || Incumbent.cancelled inc
      || Incumbent.closed inc
      ||
      match config.target with
      | Some t -> fst (Ga_engine.Population.best pop) <= t
      | None -> false
    in
    publish ();
    let epoch = ref 0 in
    while !epoch < config.max_epochs && not (stop ()) do
      incr epoch;
      Obs.Counter.incr c_epochs;
      for _ = 1 to config.epoch_length do
        if not (stop ()) then
          Ga_engine.Population.step pop ~params:!params
            ~crossover:config.crossover ~mutation:config.mutation ~eval rng
      done;
      (* receive from the left neighbour, never blocking: an empty
         inbox just means the neighbour is mid-epoch *)
      (match Ring.try_pop inboxes.(i) with
      | Some m ->
          let own, _ = Ga_engine.Population.best pop in
          if m.fitness < own then begin
            params := Saiga_ghw.orient !params m.params;
            Ga_engine.Population.inject pop m.individual ~eval;
            Obs.Counter.incr c_migrations
          end
      | None -> ());
      (* offer our snapshot to the right neighbour; a full inbox drops
         the migrant rather than stalling this island *)
      let f, ind = Ga_engine.Population.best pop in
      if
        not
          (Ring.try_push
             inboxes.((i + 1) mod k)
             { fitness = f; individual = Array.copy ind; params = !params })
      then Obs.Counter.incr c_dropped;
      (* self-adaptation: log-normal mutation every epoch *)
      params := Saiga_ghw.mutate_params rng config.tau !params;
      publish ()
    done;
    let best, best_individual = Ga_engine.Population.best pop in
    ( best,
      best_individual,
      !epoch,
      Ga_engine.Population.evaluations pop,
      !params )
  in
  let results =
    if k = 1 then [| island 0 () |]
    else
      (* one domain per island: islands synchronise only through the
         rings and the incumbent *)
      Array.map Domain.join (Array.init k (fun i -> Domain.spawn (island i)))
  in
  let best, best_individual =
    Array.fold_left
      (fun (bf, bi) (f, ind, _, _, _) -> if f < bf then (f, ind) else (bf, bi))
      (max_int, [||])
      results
  in
  {
    Saiga_ghw.best;
    best_individual;
    epochs = Array.fold_left (fun acc (_, _, e, _, _) -> max acc e) 0 results;
    evaluations =
      Array.fold_left (fun acc (_, _, _, ev, _) -> acc + ev) 0 results;
    elapsed = Hd_engine.Budget.elapsed budget;
    final_params = Array.map (fun (_, _, _, _, p) -> p) results;
  }
