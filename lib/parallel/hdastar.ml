module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Budget = Hd_engine.Budget
module Clock = Hd_engine.Clock
module Step = Hd_engine.Step
module Solver = Hd_engine.Solver
module Search_util = Hd_search.Search_util
module Ghw_common = Hd_search.Ghw_common
module Pq = Hd_search.Pq
module Obs = Hd_obs.Obs

let c_messages = Obs.Counter.make "hdastar.messages"
let c_batches = Obs.Counter.make "hdastar.batches"
let c_ring_full = Obs.Counter.make "hdastar.ring_full"

(* States carry their whole elimination path (oldest first) instead of
   a parent pointer: paths cross domain boundaries, parent chains into
   another worker's heap must not. *)
type node = {
  path : int list;
  g : int;
  h : int;
  f : int;
  depth : int;
  parent_red : bool;
      (* the [reduced] flag from the children_of call that produced
         this node; children are computed lazily at expansion, and the
         pruning rule needs the parent's flag then *)
  last : int;  (* vertex eliminated into this state; -1 at the root *)
}

let compare_nodes a b =
  let c = compare a.f b.f in
  if c <> 0 then c else compare b.depth a.depth

let sync eg current_path target =
  let rec split xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> split xs' ys'
    | _ -> (xs, ys)
  in
  let to_undo, to_do = split !current_path target in
  List.iter (fun _ -> Elim_graph.restore_last eg) to_undo;
  List.iter (Elim_graph.eliminate eg) to_do;
  current_path := target

let ordering_of_path ~n path eg =
  let sigma = Array.make n (-1) in
  let i = ref (n - 1) in
  List.iter
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    path;
  Elim_graph.iter_alive
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    eg;
  sigma

(* Per-worker flavor hooks, closed over that worker's private scratch
   (elim graph, rng, cover oracle). *)
type ops = {
  completion : unit -> int;
      (* width of finishing greedily from the current eg; goal test is
         [completion <= g], and [max g completion] is an anytime ub *)
  cost : int -> int;  (* bag width of eliminating v at the current eg *)
  heuristic : unit -> int;  (* admissible h after an elimination *)
  children : lb:int -> parent_reduced:bool -> last:int -> int list * bool;
  gate_g : bool;  (* check g' < ub before eliminating (ghw) *)
  offer_mid : bool;  (* PR1-style offer after each child elimination (tw) *)
}

let batch_size = 64
let ring_capacity = 256
let max_workers = 62 (* started-mask bits *)

type shared = {
  w : int;
  inc : Incumbent.t;
  budget : Budget.t;
  rings : node array Ring.t array array;  (* rings.(src).(dst) *)
  in_flight : int Atomic.t;
  idlers : int Atomic.t;
  started : int Atomic.t;  (* bitmask of live workers *)
  activity : int Atomic.t;
  halt : bool Atomic.t;
  stats : (int * int) array;  (* per-worker (visited, generated) *)
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* the k-th set bit of [mask] *)
let nth_member mask k =
  let rec go m i k =
    if m land 1 = 1 then if k = 0 then i else go (m lsr 1) (i + 1) (k - 1)
    else go (m lsr 1) (i + 1) k
  in
  go mask 0 k

(* All-idle termination: declare the frontier exhausted only when every
   live worker is registered idle, no state is in flight, and nothing
   happened during the check.  Every leave-idle and every expansion
   bumps [activity] first, so any worker acquiring work inside the
   check window invalidates it (see docs/PARALLELISM.md). *)
let exhausted sh =
  let a1 = Atomic.get sh.activity in
  let live = popcount (Atomic.get sh.started) in
  Atomic.get sh.idlers = live
  && Atomic.get sh.in_flight = 0
  && Atomic.get sh.idlers = live
  && Atomic.get sh.activity = a1

let run_worker sh ~me ~make_ops ~n ~root ~root_owner =
  Step.unsliced @@ fun () ->
  let eg, ops, _rng = make_ops me in
  let tk = Budget.ticker sh.budget in
  let current_path = ref [] in
  let pq = Pq.create ~compare:compare_nodes ~dummy:root in
  let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 1024 in
  let out = Array.make sh.w [] in
  let out_n = Array.make sh.w 0 in
  let ebits = Bitset.create n in
  let idle = ref false in
  let empty_rounds = ref 0 in
  let leave_idle () =
    if !idle then begin
      Atomic.incr sh.activity;
      Atomic.decr sh.idlers;
      idle := false
    end;
    empty_rounds := 0
  in
  let insert_local node =
    let key = Bitset.of_list n node.path in
    match Hashtbl.find_opt seen key with
    | Some g_seen when g_seen <= node.g ->
        Obs.Counter.incr Search_util.c_duplicates
    | _ ->
        Hashtbl.replace seen key node.g;
        Pq.push pq node
  in
  let flush dst =
    if out_n.(dst) > 0 then begin
      let batch = Array.of_list (List.rev out.(dst)) in
      out.(dst) <- [];
      out_n.(dst) <- 0;
      if Ring.try_push sh.rings.(me).(dst) batch then begin
        Obs.Counter.incr c_batches;
        Obs.Counter.add c_messages (Array.length batch)
      end
      else begin
        (* receiver's inbox is full: keep the states; dedup precision
           degrades, soundness does not *)
        Obs.Counter.incr c_ring_full;
        Array.iter
          (fun nd ->
            insert_local nd;
            Atomic.decr sh.in_flight)
          batch
      end
    end
  in
  let flush_all () =
    for dst = 0 to sh.w - 1 do
      if dst <> me then flush dst
    done
  in
  let route node =
    Bitset.clear ebits;
    List.iter (Bitset.add ebits) node.path;
    let hash = Bitset.fnv_hash ebits in
    let mask = Atomic.get sh.started in
    let dst = nth_member mask (hash mod popcount mask) in
    if dst = me then insert_local node
    else begin
      Atomic.incr sh.in_flight;
      out.(dst) <- node :: out.(dst);
      out_n.(dst) <- out_n.(dst) + 1;
      if out_n.(dst) >= batch_size then flush dst
    end
  in
  let drain () =
    for src = 0 to sh.w - 1 do
      if src <> me then
        let rec go () =
          match Ring.try_pop sh.rings.(src).(me) with
          | None -> ()
          | Some batch ->
              leave_idle ();
              Array.iter
                (fun nd ->
                  insert_local nd;
                  Atomic.decr sh.in_flight)
                batch;
              go ()
        in
        go ()
    done
  in
  let rec pop_live () =
    if Pq.is_empty pq then None
    else
      let s = Pq.pop pq in
      if s.f >= Incumbent.ub sh.inc then begin
        Obs.Counter.incr Search_util.c_stale;
        pop_live ()
      end
      else Some s
  in
  let expand s =
    Atomic.incr sh.activity;
    Budget.tick_visited tk;
    Obs.Counter.incr Search_util.c_expanded;
    sync eg current_path s.path;
    let comp = ops.completion () in
    if comp <= s.g then begin
      (* goal: a completed ordering of width s.g.  Unlike the
         sequential A* this is a local minimum, not the global one, so
         publish the bound and let pruning drain the other frontiers *)
      let sigma = ordering_of_path ~n s.path eg in
      ignore (Incumbent.offer_ub sh.inc ~witness:sigma s.g)
    end
    else begin
      let total = max s.g comp in
      if total < Incumbent.ub sh.inc then begin
        let sigma = ordering_of_path ~n s.path eg in
        if Incumbent.offer_ub sh.inc ~witness:sigma total then
          Obs.Counter.incr Search_util.c_ub_improved
      end;
      let children, red =
        ops.children ~lb:s.f ~parent_reduced:s.parent_red ~last:s.last
      in
      List.iter
        (fun v ->
          if not (Budget.out_of_budget tk) then begin
            Budget.tick_generated tk;
            Obs.Counter.incr Search_util.c_generated;
            let c = ops.cost v in
            let g' = max s.g c in
            if (not ops.gate_g) || g' < Incumbent.ub sh.inc then begin
              Elim_graph.eliminate eg v;
              if ops.offer_mid then begin
                let n' = Elim_graph.n_alive eg in
                let completion = max g' (n' - 1) in
                if completion < Incumbent.ub sh.inc then begin
                  let sigma = ordering_of_path ~n (s.path @ [ v ]) eg in
                  if Incumbent.offer_ub sh.inc ~witness:sigma completion then begin
                    Obs.Counter.incr Search_util.c_pr1;
                    Obs.Counter.incr Search_util.c_ub_improved
                  end
                end
              end;
              let h' =
                if Elim_graph.n_alive eg <= 1 then 0 else ops.heuristic ()
              in
              let f' = max (max g' h') s.f in
              if f' < Incumbent.ub sh.inc then
                route
                  {
                    path = s.path @ [ v ];
                    g = g';
                    h = h';
                    f = f';
                    depth = s.depth + 1;
                    parent_red = red;
                    last = v;
                  };
              Elim_graph.restore_last eg
            end
          end)
        children
    end
  in
  (* go live; the root's owner seeds its own queue *)
  let rec register () =
    let cur = Atomic.get sh.started in
    if not (Atomic.compare_and_set sh.started cur (cur lor (1 lsl me))) then
      register ()
  in
  register ();
  if me = root_owner then insert_local root;
  let rec loop () =
    if not (Atomic.get sh.halt) then begin
      drain ();
      if Incumbent.closed sh.inc || Incumbent.cancelled sh.inc then
        Atomic.set sh.halt true
      else if Budget.out_of_budget tk then Atomic.set sh.halt true
      else begin
        (match pop_live () with
        | Some s ->
            leave_idle ();
            expand s
        | None ->
            flush_all ();
            if not !idle then begin
              idle := true;
              Atomic.incr sh.idlers
            end;
            if exhausted sh then begin
              (* the whole distributed frontier is drained: every state
                 below the incumbent ub was expanded or dominated, so
                 ub is the exact width; closing the incumbent stops
                 every worker *)
              ignore (Incumbent.raise_lb sh.inc (Incumbent.ub sh.inc));
              Atomic.set sh.halt true
            end
            else begin
              incr empty_rounds;
              if !empty_rounds > 10_000 then Unix.sleepf 0.0002
              else Domain.cpu_relax ()
            end);
        loop ()
      end
    end
  in
  loop ();
  leave_idle ();
  sh.stats.(me) <- (Budget.visited tk, Budget.generated tk)

(* ------------------------------------------------------------------ *)
(* The shared driver                                                   *)
(* ------------------------------------------------------------------ *)

let solve_generic ~sched ~within ~n ~initial ~make_ops =
  let b = match within with Some b -> b | None -> Budget.create () in
  Budget.start b;
  let inc =
    match Budget.incumbent b with Some i -> i | None -> Incumbent.create ()
  in
  let result, secs =
    Clock.time @@ fun () ->
    let ub_sigma, ub0, lb0 = initial () in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma ub0);
    ignore (Incumbent.raise_lb inc lb0);
    let finish ~visited ~generated =
      let lb, ub = Incumbent.bounds inc in
      let ordering =
        match Incumbent.witness inc with
        | Some w -> Some w
        | None -> Some ub_sigma
      in
      let outcome =
        if Incumbent.closed inc then Solver.Exact ub
        else Solver.Bounds { lb = min lb ub; ub }
      in
      { Solver.outcome; visited; generated; elapsed = 0.0; ordering }
    in
    if Incumbent.closed inc then finish ~visited:0 ~generated:0
    else begin
      let w = min max_workers (Scheduler.size sched + 1) in
      let sh =
        {
          w;
          inc;
          budget = b;
          rings =
            Array.init w (fun _ ->
                Array.init w (fun _ -> Ring.create ring_capacity));
          in_flight = Atomic.make 0;
          idlers = Atomic.make 0;
          started = Atomic.make 0;
          activity = Atomic.make 0;
          halt = Atomic.make false;
          stats = Array.make w (0, 0);
        }
      in
      let root =
        { path = []; g = 0; h = lb0; f = lb0; depth = 0; parent_red = true; last = -1 }
      in
      (* the empty eliminated set hashes to a fixed owner; worker 0 is
         the caller and always starts, so make it the owner — the
         search is live even while pool workers are busy elsewhere *)
      let root_owner = 0 in
      Scheduler.run_all sched
        (List.init w (fun me () ->
             run_worker sh ~me ~make_ops ~n ~root ~root_owner));
      let visited = Array.fold_left (fun a (v, _) -> a + v) 0 sh.stats in
      let generated = Array.fold_left (fun a (_, g) -> a + g) 0 sh.stats in
      finish ~visited ~generated
    end
  in
  { result with Solver.elapsed = secs }

let solve_tw ?sched ?within ?seed g =
  Obs.with_span "hdastar.solve_tw" @@ fun () ->
  let sched = match sched with Some s -> s | None -> Scheduler.shared () in
  let n = Graph.n g in
  if n <= 1 then
    {
      Solver.outcome = Solver.Exact (n - 1);
      visited = 0;
      generated = 0;
      elapsed = 0.0;
      ordering = Some (Array.init n (fun i -> i));
    }
  else
    let base_seed = Option.value seed ~default:0x7ea in
    let initial () =
      let rng = Random.State.make [| base_seed |] in
      let eval = Hd_core.Eval.of_graph g in
      let ub_sigma, ub0 =
        Hd_core.Ordering_heuristics.best_of rng g ~trials:3
          ~eval:(Hd_core.Eval.tw_width eval)
      in
      let lb = Lower_bounds.treewidth ~rng g in
      (ub_sigma, ub0, lb)
    in
    let make_ops me =
      let rng = Random.State.make [| base_seed + (me * 0x9e37) |] in
      let eg = Elim_graph.of_graph g in
      let ops =
        {
          completion = (fun () -> Elim_graph.n_alive eg - 1);
          cost = (fun v -> Elim_graph.degree eg v);
          heuristic =
            (fun () -> Lower_bounds.treewidth_of_elim ~rng ~trials:1 eg);
          children =
            (fun ~lb ~parent_reduced ~last ->
              match Elim_graph.find_reducible eg ~lb with
              | Some w ->
                  Obs.Counter.incr Search_util.c_reductions;
                  ([ w ], true)
              | None ->
                  let keep u =
                    parent_reduced || last < 0
                    || not (Search_util.prune_child eg ~last ~candidate:u)
                  in
                  ( List.rev
                      (Elim_graph.fold_alive
                         (fun u acc -> if keep u then u :: acc else acc)
                         eg []),
                    false ));
          gate_g = false;
          offer_mid = true;
        }
      in
      (eg, ops, rng)
    in
    solve_generic ~sched ~within ~n ~initial ~make_ops

let solve_ghw ?sched ?within ?seed h =
  Obs.with_span "hdastar.solve_ghw" @@ fun () ->
  let sched = match sched with Some s -> s | None -> Scheduler.shared () in
  Ghw_common.check_input h;
  let h = Hypergraph.remove_subsumed h in
  let n = Hypergraph.n_vertices h in
  if n = 0 then
    {
      Solver.outcome = Solver.Exact 0;
      visited = 0;
      generated = 0;
      elapsed = 0.0;
      ordering = Some [||];
    }
  else
    let base_seed = Option.value seed ~default:0xa5a in
    let initial () =
      let rng = Random.State.make [| base_seed |] in
      Ghw_common.initial_bounds h rng
    in
    let k = Hypergraph.max_edge_size h in
    let make_ops me =
      let rng = Random.State.make [| base_seed + (me * 0x9e37) |] in
      let eg = Elim_graph.of_graph (Hypergraph.primal h) in
      let covers = Ghw_common.Cover.make h `Exact rng in
      let ops =
        {
          completion = (fun () -> Ghw_common.Cover.completion_width covers eg);
          cost = (fun v -> Ghw_common.Cover.bag_width covers eg v);
          heuristic =
            (fun () ->
              Lower_bounds.ghw_of_elim ~rng ~trials:1 ~max_edge_size:k eg);
          children =
            (fun ~lb:_ ~parent_reduced ~last ->
              match Elim_graph.find_reducible eg ~lb:(-1) with
              | Some w ->
                  Obs.Counter.incr Search_util.c_reductions;
                  ([ w ], true)
              | None ->
                  let keep u =
                    parent_reduced || last < 0
                    || not
                         (Search_util.prune_child ~adjacent_case:false eg
                            ~last ~candidate:u)
                  in
                  ( List.rev
                      (Elim_graph.fold_alive
                         (fun u acc -> if keep u then u :: acc else acc)
                         eg []),
                    false ));
          gate_g = true;
          offer_mid = false;
        }
      in
      (eg, ops, rng)
    in
    solve_generic ~sched ~within ~n ~initial ~make_ops
