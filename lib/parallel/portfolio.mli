(** Portfolio search: race complementary solvers on worker domains
    against one shared {!Hd_core.Incumbent.t}.

    For treewidth the roster is A*-tw, BB-tw and GA-tw (then ablation
    variants and reseeded GAs up to 8 members); for ghw it is A*-ghw,
    BB-ghw and SAIGA plus variants.  Every member prunes against the
    shared upper bound and publishes every improvement, so the anytime
    heuristics feed the exact solvers' pruning and the exact solvers'
    lower bounds stop the heuristics.  The race ends when the incumbent
    closes ([lb = ub], winner = first member to return [Exact]) or
    every member exhausts its budget.

    The returned width is deterministic for instances every exact
    member can finish: exact solvers prove the same optimum whatever
    the interleaving; only [winner] and timings may vary between runs
    and between [-j] values. *)

type member_report = {
  member : string;  (** roster name, e.g. ["astar-tw"] *)
  outcome : Hd_search.Search_types.outcome;
  elapsed : float;
}

type t = {
  outcome : Hd_search.Search_types.outcome;
      (** the incumbent at the end of the race *)
  ordering : int array option;  (** witness achieving the upper bound *)
  winner : string option;
      (** first member to return [Exact]; [None] when nobody closed *)
  members : member_report list;  (** per-member outcomes, roster order *)
  domains : int;  (** worker domains used (= members raced) *)
  elapsed : float;
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val solve_tw :
  ?jobs:int ->
  ?budget:Hd_search.Search_types.budget ->
  ?seed:int ->
  Hd_graph.Graph.t ->
  t
(** [solve_tw ~jobs g] races the first [jobs] treewidth members (at
    most 8).  Members are resolved in the engine's solver registry and
    run against one shared {!Hd_engine.Budget.t} built from [budget]:
    one race-wide deadline and shared cancellation, while [max_states]
    still caps each member's own ticker.  [seed] derives every member's
    seed, so equal seeds give an equal-width result. *)

val solve_ghw :
  ?jobs:int ->
  ?budget:Hd_search.Search_types.budget ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  t

val solve_named :
  ?jobs:int ->
  ?budget:Hd_search.Search_types.budget ->
  ?seed:int ->
  names:string list ->
  Hd_engine.Solver.problem ->
  t
(** [solve_named ~names problem] races an ad-hoc roster: each name is
    resolved in the engine's solver registry (after registering the
    hd_search and hd_ga families).  [jobs] defaults to the number of
    names, so every requested solver actually runs.
    @raise Invalid_argument on an unknown name, listing the registered
    ones. *)

val pp : Format.formatter -> t -> unit
