module Obs = Hd_obs.Obs
module Clock = Hd_engine.Clock

let c_tasks = Obs.Counter.make "parallel.tasks"
let c_steals = Obs.Counter.make "parallel.steals"
let c_park_ns = Obs.Counter.make "parallel.park_ns"

type task = unit -> unit

type t = {
  deques : task Deque.t array;  (* one per worker domain *)
  injector : task Queue.t;
  inj_m : Mutex.t;
  park_m : Mutex.t;
  park_c : Condition.t;
  (* parking protocol: a parker reads [wake_seq], rechecks for work,
     then waits only while the sequence is unchanged; every push and
     every join completion bumps it, so the recheck-then-wait window
     cannot lose a wakeup *)
  wake_seq : int Atomic.t;
  parked : int Atomic.t;
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t array;
  mutable joined : bool;
}

(* which scheduler (if any) owns the calling domain, and as which
   worker index; [==] identity keeps nested schedulers apart *)
let worker_key : (Obj.t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self t =
  match Domain.DLS.get worker_key with
  | Some (s, i) when s == Obj.repr t -> Some i
  | _ -> None

let on_worker t = self t <> None
let size t = Array.length t.deques

let tap_event fields =
  if Obs.Tap.active () then
    Obs.Tap.emit "scheduler" (Obs.Json.Obj fields)

let wake t =
  Atomic.incr t.wake_seq;
  if Atomic.get t.parked > 0 then begin
    Mutex.lock t.park_m;
    Condition.broadcast t.park_c;
    Mutex.unlock t.park_m
  end

(* [has_more] is the parker's cheap recheck; [who] is a worker index,
   or -1 for an external joiner helping a [run_all] *)
let park t ~who has_more =
  Atomic.incr t.parked;
  let seq = Atomic.get t.wake_seq in
  if not (has_more ()) && not (Atomic.get t.stopping) then begin
    tap_event [ ("event", Obs.Json.String "park"); ("worker", Obs.Json.Int who) ];
    let t0 = Clock.now () in
    Mutex.lock t.park_m;
    if Atomic.get t.wake_seq = seq && not (Atomic.get t.stopping) then
      Condition.wait t.park_c t.park_m;
    Mutex.unlock t.park_m;
    let ns = int_of_float ((Clock.now () -. t0) *. 1e9) in
    Obs.Counter.add c_park_ns (max 0 ns);
    tap_event
      [
        ("event", Obs.Json.String "resume");
        ("worker", Obs.Json.Int who);
        ("park_ns", Obs.Json.Int (max 0 ns));
      ]
  end;
  Atomic.decr t.parked

let pop_injector t =
  Mutex.lock t.inj_m;
  let r = if Queue.is_empty t.injector then None else Some (Queue.pop t.injector) in
  Mutex.unlock t.inj_m;
  r

let injector_nonempty t = not (Queue.is_empty t.injector)

let try_steal t ~except =
  let w = Array.length t.deques in
  let start = if except >= 0 then except + 1 else 0 in
  let rec go k =
    if k >= w then None
    else
      let v = (start + k) mod w in
      if v = except then go (k + 1)
      else
        match Deque.steal t.deques.(v) with
        | Some _ as s ->
            Obs.Counter.incr c_steals;
            s
        | None -> go (k + 1)
  in
  go 0

let find_task t me =
  let own =
    match me with Some i -> Deque.pop t.deques.(i) | None -> None
  in
  match own with
  | Some _ as s -> s
  | None -> (
      match pop_injector t with
      | Some _ as s -> s
      | None -> try_steal t ~except:(match me with Some i -> i | None -> -1))

let has_work t =
  injector_nonempty t
  || Array.exists (fun d -> Deque.length d > 0) t.deques

let exec task =
  Obs.Counter.incr c_tasks;
  try task ()
  with e ->
    (* raw [spawn]/[inject] closures own their errors; [run_all]
       children catch before they reach here *)
    tap_event
      [
        ("event", Obs.Json.String "drop");
        ("error", Obs.Json.String (Printexc.to_string e));
      ]

let rec worker_main t me =
  match find_task t (Some me) with
  | Some task ->
      exec task;
      worker_main t me
  | None ->
      if not (Atomic.get t.stopping) then begin
        park t ~who:me (fun () -> has_work t);
        worker_main t me
      end

let create ?workers () =
  let workers =
    match workers with
    | Some w -> max 0 w
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      deques = Array.init workers (fun _ -> Deque.create 4096);
      injector = Queue.create ();
      inj_m = Mutex.create ();
      park_m = Mutex.create ();
      park_c = Condition.create ();
      wake_seq = Atomic.make 0;
      parked = Atomic.make 0;
      stopping = Atomic.make false;
      domains = [||];
      joined = false;
    }
  in
  t.domains <-
    Array.init workers (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_key (Some (Obj.repr t, i));
            worker_main t i));
  t

let push_injector t task =
  Mutex.lock t.inj_m;
  Queue.push task t.injector;
  Mutex.unlock t.inj_m

(* sequential mode (no worker domains): run submissions inline so
   nothing is ever stranded in a queue no one drains *)
let sequential t = Array.length t.deques = 0

let inject t task =
  if t.joined then invalid_arg "Scheduler.inject: scheduler is shut down";
  if sequential t then exec task
  else begin
    push_injector t task;
    wake t
  end

let spawn t task =
  if t.joined then invalid_arg "Scheduler.spawn: scheduler is shut down";
  if sequential t then exec task
  else begin
    (match self t with
    | Some i -> (
        match Deque.push t.deques.(i) task with
        | `Ok -> ()
        | `Full -> push_injector t task)
    | None -> push_injector t task);
    wake t
  end

let rec resume t turn =
  if t.joined then invalid_arg "Scheduler.resume: scheduler is shut down";
  if sequential t then begin
    Obs.Counter.incr c_tasks;
    match turn () with `Again -> resume t turn | `Done -> ()
  end
  else
    inject t (fun () ->
        match turn () with `Again -> resume t turn | `Done -> ())

let run_all t fns =
  match fns with
  | [] -> ()
  | [ f ] -> f ()
  | fns when sequential t -> List.iter (fun f -> f ()) fns
  | fns ->
      let n = List.length fns in
      let errs = Array.make n None in
      let remaining = Atomic.make n in
      let me = self t in
      let child i f () =
        (try f () with e -> errs.(i) <- Some e);
        if Atomic.fetch_and_add remaining (-1) = 1 then wake t
      in
      List.iteri
        (fun i f ->
          let task = child i f in
          (match me with
          | Some w -> (
              match Deque.push t.deques.(w) task with
              | `Ok -> ()
              | `Full -> push_injector t task)
          | None -> push_injector t task);
          wake t)
        fns;
      let finished () = Atomic.get remaining = 0 in
      (* the joiner helps: children first (own deque), then anything
         stealable, parking only when the whole pool is quiet *)
      let rec help () =
        if not (finished ()) then begin
          (match find_task t me with
          | Some task -> exec task
          | None ->
              park t ~who:(match me with Some w -> w | None -> -1)
                (fun () -> finished () || has_work t));
          help ()
        end
      in
      help ();
      Array.iter (function Some e -> raise e | None -> ()) errs

let map_array t f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  run_all t (List.init n (fun i () -> out.(i) <- Some (f arr.(i))));
  Array.map (function Some v -> v | None -> assert false) out

let shutdown t =
  if not t.joined then begin
    Atomic.set t.stopping true;
    wake t;
    (* workers drain the injector and every deque before exiting *)
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    t.joined <- true
  end

let with_scheduler ?workers f =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- the process-wide shared instance ------------------------------ *)

let default_workers_cell = ref (max 0 (Domain.recommended_domain_count () - 1))
let shared_cell : t option ref = ref None
let shared_m = Mutex.create ()

let default_workers () = !default_workers_cell

let set_default_workers w =
  Mutex.lock shared_m;
  default_workers_cell := max 0 w;
  Mutex.unlock shared_m

let shared () =
  Mutex.lock shared_m;
  let s =
    match !shared_cell with
    | Some s -> s
    | None ->
        let s = create ~workers:!default_workers_cell () in
        shared_cell := Some s;
        s
  in
  Mutex.unlock shared_m;
  s

let install_engine_runner t =
  Hd_engine.Exec.install { Hd_engine.Exec.run_all = (fun fns -> run_all t fns) }
