(** Domain-parallel SAIGA-ghw: one domain per island, lock-free
    migration.

    The sequential {!Hd_ga.Saiga_ghw} interleaves its islands
    round-robin and migrates at epoch barriers; here every island owns
    a domain and runs its epochs at its own pace.  Migration follows a
    {e directed} ring — island [i] offers its best (individual,
    fitness, parameter vector) to island [i + 1 mod k] through a
    single-producer single-consumer {!Ring} — and is entirely
    non-blocking: a full inbox drops the migrant, an empty inbox skips
    the step, so no island ever waits on a neighbour and the system
    cannot deadlock.  Orientation (Section 7.2.5) uses the migrant's
    parameter vector in place of the synchronous neighbour comparison;
    log-normal self-adaptation (Section 7.2.4) is unchanged.

    The run is {e not} bitwise-deterministic across executions — the
    migrant arrival schedule depends on domain timing — but every
    published width is a sound ghw upper bound, and an [incumbent]
    collects the islands' improvements for portfolio use exactly as in
    {!Hd_ga.Saiga_ghw.run}.  With [n_islands = 1] no domain is spawned
    and the run degenerates to a single self-adapting GA. *)

val run :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  Hd_ga.Saiga_ghw.config ->
  Hd_hypergraph.Hypergraph.t ->
  Hd_ga.Saiga_ghw.report
(** [run config h] spawns [config.n_islands] domains and returns the
    merged report: best over islands, summed evaluations, maximal
    epoch count, every island's final parameter vector.  [within]
    supplies an engine budget (overriding [config.time_limit]) shared
    by all islands — each runs its own amortized ticker against the
    common deadline and cancellation flag. *)
