(* Chase–Lev deque over per-slot atomics; see deque.mli for the
   memory-model argument.  Indices grow without bound and are masked
   into the buffer; [bottom] is owner-written, [top] is CAS'd by
   thieves (and by the owner for the last-element race). *)

type 'a t = {
  slots : 'a option Atomic.t array;
  mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create capacity =
  if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.init !cap (fun _ -> Atomic.make None);
    mask = !cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.mask then `Full
  else begin
    Atomic.set t.slots.(b land t.mask) (Some x);
    Atomic.set t.bottom (b + 1);
    `Ok
  end

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: restore bottom *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then
    (* more than one element: the owner owns the bottom slot outright *)
    Atomic.exchange t.slots.(b land t.mask) None
  else begin
    (* exactly one element left: race the thieves for it via [top] *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Atomic.exchange t.slots.(b land t.mask) None else None
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read before the CAS; a successful CAS proves the read was the
       live element (the owner cannot have wrapped onto this slot: a
       push overlapping logical index [tp] would require [top > tp]
       first, which would make our CAS fail).  The slot is deliberately
       not cleared — a late clear could destroy a value the owner
       pushed a lap later; the stale [Some] is overwritten then. *)
    let x = Atomic.get t.slots.(tp land t.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end
