type config = {
  max_steps : int;
  initial_temperature : float;
  cooling : float;
  move : Mutation.t;
  restarts : int;
  seed : int;
  time_limit : float option;
  target : int option;
}

let default_config ?(max_steps = 20_000) ?(seed = 0x10ca1) () =
  {
    max_steps;
    initial_temperature = 2.0;
    cooling = 0.9995;
    move = Mutation.ISM;
    restarts = 5;
    seed;
    time_limit = None;
    target = None;
  }

type report = {
  best : int;
  best_individual : int array;
  steps : int;
  evaluations : int;
  elapsed : float;
}

type driver = { ticker : Hd_engine.Budget.ticker; config : config }

(* The driver's clock is an engine budget ticker, created — and hence
   started — only when a search function actually runs.  (An earlier
   version stamped the wall clock at driver creation, so a driver
   built ahead of time burnt budget while idle.) *)
let make_driver ?within config =
  let budget =
    match within with
    | Some b -> b
    | None -> Hd_engine.Budget.create ?time_limit:config.time_limit ()
  in
  { ticker = Hd_engine.Budget.ticker budget; config }

let out_of_time d = Hd_engine.Budget.out_of_budget d.ticker
let elapsed d = Hd_engine.Budget.ticker_elapsed d.ticker
let evaluations d = Hd_engine.Budget.generated d.ticker

let reached_target d best =
  match d.config.target with Some t -> best <= t | None -> false

let evaluate d eval sigma =
  Hd_engine.Budget.tick_generated d.ticker;
  Hd_engine.Budget.check d.ticker;
  eval sigma

let simulated_annealing ?within config ~n_genes ~eval =
  let d = make_driver ?within config in
  let rng = Random.State.make [| config.seed |] in
  let current = Hd_core.Ordering.random rng n_genes in
  let current_fitness = ref (evaluate d eval current) in
  let best = ref !current_fitness in
  let best_individual = ref (Array.copy current) in
  let temperature = ref config.initial_temperature in
  let step = ref 0 in
  while
    !step < config.max_steps
    && (not (out_of_time d))
    && not (reached_target d !best)
  do
    incr step;
    let candidate = Array.copy current in
    Mutation.apply config.move rng candidate;
    let fitness = evaluate d eval candidate in
    let delta = float_of_int (fitness - !current_fitness) in
    let accept =
      delta <= 0.0
      || Random.State.float rng 1.0 < exp (-.delta /. max 1e-9 !temperature)
    in
    if accept then begin
      Array.blit candidate 0 current 0 n_genes;
      current_fitness := fitness;
      if fitness < !best then begin
        best := fitness;
        best_individual := Array.copy candidate
      end
    end;
    temperature := !temperature *. config.cooling
  done;
  {
    best = !best;
    best_individual = !best_individual;
    steps = !step;
    evaluations = evaluations d;
    elapsed = elapsed d;
  }

let iterated_local_search ?within config ~n_genes ~eval =
  let d = make_driver ?within config in
  let rng = Random.State.make [| config.seed |] in
  let best = ref max_int in
  let best_individual = ref (Hd_core.Ordering.random rng n_genes) in
  let steps = ref 0 in
  let descend sigma =
    (* first-improvement hill climbing with a step budget *)
    let fitness = ref (evaluate d eval sigma) in
    let stale = ref 0 in
    let patience = max 50 (n_genes * 4) in
    while
      !stale < patience
      && !steps < config.max_steps
      && (not (out_of_time d))
      && not (reached_target d !fitness)
    do
      incr steps;
      let candidate = Array.copy sigma in
      Mutation.apply config.move rng candidate;
      let f = evaluate d eval candidate in
      if f < !fitness then begin
        Array.blit candidate 0 sigma 0 n_genes;
        fitness := f;
        stale := 0
      end
      else incr stale
    done;
    !fitness
  in
  let restart = ref 0 in
  let sigma = Array.copy !best_individual in
  while
    !restart < config.restarts
    && !steps < config.max_steps
    && (not (out_of_time d))
    && not (reached_target d !best)
  do
    incr restart;
    let fitness = descend sigma in
    if fitness < !best then begin
      best := fitness;
      best_individual := Array.copy sigma
    end;
    (* perturb for the next descent *)
    for _ = 1 to 3 do
      Mutation.apply config.move rng sigma
    done
  done;
  {
    best = !best;
    best_individual = !best_individual;
    steps = !steps;
    evaluations = evaluations d;
    elapsed = elapsed d;
  }

let sa_tw ?within config g =
  let ws = Suffix_eval.of_graph g in
  simulated_annealing ?within config ~n_genes:(Hd_graph.Graph.n g)
    ~eval:(Suffix_eval.width ws)

let sa_ghw ?within config h =
  let ws = Suffix_eval.of_hypergraph ~seed:(config.seed lxor 0x9e) h in
  simulated_annealing ?within config
    ~n_genes:(Hd_hypergraph.Hypergraph.n_vertices h)
    ~eval:(Suffix_eval.width ws)
