module Obs = Hd_obs.Obs

let c_epochs = Obs.Counter.make "ga.epochs"
let c_migrations = Obs.Counter.make "ga.migrations"

type config = {
  n_islands : int;
  island_population : int;
  epoch_length : int;
  max_epochs : int;
  crossover : Crossover.t;
  mutation : Mutation.t;
  tau : float;
  time_limit : float option;
  target : int option;
  seed : int;
}

let default_config ?(n_islands = 4) ?(island_population = 100)
    ?(epoch_length = 25) ?(max_epochs = 40) ?(seed = 0x5a16a) () =
  {
    n_islands;
    island_population;
    epoch_length;
    max_epochs;
    crossover = Crossover.POS;
    mutation = Mutation.ISM;
    tau = 0.3;
    time_limit = None;
    target = None;
    seed;
  }

type report = {
  best : int;
  best_individual : int array;
  epochs : int;
  evaluations : int;
  elapsed : float;
  final_params : Ga_engine.params array;
}

let clamp lo hi x = max lo (min hi x)

let gaussian rng =
  (* Box-Muller *)
  let u1 = max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let mutate_params rng tau (p : Ga_engine.params) : Ga_engine.params =
  let scale x = x *. exp (tau *. gaussian rng) in
  {
    Ga_engine.mutation_rate = clamp 0.01 1.0 (scale p.Ga_engine.mutation_rate);
    crossover_rate = clamp 0.1 1.0 (scale p.Ga_engine.crossover_rate);
    tournament_size =
      clamp 2 8
        (int_of_float
           (Float.round (float_of_int p.Ga_engine.tournament_size
                        *. exp (tau *. gaussian rng))));
  }

let orient (own : Ga_engine.params) (better : Ga_engine.params) :
    Ga_engine.params =
  (* move halfway toward the better neighbour's vector *)
  {
    Ga_engine.mutation_rate =
      (own.Ga_engine.mutation_rate +. better.Ga_engine.mutation_rate) /. 2.0;
    crossover_rate =
      (own.Ga_engine.crossover_rate +. better.Ga_engine.crossover_rate) /. 2.0;
    tournament_size =
      (own.Ga_engine.tournament_size + better.Ga_engine.tournament_size + 1) / 2;
  }

(* random initial parameter vector (Section 7.2.3) *)
let random_params rng =
  {
    Ga_engine.mutation_rate = 0.05 +. Random.State.float rng 0.5;
    crossover_rate = 0.5 +. Random.State.float rng 0.5;
    tournament_size = 2 + Random.State.int rng 3;
  }

let run ?incumbent ?within config h =
  Obs.with_span "saiga_ghw.run" @@ fun () ->
  let budget =
    match within with
    | Some b -> b
    | None -> Hd_engine.Budget.create ?time_limit:config.time_limit ?incumbent ()
  in
  let tk = Hd_engine.Budget.ticker budget in
  let incumbent =
    match incumbent with
    | Some _ as i -> i
    | None -> Hd_engine.Budget.incumbent budget
  in
  let n_genes = Hd_hypergraph.Hypergraph.n_vertices h in
  let k = max 1 config.n_islands in
  let rngs =
    Array.init k (fun i -> Random.State.make [| config.seed; i |])
  in
  (* one suffix-reuse workspace per island: an island's checkpoint
     cache only ever sees that island's orderings.  Every evaluation
     ticks the shared budget, so deadlines are noticed mid-epoch. *)
  let evals =
    Array.init k (fun i ->
        let ws =
          Suffix_eval.of_hypergraph ~seed:(config.seed lxor 0x717 lxor i) h
        in
        let width = Suffix_eval.width ws in
        fun sigma ->
          Hd_engine.Budget.tick_generated tk;
          Hd_engine.Budget.check tk;
          width sigma)
  in
  let params = Array.init k (fun i -> random_params rngs.(i)) in
  let islands =
    Array.init k (fun i ->
        Ga_engine.Population.init rngs.(i) ~n_genes
          ~size:(max 2 config.island_population)
          ~eval:evals.(i))
  in
  let out_of_time () = Hd_engine.Budget.out_of_budget tk in
  let global_best () =
    Array.fold_left
      (fun (bf, bi) island ->
        let f, ind = Ga_engine.Population.best island in
        if f < bf then (f, ind) else (bf, bi))
      (max_int, [||])
      islands
  in
  let reached_target () =
    match config.target with
    | Some t -> fst (global_best ()) <= t
    | None -> false
  in
  let publish () =
    match incumbent with
    | None -> ()
    | Some inc ->
        let f, ind = global_best () in
        if Array.length ind > 0 then
          ignore (Hd_core.Incumbent.offer_ub inc ~witness:ind f)
  in
  let stop_requested () =
    match incumbent with
    | None -> false
    | Some inc ->
        Hd_core.Incumbent.cancelled inc || Hd_core.Incumbent.closed inc
  in
  publish ();
  let epoch = ref 0 in
  while
    !epoch < config.max_epochs
    && (not (out_of_time ()))
    && (not (reached_target ()))
    && not (stop_requested ())
  do
    incr epoch;
    Obs.Counter.incr c_epochs;
    (* evolve every island for one epoch *)
    Array.iteri
      (fun i island ->
        for _ = 1 to config.epoch_length do
          if not (out_of_time ()) then
            Ga_engine.Population.step island ~params:params.(i)
              ~crossover:config.crossover ~mutation:config.mutation
              ~eval:evals.(i) rngs.(i)
        done)
      islands;
    (* neighbour orientation and migration on the ring *)
    let fitness = Array.map (fun isl -> fst (Ga_engine.Population.best isl)) islands in
    let next_params = Array.copy params in
    for i = 0 to k - 1 do
      let left = (i + k - 1) mod k and right = (i + 1) mod k in
      let best_nbr = if fitness.(left) <= fitness.(right) then left else right in
      if fitness.(best_nbr) < fitness.(i) then begin
        next_params.(i) <- orient params.(i) params.(best_nbr);
        let _, migrant = Ga_engine.Population.best islands.(best_nbr) in
        Obs.Counter.incr c_migrations;
        Ga_engine.Population.inject islands.(i) migrant ~eval:evals.(i)
      end
    done;
    (* self-adaptation: log-normal mutation of every vector *)
    for i = 0 to k - 1 do
      params.(i) <- mutate_params rngs.(i) config.tau next_params.(i)
    done;
    publish ()
  done;
  let best, best_individual = global_best () in
  {
    best;
    best_individual;
    epochs = !epoch;
    evaluations =
      Array.fold_left
        (fun acc isl -> acc + Ga_engine.Population.evaluations isl)
        0 islands;
    elapsed = Hd_engine.Budget.ticker_elapsed tk;
    final_params = params;
  }
