(** SAIGA-ghw (Section 7.2): a self-adaptive island genetic algorithm
    for generalized hypertree width upper bounds.

    Several GA-ghw populations (islands) evolve in parallel on a ring.
    Each island owns a control-parameter vector (mutation rate,
    crossover rate, tournament group size).  After every epoch an
    island compares its best fitness with its ring neighbours'; if a
    neighbour is strictly better the island {e orients} its parameters
    toward the neighbour's (Section 7.2.5) and receives the neighbour's
    best individual as a migrant.  All parameter vectors then undergo
    log-normal mutation (Section 7.2.4), so good settings spread and
    keep exploring — no hand tuning required, the property Table 7.2
    demonstrates.

    The paper's pages describing the exact orientation arithmetic are
    not in the supplied text; the reconstruction here (documented in
    DESIGN.md) moves each parameter halfway toward the better
    neighbour's and perturbs multiplicatively with
    [exp (tau * gaussian)]. *)

type config = {
  n_islands : int;
  island_population : int;
  epoch_length : int;  (** generations between adaptation steps *)
  max_epochs : int;
  crossover : Crossover.t;
  mutation : Mutation.t;
  tau : float;  (** log-normal parameter mutation strength *)
  time_limit : float option;
  target : int option;
  seed : int;
}

val default_config :
  ?n_islands:int ->
  ?island_population:int ->
  ?epoch_length:int ->
  ?max_epochs:int ->
  ?seed:int ->
  unit ->
  config

type report = {
  best : int;
  best_individual : int array;
  epochs : int;
  evaluations : int;
  elapsed : float;
  final_params : Ga_engine.params array;
      (** the self-adapted parameter vector of every island *)
}

val run :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  config ->
  Hd_hypergraph.Hypergraph.t ->
  report
(** [incumbent] shares the ghw upper bound with racing solvers and
    stops the run once it closes or is cancelled; [within] supplies an
    engine budget that overrides [config.time_limit]; see
    {!Ga_engine.run}. *)

(** {2 Self-adaptation primitives}

    Exposed for the domain-parallel island driver
    ({e Hd_parallel.Saiga_par}), which re-implements only the epoch
    loop and migration topology, not the adaptation arithmetic. *)

val random_params : Random.State.t -> Ga_engine.params
(** Fresh random control-parameter vector (Section 7.2.3). *)

val orient : Ga_engine.params -> Ga_engine.params -> Ga_engine.params
(** [orient own better] moves [own] halfway toward [better]
    (Section 7.2.5). *)

val mutate_params :
  Random.State.t -> float -> Ga_engine.params -> Ga_engine.params
(** [mutate_params rng tau p] log-normally perturbs every component of
    [p] (Section 7.2.4). *)
