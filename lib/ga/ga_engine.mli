(** The permutation genetic algorithm of Figure 6.1.

    The engine is problem-agnostic: it minimises an integer fitness over
    permutations of [0 .. n_genes - 1].  GA-tw instantiates it with the
    tree-decomposition width evaluation (Figure 6.2), GA-ghw with the
    greedy-set-cover width (Figure 7.1); SAIGA-ghw drives several
    engines as islands.

    Each generation applies tournament selection, pairwise crossover on
    a [crossover_rate] fraction of the population, and mutation of each
    individual with probability [mutation_rate], then re-evaluates —
    exactly the structure and parameter semantics of Section 6.1. *)

type params = {
  mutation_rate : float;  (** p_m of the paper *)
  crossover_rate : float;  (** p_c of the paper *)
  tournament_size : int;  (** group size s of tournament selection *)
}

type config = {
  population_size : int;  (** individuals per generation (>= 2) *)
  params : params;
  crossover : Crossover.t;  (** recombination operator (Section 6.1.2) *)
  mutation : Mutation.t;  (** mutation operator (Section 6.1.3) *)
  max_iterations : int;  (** generation cap *)
  time_limit : float option;  (** wall-clock seconds *)
  target : int option;  (** stop as soon as this fitness is reached *)
  seed : int;  (** PRNG seed; equal seeds give equal runs *)
}

(** The paper's tuned configuration (Tables 6.3-6.5): POS crossover, ISM
    mutation, p_c = 1.0, p_m = 0.3, tournament group size 3. *)
val default_config :
  ?population_size:int -> ?max_iterations:int -> ?seed:int -> unit -> config

type report = {
  best : int;  (** best fitness ever evaluated *)
  best_individual : int array;  (** a permutation achieving [best] *)
  iterations : int;  (** generations actually run *)
  evaluations : int;  (** total fitness evaluations *)
  elapsed : float;  (** wall-clock seconds *)
  improvements : (int * int) list;
      (** (iteration, fitness) at each improvement, earliest first *)
}

(** [run config ~n_genes ~eval] evolves a population and returns the
    best fitness found.  [eval] must be a pure function of the
    permutation (up to its own internal randomness).

    [incumbent] plugs the engine into an hd_parallel portfolio: every
    best-so-far fitness is offered as a shared upper bound (with its
    permutation as witness — only meaningful when the fitness {e is} a
    width), and the run stops early once the incumbent closes or is
    cancelled.  The incumbent never influences evolution, so a run that
    is not cut short is identical with and without one.

    [within] runs the evolution under a caller-supplied engine budget
    (deadline, state cap per fitness evaluation, cooperative
    cancellation) instead of a private one built from
    [config.time_limit]; the budget's own incumbent is used when
    [incumbent] is absent.  In both cases the clock starts when [run]
    is entered, never earlier. *)
val run :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  config ->
  n_genes:int ->
  eval:(int array -> int) ->
  report

(** A population with explicit generations, for island models. *)
module Population : sig
  type t

  (** [init rng ~n_genes ~size ~eval] creates [size] random permutations
      of [0 .. n_genes - 1] and evaluates them all. *)
  val init :
    Random.State.t -> n_genes:int -> size:int -> eval:(int array -> int) -> t

  (** [step pop ~params ~crossover ~mutation ~eval rng] runs one
      generation. *)
  val step :
    t ->
    params:params ->
    crossover:Crossover.t ->
    mutation:Mutation.t ->
    eval:(int array -> int) ->
    Random.State.t ->
    unit

  (** [best pop] is the best (fitness, individual) ever seen. *)
  val best : t -> int * int array

  (** [evaluations pop] is the number of fitness evaluations spent on
      this population so far. *)
  val evaluations : t -> int

  (** [inject pop individual ~eval] replaces the currently worst member
      with a copy of [individual] (migration between islands). *)
  val inject : t -> int array -> eval:(int array -> int) -> unit
end
