module B = Hd_engine.Budget
module S = Hd_engine.Solver
module Incumbent = Hd_core.Incumbent

(* A metaheuristic proves no lower bound of its own; when the budget
   carries a shared incumbent an exact racer may have raised one, so
   the outcome is read back from there.  Otherwise lb = 0. *)
let outcome_of b ub =
  match B.incumbent b with
  | Some inc ->
      let lb, inc_ub = Incumbent.bounds inc in
      let ub = if inc_ub = max_int then ub else min ub inc_ub in
      if lb >= ub then S.Exact ub else S.Bounds { lb; ub }
  | None -> S.Bounds { lb = 0; ub }

let publish b ~witness w =
  match B.incumbent b with
  | Some inc -> ignore (Incumbent.offer_ub inc ~witness w)
  | None -> ()

(* Effort caps: under a deadline the budget is the real stop, so the
   iteration caps are set out of reach; with an unlimited budget they
   fall back to the moderate defaults so `--solver ga-tw` without a
   time limit still terminates. *)
let ga_config ?seed ~default_seed b =
  let deadline = B.time_limit b <> None in
  {
    (Ga_engine.default_config ~population_size:300
       ~max_iterations:(if deadline then 100_000 else 100)
       ~seed:(Option.value seed ~default:default_seed) ())
    with
    Ga_engine.time_limit = None;
  }

let sa_config ?seed ~default_seed b =
  let deadline = B.time_limit b <> None in
  {
    (Local_search.default_config
       ~max_steps:(if deadline then max_int else 20_000)
       ~seed:(Option.value seed ~default:default_seed) ())
    with
    Local_search.time_limit = None;
  }

let saiga_config ?seed ~default_seed b =
  let deadline = B.time_limit b <> None in
  {
    (Saiga_ghw.default_config ~n_islands:4 ~island_population:60
       ~max_epochs:(if deadline then 10_000 else 40)
       ~seed:(Option.value seed ~default:default_seed) ())
    with
    Saiga_ghw.time_limit = None;
  }

let ga_result b (r : Ga_engine.report) =
  {
    S.outcome = outcome_of b r.Ga_engine.best;
    visited = r.Ga_engine.iterations;
    generated = r.Ga_engine.evaluations;
    elapsed = r.Ga_engine.elapsed;
    ordering = Some r.Ga_engine.best_individual;
  }

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    S.register
      {
        S.name = "ga-tw";
        kind = S.Tw;
        doc = "genetic algorithm for treewidth upper bounds (Chapter 6)";
        run =
          (fun ?seed b p ->
            ga_result b
              (Ga_tw.run ~within:b
                 (ga_config ?seed ~default_seed:0x9a b)
                 (S.primal_of p)));
      };
    S.register
      {
        S.name = "ga-ghw";
        kind = S.Ghw;
        doc = "genetic algorithm for ghw upper bounds (Section 7.1)";
        run =
          (fun ?seed b p ->
            ga_result b
              (Ga_ghw.run ~within:b
                 (ga_config ?seed ~default_seed:0x9b b)
                 (S.hypergraph_of p)));
      };
    S.register
      {
        S.name = "sa-tw";
        kind = S.Tw;
        doc = "simulated annealing on the treewidth objective";
        run =
          (fun ?seed b p ->
            let r =
              Local_search.sa_tw ~within:b
                (sa_config ?seed ~default_seed:0x10ca1 b)
                (S.primal_of p)
            in
            publish b ~witness:r.Local_search.best_individual
              r.Local_search.best;
            {
              S.outcome = outcome_of b r.Local_search.best;
              visited = r.Local_search.steps;
              generated = r.Local_search.evaluations;
              elapsed = r.Local_search.elapsed;
              ordering = Some r.Local_search.best_individual;
            });
      };
    S.register
      {
        S.name = "sa-ghw";
        kind = S.Ghw;
        doc = "simulated annealing on the greedy-cover ghw objective";
        run =
          (fun ?seed b p ->
            let r =
              Local_search.sa_ghw ~within:b
                (sa_config ?seed ~default_seed:0x10ca2 b)
                (S.hypergraph_of p)
            in
            publish b ~witness:r.Local_search.best_individual
              r.Local_search.best;
            {
              S.outcome = outcome_of b r.Local_search.best;
              visited = r.Local_search.steps;
              generated = r.Local_search.evaluations;
              elapsed = r.Local_search.elapsed;
              ordering = Some r.Local_search.best_individual;
            });
      };
    S.register
      {
        S.name = "saiga-ghw";
        kind = S.Ghw;
        doc = "self-adaptive island GA for ghw (Section 7.2)";
        run =
          (fun ?seed b p ->
            let r =
              Saiga_ghw.run ~within:b
                (saiga_config ?seed ~default_seed:0x5a16a b)
                (S.hypergraph_of p)
            in
            {
              S.outcome = outcome_of b r.Saiga_ghw.best;
              visited = r.Saiga_ghw.epochs;
              generated = r.Saiga_ghw.evaluations;
              elapsed = r.Saiga_ghw.elapsed;
              ordering = Some r.Saiga_ghw.best_individual;
            });
      }
  end
