(** GA-ghw (Section 7.1): genetic algorithm for generalized hypertree
    width upper bounds.

    Identical to GA-tw except for the fitness: the width of the
    generalized hypertree decomposition obtained by greedily set
    covering every bag of the ordering's tree decomposition
    (Figure 7.1 / 7.2), ties broken at random. *)

val run :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  Ga_engine.config ->
  Hd_hypergraph.Hypergraph.t ->
  Ga_engine.report
(** [incumbent] shares the width upper bound with racing solvers and
    [within] supplies an engine budget overriding the config's time
    limit; see {!Ga_engine.run}. *)

(** [decomposition ?cover h report] materialises the witness GHD;
    covering the bags exactly (the default) may improve on the greedy
    fitness the GA saw. *)
val decomposition :
  ?cover:Hd_core.Ghd.cover_strategy ->
  Hd_hypergraph.Hypergraph.t ->
  Ga_engine.report ->
  Hd_core.Ghd.t
