let run ?incumbent ?within config h =
  let ws = Suffix_eval.of_hypergraph ~seed:(config.Ga_engine.seed lxor 0x5c) h in
  Ga_engine.run ?incumbent ?within config
    ~n_genes:(Hd_hypergraph.Hypergraph.n_vertices h)
    ~eval:(Suffix_eval.width ws)

let decomposition ?(cover = `Exact) h (report : Ga_engine.report) =
  Hd_core.Ghd.of_ordering h report.Ga_engine.best_individual ~cover
