let run ?incumbent config h =
  let ws = Hd_core.Eval.of_hypergraph h in
  let rng = Random.State.make [| config.Ga_engine.seed lxor 0x5c |] in
  Ga_engine.run ?incumbent config
    ~n_genes:(Hd_hypergraph.Hypergraph.n_vertices h)
    ~eval:(Hd_core.Eval.ghw_width ~rng ws)

let decomposition ?(cover = `Exact) h (report : Ga_engine.report) =
  Hd_core.Ghd.of_ordering h report.Ga_engine.best_individual ~cover
