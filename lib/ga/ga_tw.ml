let run ?incumbent ?within config g =
  let ws = Suffix_eval.of_graph g in
  Ga_engine.run ?incumbent ?within config ~n_genes:(Hd_graph.Graph.n g)
    ~eval:(Suffix_eval.width ws)

let run_hypergraph ?incumbent ?within config h =
  run ?incumbent ?within config (Hd_hypergraph.Hypergraph.primal h)

let decomposition g (report : Ga_engine.report) =
  Hd_core.Tree_decomposition.of_ordering g report.Ga_engine.best_individual

let run_weighted config g ~domain_sizes =
  let ws = Hd_core.Eval.of_graph g in
  let eval sigma =
    int_of_float
      (Float.round
         (64.0 *. Hd_core.Eval.weighted_width ws ~domain_sizes sigma))
  in
  Ga_engine.run config ~n_genes:(Hd_graph.Graph.n g) ~eval
