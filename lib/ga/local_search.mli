(** Local search over elimination orderings: simulated annealing and
    iterated local search.

    Section 4.5 notes that on Larranaga et al.'s triangulation
    benchmarks only simulated annealing matched the genetic algorithm's
    results — these implementations provide that comparator for the
    width objectives, plus a simple iterated-local-search baseline.
    Moves are the paper's mutation operators (ISM by default), so the
    neighbourhood matches the GA's. *)

type config = {
  max_steps : int;
  initial_temperature : float;
  cooling : float;  (** geometric factor per step, e.g. 0.999 *)
  move : Mutation.t;
  restarts : int;  (** for iterated local search *)
  seed : int;
  time_limit : float option;
  target : int option;
}

val default_config : ?max_steps:int -> ?seed:int -> unit -> config

type report = {
  best : int;
  best_individual : int array;
  steps : int;
  evaluations : int;
  elapsed : float;
}

(** [simulated_annealing config ~n_genes ~eval] minimises [eval] by
    Metropolis acceptance over mutation moves with geometric cooling.

    All four entry points accept [within], an engine budget (deadline,
    state cap per evaluation, cooperative cancellation) that overrides
    [config.time_limit].  The clock starts when the search starts —
    never at config or driver creation. *)
val simulated_annealing :
  ?within:Hd_engine.Budget.t ->
  config -> n_genes:int -> eval:(int array -> int) -> report

(** [iterated_local_search config ~n_genes ~eval] runs first-improvement
    hill climbing to a local optimum, then perturbs (3 random moves)
    and repeats, keeping the best of [restarts] descents. *)
val iterated_local_search :
  ?within:Hd_engine.Budget.t ->
  config -> n_genes:int -> eval:(int array -> int) -> report

(** [sa_tw config g] is simulated annealing on the treewidth objective
    (Figure 6.2). *)
val sa_tw : ?within:Hd_engine.Budget.t -> config -> Hd_graph.Graph.t -> report

(** [sa_ghw config h] is simulated annealing on the greedy-cover ghw
    objective (Figure 7.1). *)
val sa_ghw :
  ?within:Hd_engine.Budget.t -> config -> Hd_hypergraph.Hypergraph.t -> report
