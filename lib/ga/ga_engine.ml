module Obs = Hd_obs.Obs

(* Observability counters shared by every engine instance (GA-tw,
   GA-ghw, and the SAIGA islands).  Naming: docs/OBSERVABILITY.md. *)
let c_generations = Obs.Counter.make "ga.generations"
let c_evaluations = Obs.Counter.make "ga.evaluations"
let c_crossovers = Obs.Counter.make "ga.crossovers"
let c_mutations = Obs.Counter.make "ga.mutations"

type params = {
  mutation_rate : float;
  crossover_rate : float;
  tournament_size : int;
}

type config = {
  population_size : int;
  params : params;
  crossover : Crossover.t;
  mutation : Mutation.t;
  max_iterations : int;
  time_limit : float option;
  target : int option;
  seed : int;
}

let default_config ?(population_size = 2000) ?(max_iterations = 2000)
    ?(seed = 0x9a) () =
  {
    population_size;
    params = { mutation_rate = 0.3; crossover_rate = 1.0; tournament_size = 3 };
    crossover = Crossover.POS;
    mutation = Mutation.ISM;
    max_iterations;
    time_limit = None;
    target = None;
    seed;
  }

type report = {
  best : int;
  best_individual : int array;
  iterations : int;
  evaluations : int;
  elapsed : float;
  improvements : (int * int) list;
}

module Population = struct
  type t = {
    mutable members : int array array;
    mutable fitness : int array;
    mutable best : int;
    mutable best_individual : int array;
    mutable evaluations : int;
    n_genes : int;
  }

  let evaluate pop eval =
    Obs.Counter.add c_evaluations (Array.length pop.members);
    Array.iteri
      (fun i member ->
        let f = eval member in
        pop.fitness.(i) <- f;
        pop.evaluations <- pop.evaluations + 1;
        if f < pop.best then begin
          pop.best <- f;
          pop.best_individual <- Array.copy member
        end)
      pop.members

  let init rng ~n_genes ~size ~eval =
    let members =
      Array.init size (fun _ -> Hd_core.Ordering.random rng n_genes)
    in
    let pop =
      {
        members;
        fitness = Array.make size max_int;
        best = max_int;
        best_individual = Array.copy members.(0);
        evaluations = 0;
        n_genes;
      }
    in
    evaluate pop eval;
    pop

  let tournament pop rng s =
    let size = Array.length pop.members in
    let pick () = Random.State.int rng size in
    let winner = ref (pick ()) in
    for _ = 2 to s do
      let c = pick () in
      if pop.fitness.(c) < pop.fitness.(!winner) then winner := c
    done;
    !winner

  let step pop ~params ~crossover ~mutation ~eval rng =
    Obs.Counter.incr c_generations;
    let size = Array.length pop.members in
    (* selection *)
    let selected =
      Array.init size (fun _ ->
          Array.copy pop.members.(tournament pop rng params.tournament_size))
    in
    (* recombination of a crossover_rate fraction, in random pairs *)
    let order = Hd_core.Ordering.random rng size in
    let pairs = int_of_float (params.crossover_rate *. float_of_int size) / 2 in
    Obs.Counter.add c_crossovers (2 * pairs);
    for p = 0 to pairs - 1 do
      let i = order.(2 * p) and j = order.((2 * p) + 1) in
      let a = selected.(i) and b = selected.(j) in
      selected.(i) <- Crossover.apply crossover rng a b;
      selected.(j) <- Crossover.apply crossover rng b a
    done;
    (* mutation *)
    Array.iter
      (fun member ->
        if Random.State.float rng 1.0 < params.mutation_rate then begin
          Obs.Counter.incr c_mutations;
          Mutation.apply mutation rng member
        end)
      selected;
    pop.members <- selected;
    evaluate pop eval

  let best pop = (pop.best, pop.best_individual)
  let evaluations pop = pop.evaluations

  let inject pop individual ~eval =
    Obs.Counter.add c_evaluations 1;
    let size = Array.length pop.members in
    let worst = ref 0 in
    for i = 1 to size - 1 do
      if pop.fitness.(i) > pop.fitness.(!worst) then worst := i
    done;
    pop.members.(!worst) <- Array.copy individual;
    let f = eval individual in
    pop.evaluations <- pop.evaluations + 1;
    pop.fitness.(!worst) <- f;
    if f < pop.best then begin
      pop.best <- f;
      pop.best_individual <- Array.copy individual
    end
end

let run ?incumbent ?within config ~n_genes ~eval =
  Obs.with_span "ga.run" @@ fun () ->
  (* the run is governed by an engine budget: either the caller's
     [within] (portfolio / block-split sub-budget) or a private one
     built from [config.time_limit].  The clock starts here, not at
     config creation. *)
  let budget =
    match within with
    | Some b -> b
    | None -> Hd_engine.Budget.create ?time_limit:config.time_limit ?incumbent ()
  in
  let tk = Hd_engine.Budget.ticker budget in
  let incumbent =
    match incumbent with
    | Some _ as i -> i
    | None -> Hd_engine.Budget.incumbent budget
  in
  (* every fitness evaluation ticks the budget, so deadlines and state
     caps are noticed mid-generation at eval granularity *)
  let eval s =
    Hd_engine.Budget.tick_generated tk;
    Hd_engine.Budget.check tk;
    eval s
  in
  let rng = Random.State.make [| config.seed |] in
  let pop =
    Population.init rng ~n_genes ~size:(max 2 config.population_size) ~eval
  in
  (* when racing in a portfolio, publish every best-so-far as a shared
     upper bound and stop as soon as an exact racer settles the instance;
     the incumbent never influences evolution, so results are identical
     with and without one as long as the run is not cut short *)
  let publish () =
    match incumbent with
    | None -> ()
    | Some inc ->
        let f, ind = Population.best pop in
        ignore (Hd_core.Incumbent.offer_ub inc ~witness:ind f)
  in
  let stop_requested () =
    match incumbent with
    | None -> false
    | Some inc ->
        Hd_core.Incumbent.cancelled inc || Hd_core.Incumbent.closed inc
  in
  publish ();
  let improvements = ref [ (0, fst (Population.best pop)) ] in
  let reached_target best =
    match config.target with Some t -> best <= t | None -> false
  in
  let out_of_time () = Hd_engine.Budget.out_of_budget tk in
  let iteration = ref 0 in
  while
    !iteration < config.max_iterations
    && (not (reached_target (fst (Population.best pop))))
    && (not (out_of_time ()))
    && not (stop_requested ())
  do
    incr iteration;
    let before = fst (Population.best pop) in
    Population.step pop ~params:config.params ~crossover:config.crossover
      ~mutation:config.mutation ~eval rng;
    let after = fst (Population.best pop) in
    if after < before then begin
      improvements := (!iteration, after) :: !improvements;
      publish ()
    end
  done;
  let best, best_individual = Population.best pop in
  {
    best;
    best_individual;
    iterations = !iteration;
    evaluations = Population.evaluations pop;
    elapsed = Hd_engine.Budget.ticker_elapsed tk;
    improvements = List.rev !improvements;
  }
