(** Suffix re-evaluation of elimination orderings for the genetic
    algorithms and local search (docs/PERFORMANCE.md).

    The width of the decomposition an ordering induces is computed by
    eliminating [sigma.(n-1)], then [sigma.(n-2)], and so on; the
    elimination-graph state after the first [k] eliminations depends
    only on those [k] vertices (positions [n-k .. n-1]).  A mutation
    or crossover that changes an individual only at positions [<= i]
    therefore leaves every bag of positions [> i] — and the graph
    state entering position [i] — untouched.

    A workspace caches the previously evaluated ordering together with
    adjacency snapshots at geometrically spaced elimination counts
    (1, 2, 4, 8, ... — O(log n) snapshots bound the memory).  Each
    {!width} call computes the longest common suffix with the previous
    ordering, restores the deepest still-valid snapshot, and re-runs
    only the remaining eliminations; counters [ga.suffix_reevals] and
    [ga.full_reevals] report the split.

    Widths agree exactly with a from-scratch evaluation: the tw
    objective equals {!Hd_core.Eval.tw_width}, and the ghw objective is
    the greedy-set-cover width with per-bag deterministic tie-breaking
    (the tie rng is seeded from the bag's canonical hash, so a bag's
    cover size never depends on evaluation order — which also makes
    the per-workspace set-cover memo sound). *)

type t

(** [of_graph g] is a workspace whose {!width} is the tree-decomposition
    width of the ordering — the GA-tw fitness, equal to
    [Hd_core.Eval.tw_width] pointwise. *)
val of_graph : Hd_graph.Graph.t -> t

(** [of_hypergraph ?seed h] is a workspace over [h]'s primal graph
    whose {!width} is the greedy-set-cover width of every bag — the
    GA-ghw fitness.  Cover sizes are memoised per workspace (counters
    [setcover.memo_hits]/[setcover.memo_misses]); [seed] (default 0)
    salts the per-bag tie-breaking. *)
val of_hypergraph : ?seed:int -> Hd_hypergraph.Hypergraph.t -> t

(** [width t sigma] evaluates [sigma], reusing the cached suffix of the
    previous call when one exists. *)
val width : t -> Hd_core.Ordering.t -> int

(** [width_full t sigma] evaluates [sigma] from scratch, ignoring (and
    replacing) the cached state — the reference path the property
    tests compare {!width} against. *)
val width_full : t -> Hd_core.Ordering.t -> int
