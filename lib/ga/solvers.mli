(** Registration of the metaheuristics in the engine's solver table.

    [ensure ()] registers (idempotently): [ga-tw], [sa-tw] (treewidth);
    [ga-ghw], [sa-ghw], [saiga-ghw] (generalized hypertree width).  All
    run as anytime solvers against the supplied budget: when it has a
    deadline the iteration caps are effectively unbounded and the
    deadline is the stop; without one, moderate default effort caps
    keep the run finite.  Lower bounds are read back from the budget's
    shared incumbent when present (a metaheuristic proves none itself).
    The exact searches live in [Hd_search.Solvers]. *)

val ensure : unit -> unit
