(** GA-tw (Chapter 6): genetic algorithm for treewidth upper bounds.

    Individuals are elimination orderings; fitness is the width of the
    tree decomposition bucket elimination builds from the ordering
    (Figure 6.2).  The returned report's [best] is an upper bound on
    the treewidth and [best_individual] a witness ordering. *)

val run :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  Ga_engine.config ->
  Hd_graph.Graph.t ->
  Ga_engine.report
(** [incumbent] shares the width upper bound with racing solvers and
    [within] supplies an engine budget overriding the config's time
    limit; see {!Ga_engine.run}. *)

(** [run_hypergraph config h] bounds [tw(h)] via the primal graph
    (Lemma 1). *)
val run_hypergraph :
  ?incumbent:Hd_core.Incumbent.t ->
  ?within:Hd_engine.Budget.t ->
  Ga_engine.config ->
  Hd_hypergraph.Hypergraph.t ->
  Ga_engine.report

(** [decomposition g report] materialises the witness tree
    decomposition. *)
val decomposition :
  Hd_graph.Graph.t -> Ga_engine.report -> Hd_core.Tree_decomposition.t

(** [run_weighted config g ~domain_sizes] minimises the Section 4.5
    triangulation weight instead of the width — the original objective
    of the Bayesian-network GA the paper builds on.  The integer
    fitness is the weight in units of 1/64 bits. *)
val run_weighted :
  Ga_engine.config -> Hd_graph.Graph.t -> domain_sizes:int array -> Ga_engine.report
