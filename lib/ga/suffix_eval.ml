module Graph = Hd_graph.Graph
module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover
module Obs = Hd_obs.Obs

let c_suffix_reevals = Obs.Counter.make "ga.suffix_reevals"
let c_full_reevals = Obs.Counter.make "ga.full_reevals"

(* shared by name with Set_cover's and Eval's memo counters *)
let c_memo_hits = Obs.Counter.make "setcover.memo_hits"
let c_memo_misses = Obs.Counter.make "setcover.memo_misses"

module Bag_tbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.fnv_hash
end)

type objective =
  | Tw
  | Ghw of { hypergraph : Hypergraph.t; seed : int; memo : int Bag_tbl.t }

type checkpoint = {
  steps_done : int; (* eliminations performed: positions n-1 .. n-steps *)
  width_so_far : int;
  snap : Bitset.t array; (* adjacency rows at that point *)
}

type t = {
  n : int;
  base : Bitset.t array; (* original adjacency *)
  objective : objective;
  adj : Bitset.t array; (* working elimination-graph rows *)
  bag : Bitset.t; (* scratch: {v} u N(v) of the current step *)
  last : int array; (* previously evaluated ordering *)
  mutable have_last : bool;
  mutable cps : checkpoint list; (* ascending steps_done *)
}

let make n base objective =
  {
    n;
    base;
    objective;
    adj = Array.map Bitset.copy base;
    bag = Bitset.create (max 1 n);
    last = Array.make (max 1 n) (-1);
    have_last = false;
    cps = [];
  }

let of_graph g =
  let n = Graph.n g in
  make n (Array.init n (fun v -> Bitset.copy (Graph.adjacency g v))) Tw

let of_hypergraph ?(seed = 0) h =
  let g = Hypergraph.primal h in
  let n = Graph.n g in
  make n
    (Array.init n (fun v -> Bitset.copy (Graph.adjacency g v)))
    (Ghw { hypergraph = h; seed; memo = Bag_tbl.create 512 })

(* Width contribution of the bag {v} u N(v).  For tw this is |N(v)|.
   For ghw it is the greedy cover size, memoised on bag contents; on a
   miss the tie rng is seeded from the bag's canonical hash so the
   result is a pure function of the bag — evaluation order (and hence
   suffix reuse) cannot change it. *)
let bag_width t =
  match t.objective with
  | Tw -> Bitset.cardinal t.bag - 1
  | Ghw { hypergraph; seed; memo } -> (
      match Bag_tbl.find_opt memo t.bag with
      | Some w ->
          Obs.Counter.incr c_memo_hits;
          w
      | None ->
          Obs.Counter.incr c_memo_misses;
          let rng = Random.State.make [| seed; Bitset.fnv_hash t.bag |] in
          let w =
            Set_cover.greedy_size ~rng
              { Set_cover.universe = t.bag; hypergraph }
          in
          Bag_tbl.add memo (Bitset.copy t.bag) w;
          w)

(* the largest width a bag at position [i] can still contribute: i
   members besides the eliminated vertex for tw, a cover of at most
   the i+1 bag vertices for ghw — the same early exits as Eval *)
let cap t i = match t.objective with Tw -> i | Ghw _ -> i + 1

let snapshot t ~steps_done ~width_so_far =
  { steps_done; width_so_far; snap = Array.map Bitset.copy t.adj }

let restore t cp =
  Array.iteri (fun v row -> Bitset.blit ~src:row ~dst:t.adj.(v)) cp.snap

let reset_from_base t =
  Array.iteri (fun v row -> Bitset.blit ~src:row ~dst:t.adj.(v)) t.base

(* run eliminations for positions [n-1-start_k] down, accumulating
   [width], recording checkpoints at power-of-two elimination counts
   beyond the ones already kept *)
let run t sigma ~start_k ~start_width =
  let n = t.n in
  let width = ref start_width in
  let next_cp =
    let rec above p k = if p > k then p else above (2 * p) k in
    above 1 (match t.cps with [] -> 0 | cps -> (List.hd (List.rev cps)).steps_done)
  in
  let next_cp = ref next_cp in
  let i = ref (n - 1 - start_k) in
  while !i >= 0 && !width < cap t !i do
    let v = sigma.(!i) in
    Bitset.blit ~src:t.adj.(v) ~dst:t.bag;
    Bitset.add t.bag v;
    let w = bag_width t in
    if w > !width then width := w;
    (* eliminate v: its neighbours become a clique, v disappears *)
    Bitset.iter
      (fun u ->
        if u <> v then begin
          Bitset.union_into ~src:t.bag ~dst:t.adj.(u);
          Bitset.remove t.adj.(u) u;
          Bitset.remove t.adj.(u) v
        end)
      t.bag;
    Bitset.clear t.adj.(v);
    let k = n - !i in
    if k = !next_cp && !i > 0 then begin
      t.cps <- t.cps @ [ snapshot t ~steps_done:k ~width_so_far:!width ];
      next_cp := 2 * k
    end;
    decr i
  done;
  Array.blit sigma 0 t.last 0 n;
  t.have_last <- true;
  !width

let common_suffix t sigma =
  let n = t.n in
  let j = ref 0 in
  while !j < n && sigma.(n - 1 - !j) = t.last.(n - 1 - !j) do
    incr j
  done;
  !j

let width t sigma =
  if Array.length sigma <> t.n then
    invalid_arg "Suffix_eval.width: ordering length mismatch";
  if t.n = 0 then 0
  else begin
    let l = if t.have_last then common_suffix t sigma else 0 in
    t.cps <- List.filter (fun cp -> cp.steps_done <= l) t.cps;
    match List.rev t.cps with
    | cp :: _ ->
        Obs.Counter.incr c_suffix_reevals;
        restore t cp;
        run t sigma ~start_k:cp.steps_done ~start_width:cp.width_so_far
    | [] ->
        Obs.Counter.incr c_full_reevals;
        reset_from_base t;
        run t sigma ~start_k:0 ~start_width:0
  end

let width_full t sigma =
  if Array.length sigma <> t.n then
    invalid_arg "Suffix_eval.width_full: ordering length mismatch";
  if t.n = 0 then 0
  else begin
    Obs.Counter.incr c_full_reevals;
    t.cps <- [];
    t.have_last <- false;
    reset_from_base t;
    run t sigma ~start_k:0 ~start_width:0
  end
