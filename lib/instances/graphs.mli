(** Benchmark graph families of the paper's evaluation (Tables 5.1-6.6).

    Exactly constructible families (queen, myciel, grid) are identical
    to their DIMACS counterparts; the remaining DIMACS instances are
    single fixed graphs that cannot be shipped, so seeded structural
    analogues with matching vertex/edge counts stand in (see the
    substitution table in DESIGN.md). *)

(** [queen n] is the n x n queen graph: squares adjacent when a queen
    moves between them.  Matches DIMACS queenN_N exactly. *)
val queen : int -> Hd_graph.Graph.t

(** [mycielski k] is the DIMACS myciel[k] graph: the Mycielski
    construction iterated from K2 ([k = 2]); myciel3 is the Groetzsch
    graph (11 vertices, 20 edges).  Treewidth grows while the graph
    stays triangle-free. *)
val mycielski : int -> Hd_graph.Graph.t

(** [grid n] is the n x n grid, treewidth n. *)
val grid : int -> Hd_graph.Graph.t

(** [chain ~copies g] glues [copies] copies of [g] end-to-end at single
    shared vertices (each copy's last vertex is the next copy's vertex
    0).  Treewidth and ghw equal [g]'s — widths are maxima over
    biconnected blocks — making chains the reference instances for the
    engine's decompose-by-blocks pass ("blocks2-queen5_5",
    "blocks3-grid4" in the catalogue). *)
val chain : copies:int -> Hd_graph.Graph.t -> Hd_graph.Graph.t

(** [random_gnp ~seed ~n ~p] is an Erdos-Renyi graph — the DSJC family's
    distribution. *)
val random_gnp : seed:int -> n:int -> p:float -> Hd_graph.Graph.t

(** [geometric ~seed ~n ~target_m] places [n] points uniformly in the
    unit square and connects pairs closer than a radius tuned to reach
    roughly [target_m] edges — the miles family's regime. *)
val geometric : seed:int -> n:int -> target_m:int -> Hd_graph.Graph.t

(** [book_like ~seed ~n ~target_m] is a random interval graph with the
    interval length tuned to reach roughly [target_m] edges.  Book
    character co-occurrence graphs (anna, david, homer, huck, jean)
    are interval-like — characters live in contiguous narrative
    stretches — which is what gives them their small treewidths. *)
val book_like : seed:int -> n:int -> target_m:int -> Hd_graph.Graph.t

(** [leighton_like ~seed ~n ~target_m ~clique_size] unions random
    cliques until close to [target_m] edges — the le450 regime. *)
val leighton_like :
  seed:int -> n:int -> target_m:int -> clique_size:int -> Hd_graph.Graph.t

(** [register_like ~seed ~n ~target_m] is a random interval graph:
    register-interference graphs (fpsol2, inithx, mulsol, zeroin) are
    interval graphs of live ranges, with treewidth equal to the
    register pressure (clique number minus one). *)
val register_like : seed:int -> n:int -> target_m:int -> Hd_graph.Graph.t

(** [by_name name] resolves a Table 5.1/6.6 instance name — e.g.
    "queen5_5", "myciel4", "grid6", "DSJC125.1", "anna", "miles250",
    "le450_15a", "mulsol.i.1" — to the exact construction or its
    documented stand-in. *)
val by_name : string -> Hd_graph.Graph.t option

(** [names] lists every instance [by_name] accepts, with the vertex and
    edge counts of the DIMACS original it mirrors. *)
val names : (string * int * int) list
