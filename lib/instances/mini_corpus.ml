(* The bundled mini-corpus.  Everything is rendered from deterministic
   constructions — the parametric CSP families already in this library
   and small generated conjunctive queries — so the corpus needs no
   data files, no network, and no per-platform variation: same bytes
   on every machine. *)

module Hg = Hd_hypergraph.Hg_format

(* ------------------------------------------------------------------ *)
(* csp-synth: parametric CSP hypergraphs in the atom format            *)
(* ------------------------------------------------------------------ *)

let csp_synth () =
  let render name h = (name ^ ".hg", Hg.to_string h) in
  List.concat
    [
      List.map
        (fun k -> render (Printf.sprintf "adder_%02d" k) (Hypergraphs.adder k))
        [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 15 ];
      List.map
        (fun k -> render (Printf.sprintf "bridge_%02d" k) (Hypergraphs.bridge k))
        [ 1; 2; 3; 4; 5; 6; 8; 10 ];
      (* clique_k has ghw = ceil(k/2): 12 and 16 land in the > 5
         bucket, giving the coverage histogram its HyperBench-like
         tail *)
      List.map
        (fun k -> render (Printf.sprintf "clique_%02d" k) (Hypergraphs.clique k))
        [ 3; 4; 5; 6; 7; 8; 12; 16 ];
      List.map
        (fun k -> render (Printf.sprintf "grid2d_%02d" k) (Hypergraphs.grid2d k))
        [ 2; 4; 6; 8 ];
      List.map
        (fun k -> render (Printf.sprintf "grid3d_%02d" k) (Hypergraphs.grid3d k))
        [ 2; 4 ];
      List.map
        (fun i ->
          let n_vars = 20 + (6 * i) and n_gates = 22 + (6 * i) in
          render
            (Printf.sprintf "circuit_%02d" i)
            (Hypergraphs.circuit ~seed:(0xc0de + i) ~n_vars ~n_gates))
        [ 0; 1; 2; 3; 4; 5 ];
    ]

(* ------------------------------------------------------------------ *)
(* cq-mini: conjunctive queries in datalog form                        *)
(* ------------------------------------------------------------------ *)

let atom name vars = Printf.sprintf "%s(%s)" name (String.concat "," vars)

let rule ?(comment = "") head body =
  let b = Buffer.create 256 in
  if comment <> "" then Buffer.add_string b (Printf.sprintf "%% %s\n" comment);
  Buffer.add_string b head;
  Buffer.add_string b " :-\n  ";
  Buffer.add_string b (String.concat ",\n  " body);
  Buffer.add_string b ".\n";
  Buffer.contents b

let x i = Printf.sprintf "X%d" i

let path k =
  rule ~comment:(Printf.sprintf "length-%d path join" k)
    (atom "ans" [ x 0; x k ])
    (List.init k (fun i -> atom (Printf.sprintf "e%d" i) [ x i; x (i + 1) ]))

let cycle k =
  rule ~comment:(Printf.sprintf "%d-cycle" k)
    (atom "ans" [ x 0 ])
    (List.init k (fun i ->
         atom (Printf.sprintf "e%d" i) [ x i; x ((i + 1) mod k) ]))

let star k =
  rule ~comment:(Printf.sprintf "%d-leaf star" k)
    (atom "ans" [ "C" ])
    (List.init k (fun i -> atom (Printf.sprintf "e%d" i) [ "C"; x i ]))

let snowflake k =
  (* a star whose every ray continues one more hop *)
  rule ~comment:(Printf.sprintf "%d-ray snowflake" k)
    (atom "ans" [ "C" ])
    (List.concat
       (List.init k (fun i ->
            [
              atom (Printf.sprintf "e%d" i) [ "C"; x i ];
              atom (Printf.sprintf "f%d" i)
                [ x i; Printf.sprintf "Y%d" i ];
            ])))

let grid_cq rows cols =
  let v r c = Printf.sprintf "X%d_%d" r c in
  let body = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      if c + 1 < cols then
        body := atom (Printf.sprintf "h%d_%d" r c) [ v r c; v r (c + 1) ] :: !body;
      if r + 1 < rows then
        body := atom (Printf.sprintf "v%d_%d" r c) [ v r c; v (r + 1) c ] :: !body
    done
  done;
  rule ~comment:(Printf.sprintf "%dx%d grid join" rows cols)
    (atom "ans" [ v 0 0; v (rows - 1) (cols - 1) ])
    !body

let tree_cq depth =
  (* complete binary join tree: parent-child edge atoms *)
  let body = ref [] in
  let n = (1 lsl depth) - 1 in
  for i = n - 1 downto 1 do
    body :=
      atom (Printf.sprintf "e%d" i) [ x ((i - 1) / 2); x i ] :: !body
  done;
  rule ~comment:(Printf.sprintf "depth-%d binary tree" depth)
    (atom "ans" [ x 0 ])
    !body

let triangle =
  rule ~comment:"triangle join"
    (atom "ans" [ "X"; "Y"; "Z" ])
    [ atom "e" [ "X"; "Y" ]; atom "f" [ "Y"; "Z" ]; atom "g" [ "Z"; "X" ] ]

let square_chord =
  rule ~comment:"4-cycle with a chord (chordal, acyclic as a CQ)"
    (atom "ans" [ "W"; "Y" ])
    [
      atom "e1" [ "W"; "X" ];
      atom "e2" [ "X"; "Y" ];
      atom "e3" [ "Y"; "Z" ];
      atom "e4" [ "Z"; "W" ];
      atom "d" [ "W"; "Y" ];
    ]

let wide k arity =
  (* a ring of k wide atoms, consecutive atoms overlapping in two
     variables — the high-arity regime of real HyperBench CQs *)
  let vars_of i =
    List.init arity (fun j -> x (((i * (arity - 2)) + j) mod (k * (arity - 2))))
  in
  rule ~comment:(Printf.sprintf "%d wide atoms of arity %d" k arity)
    (atom "ans" [ x 0 ])
    (List.init k (fun i -> atom (Printf.sprintf "r%d" i) (vars_of i)))

let cq_mini () =
  List.concat
    [
      List.map (fun k -> (Printf.sprintf "path_%02d.cq" k, path k))
        [ 2; 3; 4; 6; 8; 10 ];
      List.map (fun k -> (Printf.sprintf "cycle_%02d.cq" k, cycle k))
        [ 3; 4; 5; 6; 8 ];
      List.map (fun k -> (Printf.sprintf "star_%02d.cq" k, star k))
        [ 3; 5; 8 ];
      List.map (fun k -> (Printf.sprintf "snowflake_%02d.cq" k, snowflake k))
        [ 2; 3 ];
      [
        ("grid_2x3.cq", grid_cq 2 3);
        ("grid_3x3.cq", grid_cq 3 3);
        ("tree_d3.cq", tree_cq 3);
        ("triangle.cq", triangle);
        ("square_chord.cq", square_chord);
        ("wide_3x4.cq", wide 3 4);
        ("wide_4x5.cq", wide 4 5);
        ("wide_5x6.cq", wide 5 6);
      ];
    ]

(* ------------------------------------------------------------------ *)

let collections_memo = ref None

let collections () =
  match !collections_memo with
  | Some c -> c
  | None ->
      let c = [ ("csp-synth", csp_synth ()); ("cq-mini", cq_mini ()) ] in
      collections_memo := Some c;
      c

let collection_names () = List.map fst (collections ())

let total () =
  List.fold_left (fun acc (_, files) -> acc + List.length files) 0
    (collections ())
