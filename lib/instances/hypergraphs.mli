(** Benchmark hypergraph families of the CSP hypergraph library used in
    Tables 7.1-9.2 (adder, bridge, clique, grid2d/3d, circuits).

    adder, bridge, clique and the grid tori are parametric
    constructions matching the reported instance sizes; the ISCAS-style
    circuits (the b and c families) are seeded random circuit DAGs of the same size
    and fan-in regime — see the substitution table in DESIGN.md. *)

(** [adder k] is the k-bit ripple-carry adder hypergraph: per bit the
    variables a, b, t (= a xor b), s (sum) and c (carry out), one
    initial carry, and seven gate hyperedges per bit.  Sizes match the
    library's adder_k: 5k + 1 vertices, 7k + 1 hyperedges; ghw stays
    small (the paper reports 2-3) for every k. *)
val adder : int -> Hd_hypergraph.Hypergraph.t

(** [bridge k] chains [k] 9-variable bridge-circuit blocks sharing one
    rail: 9k + 2 vertices and 9k + 2 hyperedges, matching bridge_k. *)
val bridge : int -> Hd_hypergraph.Hypergraph.t

(** [clique k] is K_k as a hypergraph of binary edges: ghw = ceil(k/2). *)
val clique : int -> Hd_hypergraph.Hypergraph.t

(** [grid2d k] is a k x (k/2) torus with one ternary hyperedge per
    vertex (the vertex, its right neighbour, its down neighbour):
    |V| = |H| = k^2 / 2, matching grid2d_k (200/200 at k = 20). *)
val grid2d : int -> Hd_hypergraph.Hypergraph.t

(** [grid3d k] is a k x k x (k/2) torus with one 4-ary hyperedge per
    vertex: |V| = |H| = k^3 / 2, matching grid3d_k (256/256 at
    k = 8). *)
val grid3d : int -> Hd_hypergraph.Hypergraph.t

(** [circuit ~seed ~n_vars ~n_gates] is a random combinational circuit:
    a DAG of 2-3-input gates, one hyperedge (the gate's inputs plus its
    output) per gate — the ISCAS b*/c* regime. *)
val circuit : seed:int -> n_vars:int -> n_gates:int -> Hd_hypergraph.Hypergraph.t

(** [by_name name] resolves a Table 7.1/8.1/9.1 instance name
    ("adder_75", "bridge_50", "clique_20", "grid2d_20", "grid3d_8",
    "b06", "c499", "NewSystem1", ...). *)
val by_name : string -> Hd_hypergraph.Hypergraph.t option

(** [names] lists every instance with the vertex and hyperedge counts
    of the library original it mirrors. *)
val names : (string * int * int) list
