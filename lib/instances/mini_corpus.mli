(** The bundled offline mini-corpus: a HyperBench-style instance set
    that ships with the library so corpus sweeps, tests and CI never
    need the network.

    HyperBench (arXiv:1811.08181) distributes ~3000 real-world
    hypergraphs — conjunctive queries and CSPs — and reports that
    [ghw <= 5] covers nearly every instance.  This module is the same
    shape at 1/50 scale: two collections totalling 60+ instances,
    rendered deterministically at first use from the parametric
    families of {!Hypergraphs} and from generated conjunctive-query
    texts.

    - ["csp-synth"] — CSP hypergraphs in the [edge(v1,v2,...)] atom
      format ([.hg] files): adder/bridge/clique/grid tori/circuit
      families at small-to-medium sizes, including a few instances
      whose ghw exceeds 5 so coverage histograms have a tail.
    - ["cq-mini"] — conjunctive queries in datalog form
      ([head :- body.], [.cq] files): paths, cycles, stars,
      snowflakes, grids and wide-atom joins.

    [Hd_corpus.Manifest] materialises these collections into an
    on-disk corpus tree; they reach the solvers through
    [Hd_corpus.Corpus.parse_string]. *)

(** [collections ()] is the bundled corpus:
    [(collection, [(filename, text)])].  Filenames carry their format
    extension ([.hg] atoms, [.cq] datalog); texts are complete
    instance files.  The result is deterministic — same instances,
    same order, same bytes on every call. *)
val collections : unit -> (string * (string * string) list) list

(** [collection_names ()] lists the collection names, in order. *)
val collection_names : unit -> string list

(** [total ()] is the number of bundled instances over all
    collections (>= 50). *)
val total : unit -> int
