module Graph = Hd_graph.Graph

let queen n =
  let g = Graph.create (n * n) in
  let id r c = (r * n) + c in
  for r1 = 0 to n - 1 do
    for c1 = 0 to n - 1 do
      for r2 = 0 to n - 1 do
        for c2 = 0 to n - 1 do
          if
            (r1, c1) < (r2, c2)
            && (r1 = r2 || c1 = c2 || abs (r1 - r2) = abs (c1 - c2))
          then Graph.add_edge g (id r1 c1) (id r2 c2)
        done
      done
    done
  done;
  g

(* Mycielski step: n' = 2n + 1, m' = 3m + n *)
let mycielski_step g =
  let n = Graph.n g in
  let g' = Graph.create ((2 * n) + 1) in
  List.iter
    (fun (u, v) ->
      Graph.add_edge g' u v;
      Graph.add_edge g' (u + n) v;
      Graph.add_edge g' u (v + n))
    (Graph.edges g);
  for v = 0 to n - 1 do
    Graph.add_edge g' (v + n) (2 * n)
  done;
  g'

(* DIMACS numbering: myciel2 = K2, myciel3 = C5 mycielskied once more =
   the Groetzsch graph (11, 20), i.e. k - 1 construction steps from K2 *)
let mycielski k =
  if k < 2 then invalid_arg "Graphs.mycielski: k >= 2 required";
  let rec iterate g steps = if steps = 0 then g else iterate (mycielski_step g) (steps - 1) in
  let k2 = Graph.of_edges 2 [ (0, 1) ] in
  iterate k2 (k - 1)

let grid n = Graph.grid n n

(* [chain ~copies g] glues [copies] copies of [g] end-to-end: copy [c]
   lives on vertices [c*(n-1) .. (c+1)*(n-1)], so each copy's last
   vertex coincides with the next copy's vertex 0 — a cut vertex.  The
   result has [copies] biconnected super-blocks (g's own blocks,
   repeated) and tw/ghw equal to g's: the multi-block benchmark shape
   for the engine's decompose-by-blocks pass. *)
let chain ~copies g =
  let n = Graph.n g in
  if copies <= 1 || n <= 1 then Graph.copy g
  else begin
    let out = Graph.create ((copies * (n - 1)) + 1) in
    for c = 0 to copies - 1 do
      let off = c * (n - 1) in
      List.iter (fun (u, v) -> Graph.add_edge out (off + u) (off + v)) (Graph.edges g)
    done;
    out
  end

let random_gnp ~seed ~n ~p =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

let geometric ~seed ~n ~target_m =
  let rng = Random.State.make [| seed |] in
  let pts = Array.init n (fun _ -> (Random.State.float rng 1.0, Random.State.float rng 1.0)) in
  let dist2 (x1, y1) (x2, y2) =
    ((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0)
  in
  (* all pairwise distances, sorted: take the target_m closest pairs,
     which equals thresholding at the right radius *)
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      pairs := (dist2 pts.(u) pts.(v), u, v) :: !pairs
    done
  done;
  let sorted = List.sort compare !pairs in
  let g = Graph.create n in
  List.iteri
    (fun i (_, u, v) -> if i < target_m then Graph.add_edge g u v)
    sorted;
  g

(* interval graph whose interval length is tuned by binary search to
   land near [target_m] edges; the result is chordal with treewidth
   equal to the deepest overlap minus one *)
let interval_graph_raw rng ~n ~length =
  let intervals =
    Array.init n (fun _ ->
        let a = Random.State.float rng 1.0 in
        (a, a +. (length *. (0.5 +. Random.State.float rng 1.0))))
  in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let a1, b1 = intervals.(u) and a2, b2 = intervals.(v) in
      if a1 <= b2 && a2 <= b1 then Graph.add_edge g u v
    done
  done;
  g

let interval_graph ~seed ~n ~target_m =
  let rec search lo hi steps =
    let mid = (lo +. hi) /. 2.0 in
    let g = interval_graph_raw (Random.State.make [| seed |]) ~n ~length:mid in
    if steps = 0 then g
    else if Graph.m g > target_m then search lo mid (steps - 1)
    else if Graph.m g < target_m then search mid hi (steps - 1)
    else g
  in
  search 0.0 1.0 20

(* Book character co-occurrence graphs are interval-like: characters
   appear in contiguous stretches of the narrative, and the low
   treewidths of anna/david/huck/jean come from that structure. *)
let book_like ~seed ~n ~target_m = interval_graph ~seed ~n ~target_m

let leighton_like ~seed ~n ~target_m ~clique_size =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  while Graph.m g < target_m do
    let size = max 2 (clique_size - Random.State.int rng 3) in
    let members = Array.init size (fun _ -> Random.State.int rng n) in
    Array.iter
      (fun u -> Array.iter (fun v -> Graph.add_edge g u v) members)
      members
  done;
  g

(* register-interference graphs of straight-line code are interval
   graphs (live ranges); their treewidth is the register pressure *)
let register_like ~seed ~n ~target_m = interval_graph ~seed ~n ~target_m

(* name, |V|, |E| as the paper's tables report them; several DIMACS
   .col files (queen, miles, the book graphs) list every edge in both
   directions, so the builders below target the undirected half where
   that applies *)
let catalogue :
    (string * int * int * (unit -> Graph.t)) list =
  let seed_of name = Hashtbl.hash name land 0xffff in
  let queen_entry n v e =
    (Printf.sprintf "queen%d_%d" n n, v, e, fun () -> queen n)
  in
  [
    queen_entry 5 25 320;
    queen_entry 6 36 580;
    queen_entry 7 49 952;
    queen_entry 8 64 1456;
    queen_entry 9 81 2112;
    queen_entry 10 100 2940;
    queen_entry 11 121 3960;
    queen_entry 12 144 5192;
    queen_entry 13 169 6656;
    queen_entry 14 196 8372;
    queen_entry 15 225 10360;
    queen_entry 16 256 12640;
    (* articulation-point chains: several biconnected copies of a hard
       core, for the engine's block-splitting benchmark *)
    ("blocks2-queen5_5", 49, 320, fun () -> chain ~copies:2 (queen 5));
    ("blocks3-grid4", 46, 72, fun () -> chain ~copies:3 (grid 4));
    ("myciel3", 11, 20, fun () -> mycielski 3);
    ("myciel4", 23, 71, fun () -> mycielski 4);
    ("myciel5", 47, 236, fun () -> mycielski 5);
    ("myciel6", 95, 755, fun () -> mycielski 6);
    ("myciel7", 191, 2360, fun () -> mycielski 7);
    ("grid2", 4, 4, fun () -> grid 2);
    ("grid3", 9, 12, fun () -> grid 3);
    ("grid4", 16, 24, fun () -> grid 4);
    ("grid5", 25, 40, fun () -> grid 5);
    ("grid6", 36, 60, fun () -> grid 6);
    ("grid7", 49, 84, fun () -> grid 7);
    ("grid8", 64, 112, fun () -> grid 8);
    ( "DSJC125.1", 125, 736,
      fun () -> random_gnp ~seed:(seed_of "DSJC125.1") ~n:125 ~p:0.1 );
    ( "DSJC125.5", 125, 3891,
      fun () -> random_gnp ~seed:(seed_of "DSJC125.5") ~n:125 ~p:0.5 );
    ( "DSJC125.9", 125, 6961,
      fun () -> random_gnp ~seed:(seed_of "DSJC125.9") ~n:125 ~p:0.9 );
    ( "DSJC250.1", 250, 3218,
      fun () -> random_gnp ~seed:(seed_of "DSJC250.1") ~n:250 ~p:0.1 );
    ( "DSJC250.5", 250, 15668,
      fun () -> random_gnp ~seed:(seed_of "DSJC250.5") ~n:250 ~p:0.5 );
    ( "DSJC250.9", 250, 27897,
      fun () -> random_gnp ~seed:(seed_of "DSJC250.9") ~n:250 ~p:0.9 );
    ("anna", 138, 986, fun () -> book_like ~seed:(seed_of "anna") ~n:138 ~target_m:493);
    ("david", 87, 812, fun () -> book_like ~seed:(seed_of "david") ~n:87 ~target_m:406);
    ("huck", 74, 602, fun () -> book_like ~seed:(seed_of "huck") ~n:74 ~target_m:301);
    ("jean", 80, 508, fun () -> book_like ~seed:(seed_of "jean") ~n:80 ~target_m:254);
    ("homer", 561, 3258, fun () -> book_like ~seed:(seed_of "homer") ~n:561 ~target_m:1629);
    ("games120", 120, 1276, fun () -> book_like ~seed:(seed_of "games120") ~n:120 ~target_m:638);
    ( "miles250", 128, 774,
      fun () -> geometric ~seed:(seed_of "miles250") ~n:128 ~target_m:387 );
    ( "miles500", 128, 2340,
      fun () -> geometric ~seed:(seed_of "miles500") ~n:128 ~target_m:1170 );
    ( "miles750", 128, 4226,
      fun () -> geometric ~seed:(seed_of "miles750") ~n:128 ~target_m:2113 );
    ( "miles1000", 128, 6432,
      fun () -> geometric ~seed:(seed_of "miles1000") ~n:128 ~target_m:3216 );
    ( "miles1500", 128, 10396,
      fun () -> geometric ~seed:(seed_of "miles1500") ~n:128 ~target_m:5198 );
    ( "le450_5a", 450, 5714,
      fun () ->
        leighton_like ~seed:(seed_of "le450_5a") ~n:450 ~target_m:5714 ~clique_size:5 );
    ( "le450_15a", 450, 8168,
      fun () ->
        leighton_like ~seed:(seed_of "le450_15a") ~n:450 ~target_m:8168 ~clique_size:15 );
    ( "le450_25a", 450, 8260,
      fun () ->
        leighton_like ~seed:(seed_of "le450_25a") ~n:450 ~target_m:8260 ~clique_size:25 );
    ( "le450_5b", 450, 5734,
      fun () ->
        leighton_like ~seed:(seed_of "le450_5b") ~n:450 ~target_m:5734 ~clique_size:5 );
    ( "le450_15b", 450, 8169,
      fun () ->
        leighton_like ~seed:(seed_of "le450_15b") ~n:450 ~target_m:8169 ~clique_size:15 );
    ( "le450_15c", 450, 16680,
      fun () ->
        leighton_like ~seed:(seed_of "le450_15c") ~n:450 ~target_m:16680 ~clique_size:15 );
    ( "le450_25c", 450, 17343,
      fun () ->
        leighton_like ~seed:(seed_of "le450_25c") ~n:450 ~target_m:17343 ~clique_size:25 );
    ( "le450_25d", 450, 17425,
      fun () ->
        leighton_like ~seed:(seed_of "le450_25d") ~n:450 ~target_m:17425 ~clique_size:25 );
    ( "mulsol.i.1", 197, 3925,
      fun () -> register_like ~seed:(seed_of "mulsol.i.1") ~n:197 ~target_m:3925 );
    ( "mulsol.i.2", 188, 3885,
      fun () -> register_like ~seed:(seed_of "mulsol.i.2") ~n:188 ~target_m:3885 );
    ( "mulsol.i.5", 186, 3973,
      fun () -> register_like ~seed:(seed_of "mulsol.i.5") ~n:186 ~target_m:3973 );
    ( "zeroin.i.2", 211, 3541,
      fun () -> register_like ~seed:(seed_of "zeroin.i.2") ~n:211 ~target_m:3541 );
    ( "zeroin.i.3", 206, 3540,
      fun () -> register_like ~seed:(seed_of "zeroin.i.3") ~n:206 ~target_m:3540 );
    ( "fpsol2.i.2", 451, 8691,
      fun () -> register_like ~seed:(seed_of "fpsol2.i.2") ~n:451 ~target_m:8691 );
    ( "fpsol2.i.3", 425, 8688,
      fun () -> register_like ~seed:(seed_of "fpsol2.i.3") ~n:425 ~target_m:8688 );
    ( "inithx.i.2", 645, 13979,
      fun () -> register_like ~seed:(seed_of "inithx.i.2") ~n:645 ~target_m:13979 );
    ( "inithx.i.3", 621, 13969,
      fun () -> register_like ~seed:(seed_of "inithx.i.3") ~n:621 ~target_m:13969 );
    ( "school1", 385, 19095,
      fun () ->
        leighton_like ~seed:(seed_of "school1") ~n:385 ~target_m:19095 ~clique_size:14 );
    ( "school1_nsh", 352, 14612,
      fun () ->
        leighton_like ~seed:(seed_of "school1_nsh") ~n:352 ~target_m:14612 ~clique_size:14 );
    ( "zeroin.i.1", 211, 4100,
      fun () -> register_like ~seed:(seed_of "zeroin.i.1") ~n:211 ~target_m:4100 );
    ( "fpsol2.i.1", 496, 11654,
      fun () -> register_like ~seed:(seed_of "fpsol2.i.1") ~n:496 ~target_m:11654 );
    ( "inithx.i.1", 864, 18707,
      fun () -> register_like ~seed:(seed_of "inithx.i.1") ~n:864 ~target_m:18707 );
  ]

let by_name name =
  List.find_map
    (fun (n, _, _, build) -> if n = name then Some (build ()) else None)
    catalogue

let names = List.map (fun (n, v, e, _) -> (n, v, e)) catalogue
