(** The solver registry: every width solver in the tree as a
    first-class value.

    A registered solver takes a {!Budget.t} and a {!problem} and
    returns an anytime {!result}; solvers that can share bounds do so
    through the budget's incumbent.  The registry is one flat
    name-indexed table — the portfolio rosters, [Widths.analyze], the
    bench harness and the [--solver] CLI flag all resolve strategies
    here instead of hard-wiring call sites.

    Registration happens in the libraries that own the algorithms
    ([Hd_search.Solvers.ensure ()] and [Hd_ga.Solvers.ensure ()]);
    this module only holds the table.  The [outcome] and [result]
    types are the canonical definitions that
    [Hd_search.Search_types] re-exports. *)

(** How a run ended. *)
type outcome =
  | Exact of int  (** the optimum was proved *)
  | Bounds of { lb : int; ub : int }
      (** the budget expired; the optimum lies in [lb, ub] *)

type result = {
  outcome : outcome;
  visited : int;  (** search states visited (expanded) *)
  generated : int;  (** search states / fitness evaluations *)
  elapsed : float;  (** wall-clock seconds *)
  ordering : int array option;
      (** an elimination ordering realising the best width found, when
          one was reached *)
}

(** The width notion a solver optimises.  [Fhw] solvers optimise the
    exact rational fractional hypertree width but report
    [ceil (fhw)] through the int-valued {!result} — sound under the
    max-combining of {!Blocks} since [ceil (max a b) = max (ceil a)
    (ceil b)]; the exact rational is recovered from the witness
    ordering via [Hd_core.Eval.fhw_width_q]. *)
type kind = Tw | Ghw | Fhw | Hw

type problem =
  | Graph of Hd_graph.Graph.t
  | Hypergraph of Hd_hypergraph.Hypergraph.t

type t = {
  name : string;
  kind : kind;
  doc : string;  (** one-line description for [--list-solvers] *)
  run : ?seed:int -> Budget.t -> problem -> result;
}

(** [register s] adds [s] to the table, replacing any previous solver
    of the same name (its listing position is kept).  Thread-safe. *)
val register : t -> unit

val find : string -> t option

(** All registered solvers, in registration order. *)
val all : unit -> t list

val names : unit -> string list
val kind_name : kind -> string

(** {2 Problem helpers} *)

(** The primal graph — identity on [Graph] problems. *)
val primal_of : problem -> Hd_graph.Graph.t

(** The hypergraph view — one 2-vertex hyperedge per edge on [Graph]
    problems. *)
val hypergraph_of : problem -> Hd_hypergraph.Hypergraph.t

val n_vertices : problem -> int

(** {2 Outcome helpers} *)

(** The proved optimum or the upper bound. *)
val value : outcome -> int

(** [(lb, ub)]; equal on [Exact]. *)
val bounds_of : outcome -> int * int
