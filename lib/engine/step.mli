(** Resumable solver steps: run any budgeted computation for one
    scheduler slice at a time — run, park, resume — without touching
    solver code.

    A step task wraps a [unit -> 'a] computation that polls a
    {!Budget.t} ticker (every registered solver does).  {!slice} arms
    the budget's slice deadline and runs the computation under an
    effect handler; when a ticker poll crosses the deadline it performs
    [Budget.Slice_expired], the handler captures the continuation and
    {!slice} returns [Yielded].  The next {!slice} call resumes exactly
    where the solve stopped — possibly on a different domain — after
    crediting the parked wall-clock time back to the budget, so a
    sliced solve's deadline measures {e compute} time, not queue time.
    This is what lets hd_server interleave many concurrent jobs over a
    small [Hd_parallel.Domain_pool] (docs/SERVER.md).

    Constraints: a task is driven by one scheduler at a time (slices
    may hop domains, the continuation is one-shot), and the computation
    must poll its budget from the domain running the slice —
    single-domain solvers, which is every solver in the engine
    registry.  Counters: [engine.slices], [engine.yields]. *)

type 'a t

type 'a outcome =
  | Done of 'a  (** the computation returned *)
  | Yielded  (** slice expired; call {!slice} again to resume *)

(** [make budget f] wraps [f] (a computation polling [budget]) as an
    unstarted task.  [f] does not run until the first {!slice}. *)
val make : Budget.t -> (unit -> 'a) -> 'a t

val budget : 'a t -> Budget.t

(** [slice t ~seconds] runs [t] for at most [seconds] of compute time
    and returns [Done] or [Yielded].  On a finished task it returns
    the cached result; re-raises the computation's exception if it
    failed (on the slice that raised, and on every later call). *)
val slice : 'a t -> seconds:float -> 'a outcome

(** Number of {!slice} calls that actually ran the computation. *)
val slices : 'a t -> int

(** [finished t] holds once the computation returned or raised. *)
val finished : 'a t -> bool

(** The result, once [Done]. *)
val result : 'a t -> 'a option

(** [run_to_completion ~seconds t] slices until done — a sequential
    driver for tests and simple callers. *)
val run_to_completion : ?seconds:float -> 'a t -> 'a

(** [unsliced f] runs [f ()] under a handler that resumes
    {!Budget.Slice_expired} immediately instead of parking.  Scheduler
    workers wrap foreign solver tasks in this: a task forked off a
    sliced solve may poll a budget whose slice deadline is armed on
    another domain, and without a handler that perform would be an
    unhandled effect.  Inside [unsliced] the budget's time and state
    limits still apply — only the yield is neutralised. *)
val unsliced : (unit -> 'a) -> 'a
