(* The high-water mark is shared by all domains: a CAS-max keeps the
   published time non-decreasing even when domains race or the system
   clock steps backwards. *)
let high_water = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec push () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else push ()
  in
  push ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)
