(** Dependency-inversion hook for parallel fork/join.

    [lib/engine] cannot depend on the scheduler (hd_parallel depends
    on hd_engine, not the other way around), so the engine publishes a
    tiny runner interface here and the scheduler installs itself into
    it at startup.  {!Blocks.solve} forks its per-block solves through
    the installed runner; with no runner installed — the [-j1]
    configuration — the purely sequential code path runs, untouched
    and byte-identical to previous releases. *)

type runner = {
  run_all : (unit -> unit) list -> unit;
      (** Run every closure to completion before returning; exceptions
          re-raised after all closures have finished. *)
}

val install : runner -> unit
(** Make [runner] the process-wide fork/join implementation. *)

val clear : unit -> unit
(** Remove the installed runner: back to strictly sequential. *)

val current : unit -> runner option
(** The installed runner, if any. *)

val with_runner : runner -> (unit -> 'a) -> 'a
(** [with_runner r f] installs [r] for the duration of [f], restoring
    the previous state after — used by tests and the bench harness to
    compare sequential and parallel runs in one process. *)
