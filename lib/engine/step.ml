module Obs = Hd_obs.Obs

let c_slices = Obs.Counter.make "engine.slices"
let c_yields = Obs.Counter.make "engine.yields"

type 'a outcome = Done of 'a | Yielded

type 'a st =
  | Fresh of (unit -> 'a)
  | Parked of (unit, 'a outcome) Effect.Deep.continuation * float
      (* paused mid-poll; the float is the Clock time of the park, so
         the resume can credit the pause back to the budget *)
  | Completed of 'a
  | Poisoned of exn

type 'a t = { budget : Budget.t; mutable st : 'a st; mutable slices : int }

let make budget f = { budget; st = Fresh f; slices = 0 }
let budget t = t.budget
let slices t = t.slices

let finished t =
  match t.st with Completed _ | Poisoned _ -> true | Fresh _ | Parked _ -> false

let result t = match t.st with Completed v -> Some v | _ -> None

(* One deep handler per task, installed by the first slice and kept
   across parks: [continue] re-enters it, so every later yield and the
   final return flow through the same closures. *)
let handler (t : 'a t) : ('a, 'a outcome) Effect.Deep.handler =
  {
    Effect.Deep.retc =
      (fun v ->
        t.st <- Completed v;
        Done v);
    exnc =
      (fun e ->
        t.st <- Poisoned e;
        raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Budget.Slice_expired ->
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                Obs.Counter.incr c_yields;
                t.st <- Parked (k, Clock.now ());
                Yielded)
        | _ -> None);
  }

let slice t ~seconds =
  match t.st with
  | Completed v -> Done v
  | Poisoned e -> raise e
  | (Fresh _ | Parked _) as st ->
      Obs.Counter.incr c_slices;
      t.slices <- t.slices + 1;
      Budget.begin_slice t.budget ~until:(Clock.now () +. seconds);
      Fun.protect
        ~finally:(fun () -> Budget.end_slice t.budget)
        (fun () ->
          match st with
          | Fresh f -> Effect.Deep.match_with f () (handler t)
          | Parked (k, parked_at) ->
              Budget.credit_pause t.budget (Clock.now () -. parked_at);
              Effect.Deep.continue k ()
          | Completed _ | Poisoned _ -> assert false)

let unsliced f =
  Effect.Deep.match_with f ()
    {
      Effect.Deep.retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Budget.Slice_expired ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let rec run_to_completion ?(seconds = 0.05) t =
  match slice t ~seconds with
  | Done v -> v
  | Yielded -> run_to_completion ~seconds t
