(** Decompose-by-blocks: solve each biconnected component of the
    primal graph separately and recombine.

    Treewidth and (generalized) hypertree width both decompose over
    the biconnected components ("blocks") of the primal graph: two
    blocks share at most one vertex, every hyperedge — a primal clique
    — lies inside exactly one block, and the width of the whole is the
    maximum over the blocks (the divide-and-conquer step the
    Gottlob–Samer det-k-decomp implementation and the HyperBench
    tooling rely on).  [solve] applies the split uniformly in front of
    any registered solver: each block gets an equal share of the
    remaining budget (unspent time rolls over), witnesses are re-rooted
    at the cut vertices and concatenated bottom-up into one global
    elimination ordering, and combined bounds are published to the
    budget's incumbent.

    Soundness note: per-block runs deliberately do {e not} share the
    caller's incumbent — an upper bound proved on one block must not
    prune the search on another.  Cancellation still reaches every
    block through the shared budget flag. *)

type block = {
  vertices : int array;
      (** the block's vertices, as sorted global ids; local vertex [i]
          of the block sub-problem is [vertices.(i)] *)
  attach : int;
      (** local index of the cut vertex connecting this block to its
          parent in the block-cut tree, or [-1] for the root block of
          its connected component *)
}

(** [split g] is the list of biconnected components of [g] (isolated
    vertices become singleton blocks), emitted bottom-up: every
    non-root block appears before the block containing its attach
    vertex's other occurrences, so eliminating the blocks in list
    order — each block's non-attach vertices along its own ordering —
    is a valid global elimination. *)
val split : Hd_graph.Graph.t -> block list

(** The subgraph of [g] induced by a block (in local vertex ids). *)
val induced : Hd_graph.Graph.t -> block -> Hd_graph.Graph.t

(** [solve solver budget problem] runs [solver] on every block of
    [problem] and recombines: width = max over blocks, [Exact] iff
    every block was solved exactly, witness orderings stitched at the
    cut vertices.  Instances with at most one block (and runs with
    [~split_blocks:false]) skip straight to the solver with [budget]
    untouched.  Counters: [engine.blocks], [engine.block_skips]. *)
val solve :
  ?split_blocks:bool ->
  ?seed:int ->
  Solver.t ->
  Budget.t ->
  Solver.problem ->
  Solver.result
