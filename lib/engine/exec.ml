type runner = { run_all : (unit -> unit) list -> unit }

let hook : runner option Atomic.t = Atomic.make None
let install r = Atomic.set hook (Some r)
let clear () = Atomic.set hook None
let current () = Atomic.get hook

let with_runner r f =
  let prev = Atomic.get hook in
  Atomic.set hook (Some r);
  Fun.protect ~finally:(fun () -> Atomic.set hook prev) f
