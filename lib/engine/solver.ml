module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph

type outcome = Exact of int | Bounds of { lb : int; ub : int }

type result = {
  outcome : outcome;
  visited : int;
  generated : int;
  elapsed : float;
  ordering : int array option;
}

type kind = Tw | Ghw | Fhw | Hw
type problem = Graph of Graph.t | Hypergraph of Hypergraph.t

type t = {
  name : string;
  kind : kind;
  doc : string;
  run : ?seed:int -> Budget.t -> problem -> result;
}

(* the table is written once at startup but read from racing domains:
   a mutex keeps Hashtbl's invariants safe *)
let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []

let register s =
  Mutex.protect lock (fun () ->
      if not (Hashtbl.mem registry s.name) then order := !order @ [ s.name ];
      Hashtbl.replace registry s.name s)

let find name = Mutex.protect lock (fun () -> Hashtbl.find_opt registry name)

let all () =
  Mutex.protect lock (fun () ->
      List.filter_map (fun n -> Hashtbl.find_opt registry n) !order)

let names () = List.map (fun s -> s.name) (all ())
let kind_name = function Tw -> "tw" | Ghw -> "ghw" | Fhw -> "fhw" | Hw -> "hw"
let primal_of = function Graph g -> g | Hypergraph h -> Hypergraph.primal h

let hypergraph_of = function
  | Graph g -> Hypergraph.of_graph g
  | Hypergraph h -> h

let n_vertices = function
  | Graph g -> Graph.n g
  | Hypergraph h -> Hypergraph.n_vertices h

let value = function Exact w -> w | Bounds { ub; _ } -> ub
let bounds_of = function Exact w -> (w, w) | Bounds { lb; ub } -> (lb, ub)
