module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs

(* cooperative cancellations that actually stopped a solver; see
   docs/OBSERVABILITY.md *)
let c_cancellations = Obs.Counter.make "engine.cancellations"

type spec = { time_limit : float option; max_states : int option }

type t = {
  time_limit : float option;
  max_states : int option;
  flag : bool Atomic.t;
  (* sub-budgets carry their own flag and chain to the parent here:
     cancelling one per-block sub-budget must not cancel the parent or
     any sibling, while a parent cancel still reaches every child *)
  parent : t option;
  inc : Incumbent.t option;
  (* nan until the first start/ticker; CAS so the earliest start wins
     when domains race *)
  started_at : float Atomic.t;
  (* end of the current scheduler slice (nan: not sliced); one cell
     shared by the whole sub-budget tree so a ticker anywhere in a
     sliced solve yields — see step.ml *)
  slice_end : float Atomic.t;
  (* every sub ever created, so pause credits reach running subs *)
  kids : t list Atomic.t;
}

let create ?time_limit ?max_states ?incumbent () =
  {
    time_limit;
    max_states;
    flag = Atomic.make false;
    parent = None;
    inc = incumbent;
    started_at = Atomic.make Float.nan;
    slice_end = Atomic.make Float.nan;
    kids = Atomic.make [];
  }

let of_spec ?incumbent (s : spec) =
  create ?time_limit:s.time_limit ?max_states:s.max_states ?incumbent ()

let time_limit b = b.time_limit
let max_states b = b.max_states
let incumbent b = b.inc

let start b =
  let cur = Atomic.get b.started_at in
  if Float.is_nan cur then
    ignore (Atomic.compare_and_set b.started_at cur (Clock.now ()))

let started b = not (Float.is_nan (Atomic.get b.started_at))

let elapsed b =
  let s = Atomic.get b.started_at in
  if Float.is_nan s then 0.0 else Clock.now () -. s

(* clamped at 0: past the deadline, portfolio members and sub stages
   created from this budget must see an empty share, not inherit a
   [Some negative] limit that would never trip their tickers *)
let remaining b =
  match b.time_limit with
  | None -> None
  | Some limit -> Some (Float.max 0.0 (limit -. elapsed b))

let spec_of b = { time_limit = remaining b; max_states = b.max_states }

let cancel b =
  Atomic.set b.flag true;
  match b.inc with Some i -> Incumbent.cancel i | None -> ()

let rec cancelled b =
  Atomic.get b.flag
  || (match b.inc with
     | Some i -> Incumbent.cancelled i || Incumbent.closed i
     | None -> false)
  || (match b.parent with Some p -> cancelled p | None -> false)

let rec push_kid parent child =
  let cur = Atomic.get parent.kids in
  if not (Atomic.compare_and_set parent.kids cur (child :: cur)) then
    push_kid parent child

let sub ?(stages = 1) b =
  let stages = max 1 stages in
  let child =
    {
      time_limit =
        (match remaining b with
        | None -> None
        | Some r -> Some (r /. float_of_int stages));
      max_states = b.max_states;
      flag = Atomic.make false;
      parent = Some b;
      inc = None;
      started_at = Atomic.make Float.nan;
      slice_end = b.slice_end;
      kids = Atomic.make [];
    }
  in
  push_kid b child;
  child

(* ------------------------------------------------------------------ *)
(* Time-slicing support (driven by Step)                               *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Slice_expired : unit Effect.t

let begin_slice b ~until = Atomic.set b.slice_end until
let end_slice b = Atomic.set b.slice_end Float.nan
let in_slice b = not (Float.is_nan (Atomic.get b.slice_end))

let rec credit_pause b seconds =
  if seconds > 0.0 then begin
    let rec bump () =
      let s = Atomic.get b.started_at in
      if
        (not (Float.is_nan s))
        && not (Atomic.compare_and_set b.started_at s (s +. seconds))
      then bump ()
    in
    bump ();
    List.iter (fun child -> credit_pause child seconds) (Atomic.get b.kids)
  end

(* ------------------------------------------------------------------ *)
(* Amortized checking                                                  *)
(* ------------------------------------------------------------------ *)

type ticker = {
  budget : t;
  t0 : float;
  mutable visited : int;
  mutable generated : int;
  mutable credit : int;  (** checks left before the next clock read *)
  mutable stride : int;  (** current amortization window *)
  mutable last_poll : float;
  mutable stopped : bool;  (** latched once any limit trips *)
}

let max_stride = 1024

(* widen the window while consecutive clock reads land closer together
   than this, shrink it when they land further apart: tight search
   loops converge to ~[max_stride] checks per read, a GA that checks
   once per generation converges back to stride 1 *)
let poll_granularity = 0.002

let ticker b =
  start b;
  let now = Clock.now () in
  {
    budget = b;
    t0 = now;
    visited = 0;
    generated = 0;
    credit = 1;
    stride = 1;
    last_poll = now;
    stopped = false;
  }

let budget tk = tk.budget
let ticker_elapsed tk = Clock.now () -. tk.t0
let tick_visited tk = tk.visited <- tk.visited + 1
let tick_generated tk = tk.generated <- tk.generated + 1
let visited tk = tk.visited
let generated tk = tk.generated

let poll tk =
  let now = Clock.now () in
  let dt = now -. tk.last_poll in
  tk.last_poll <- now;
  if dt < poll_granularity then tk.stride <- min max_stride (tk.stride * 2)
  else tk.stride <- max 1 (tk.stride / 2);
  tk.credit <- tk.stride;
  (* a nan slice_end (not sliced) compares false; the perform suspends
     this very poll — the step runner resumes it after the park, and
     the deadline verdict below is computed with the pre-park [now],
     which the pause credit keeps approximately right *)
  if now > Atomic.get tk.budget.slice_end then Effect.perform Slice_expired;
  match tk.budget.time_limit with
  | Some limit -> now -. Atomic.get tk.budget.started_at > limit
  | None -> false

let out_of_budget tk =
  tk.stopped
  ||
  let b = tk.budget in
  let states_hit =
    match b.max_states with Some m -> tk.generated > m | None -> false
  in
  let cancel_hit = cancelled b in
  let time_hit =
    match b.time_limit with
    | None ->
        (* still poll occasionally: an unlimited budget inside a sliced
           solve must yield too *)
        tk.credit <- tk.credit - 1;
        if tk.credit <= 0 then ignore (poll tk);
        false
    | Some _ ->
        tk.credit <- tk.credit - 1;
        if tk.credit <= 0 then poll tk else false
  in
  if states_hit || cancel_hit || time_hit then begin
    tk.stopped <- true;
    if cancel_hit then Obs.Counter.incr c_cancellations;
    true
  end
  else false

let check tk = if not tk.stopped then ignore (out_of_budget tk)
