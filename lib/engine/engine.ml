let run ?(blocks = true) ?seed solver budget problem =
  Blocks.solve ~split_blocks:blocks ?seed solver budget problem

let run_by_name ?blocks ?seed name budget problem =
  match Solver.find name with
  | Some s -> run ?blocks ?seed s budget problem
  | None ->
      invalid_arg
        (Printf.sprintf "unknown solver %S (available: %s)" name
           (String.concat ", " (Solver.names ())))
