(** The front door: run a registered solver under a budget, with
    block-splitting applied uniformly in front.

    [Engine.run] is what the portfolio members, [Widths.analyze], the
    bench harness and the CLIs call.  See {!Budget}, {!Solver} and
    {!Blocks} for the three layers underneath. *)

(** [run solver budget problem] block-splits [problem] (disable with
    [~blocks:false]) and runs [solver] on each piece under shares of
    [budget]; see {!Blocks.solve}. *)
val run :
  ?blocks:bool ->
  ?seed:int ->
  Solver.t ->
  Budget.t ->
  Solver.problem ->
  Solver.result

(** [run_by_name name budget problem] resolves [name] in the registry
    first.
    @raise Invalid_argument on unknown names, listing the registered
    ones. *)
val run_by_name :
  ?blocks:bool ->
  ?seed:int ->
  string ->
  Budget.t ->
  Solver.problem ->
  Solver.result
