(** Unified anytime-solver budgets: one monotonic deadline, one state
    cap, one cooperative cancellation token.

    Every solver entry point in the tree (A*/BB searches, det-k-decomp,
    the GA/SA/SAIGA drivers, the portfolio) runs under a [Budget.t].
    The budget carries

    - an optional wall-clock limit, measured from the budget's {e
      start} (first use), not its creation — reported [elapsed] times
      therefore cover the run only, never setup work done beforehand;
    - an optional cap on generated states / evaluations;
    - a cancellation flag shared with any number of sub-budgets, and
      optionally an {!Hd_core.Incumbent.t} whose own cancellation and
      closure are honoured too.

    Solvers do not poll the budget directly; they create a {!ticker}
    and call {!out_of_budget} on every step.  The ticker amortizes
    clock reads adaptively: tight search loops widen the polling
    window up to 1024 checks per [Unix] call, while slow tick streams
    (one GA generation per check) shrink it back to one, keeping
    deadline precision at a few milliseconds either way. *)

(** The passive description of a budget — what callers configure.
    [Hd_search.Search_types.budget] is an alias of this type. *)
type spec = {
  time_limit : float option;  (** wall-clock seconds *)
  max_states : int option;  (** cap on generated states *)
}

type t

(** [create ()] makes a fresh, unstarted budget. *)
val create :
  ?time_limit:float -> ?max_states:int -> ?incumbent:Hd_core.Incumbent.t ->
  unit -> t

(** [of_spec spec] is [create] from a {!spec}. *)
val of_spec : ?incumbent:Hd_core.Incumbent.t -> spec -> t

(** The limits as a {!spec}; [time_limit] is the {e remaining} time
    when the budget has started. *)
val spec_of : t -> spec

val time_limit : t -> float option
val max_states : t -> int option
val incumbent : t -> Hd_core.Incumbent.t option

(** [start b] starts the clock if it has not started yet (first call
    wins; later calls are no-ops).  Creating a {!ticker} starts the
    budget implicitly. *)
val start : t -> unit

(** [started b] holds once the clock is running. *)
val started : t -> bool

(** Seconds since [start]; [0.] on an unstarted budget. *)
val elapsed : t -> float

(** Seconds left before the deadline ([None] when unlimited).  On an
    unstarted budget this is the full limit; clamped at [0.] once the
    deadline has passed, so specs and sub-budgets derived after expiry
    carry an empty share rather than a negative limit. *)
val remaining : t -> float option

(** [cancel b] trips [b]'s own cancellation flag — observed by every
    sub-budget below it — and cancels the attached incumbent, if any.
    Cancelling a sub-budget never cancels its parent or siblings. *)
val cancel : t -> unit

(** [cancelled b] holds after [cancel b], after a cancel of any
    ancestor budget, and when the attached incumbent was cancelled or
    closed by another racer. *)
val cancelled : t -> bool

(** [sub ~stages b] is a child budget holding an equal share of [b]'s
    remaining time for the next of [stages] sequential stages.  Time a
    stage leaves unspent automatically rolls over: the next [sub] call
    divides a larger remainder.  The child has its own cancellation
    flag that ORs in [b]'s (a cancelled parent stops every child; a
    cancelled child stops only itself) and does {e not} inherit [b]'s
    incumbent (bounds from one sub-problem must not prune another);
    pass the work's own incumbent explicitly if it has one.  The state
    cap is inherited as-is. *)
val sub : ?stages:int -> t -> t

(** {2 Time-slicing support}

    The hooks {!Step} drives; solver code never calls these.  While a
    slice deadline is set (one cell shared by the whole sub-budget
    tree), any ticker poll past the deadline performs [Slice_expired],
    suspending the solve for the step runner to park and later
    resume. *)

(** Performed by a ticker poll when the current slice has expired.
    Only ever performed while a slice deadline is set — i.e. under a
    {!Step.slice} handler. *)
type _ Effect.t += Slice_expired : unit Effect.t

(** [begin_slice b ~until] arms the slice deadline (an absolute
    {!Clock} time) for [b] and all its sub-budgets. *)
val begin_slice : t -> until:float -> unit

(** [end_slice b] disarms the slice deadline. *)
val end_slice : t -> unit

(** [in_slice b] is true while a slice deadline is armed on [b] (or
    anywhere in its sub-budget tree — the cell is shared).  Parallel
    layers check this before forking: a solve running under a
    {!Step.slice} must stay on its own domain, because the
    [Slice_expired] handler lives there. *)
val in_slice : t -> bool

(** [credit_pause b seconds] shifts the start times of [b] and every
    sub-budget [seconds] into the future, so time spent parked between
    slices does not count against the deadline: sliced budgets measure
    {e compute} time, not queue time. *)
val credit_pause : t -> float -> unit

(** {2 Amortized budget checking} *)

type ticker

(** [ticker b] starts [b] (if needed) and returns a fresh per-run
    ticker.  Tickers are single-domain; make one per worker. *)
val ticker : t -> ticker

val budget : ticker -> t

(** [out_of_budget tk] — the per-step check.  [true] once the deadline
    passed, the state cap was exceeded, or the budget was cancelled;
    the answer latches, so callers may keep polling cheaply after the
    first [true].  Clock reads are amortized adaptively. *)
val out_of_budget : ticker -> bool

(** [check tk] is [ignore (out_of_budget tk)] — advances the amortized
    clock so a later [out_of_budget] sees a fresh verdict.  Wrap hot
    inner callbacks (e.g. GA fitness evaluations) with it. *)
val check : ticker -> unit

(** Seconds since the ticker was created. *)
val ticker_elapsed : ticker -> float

(** Counters mirrored into the [result] record by the searches. *)
val tick_visited : ticker -> unit

val tick_generated : ticker -> unit
val visited : ticker -> int
val generated : ticker -> int
