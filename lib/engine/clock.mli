(** The engine's single wall-clock source.

    Every budget, deadline and timing measurement in the tree goes
    through [now], which clamps the operating-system time to be
    non-decreasing across the whole process (a backward NTP step
    freezes the clock instead of producing negative elapsed times —
    the failure mode the old per-module [Unix.gettimeofday] calls were
    exposed to).  Outside [lib/engine] and [lib/obs] no module calls
    [Unix.gettimeofday] directly; a test greps for offenders. *)

(** [now ()] is the current time in seconds, monotonically
    non-decreasing within this process. *)
val now : unit -> float

(** [time f] runs [f ()] and returns its result together with the
    elapsed wall-clock seconds. *)
val time : (unit -> 'a) -> 'a * float
