module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Chordal = Hd_graph.Chordal
module Hypergraph = Hd_hypergraph.Hypergraph
module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs

let c_blocks = Obs.Counter.make "engine.blocks"
let c_block_skips = Obs.Counter.make "engine.block_skips"

type block = { vertices : int array; attach : int }

(* ------------------------------------------------------------------ *)
(* Biconnected components (iterative Hopcroft–Tarjan on an edge stack) *)
(* ------------------------------------------------------------------ *)

let split g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let estack = ref [] in
  (* (sorted global vertices, global attach) — newest first *)
  let raw = ref [] in
  let emit ~attach edges =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (a, b) ->
        Hashtbl.replace tbl a ();
        Hashtbl.replace tbl b ())
      edges;
    let vs =
      List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])
    in
    raw := (Array.of_list vs, attach) :: !raw
  in
  (* pop every edge pushed since the tree edge (u, v), inclusive: those
     are exactly one biconnected component, attached at u *)
  let pop_block u v =
    let rec pop acc =
      match !estack with
      | [] -> acc
      | (a, b) :: tl ->
          estack := tl;
          let acc = (a, b) :: acc in
          if a = u && b = v then acc else pop acc
    in
    emit ~attach:u (pop [])
  in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      let before = !raw in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      let stack = ref [ (root, -1, ref (Graph.neighbors g root)) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, parent, rest) :: up -> (
            match !rest with
            | [] -> (
                stack := up;
                match up with
                | (u, _, _) :: _ ->
                    if low.(v) < low.(u) then low.(u) <- low.(v);
                    if low.(v) >= disc.(u) then pop_block u v
                | [] -> ())
            | w :: tl ->
                rest := tl;
                if disc.(w) < 0 then begin
                  disc.(w) <- !timer;
                  low.(w) <- !timer;
                  incr timer;
                  estack := (v, w) :: !estack;
                  stack := (w, v, ref (Graph.neighbors g w)) :: !stack
                end
                else if w <> parent && disc.(w) < disc.(v) then begin
                  estack := (v, w) :: !estack;
                  if disc.(w) < low.(v) then low.(v) <- disc.(w)
                end)
      done;
      if !raw == before then
        (* isolated vertex: its own edgeless block *)
        raw := ([| root |], -1) :: !raw
      else
        (* the component's last-popped block contains [root]: it roots
           the block-cut tree and has no parent cut vertex *)
        match !raw with
        | (vs, _) :: tl -> raw := (vs, -1) :: tl
        | [] -> assert false
    end
  done;
  List.rev_map
    (fun (vertices, attach) ->
      let attach =
        if attach < 0 then -1
        else begin
          let i = ref 0 in
          while vertices.(!i) <> attach do
            incr i
          done;
          !i
        end
      in
      { vertices; attach })
    !raw

(* ------------------------------------------------------------------ *)
(* Sub-problem extraction                                              *)
(* ------------------------------------------------------------------ *)

(* scratch global->local map, stamped per block *)
let with_local_ids n bl f =
  let local = Array.make n (-1) in
  Array.iteri (fun i v -> local.(v) <- i) bl.vertices;
  f local

let induced_with_local g bl local =
  let nb = Array.length bl.vertices in
  let sub = Graph.create nb in
  Array.iteri
    (fun i v ->
      List.iter
        (fun w ->
          (* any edge between two block vertices belongs to this block:
             two blocks share at most one vertex *)
          if local.(w) > i then Graph.add_edge sub i local.(w))
        (Graph.neighbors g v))
    bl.vertices;
  sub

let induced g bl =
  with_local_ids (Graph.n g) bl (fun local -> induced_with_local g bl local)

(* the hyperedges lying entirely inside the block, relabelled: every
   hyperedge is a primal clique and hence inside exactly one block
   (singleton edges may repeat across the blocks of a cut vertex,
   which is harmless) *)
let induced_hypergraph h bl local =
  let nb = Array.length bl.vertices in
  let edges = ref [] in
  for e = Hypergraph.n_edges h - 1 downto 0 do
    let vs = Hypergraph.edge h e in
    if
      Array.length vs > 0
      && Array.for_all (fun v -> local.(v) >= 0) vs
    then edges := Array.to_list (Array.map (fun v -> local.(v)) vs) :: !edges
  done;
  Hypergraph.create ~n:nb !edges

(* ------------------------------------------------------------------ *)
(* Witness recombination                                               *)
(* ------------------------------------------------------------------ *)

(* [reroot bg sigma ~attach] turns an elimination ordering of the block
   graph [bg] into one of no larger width that eliminates [attach]
   last: collect sigma's fill-in, then run maximum cardinality search
   on the (chordal) filled graph starting from [attach].  Any MCS of a
   chordal graph is a perfect elimination ordering, and every PEO of
   the filled graph has width = clique number - 1 = width of [sigma]. *)
let reroot bg sigma ~attach =
  let nb = Array.length sigma in
  if nb = 0 || sigma.(0) = attach then sigma
  else begin
    let eg = Elim_graph.of_graph bg in
    let fill = ref [] in
    for i = nb - 1 downto 0 do
      Elim_graph.eliminate eg sigma.(i);
      match Elim_graph.last_step eg with
      | Some step -> fill := step.Elim_graph.fill @ !fill
      | None -> ()
    done;
    let filled = Graph.copy bg in
    List.iter (fun (a, b) -> Graph.add_edge filled a b) !fill;
    Chordal.mcs_ordering ~start:attach filled
  end

(* ------------------------------------------------------------------ *)
(* The block-splitting driver                                          *)
(* ------------------------------------------------------------------ *)

let trivial_ub (s : Solver.t) p =
  match s.Solver.kind with
  | Solver.Tw -> max 0 (Solver.n_vertices p - 1)
  | Solver.Ghw | Solver.Fhw | Solver.Hw ->
      max 1 (Hypergraph.n_edges (Solver.hypergraph_of p))

(* Fork the per-block solves through the installed Exec runner.  Each
   task gets its own scratch arrays and an equal-share sub-budget
   (created up front: under state-only budgets these are identical to
   the sequential path's, so results match it exactly; under time
   budgets the shares are remaining/nb instead of the sequential
   decreasing split).  The combine pass below mirrors the sequential
   one, walking blocks in index order so stitching is deterministic
   regardless of which domain solved what. *)
let solve_par (r : Exec.runner) ?seed (s : Solver.t) (b : Budget.t) p g bls =
  let (combined : Solver.result), secs =
    Clock.time @@ fun () ->
    let n = Graph.n g in
    let bls = Array.of_list bls in
    let nb = Array.length bls in
    Obs.Counter.add c_blocks nb;
    let subs = Array.map (fun _ -> Budget.sub ~stages:nb b) bls in
    let results = Array.make nb None in
    r.Exec.run_all
      (List.init nb (fun i () ->
           if not (Budget.cancelled b) then
             Step.unsliced @@ fun () ->
             let bl = bls.(i) in
             let local = Array.make n (-1) in
             Array.iteri (fun j v -> local.(v) <- j) bl.vertices;
             let bg = induced_with_local g bl local in
             let subp =
               match p with
               | Solver.Graph _ -> Solver.Graph bg
               | Solver.Hypergraph h ->
                   Solver.Hypergraph (induced_hypergraph h bl local)
             in
             results.(i) <- Some (bg, s.Solver.run ?seed subs.(i) subp)));
    let visited = ref 0 and generated = ref 0 in
    let lb = ref 0 and ub = ref 0 in
    let all_exact = ref true in
    let complete = ref true in
    let sigma = ref (Some (Array.make n (-1))) in
    let pos = ref (n - 1) in
    Array.iteri
      (fun i bl ->
        match results.(i) with
        | None ->
            complete := false;
            all_exact := false;
            sigma := None
        | Some (bg, res) ->
            visited := !visited + res.Solver.visited;
            generated := !generated + res.Solver.generated;
            let l, u = Solver.bounds_of res.Solver.outcome in
            lb := max !lb l;
            ub := max !ub u;
            (match res.Solver.outcome with
            | Solver.Exact _ -> ()
            | Solver.Bounds _ -> all_exact := false);
            (match (res.Solver.ordering, !sigma) with
            | Some bsigma, Some out
              when Array.length bsigma = Array.length bl.vertices ->
                let bsigma =
                  if bl.attach >= 0 then reroot bg bsigma ~attach:bl.attach
                  else bsigma
                in
                let stop = if bl.attach >= 0 then 1 else 0 in
                for j = Array.length bsigma - 1 downto stop do
                  out.(!pos) <- bl.vertices.(bsigma.(j));
                  decr pos
                done
            | _ -> sigma := None))
      bls;
    if !pos >= 0 then sigma := None;
    let ordering = !sigma in
    let outcome =
      if not !complete then begin
        let fallback = max !lb (trivial_ub s p) in
        Solver.Bounds { lb = !lb; ub = fallback }
      end
      else if !all_exact && !lb = !ub then Solver.Exact !ub
      else Solver.Bounds { lb = min !lb !ub; ub = !ub }
    in
    (match Budget.incumbent b with
    | None -> ()
    | Some inc ->
        (match (outcome, ordering) with
        | (Solver.Exact w | Solver.Bounds { ub = w; _ }), Some wit ->
            ignore (Incumbent.offer_ub inc ~witness:wit w)
        | _ -> ());
        let l, _ = Solver.bounds_of outcome in
        ignore (Incumbent.raise_lb inc l));
    {
      Solver.outcome;
      visited = !visited;
      generated = !generated;
      elapsed = 0.0;
      ordering;
    }
  in
  { combined with Solver.elapsed = secs }

let solve ?(split_blocks = true) ?seed (s : Solver.t) (b : Budget.t) p =
  Budget.start b;
  let g = Solver.primal_of p in
  let bls = if split_blocks then split g else [] in
  match bls with
  | [] | [ _ ] ->
      Obs.Counter.incr c_block_skips;
      s.Solver.run ?seed b p
  | bls when Exec.current () <> None && not (Budget.in_slice b) ->
      (* a runner is installed and no slice deadline is armed on this
         budget tree: blocks may leave this domain.  Inside a sliced
         solve (the server's jobs) the sequential path below runs —
         the Slice_expired handler lives on the slicing domain. *)
      let r = Option.get (Exec.current ()) in
      solve_par r ?seed s b p g bls
  | bls ->
      let (combined : Solver.result), secs =
        Clock.time @@ fun () ->
        let n = Graph.n g in
        let nb = List.length bls in
        Obs.Counter.add c_blocks nb;
        let visited = ref 0 and generated = ref 0 in
        let lb = ref 0 and ub = ref 0 in
        let all_exact = ref true in
        (* true while every block so far was actually attempted *)
        let complete = ref true in
        (* the stitched global ordering, filled back to front (first
           elimination at index n-1); [None] once any block lacks one *)
        let sigma = ref (Some (Array.make n (-1))) in
        let pos = ref (n - 1) in
        let local = Array.make n (-1) in
        List.iteri
          (fun i bl ->
            if Budget.cancelled b then begin
              complete := false;
              all_exact := false;
              sigma := None
            end
            else begin
              Array.iteri (fun j v -> local.(v) <- j) bl.vertices;
              let bg = induced_with_local g bl local in
              let subp =
                match p with
                | Solver.Graph _ -> Solver.Graph bg
                | Solver.Hypergraph h ->
                    Solver.Hypergraph (induced_hypergraph h bl local)
              in
              let sub_budget = Budget.sub ~stages:(nb - i) b in
              let r = s.Solver.run ?seed sub_budget subp in
              visited := !visited + r.Solver.visited;
              generated := !generated + r.Solver.generated;
              let l, u = Solver.bounds_of r.Solver.outcome in
              lb := max !lb l;
              ub := max !ub u;
              (match r.Solver.outcome with
              | Solver.Exact _ -> ()
              | Solver.Bounds _ -> all_exact := false);
              (match (r.Solver.ordering, !sigma) with
              | Some bsigma, Some out when Array.length bsigma = Array.length bl.vertices ->
                  let bsigma =
                    if bl.attach >= 0 then reroot bg bsigma ~attach:bl.attach
                    else bsigma
                  in
                  (* non-root blocks leave their attach vertex to the
                     parent block, where it is eliminated later *)
                  let stop = if bl.attach >= 0 then 1 else 0 in
                  for j = Array.length bsigma - 1 downto stop do
                    out.(!pos) <- bl.vertices.(bsigma.(j));
                    decr pos
                  done
              | _ -> sigma := None);
              Array.iter (fun v -> local.(v) <- -1) bl.vertices
            end)
          bls;
        if !pos >= 0 then sigma := None;
        let ordering = !sigma in
        let outcome =
          if not !complete then begin
            let fallback = max !lb (trivial_ub s p) in
            Solver.Bounds { lb = !lb; ub = fallback }
          end
          else if !all_exact && !lb = !ub then Solver.Exact !ub
          else Solver.Bounds { lb = min !lb !ub; ub = !ub }
        in
        (* restore the portfolio contract: combined bounds and witness
           flow to the caller's incumbent *)
        (match Budget.incumbent b with
        | None -> ()
        | Some inc ->
            (match (outcome, ordering) with
            | (Solver.Exact w | Solver.Bounds { ub = w; _ }), Some wit ->
                ignore (Incumbent.offer_ub inc ~witness:wit w)
            | _ -> ());
            let l, _ = Solver.bounds_of outcome in
            ignore (Incumbent.raise_lb inc l));
        {
          Solver.outcome;
          visited = !visited;
          generated = !generated;
          elapsed = 0.0;
          ordering;
        }
      in
      { combined with Solver.elapsed = secs }
