(* A pair of global bounds shared by concurrently running solvers.

   Both bounds and the witness live in ONE immutable record inside a
   single [Atomic.t], updated by compare-and-set retry loops.  Readers
   therefore always observe a consistent (lb, ub, witness) triple —
   with separate atomics a reader could pair a fresh lb with a stale ub
   and wrongly conclude lb >= ub.  Contention is negligible: solvers
   update bounds a handful of times per run but read them on every
   node, and uncontended atomic reads are plain loads. *)

type packed = { lb : int; ub : int; witness : int array option }

type t = { state : packed Atomic.t; cancelled : bool Atomic.t }

let create ?(lb = 0) ?(ub = max_int) () =
  if lb > ub then invalid_arg "Incumbent.create: lb > ub";
  {
    state = Atomic.make { lb; ub; witness = None };
    cancelled = Atomic.make false;
  }

let lb t = (Atomic.get t.state).lb
let ub t = (Atomic.get t.state).ub

let bounds t =
  let s = Atomic.get t.state in
  (s.lb, s.ub)

let witness t = (Atomic.get t.state).witness

let offer_ub t ?witness w =
  (* copy before the retry loop: the caller may go on mutating its
     ordering buffer, while the published array must stay frozen *)
  let witness = Option.map Array.copy witness in
  let rec go () =
    let cur = Atomic.get t.state in
    if w >= cur.ub then false
    else
      let witness = match witness with Some _ -> witness | None -> cur.witness in
      if Atomic.compare_and_set t.state cur { cur with ub = w; witness } then
        true
      else go ()
  in
  go ()

let rec raise_lb t w =
  let cur = Atomic.get t.state in
  if w <= cur.lb then false
  else if Atomic.compare_and_set t.state cur { cur with lb = w } then true
  else raise_lb t w

let closed t =
  let s = Atomic.get t.state in
  s.lb >= s.ub

let cancel t = Atomic.set t.cancelled true
let cancelled t = Atomic.get t.cancelled

let pp ppf t =
  let s = Atomic.get t.state in
  Format.fprintf ppf "[%d, %s]%s" s.lb
    (if s.ub = max_int then "inf" else string_of_int s.ub)
    (if Atomic.get t.cancelled then " cancelled" else "")
