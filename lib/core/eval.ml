module Bitset = Hd_graph.Bitset
module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover
module Obs = Hd_obs.Obs

(* Same counter names as Set_cover's own memo (Obs counters are shared
   by name), so every set-cover memo in the system reports into one
   pair of counters. *)
let c_memo_hits = Obs.Counter.make "setcover.memo_hits"
let c_memo_misses = Obs.Counter.make "setcover.memo_misses"

(* The fractional (LP) memo reports separately: its entries are exact
   rationals, not integral cover sizes, and live in their own table. *)
let c_lp_memo_hits = Obs.Counter.make "lp.memo_hits"
let c_lp_memo_misses = Obs.Counter.make "lp.memo_misses"

(* Bags keyed by content: canonical FNV over the sorted vertices, full
   equality on collision.  One table per workspace — workspaces are
   never shared across domains (see hd_parallel), so the memo needs no
   locking. *)
module Bag_tbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.fnv_hash
end)

type t = {
  n : int;
  base : int array array; (* original adjacency lists *)
  hypergraph : Hypergraph.t option;
  (* reusable buffers *)
  adj : int array array ref; (* growable working adjacency *)
  len : int array; (* live prefix length of each working list *)
  pos : int array; (* vertex -> position in current sigma *)
  stamp : int array; (* dedup marks, versioned by clock *)
  mutable clock : int;
  bag : Bitset.t; (* scratch bag for set covering *)
  greedy_memo : int Bag_tbl.t; (* bag -> greedy cover size *)
  exact_memo : int Bag_tbl.t; (* bag -> optimal cover size *)
  (* bag -> exact rho*.  A separate, Rat-valued table: integral and
     fractional cover costs must never share memo entries — the same
     bag legitimately has rho* < exact cover size (triangle: 3/2 vs
     2), so a shared int table would corrupt one mode or the other. *)
  frac_memo : Hd_lp.Rat.t Bag_tbl.t;
}

let make n base hypergraph =
  {
    n;
    base;
    hypergraph;
    adj = ref (Array.map Array.copy base);
    len = Array.make n 0;
    pos = Array.make n 0;
    stamp = Array.make n (-1);
    clock = 0;
    bag = Bitset.create (max n 1);
    greedy_memo = Bag_tbl.create 512;
    exact_memo = Bag_tbl.create 512;
    frac_memo = Bag_tbl.create 512;
  }

let reset_memo t =
  Bag_tbl.reset t.greedy_memo;
  Bag_tbl.reset t.exact_memo;
  Bag_tbl.reset t.frac_memo

(* memoise [cover] on bag contents: the same bag recurs massively both
   within one ordering's evaluation (bags of near-identical suffixes)
   and across the orderings of a GA population or best_of sweep *)
let memoized table cover universe =
  match Bag_tbl.find_opt table universe with
  | Some w ->
      Obs.Counter.incr c_memo_hits;
      w
  | None ->
      Obs.Counter.incr c_memo_misses;
      let w = cover universe in
      Bag_tbl.add table (Bitset.copy universe) w;
      w

let of_graph g =
  let n = Graph.n g in
  make n (Array.init n (fun v -> Array.of_list (Graph.neighbors g v))) None

let of_hypergraph h =
  let g = Hypergraph.primal h in
  let n = Graph.n g in
  make n
    (Array.init n (fun v -> Array.of_list (Graph.neighbors g v)))
    (Some h)

let reset t sigma =
  if Array.length sigma <> t.n then invalid_arg "Eval: ordering length mismatch";
  let adj = !(t.adj) in
  for v = 0 to t.n - 1 do
    let b = t.base.(v) in
    let k = Array.length b in
    if Array.length adj.(v) < k then adj.(v) <- Array.copy b
    else Array.blit b 0 adj.(v) 0 k;
    t.len.(v) <- k
  done;
  Array.iteri (fun i v -> t.pos.(v) <- i) sigma

let append t u x =
  let adj = !(t.adj) in
  let row = adj.(u) in
  let k = t.len.(u) in
  if k >= Array.length row then begin
    let bigger = Array.make (max 8 (2 * Array.length row)) 0 in
    Array.blit row 0 bigger 0 k;
    adj.(u) <- bigger
  end;
  adj.(u).(k) <- x;
  t.len.(u) <- k + 1

(* Compute the elimination neighbourhood X of sigma.(i): the distinct
   not-yet-eliminated entries of the working adjacency list.  Returns
   |X| and leaves X's members stamped with the current clock; [collect]
   receives each member once. *)
let scan t i v ~collect =
  t.clock <- t.clock + 1;
  let adj = !(t.adj) in
  let row = adj.(v) in
  let size = ref 0 in
  for j = 0 to t.len.(v) - 1 do
    let x = row.(j) in
    if t.pos.(x) < i && t.stamp.(x) <> t.clock then begin
      t.stamp.(x) <- t.clock;
      incr size;
      collect x
    end
  done;
  !size

(* Propagate X (stamped, gathered in [members]) to the bucket of the
   member eliminated next, i.e. with the largest position. *)
let propagate t members =
  match members with
  | [] -> ()
  | first :: _ ->
      let u =
        List.fold_left
          (fun acc x -> if t.pos.(x) > t.pos.(acc) then x else acc)
          first members
      in
      List.iter (fun x -> if x <> u then append t u x) members

let tw_width t sigma =
  reset t sigma;
  let width = ref 0 in
  let i = ref (t.n - 1) in
  (* once width >= i, no later bag (of at most i vertices besides the
     eliminated one... in fact at most i members) can increase it *)
  while !width < !i do
    let v = sigma.(!i) in
    let members = ref [] in
    let size = scan t !i v ~collect:(fun x -> members := x :: !members) in
    if size > !width then width := size;
    propagate t !members;
    decr i
  done;
  !width

let cover_width t cover v members =
  Bitset.clear t.bag;
  Bitset.add t.bag v;
  List.iter (Bitset.add t.bag) members;
  cover t.bag

let ghw_of_sigma t sigma ~cover =
  (match t.hypergraph with
  | None -> invalid_arg "Eval.ghw_width: workspace lacks a hypergraph"
  | Some _ -> ());
  reset t sigma;
  let width = ref 0 in
  let i = ref (t.n - 1) in
  (* a bag at step i has at most i + 1 vertices, hence cover size at
     most i + 1 *)
  while !i >= 0 && !width < !i + 1 do
    let v = sigma.(!i) in
    let members = ref [] in
    let _size = scan t !i v ~collect:(fun x -> members := x :: !members) in
    let w = cover_width t cover v !members in
    if w > !width then width := w;
    propagate t !members;
    decr i
  done;
  !width

let hypergraph_exn t =
  match t.hypergraph with
  | Some h -> h
  | None -> invalid_arg "Eval: workspace lacks a hypergraph"

let ghw_width ?rng t sigma =
  let h = hypergraph_exn t in
  ghw_of_sigma t sigma
    ~cover:
      (memoized t.greedy_memo (fun universe ->
           Set_cover.greedy_size ?rng { universe; hypergraph = h }))

let ghw_width_exact ?cache t sigma =
  let h = hypergraph_exn t in
  match cache with
  | Some _ ->
      (* caller-supplied table (the search engines share one across
         workspaces): keep the historical Set_cover-level memo *)
      ghw_of_sigma t sigma ~cover:(fun universe ->
          Set_cover.exact_size ?cache { universe; hypergraph = h })
  | None ->
      ghw_of_sigma t sigma
        ~cover:
          (memoized t.exact_memo (fun universe ->
               Set_cover.exact_size { universe; hypergraph = h }))

(* as [memoized], but for the Rat-valued LP memo with its own counters *)
let memoized_frac table cover universe =
  match Bag_tbl.find_opt table universe with
  | Some w ->
      Obs.Counter.incr c_lp_memo_hits;
      w
  | None ->
      Obs.Counter.incr c_lp_memo_misses;
      let w = cover universe in
      Bag_tbl.add table (Bitset.copy universe) w;
      w

let fhw_width_q t sigma =
  let module Rat = Hd_lp.Rat in
  let h = hypergraph_exn t in
  reset t sigma;
  let width = ref Rat.zero in
  let i = ref (t.n - 1) in
  (* a bag at step i has at most i + 1 vertices, and rho* never exceeds
     the bag size, so once width >= i + 1 no later bag can raise it *)
  while !i >= 0 && Rat.compare_int !width (!i + 1) < 0 do
    let v = sigma.(!i) in
    let members = ref [] in
    let _size = scan t !i v ~collect:(fun x -> members := x :: !members) in
    Bitset.clear t.bag;
    Bitset.add t.bag v;
    List.iter (Bitset.add t.bag) !members;
    let rho =
      memoized_frac t.frac_memo
        (fun universe ->
          Hd_setcover.Fractional.cover_value { Set_cover.universe; hypergraph = h })
        t.bag
    in
    if Rat.compare rho !width > 0 then width := rho;
    propagate t !members;
    decr i
  done;
  !width

let fhw_width t sigma = Hd_lp.Rat.to_float (fhw_width_q t sigma)

let weighted_width t ~domain_sizes sigma =
  if Array.length domain_sizes <> t.n then
    invalid_arg "Eval.weighted_width: domain_sizes length mismatch";
  reset t sigma;
  let total = ref 0.0 in
  for i = t.n - 1 downto 0 do
    let v = sigma.(i) in
    let product = ref (float_of_int domain_sizes.(v)) in
    let members = ref [] in
    let _size =
      scan t i v ~collect:(fun x ->
          members := x :: !members;
          product := !product *. float_of_int domain_sizes.(x))
    in
    total := !total +. !product;
    propagate t !members
  done;
  log !total /. log 2.0
