(** (Generalized) hypertree decompositions in a .td-style interchange
    format.

    The PACE .td format extended with one [l] line per node listing its
    lambda label — the hyperedge indices covering the bag:

    {[ c optional comments
       s ghd <num_bags> <width> <num_vertices> <num_hyperedges>
       b <bag_id> <v1> <v2> ...      (bag ids and vertices 1-based)
       l <bag_id> <e1> <e2> ...      (hyperedge indices, 1-based)
       <bag_id> <bag_id>             (tree edges)                 ]}

    [hd_decompose -m hw -o out.ghd] writes it and [hd_validate] checks
    it (GHD conditions plus the descendant/special condition). *)

(** [to_string ~n_vertices ~n_edges ghd] renders [ghd]; the counts
    record the underlying hypergraph's dimensions in the header. *)
val to_string : n_vertices:int -> n_edges:int -> Ghd.t -> string

(** [parse_string text] parses a .ghd file (rooted at the first bag).
    @raise Failure on malformed input or a disconnected edge set. *)
val parse_string : string -> Ghd.t

val write_file : string -> n_vertices:int -> n_edges:int -> Ghd.t -> unit
val parse_file : string -> Ghd.t
