module Bitset = Hd_graph.Bitset

let to_string ~n_vertices ~n_edges ghd =
  let td = ghd.Ghd.td in
  let buf = Buffer.create 1024 in
  let k = Tree_decomposition.n_nodes td in
  Buffer.add_string buf
    (Printf.sprintf "s ghd %d %d %d %d\n" k (Ghd.width ghd) n_vertices n_edges);
  Array.iteri
    (fun i b ->
      Buffer.add_string buf (Printf.sprintf "b %d" (i + 1));
      Bitset.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (v + 1))) b;
      Buffer.add_char buf '\n')
    td.Tree_decomposition.bags;
  Array.iteri
    (fun i edges ->
      Buffer.add_string buf (Printf.sprintf "l %d" (i + 1));
      Array.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf " %d" (e + 1)))
        edges;
      Buffer.add_char buf '\n')
    ghd.Ghd.lambda;
  List.iter
    (fun (child, parent) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" (child + 1) (parent + 1)))
    (Tree_decomposition.edges td);
  Buffer.contents buf

let parse_string text =
  let n_bags = ref (-1) and n_vertices = ref 0 and n_edges = ref 0 in
  let bags = ref [] and labels = ref [] and tree_edges = ref [] in
  let handle lineno line =
    let line = String.trim line in
    if line = "" then ()
    else
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | "c" :: _ -> ()
      | [ "s"; "ghd"; bags'; _width; vertices; edges ] ->
          if !n_bags >= 0 then failwith "Ghd_io: duplicate solution line";
          n_bags := int_of_string bags';
          n_vertices := int_of_string vertices;
          n_edges := int_of_string edges
      | "b" :: id :: vs ->
          bags :=
            (int_of_string id - 1, List.map (fun v -> int_of_string v - 1) vs)
            :: !bags
      | "l" :: id :: es ->
          labels :=
            (int_of_string id - 1, List.map (fun e -> int_of_string e - 1) es)
            :: !labels
      | [ a; b ] ->
          tree_edges := (int_of_string a - 1, int_of_string b - 1) :: !tree_edges
      | _ -> failwith (Printf.sprintf "Ghd_io: bad line %d: %s" lineno line)
  in
  String.split_on_char '\n' text |> List.iteri handle;
  if !n_bags < 0 then failwith "Ghd_io: missing solution line";
  let k = !n_bags in
  let bag_sets =
    Array.init (max k 1) (fun _ -> Bitset.create (max !n_vertices 1))
  in
  List.iter
    (fun (id, vs) ->
      if id < 0 || id >= k then failwith "Ghd_io: bag id out of range";
      List.iter
        (fun v ->
          if v < 0 || v >= !n_vertices then
            failwith "Ghd_io: vertex out of range";
          Bitset.add bag_sets.(id) v)
        vs)
    !bags;
  let lambda = Array.make (max k 1) [||] in
  List.iter
    (fun (id, es) ->
      if id < 0 || id >= k then failwith "Ghd_io: label id out of range";
      List.iter
        (fun e ->
          if e < 0 || e >= !n_edges then
            failwith "Ghd_io: hyperedge out of range")
        es;
      lambda.(id) <- Array.of_list es)
    !labels;
  (* root at bag 0 and orient the undirected tree edges by BFS, as
     Td_io does *)
  let adjacency = Array.make (max k 1) [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= k || b < 0 || b >= k then
        failwith "Ghd_io: edge endpoint out of range";
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    !tree_edges;
  let parent = Array.make (max k 1) (-2) in
  if k > 0 then begin
    let queue = Queue.create () in
    Queue.push 0 queue;
    parent.(0) <- -1;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun j ->
          if parent.(j) = -2 then begin
            parent.(j) <- i;
            Queue.push j queue
          end)
        adjacency.(i)
    done;
    Array.iteri
      (fun i p -> if p = -2 then failwith (Printf.sprintf "Ghd_io: bag %d disconnected" (i + 1)))
      parent
  end;
  let td = Tree_decomposition.make ~bags:bag_sets ~parent in
  Ghd.make ~td ~lambda

let write_file path ~n_vertices ~n_edges ghd =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~n_vertices ~n_edges ghd))

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
