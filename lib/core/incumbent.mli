(** A shared, domain-safe incumbent: the best lower bound, best upper
    bound and best witness ordering found so far by {e any} of a set of
    concurrently running solvers.

    The hd_parallel portfolio hands one incumbent to every solver it
    races.  Each solver prunes against {!ub} instead of a private
    reference, so an improvement found by one domain immediately
    tightens every other domain's search; {!raise_lb} lets best-first
    solvers publish frontier lower bounds the same way.  The race is
    over when the incumbent {!closed} ([lb >= ub]) or is {!cancel}led.

    All three fields live in a single [Atomic.t] holding an immutable
    record, updated by compare-and-set loops — readers always see a
    mutually consistent (lb, ub, witness) triple, which separate atomic
    cells could not guarantee.  See {e docs/PARALLELISM.md}. *)

type t

val create : ?lb:int -> ?ub:int -> unit -> t
(** [create ()] is a fresh incumbent with bounds [(0, max_int)] and no
    witness.  @raise Invalid_argument when [lb > ub]. *)

val lb : t -> int
(** Best published lower bound. *)

val ub : t -> int
(** Best published upper bound; pruning threshold for every solver. *)

val bounds : t -> int * int
(** [(lb, ub)] read from one atomic snapshot (consistent pair). *)

val witness : t -> int array option
(** An elimination ordering achieving {!ub}, when some solver supplied
    one.  The array is frozen — do not mutate it. *)

val offer_ub : t -> ?witness:int array -> int -> bool
(** [offer_ub t ~witness w] publishes upper bound [w] (with an ordering
    achieving it) if it beats the current {!ub}.  The witness is copied
    once; the caller keeps ownership of its buffer.  Returns [true]
    when the incumbent improved, [false] when someone else got there
    first — losing a race is not an error. *)

val raise_lb : t -> int -> bool
(** [raise_lb t w] publishes lower bound [w] if it beats the current
    {!lb}.  Only sound for {e global} lower bounds (root heuristic
    bounds, A* frontier f-values) — a DFS branch bound is not one. *)

val closed : t -> bool
(** [closed t] is [lb >= ub]: optimality is proved, every racer should
    return. *)

val cancel : t -> unit
(** Ask every solver sharing [t] to stop at its next check.  Used by
    the portfolio once a winner finished, and by timeouts. *)

val cancelled : t -> bool

val pp : Format.formatter -> t -> unit
