(** Fast evaluation of elimination orderings.

    These are the evaluation functions of the genetic algorithms:
    Figure 6.2 (width of the tree decomposition bucket elimination would
    build — the individual's fitness in GA-tw) and Figure 7.1 (width of
    the generalized hypertree decomposition after greedy set covering —
    the fitness in GA-ghw).  Both run the vertex-elimination recurrence
    on adjacency lists with an early exit once the width reached cannot
    be exceeded by the remaining steps, and reuse per-workspace buffers
    so that millions of evaluations allocate almost nothing. *)

type t

(** [of_graph g] is a reusable workspace for evaluating orderings of
    [g]. *)
val of_graph : Hd_graph.Graph.t -> t

(** [of_hypergraph h] is a workspace over [h]'s primal graph that also
    knows [h]'s hyperedges, enabling {!ghw_width}. *)
val of_hypergraph : Hd_hypergraph.Hypergraph.t -> t

(** [tw_width t sigma] is the width of the tree decomposition derived
    from [sigma] — [Tree_decomposition.(width (of_ordering g sigma))],
    computed without building the decomposition. *)
val tw_width : t -> Ordering.t -> int

(** [ghw_width ?rng t sigma] is the width of the generalized hypertree
    decomposition derived from [sigma] with greedy set covering of every
    bag (ties broken via [rng]).  Requires a workspace built by
    {!of_hypergraph}.

    Cover sizes are memoised per workspace, keyed by a canonical FNV
    hash of the bag contents ({!Hd_graph.Bitset.fnv_hash}): bags recur
    massively across the orderings a GA population or a best_of sweep
    evaluates, so most bags after the first few orderings are table
    hits (counters [setcover.memo_hits]/[setcover.memo_misses]).  A
    consequence of memoisation is that a recurring bag keeps the cover
    size of its first evaluation — [rng] tie-breaking is frozen per
    bag for the workspace's lifetime (see docs/PERFORMANCE.md). *)
val ghw_width : ?rng:Random.State.t -> t -> Ordering.t -> int

(** [ghw_width_exact ?cache t sigma] covers every bag exactly, so the
    result is the width of [sigma] in the sense of Definition 17 —
    the objective BB-ghw and A*-ghw optimise.  Without an explicit
    [cache] the workspace's own exact-cover memo is used (same keying
    as {!ghw_width}, separate table — greedy and exact sizes never
    mix). *)
val ghw_width_exact :
  ?cache:(Hd_graph.Bitset.t, int) Hashtbl.t -> t -> Ordering.t -> int

(** [reset_memo t] empties the workspace's set-cover memo tables.
    Useful when one long-lived workspace evaluates orderings of
    unrelated runs and table growth matters; hits/misses counters are
    unaffected. *)
val reset_memo : t -> unit

(** [fhw_width_q t sigma] is the width of [sigma] under fractional edge
    covers: the largest fractional cover number rho* over the bags of
    the ordering's tree decomposition — an exact rational, an
    upper-bound witness for the fractional hypertree width, with
    [fhw_width_q <= ghw_width_exact] pointwise.  rho* values are
    memoised per workspace in a table separate from the integral
    covers (counters [lp.memo_hits]/[lp.memo_misses]); integral and
    fractional costs never share entries. *)
val fhw_width_q : t -> Ordering.t -> Hd_lp.Rat.t

(** [fhw_width t sigma] is [Rat.to_float (fhw_width_q t sigma)] — for
    display and legacy call sites only. *)
val fhw_width : t -> Ordering.t -> float

(** [weighted_width t ~domain_sizes sigma] is the triangulation weight
    of Section 4.5 (Larranaga et al.):
    [log2 (sum over bags of the product of the bag variables' domain
    sizes)] — the total table size of the junction tree the ordering
    induces, the fitness the Bayesian-network GA minimises. *)
val weighted_width : t -> domain_sizes:int array -> Ordering.t -> float
