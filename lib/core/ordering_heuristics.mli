(** Greedy elimination-ordering heuristics (Section 4.4.2).

    Each heuristic grows the ordering from the back — position [n-1] is
    chosen and eliminated first, matching the paper's description of
    min-fill ("place it at position n") and this library's convention
    that [sigma.(n-1)] is eliminated first.  Ties are broken uniformly
    at random with the supplied state, as the paper's implementations
    do. *)

(** [min_fill rng g] repeatedly eliminates a vertex adding the fewest
    fill edges — the upper-bound heuristic of A*-tw and QuickBB.

    Incremental: keys are kept in an indexed bucket queue and only the
    affected set N(v) u N(N(v)) of each elimination is re-scored, so a
    step costs O(affected) instead of O(alive) (docs/PERFORMANCE.md).
    For a fixed seed the result is byte-identical to
    {!Naive.min_fill}. *)
val min_fill : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** [min_degree rng g] repeatedly eliminates a vertex of minimum current
    degree, with the same incremental key maintenance as {!min_fill}
    (affected set: N(v)).  Byte-identical to {!Naive.min_degree} for a
    fixed seed. *)
val min_degree : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** Reference implementations that re-score every alive vertex at every
    step — the executable specification of the incremental kernels.
    The property suite checks [Naive.min_fill rng g = min_fill rng' g]
    byte-for-byte (same seeds); the bench [ordering] experiment times
    the two paths against each other. *)
module Naive : sig
  val min_fill : Random.State.t -> Hd_graph.Graph.t -> Ordering.t
  val min_degree : Random.State.t -> Hd_graph.Graph.t -> Ordering.t
end

(** [max_cardinality rng g] is maximum cardinality search: vertices are
    numbered from position [0] upwards, each maximising the number of
    already-numbered neighbours; on chordal graphs the result is a
    perfect elimination ordering. *)
val max_cardinality : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** [min_fill_hypergraph rng h] is {!min_fill} on [h]'s primal graph. *)
val min_fill_hypergraph : Random.State.t -> Hd_hypergraph.Hypergraph.t -> Ordering.t

(** [best_of rng g ~trials ~eval] runs [min_fill] and [min_degree]
    [trials] times each and returns the ordering with the smallest
    [eval] value together with that value. *)
val best_of :
  Random.State.t ->
  Hd_graph.Graph.t ->
  trials:int ->
  eval:(Ordering.t -> int) ->
  Ordering.t * int
