module Graph = Hd_graph.Graph
module Bitset = Hd_graph.Bitset
module Elim_graph = Hd_graph.Elim_graph
module Bucket_queue = Hd_graph.Bucket_queue
module Hypergraph = Hd_hypergraph.Hypergraph
module Obs = Hd_obs.Obs

(* Observability: how much key maintenance the dirty-set machinery
   saves.  [key_recomputes] counts fill/degree evaluations actually
   performed; [dirty_skips] counts alive vertices whose cached key was
   reused at a step.  A regression back to full per-step rescoring
   shows up as key_recomputes ~ n^2/2 (asserted in test_core). *)
let c_key_recomputes = Obs.Counter.make "ordering.key_recomputes"
let c_dirty_skips = Obs.Counter.make "ordering.dirty_skips"

type kind = Fill | Degree

let key_of = function
  | Fill -> Elim_graph.fill_count
  | Degree -> Elim_graph.degree

(* Reservoir selection over the minimum-key candidates, visited in
   increasing vertex order: candidate number [ties] survives with
   probability 1/ties.  Both the incremental and the naive paths pick
   through this exact procedure, so for a fixed seed they consume the
   random stream identically and return byte-identical orderings. *)
let reservoir rng cands len =
  let pick = ref cands.(0) in
  for ties = 2 to len do
    if Random.State.int rng ties = 0 then pick := cands.(ties - 1)
  done;
  !pick

(* sort the first [len] candidates ascending (Array.sort has no
   sub-range variant; candidate counts are the tie counts, so this is
   cheap in practice) *)
let sort_prefix cands len =
  let sub = Array.sub cands 0 len in
  Array.sort (fun (a : int) b -> compare a b) sub;
  Array.blit sub 0 cands 0 len

(* Incremental greedy elimination (the tentpole of
   docs/PERFORMANCE.md): keys live in an indexed bucket queue,
   eliminating [v] marks only the affected set dirty (N(v) for degree,
   N(v) u N(N(v)) for fill), and dirty keys are re-scored eagerly at
   the start of the next step — everything else keeps its cached
   bucket.  Per step this is O(affected x key cost) instead of
   O(alive x key cost). *)
let greedy_elimination rng g ~kind =
  let n = Graph.n g in
  let eg = Elim_graph.of_graph g in
  let key = key_of kind in
  let sigma = Array.make n 0 in
  if n > 0 then begin
    let bq = Bucket_queue.create n in
    for v = 0 to n - 1 do
      Bucket_queue.insert bq v (key eg v)
    done;
    Obs.Counter.add c_key_recomputes n;
    let dirty = Bitset.create n in
    let cands = Array.make n 0 in
    for i = n - 1 downto 0 do
      (* revalidate: re-score exactly the dirty alive vertices *)
      let recomputed = ref 0 in
      Bitset.iter
        (fun u ->
          if Elim_graph.is_alive eg u then begin
            incr recomputed;
            Bucket_queue.update bq u (key eg u)
          end)
        dirty;
      Bitset.clear dirty;
      if i < n - 1 then begin
        Obs.Counter.add c_key_recomputes !recomputed;
        Obs.Counter.add c_dirty_skips (i + 1 - !recomputed)
      end;
      (* the min bucket now holds exactly the true minimum-key
         vertices; collect, order, and reservoir-pick *)
      let m = Bucket_queue.min_priority bq in
      let len = ref 0 in
      Bucket_queue.iter_bucket
        (fun v ->
          cands.(!len) <- v;
          incr len)
        bq m;
      if !len > 1 then sort_prefix cands !len;
      let v = reservoir rng cands !len in
      sigma.(i) <- v;
      Bucket_queue.remove bq v;
      Elim_graph.eliminate eg v;
      (match kind with
      | Fill -> Elim_graph.iter_fill_affected (Bitset.add dirty) eg
      | Degree -> Elim_graph.iter_degree_affected (Bitset.add dirty) eg)
    done
  end;
  sigma

let min_fill rng g = greedy_elimination rng g ~kind:Fill
let min_degree rng g = greedy_elimination rng g ~kind:Degree

(* Reference implementations that re-score every alive vertex at every
   step — retained (a) as the executable specification the property
   tests compare the incremental kernels against byte-for-byte, and
   (b) as the baseline the bench `ordering` experiment times. *)
module Naive = struct
  let greedy rng g ~kind =
    let n = Graph.n g in
    let eg = Elim_graph.of_graph g in
    let key = key_of kind in
    let sigma = Array.make n 0 in
    let keys = Array.make (max 1 n) 0 in
    let cands = Array.make (max 1 n) 0 in
    for i = n - 1 downto 0 do
      let m = ref max_int in
      Elim_graph.iter_alive
        (fun v ->
          let k = key eg v in
          keys.(v) <- k;
          if k < !m then m := k)
        eg;
      let len = ref 0 in
      Elim_graph.iter_alive
        (fun v ->
          if keys.(v) = !m then begin
            cands.(!len) <- v;
            incr len
          end)
        eg;
      let v = reservoir rng cands !len in
      sigma.(i) <- v;
      Elim_graph.eliminate eg v
    done;
    sigma

  let min_fill rng g = greedy rng g ~kind:Fill
  let min_degree rng g = greedy rng g ~kind:Degree
end

let max_cardinality rng g =
  let n = Graph.n g in
  let numbered = Array.make n false in
  let weight = Array.make n 0 in
  let sigma = Array.make n 0 in
  (* candidate set as a swap-delete array: O(1) removal, no per-step
     allocation (previously an O(n) List.filter per step) *)
  let cand = Array.init n (fun v -> v) in
  let len = ref n in
  for i = 0 to n - 1 do
    (* maximise numbered-neighbour count: reservoir over the running
       maximum in candidate-array order (seed-stable — the array order
       is a deterministic function of the seed's earlier picks) *)
    let best = ref min_int and ties = ref 0 and at = ref (-1) in
    for j = 0 to !len - 1 do
      let w = weight.(cand.(j)) in
      if w > !best then begin
        best := w;
        ties := 1;
        at := j
      end
      else if w = !best then begin
        incr ties;
        if Random.State.int rng !ties = 0 then at := j
      end
    done;
    let v = cand.(!at) in
    sigma.(i) <- v;
    numbered.(v) <- true;
    List.iter
      (fun u -> if not numbered.(u) then weight.(u) <- weight.(u) + 1)
      (Graph.neighbors g v);
    decr len;
    cand.(!at) <- cand.(!len)
  done;
  sigma

let min_fill_hypergraph rng h = min_fill rng (Hypergraph.primal h)

let best_of rng g ~trials ~eval =
  assert (trials > 0);
  let candidates =
    List.concat_map
      (fun heuristic -> List.init trials (fun _ -> heuristic rng g))
      [ min_fill; min_degree ]
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun (best_sigma, best_w) sigma ->
          let w = eval sigma in
          if w < best_w then (sigma, w) else (best_sigma, best_w))
        (first, eval first) rest
