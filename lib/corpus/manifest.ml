module Obs = Hd_obs.Obs
module Mini = Hd_instances.Mini_corpus

let c_cache_hits = Obs.Counter.make "corpus.cache_hits"
let c_cache_misses = Obs.Counter.make "corpus.cache_misses"

type entry = { collection : string; name : string; path : string }

let instance_extensions = [ ".hg"; ".cq"; ".txt" ]

let is_instance_file fname =
  (not (String.length fname > 0 && fname.[0] = '.'))
  && List.mem (Filename.extension fname) instance_extensions

let scan root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    raise (Sys_error (Printf.sprintf "%s: not a directory" root));
  let entries = ref [] in
  let rec walk dir collection =
    Array.iter
      (fun fname ->
        let path = Filename.concat dir fname in
        if Sys.is_directory path then begin
          if not (String.length fname > 0 && fname.[0] = '.') then
            walk path
              (if collection = "" then fname
               else Filename.concat collection fname)
        end
        else if is_instance_file fname then
          entries :=
            {
              collection =
                (if collection = "" then Filename.basename root
                 else collection);
              name = Filename.remove_extension fname;
              path;
            }
            :: !entries)
      (Sys.readdir dir)
  in
  walk root "";
  List.sort
    (fun a b ->
      match compare a.collection b.collection with
      | 0 -> compare a.name b.name
      | c -> c)
    !entries

let bundled_collections () = Mini.collection_names ()

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
    (* lost a race with a concurrent ensure: the directory exists now *)
  end

let ensure ~root collection =
  match List.assoc_opt collection (Mini.collections ()) with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Manifest.ensure: %S is not a bundled collection (bundled: %s)"
           collection
           (String.concat ", " (bundled_collections ())))
  | Some files ->
      let dir = Filename.concat root collection in
      mkdir_p dir;
      List.map
        (fun (fname, text) ->
          let path = Filename.concat dir fname in
          if Sys.file_exists path then Obs.Counter.incr c_cache_hits
          else begin
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc text);
            Obs.Counter.incr c_cache_misses
          end;
          { collection; name = Filename.remove_extension fname; path })
        files

let ensure_all ~root =
  List.concat_map (ensure ~root) (bundled_collections ())
