(** Corpus sweeps: race registered solvers over hundreds of instances
    in parallel, HyperBench style.

    A sweep takes a set of corpus instances (from {!Manifest} entries
    or already-loaded hypergraphs), a {e roster} of named solvers from
    the {!Hd_engine.Solver} registry, and a per-instance
    {!Hd_engine.Budget} spec.  Instances fan out over an
    {!Hd_parallel.Domain_pool} with a bounded number in flight; within
    one instance the roster members run as sequential time trials
    under {!Hd_engine.Budget.sub} shares of the instance budget (equal
    splits, unspent time rolling over), each through
    {!Hd_engine.Engine.run} — so block splitting and the whole anytime
    machinery apply uniformly.

    The {e winner} of an instance is the member with the lowest upper
    bound, exactness breaking ties, then roster order — deliberately
    not wall-clock, so the winner table is deterministic at [jobs = 1]
    under state-capped budgets (the regression gate and the tests rely
    on this).  An instance where no member proves optimality counts as
    a {e timeout}.

    Counters: [corpus.swept], [corpus.exact], [corpus.timeouts],
    [corpus.skipped], and one [corpus.winner.<solver>] per roster
    member.  {!to_json} renders the report as the [corpus] section of
    [BENCH_report.json] (see {e docs/BENCHMARKING.md} for the schema);
    {!Regression} diffs two such sections. *)

(** One roster member's run on one instance. *)
type solver_run = {
  solver : string;
  lb : int;
  ub : int;
  exact : bool;  (** the optimum was proved within the share *)
  seconds : float;
}

(** One instance's line in the sweep table. *)
type row = {
  collection : string;
  name : string;
  vertices : int;
  edges : int;
  runs : solver_run list;  (** roster order *)
  winner : string;
  width : int;  (** the winner's upper bound *)
  exact : bool;
  seconds : float;  (** whole-roster wall clock for this instance *)
}

type report = {
  roster : string list;
  jobs : int;
  budget : Hd_engine.Budget.spec;  (** per-instance *)
  rows : row list;  (** in input order *)
  skipped : (string * string) list;
      (** [(path, error)] for instances that failed to parse *)
}

(** Aggregates over a report, HyperBench-table style. *)
type summary = {
  total : int;
  exact_count : int;
  timeouts : int;
  skipped_count : int;
  coverage : int array;
      (** [coverage.(k - 1)], [k = 1..5]: instances of width exactly
          [k]; the ghw <= 5 histogram of the HyperBench study *)
  gt5 : int;  (** instances of width > 5 *)
  winners : (string * int) list;  (** wins per roster member *)
}

(** The default roster: the registered ghw solvers a corpus of
    hypergraphs is meaningfully compared on —
    [["min-fill-ghw"; "bb-ghw"; "astar-ghw"]]. *)
val default_roster : string list

(** [load entries] parses every manifest entry via
    {!Corpus.load_file}: [(loaded, skipped)].  Parse failures do not
    abort the sweep; they are returned as [(path, message)] and
    counted under [corpus.skipped]. *)
val load :
  Manifest.entry list ->
  (Manifest.entry * Hd_hypergraph.Hypergraph.t) list * (string * string) list

(** [sweep entries] is {!load} then {!sweep_loaded}. *)
val sweep :
  ?jobs:int ->
  ?roster:string list ->
  ?budget:Hd_engine.Budget.spec ->
  ?seed:int ->
  Manifest.entry list ->
  report

(** [sweep_loaded instances] sweeps already-loaded instances
    [(collection, name, hypergraph)].  [jobs] (default 1) > 1 fans
    instances out over that many worker domains, with the in-flight
    window derived once in {!Hd_parallel.Domain_pool.default_window};
    [roster] defaults to {!default_roster} (unknown names raise
    [Invalid_argument] before any work runs); [budget] (default 5 s,
    no state cap) is the per-instance spec; [seed] (default 1) seeds
    every solver run identically. *)
val sweep_loaded :
  ?jobs:int ->
  ?roster:string list ->
  ?budget:Hd_engine.Budget.spec ->
  ?seed:int ->
  ?skipped:(string * string) list ->
  (string * string * Hd_hypergraph.Hypergraph.t) list ->
  report

val summarise : report -> summary

(** [to_json report] is the [corpus] section recorded into
    [BENCH_report.json] ({e docs/BENCHMARKING.md} documents every
    field). *)
val to_json : report -> Hd_obs.Obs.Json.t

(** [print report] writes the per-instance table and the summary
    (coverage histogram, winner counts, timeouts) to stdout. *)
val print : report -> unit
