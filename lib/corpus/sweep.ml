module Obs = Hd_obs.Obs
module B = Hd_engine.Budget
module S = Hd_engine.Solver
module Hypergraph = Hd_hypergraph.Hypergraph

let c_swept = Obs.Counter.make "corpus.swept"
let c_exact = Obs.Counter.make "corpus.exact"
let c_timeouts = Obs.Counter.make "corpus.timeouts"
let c_skipped = Obs.Counter.make "corpus.skipped"

type solver_run = {
  solver : string;
  lb : int;
  ub : int;
  exact : bool;
  seconds : float;
}

type row = {
  collection : string;
  name : string;
  vertices : int;
  edges : int;
  runs : solver_run list;
  winner : string;
  width : int;
  exact : bool;
  seconds : float;
}

type report = {
  roster : string list;
  jobs : int;
  budget : B.spec;
  rows : row list;
  skipped : (string * string) list;
}

type summary = {
  total : int;
  exact_count : int;
  timeouts : int;
  skipped_count : int;
  coverage : int array;
  gt5 : int;
  winners : (string * int) list;
}

let default_roster = [ "min-fill-ghw"; "bb-ghw"; "astar-ghw" ]

let default_budget = { B.time_limit = Some 5.0; max_states = None }

let ensure_registries () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ()

let load entries =
  let loaded = ref [] and skipped = ref [] in
  List.iter
    (fun (e : Manifest.entry) ->
      match Corpus.load_file e.Manifest.path with
      | h -> loaded := (e, h) :: !loaded
      | exception Failure msg ->
          Obs.Counter.incr c_skipped;
          skipped := (e.Manifest.path, msg) :: !skipped)
    entries;
  (List.rev !loaded, List.rev !skipped)

(* lowest upper bound wins; an exact result beats bounds at the same
   width; remaining ties go to roster order.  Wall-clock never decides
   the winner, so the table is reproducible run to run. *)
let pick_winner runs =
  let better (i, (a : solver_run)) (j, b) =
    if a.ub <> b.ub then a.ub < b.ub
    else if a.exact <> b.exact then a.exact
    else i < j
  in
  match List.mapi (fun i r -> (i, r)) runs with
  | [] -> invalid_arg "Sweep.pick_winner: no runs"
  | first :: rest ->
      snd
        (List.fold_left
           (fun best cand -> if better cand best then cand else best)
           first rest)

let solve_instance ~roster ~budget ~seed (collection, name, h) =
  let problem = S.Hypergraph h in
  let stages = List.length roster in
  let instance_budget = B.of_spec budget in
  let runs, seconds =
    Hd_engine.Clock.time @@ fun () ->
    List.map
      (fun solver_name ->
        let share = B.sub ~stages instance_budget in
        let r = Hd_engine.Engine.run_by_name ~seed solver_name share problem in
        let lb, ub = S.bounds_of r.S.outcome in
        let exact = match r.S.outcome with S.Exact _ -> true | _ -> false in
        { solver = solver_name; lb; ub; exact; seconds = r.S.elapsed })
      roster
  in
  let w = pick_winner runs in
  Obs.Counter.incr c_swept;
  if w.exact then Obs.Counter.incr c_exact else Obs.Counter.incr c_timeouts;
  Obs.Counter.incr (Obs.Counter.make ("corpus.winner." ^ w.solver));
  {
    collection;
    name;
    vertices = Hypergraph.n_vertices h;
    edges = Hypergraph.n_edges h;
    runs;
    winner = w.solver;
    width = w.ub;
    exact = w.exact;
    seconds;
  }

let sweep_loaded ?(jobs = 1) ?(roster = default_roster)
    ?(budget = default_budget) ?(seed = 1) ?(skipped = []) instances =
  if roster = [] then invalid_arg "Sweep.sweep_loaded: empty roster";
  ensure_registries ();
  (match List.filter (fun n -> S.find n = None) roster with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "Sweep.sweep_loaded: unknown solver(s) %s (registered: %s)"
           (String.concat ", " missing)
           (String.concat ", " (S.names ()))));
  let solve = solve_instance ~roster ~budget ~seed in
  let rows =
    if jobs <= 1 then List.map solve instances
    else
      Hd_parallel.Domain_pool.with_pool ~domains:jobs (fun pool ->
          (* window derivation lives in Domain_pool.default_window *)
          Hd_parallel.Domain_pool.map pool solve instances)
  in
  { roster; jobs = max 1 jobs; budget; rows; skipped }

let sweep ?jobs ?roster ?budget ?seed entries =
  let loaded, skipped = load entries in
  sweep_loaded ?jobs ?roster ?budget ?seed ~skipped
    (List.map
       (fun ((e : Manifest.entry), h) -> (e.Manifest.collection, e.Manifest.name, h))
       loaded)

let summarise report =
  let coverage = Array.make 5 0 in
  let gt5 = ref 0 and exact_count = ref 0 and timeouts = ref 0 in
  List.iter
    (fun row ->
      if row.exact then incr exact_count else incr timeouts;
      if row.width >= 1 && row.width <= 5 then
        coverage.(row.width - 1) <- coverage.(row.width - 1) + 1
      else incr gt5)
    report.rows;
  let winners =
    List.map
      (fun s ->
        (s, List.length (List.filter (fun r -> r.winner = s) report.rows)))
      report.roster
  in
  {
    total = List.length report.rows;
    exact_count = !exact_count;
    timeouts = !timeouts;
    skipped_count = List.length report.skipped;
    coverage;
    gt5 = !gt5;
    winners;
  }

let json_of_budget (b : B.spec) =
  Obs.Json.Obj
    [
      ( "time_limit_seconds",
        match b.B.time_limit with
        | Some t -> Obs.Json.Float t
        | None -> Obs.Json.Null );
      ( "max_states",
        match b.B.max_states with
        | Some n -> Obs.Json.Int n
        | None -> Obs.Json.Null );
    ]

let json_of_row row =
  Obs.Json.Obj
    [
      ("collection", Obs.Json.String row.collection);
      ("instance", Obs.Json.String row.name);
      ("vertices", Obs.Json.Int row.vertices);
      ("edges", Obs.Json.Int row.edges);
      ("width", Obs.Json.Int row.width);
      ("exact", Obs.Json.Bool row.exact);
      ("winner", Obs.Json.String row.winner);
      ("seconds", Obs.Json.Float row.seconds);
      ( "solvers",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String r.solver);
                   ("lb", Obs.Json.Int r.lb);
                   ("ub", Obs.Json.Int r.ub);
                   ("exact", Obs.Json.Bool r.exact);
                   ("seconds", Obs.Json.Float r.seconds);
                 ])
             row.runs) );
    ]

let to_json report =
  let s = summarise report in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "hd_corpus/sweep/1");
      ("roster", Obs.Json.List (List.map (fun n -> Obs.Json.String n) report.roster));
      ("jobs", Obs.Json.Int report.jobs);
      ("budget", json_of_budget report.budget);
      ("instances", Obs.Json.List (List.map json_of_row report.rows));
      ( "skipped",
        Obs.Json.List
          (List.map
             (fun (path, msg) ->
               Obs.Json.Obj
                 [
                   ("path", Obs.Json.String path);
                   ("error", Obs.Json.String msg);
                 ])
             report.skipped) );
      ( "summary",
        Obs.Json.Obj
          [
            ("count", Obs.Json.Int s.total);
            ("exact", Obs.Json.Int s.exact_count);
            ("timeouts", Obs.Json.Int s.timeouts);
            ("skipped", Obs.Json.Int s.skipped_count);
            ( "coverage",
              Obs.Json.Obj
                (List.init 5 (fun i ->
                     (Printf.sprintf "width_%d" (i + 1),
                      Obs.Json.Int s.coverage.(i)))
                @ [ ("width_gt_5", Obs.Json.Int s.gt5) ]) );
            ( "ghw_le_5_share",
              Obs.Json.Float
                (if s.total = 0 then 0.0
                 else
                   float_of_int (s.total - s.gt5) /. float_of_int s.total) );
            ( "winners",
              Obs.Json.Obj
                (List.map (fun (n, c) -> (n, Obs.Json.Int c)) s.winners) );
          ] );
    ]

let print report =
  Printf.printf "%-10s %-14s %5s %5s | %6s %-14s %8s | per-solver ub\n"
    "collection" "instance" "V" "H" "width" "winner" "time";
  List.iter
    (fun row ->
      let marks =
        String.concat "  "
          (List.map
             (fun r ->
               Printf.sprintf "%s:%d%s" r.solver r.ub
                 (if r.exact then "*" else ""))
             row.runs)
      in
      Printf.printf "%-10s %-14s %5d %5d | %5d%s %-14s %7.2fs | %s\n"
        row.collection row.name row.vertices row.edges row.width
        (if row.exact then "*" else " ")
        row.winner row.seconds marks)
    report.rows;
  List.iter
    (fun (path, msg) -> Printf.printf "skipped %s: %s\n" path msg)
    report.skipped;
  let s = summarise report in
  Printf.printf
    "\n%d instances: %d exact, %d timeouts, %d skipped\n" s.total
    s.exact_count s.timeouts s.skipped_count;
  Printf.printf "width histogram:";
  Array.iteri (fun i c -> Printf.printf "  %d:%d" (i + 1) c) s.coverage;
  Printf.printf "  >5:%d   (ghw<=5 share %.1f%%)\n" s.gt5
    (if s.total = 0 then 0.0
     else 100.0 *. float_of_int (s.total - s.gt5) /. float_of_int s.total);
  Printf.printf "winners:";
  List.iter (fun (n, c) -> Printf.printf "  %s:%d" n c) s.winners;
  print_newline ()
