(** Loading HyperBench-style corpus instances.

    HyperBench (arXiv:1811.08181) distributes real-world hypergraphs
    in two textual shapes, both of which this module reads into an
    {!Hd_hypergraph.Hypergraph.t}:

    - the plain {e atom format} — a list of [edge(v1,v2,...)] atoms
      (the DaimlerChrysler / CSP-hypergraph-library format that
      {!Hd_hypergraph.Hg_format} implements);
    - the {e conjunctive-query variant} — a datalog rule
      [head(X,...) :- body1(X,Y), body2(Y,Z).] whose body atoms are
      the hyperedges (the head is ignored: a CQ's hypergraph is the
      hypergraph of its body, Definition 5 of the paper).

    Dispatch is by content: a [:-] separator (outside [%] comments)
    selects the CQ reading.  Error messages always carry the instance
    source (the file path for {!load_file}) and a line number, so
    parse failures stay attributable in corpus-sweep logs; counters
    [corpus.parsed] and [corpus.parse_errors] record volume. *)

(** The two textual shapes. *)
type format = Atoms  (** plain [edge(v1,...)] lists *)
            | Cq  (** a datalog rule; body atoms are the hyperedges *)

(** [detect text] is the format [parse_string] will use: [Cq] iff a
    [:-] occurs outside comments. *)
val detect : string -> format

(** [parse_string ?source text] parses an instance in either format.
    [source] (default ["<string>"]) names the input in error messages.
    Line numbers in errors refer to the original text, also for the CQ
    variant (the head is blanked, not cut).
    @raise Failure on malformed input, with [source] in the message. *)
val parse_string : ?source:string -> string -> Hd_hypergraph.Hypergraph.t

(** [load_file path] is {!parse_string} on the file's contents with
    [path] as the source.
    @raise Failure on malformed input; [Sys_error] on unreadable
    files. *)
val load_file : string -> Hd_hypergraph.Hypergraph.t

(** [name_of_path path] is the instance name of a corpus file: the
    basename without its extension (["queries/q01.cq"] -> ["q01"]). *)
val name_of_path : string -> string
