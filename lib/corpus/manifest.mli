(** The corpus manifest: a local directory tree of instances keyed by
    collection name, with a fetch-and-cache layer for the bundled
    mini-corpus.

    A corpus root looks like

    {v
    root/
      csp-synth/   adder_01.hg bridge_02.hg ...
      cq-mini/     path_04.cq triangle.cq ...
      my-queries/  q001.cq ...
    v}

    — one sub-directory per collection, one file per instance
    (extensions [.hg], [.cq] or [.txt]; anything else is ignored).
    {!scan} turns such a tree into entries; {!ensure} materialises a
    {e bundled} collection ({!Hd_instances.Mini_corpus}) into the tree
    first, writing only the files that are missing.  Every file found
    already on disk counts as [corpus.cache_hits], every file written
    as [corpus.cache_misses] — the cache behaviour tests assert on
    exactly these counters.  There is no network fetcher: unknown
    collection names fail fast, and everything tests or CI need is
    bundled. *)

type entry = {
  collection : string;  (** sub-directory (or root basename) *)
  name : string;  (** file basename without extension *)
  path : string;  (** path to the instance file *)
}

(** Extensions {!scan} accepts as instance files. *)
val instance_extensions : string list

(** [scan root] walks the directory tree under [root] and returns one
    entry per instance file, sorted by [(collection, name)].  Files
    directly under [root] form a collection named after [root]'s
    basename; files in sub-directories use the relative directory path
    as their collection name.
    @raise Sys_error when [root] is not a readable directory. *)
val scan : string -> entry list

(** The bundled collection names ({!Hd_instances.Mini_corpus}). *)
val bundled_collections : unit -> string list

(** [ensure ~root collection] materialises the bundled [collection]
    under [root/collection] — creating directories as needed, writing
    only missing files — and returns its entries in bundled order.
    Existing files are never rewritten (local edits survive), they
    count as cache hits.
    @raise Invalid_argument on a collection name that is not bundled,
    listing the bundled ones. *)
val ensure : root:string -> string -> entry list

(** [ensure_all ~root] is {!ensure} over every bundled collection,
    concatenated in bundled order. *)
val ensure_all : root:string -> entry list
