module Json = Hd_obs.Obs.Json

type failure = { collection : string; instance : string; message : string }

let pp_failure fmt f =
  Format.fprintf fmt "%s/%s: %s" f.collection f.instance f.message

(* the fields of one instance row we gate on *)
type key_row = {
  width : int;
  exact : bool;
  seconds : float;
}

let corpus_section doc =
  match Json.member "corpus" doc with
  | Some section -> section
  | None -> doc

let rows_of doc =
  match Json.member "instances" (corpus_section doc) with
  | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match
            ( Json.member "collection" row,
              Json.member "instance" row,
              Json.member "width" row,
              Json.member "exact" row,
              Json.member "seconds" row )
          with
          | ( Some (Json.String collection),
              Some (Json.String instance),
              Some (Json.Int width),
              Some (Json.Bool exact),
              Some seconds ) ->
              let seconds =
                match seconds with
                | Json.Float s -> s
                | Json.Int s -> float_of_int s
                | _ -> 0.0
              in
              Some ((collection, instance), { width; exact; seconds })
          | _ -> None)
        rows
  | _ ->
      invalid_arg
        "Regression: document has no corpus instance table \
         (expected an \"instances\" list under a \"corpus\" section)"

(* time regressions below this baseline wall clock are scheduling
   noise, not signal *)
let time_floor = 0.05

let diff ?(check_times = false) ~baseline ~current () =
  let base_rows = rows_of baseline in
  let cur_rows = rows_of current in
  let failures = ref [] in
  let fail (collection, instance) message =
    failures := { collection; instance; message } :: !failures
  in
  List.iter
    (fun (key, (b : key_row)) ->
      match List.assoc_opt key cur_rows with
      | None ->
          fail key
            "missing from the current sweep (removed, renamed, or failed to \
             parse)"
      | Some c ->
          if c.width > b.width then
            fail key
              (Printf.sprintf "width regressed: %d -> %d" b.width c.width)
          else if b.exact && not c.exact then
            fail key
              (Printf.sprintf
                 "exactness regressed: width %d was proved optimal, now only \
                  an upper bound"
                 b.width)
          else if
            check_times && b.seconds >= time_floor
            && c.seconds > 2.0 *. b.seconds
          then
            fail key
              (Printf.sprintf ">2x slowdown: %.3fs -> %.3fs" b.seconds
                 c.seconds))
    base_rows;
  List.rev !failures

let check_file ?check_times ~baseline_path current =
  let ic = open_in_bin baseline_path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let baseline = Json.parse text in
  match diff ?check_times ~baseline ~current () with
  | [] -> Ok ()
  | failures -> Error failures
