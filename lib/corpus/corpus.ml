module Obs = Hd_obs.Obs
module Hg = Hd_hypergraph.Hg_format

let c_parsed = Obs.Counter.make "corpus.parsed"
let c_parse_errors = Obs.Counter.make "corpus.parse_errors"

type format = Atoms | Cq

(* find the first ":-" outside a %-comment; comments run to end of
   line, as in the atom format *)
let rule_separator text =
  let n = String.length text in
  let rec scan i in_comment =
    if i + 1 >= n then None
    else if in_comment then scan (i + 1) (text.[i] <> '\n')
    else if text.[i] = '%' then scan (i + 1) true
    else if text.[i] = ':' && text.[i + 1] = '-' then Some i
    else scan (i + 1) false
  in
  scan 0 false

let detect text = match rule_separator text with Some _ -> Cq | None -> Atoms

(* blank the head and the ":-" with spaces, keeping every newline, so
   error line numbers still point into the original file *)
let blank_head text sep =
  String.mapi
    (fun i c -> if i < sep + 2 && c <> '\n' then ' ' else c)
    text

let parse_string ?(source = "<string>") text =
  let body =
    match rule_separator text with
    | Some sep -> blank_head text sep
    | None -> text
  in
  match Hg.parse_string ~source body with
  | h ->
      Obs.Counter.incr c_parsed;
      h
  | exception Failure msg ->
      Obs.Counter.incr c_parse_errors;
      failwith msg

let load_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~source:path text

let name_of_path path = Filename.remove_extension (Filename.basename path)
