(** The corpus regression gate: diff a fresh sweep against a committed
    baseline and fail on quality or performance regressions.

    The gate compares two [corpus] sections (the {!Sweep.to_json}
    shape, or whole [BENCH_report.json] documents containing one) by
    [(collection, instance)] and reports a failure when, for an
    instance present in the baseline:

    - it disappeared from the current sweep (or newly failed to
      parse);
    - its width (best upper bound) went {e up};
    - the baseline proved optimality and the current sweep no longer
      does;
    - with [~check_times:true], its wall clock more than doubled —
      small absolute times (under 50 ms in the baseline) are exempt,
      they are dominated by scheduling noise.

    Instances only present in the current sweep are fine (the corpus
    grew).  Width and exactness checks are machine-independent under
    deterministic (state-capped) budgets, which is how the committed
    baseline and the CI gate run; time checks are meant for
    same-machine comparisons — see {e docs/BENCHMARKING.md}. *)

type failure = {
  collection : string;
  instance : string;
  message : string;  (** human-readable, includes both values *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [diff ~baseline ~current] compares two corpus sections (either a
    {!Sweep.to_json} value or any JSON object with a ["corpus"]
    member).  [check_times] defaults to [false]: widths and exactness
    only.
    @raise Invalid_argument when either document has no recognisable
    corpus instance table. *)
val diff :
  ?check_times:bool ->
  baseline:Hd_obs.Obs.Json.t ->
  current:Hd_obs.Obs.Json.t ->
  unit ->
  failure list

(** [check_file ~baseline_path current] reads and parses the baseline
    file, then {!diff}s: [Ok ()] when nothing regressed.
    @raise Sys_error on unreadable files; [Invalid_argument] on
    documents without a corpus table
    @raise Hd_obs.Obs.Json.Parse_error on malformed baseline JSON *)
val check_file :
  ?check_times:bool ->
  baseline_path:string ->
  Hd_obs.Obs.Json.t ->
  (unit, failure list) result
