(** A*-tw: the best-first exact treewidth algorithm of Chapter 5.

    States are partial elimination orderings; [g] is the width of the
    partial ordering, [h] a minor-based lower bound on the treewidth of
    the remaining graph, and [f = max (g, h, parent.f)] the admissible
    evaluation driving a best-first search.  Simplicial /
    strongly-almost-simplicial reductions force single-child states and
    pruning rule PR2 removes swap-equivalent sibling branches; states
    whose [f] reaches the min-fill upper bound are discarded.  On an
    exhausted budget the largest [f] visited is reported as a treewidth
    lower bound (Section 5.3). *)

(** [solve ?budget ?dedup ?seed g] computes the treewidth of [g].

    [dedup] additionally merges states that eliminated the same vertex
    set (an extension over the paper, off by default; see the
    [astar-dedup] ablation).  [seed] fixes the randomised tie-breaking
    of the bound heuristics.  [incumbent] shares bounds with racing
    solvers (hd_parallel portfolio): the search prunes against the
    shared upper bound, publishes its own improvements and frontier
    lower bounds, returns [Exact] as soon as the incumbent closes and
    [Bounds] when it is cancelled.  [within] attaches the run to an
    already-running {!Hd_engine.Budget.t} (deadline, state cap,
    cancellation flag and — unless [incumbent] overrides it — the
    budget's incumbent), taking precedence over [budget]; every solver
    entry point in the tree accepts the same pair. *)
val solve :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?dedup:bool ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  Hd_graph.Graph.t ->
  Search_types.result

(** [solve_hypergraph ?budget ?dedup ?seed h] is treewidth of [h]'s
    primal graph, which by Lemma 1 is the treewidth of [h]. *)
val solve_hypergraph :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?dedup:bool ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  Search_types.result
