(* Branch and bound for exact fractional hypertree width.

   The ordering characterisation that justifies BB-ghw carries over
   verbatim: rho* is monotone under bag inclusion, so converting any
   fractional hypertree decomposition to an elimination ordering does
   not increase its width, and the minimum over orderings of the
   maximum bag rho* equals fhw.  The search is therefore the BB-ghw
   tree with every integral cover replaced by the exact LP optimum —
   all width comparisons are Rat comparisons, no float and no epsilon
   anywhere on the decision path.

   The incumbent protocol is two-level: the exact rational incumbent
   lives locally (pruning must use it — two orderings with equal
   ceilings can differ fractionally), while ceil(width) is published to
   the shared int Incumbent so portfolios and the engine see sound
   integer bounds on ceil(fhw). *)

module Bitset = Hd_graph.Bitset
module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover
module Fractional = Hd_setcover.Fractional
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Rat = Hd_lp.Rat
module Obs = Hd_obs.Obs
open Search_types

type outcome_q = Exact_q of Rat.t | Bounds_q of { lb : Rat.t; ub : Rat.t }

type result_q = {
  outcome_q : outcome_q;
  visited : int;
  generated : int;
  elapsed : float;
  ordering : int array option;
}

exception Out_of_budget

(* rho* of elimination bags, cached by bag content like
   Ghw_common.Cover but Rat-valued — fractional and integral cover
   costs never share a table *)
module Frac_cover = struct
  type t = {
    hypergraph : Hypergraph.t;
    cache : (Bitset.t, Rat.t) Hashtbl.t;
    scratch : Bitset.t;
  }

  let make h =
    {
      hypergraph = h;
      cache = Hashtbl.create 4096;
      scratch = Bitset.create (max 1 (Hypergraph.n_vertices h));
    }

  let rho_of t universe =
    match Hashtbl.find_opt t.cache universe with
    | Some w -> w
    | None ->
        let w =
          Fractional.cover_value
            { Set_cover.universe; hypergraph = t.hypergraph }
        in
        Hashtbl.add t.cache (Bitset.copy universe) w;
        w

  (* rho* of the elimination bag {v} u N(v) *)
  let bag_width t eg v =
    Bitset.blit ~src:(Elim_graph.adjacency eg v) ~dst:t.scratch;
    Bitset.add t.scratch v;
    rho_of t t.scratch

  (* rho* of all live vertices: every bag of every completion is a
     subset of the live set, and rho* is monotone under inclusion, so
     this upper-bounds the best completion width from here *)
  let completion_width t eg =
    if Elim_graph.n_alive eg = 0 then Rat.zero
    else begin
      Bitset.blit ~src:(Elim_graph.alive eg) ~dst:t.scratch;
      rho_of t t.scratch
    end
end

(* a clique (minor) of c vertices forces a bag of c vertices in every
   decomposition, and any fractional cover of c vertices by hyperedges
   of size at most k has total weight at least c/k — the fractional
   analogue of the k-set-cover bound, without the ceiling *)
let frac_lb_of_elim ~rng ~k eg =
  if Elim_graph.n_alive eg = 0 then Rat.zero
  else Rat.make (Lower_bounds.treewidth_of_elim ~rng ~trials:1 eg + 1) k

let solve ?(budget = no_budget) ?within ?seed h =
  Obs.with_span "bb_fhw.solve" @@ fun () ->
  Ghw_common.check_input h;
  let h = Hypergraph.remove_subsumed h in
  let n = Hypergraph.n_vertices h in
  let ticker =
    match within with
    | Some b -> Search_util.ticker_within b
    | None -> Search_util.make_ticker budget
  in
  let finish outcome_q ordering =
    {
      outcome_q;
      visited = Search_util.visited ticker;
      generated = Search_util.generated ticker;
      elapsed = Search_util.elapsed ticker;
      ordering;
    }
  in
  if n = 0 then finish (Exact_q Rat.zero) (Some [||])
  else begin
    let rng = Random.State.make [| Option.value seed ~default:0xfa3 |] in
    let primal = Hypergraph.primal h in
    let k = max 1 (Hypergraph.max_edge_size h) in
    let eval = Hd_core.Eval.of_hypergraph h in
    let ub_sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
    let best_q = ref (Hd_core.Eval.fhw_width_q eval ub_sigma) in
    let best_sigma = ref ub_sigma in
    let lb0 =
      Rat.max
        (if n > 0 then Rat.one else Rat.zero)
        (Rat.make (Lower_bounds.treewidth ~rng ~trials:1 primal + 1) k)
    in
    let inc =
      match Option.bind within Hd_engine.Budget.incumbent with
      | Some i -> i
      | None -> Incumbent.create ()
    in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma (Rat.ceil !best_q));
    ignore (Incumbent.raise_lb inc (Rat.ceil lb0));
    if Rat.compare lb0 !best_q >= 0 then
      (* the heuristic ordering already meets the lower bound *)
      finish (Exact_q !best_q) (Some !best_sigma)
    else begin
      let covers = Frac_cover.make h in
      let eg = Elim_graph.of_graph primal in
      let path = ref [] in
      let improve sigma width =
        best_q := width;
        best_sigma := sigma;
        ignore (Incumbent.offer_ub inc ~witness:sigma (Rat.ceil width));
        Obs.Counter.incr Search_util.c_ub_improved
      in
      let rec branch ~g_val ~f_floor ~reduced =
        if Search_util.out_of_budget ticker || Incumbent.cancelled inc then
          raise Out_of_budget;
        Search_util.tick_visited ticker;
        Obs.Counter.incr Search_util.c_expanded;
        let completion = Rat.max g_val (Frac_cover.completion_width covers eg) in
        if Rat.compare completion !best_q < 0 then
          improve (Ghw_common.record_ordering ~n eg !path) completion;
        (* if covering the rest at once already fits in g, nothing
           below this node can improve on the completion just taken *)
        if Rat.compare completion g_val > 0 && Rat.compare f_floor !best_q < 0
        then begin
          let candidates =
            match Elim_graph.find_reducible eg ~lb:(-1) with
            | Some w ->
                Obs.Counter.incr Search_util.c_reductions;
                [ (w, true) ]
            | None ->
                let last = match !path with v :: _ -> v | [] -> -1 in
                let keep u =
                  reduced || last < 0
                  || not
                       (Search_util.prune_child ~adjacent_case:false eg ~last
                          ~candidate:u)
                in
                List.rev
                  (Elim_graph.fold_alive
                     (fun u acc -> if keep u then (u, false) :: acc else acc)
                     eg [])
          in
          let candidates =
            List.sort
              (fun (a, _) (b, _) ->
                compare (Elim_graph.degree eg a) (Elim_graph.degree eg b))
              candidates
          in
          List.iter
            (fun (v, via_reduction) ->
              Search_util.tick_generated ticker;
              Obs.Counter.incr Search_util.c_generated;
              let c = Frac_cover.bag_width covers eg v in
              let g'' = Rat.max g_val c in
              if Rat.compare g'' !best_q < 0 then begin
                Elim_graph.eliminate eg v;
                path := v :: !path;
                let h_val =
                  if Elim_graph.n_alive eg <= 1 then Rat.zero
                  else frac_lb_of_elim ~rng ~k eg
                in
                let f = Rat.max (Rat.max g'' h_val) f_floor in
                if Rat.compare f !best_q < 0 then
                  branch ~g_val:g'' ~f_floor:f ~reduced:via_reduction;
                path := List.tl !path;
                Elim_graph.restore_last eg
              end)
            candidates
        end
      in
      match branch ~g_val:Rat.zero ~f_floor:lb0 ~reduced:false with
      | () ->
          (* exhausted the ordering tree: the incumbent is optimal *)
          ignore (Incumbent.raise_lb inc (Rat.ceil !best_q));
          finish (Exact_q !best_q) (Some !best_sigma)
      | exception Out_of_budget ->
          finish
            (Bounds_q { lb = Rat.min lb0 !best_q; ub = !best_q })
            (Some !best_sigma)
    end
  end

(* bridge to the int-valued engine result: report ceilings, keep the
   witness ordering — callers recover the exact rational by
   re-evaluating it with Eval.fhw_width_q *)
let to_engine_result r =
  let outcome =
    match r.outcome_q with
    | Exact_q q -> Exact (Rat.ceil q)
    | Bounds_q { lb; ub } ->
        let lb = max 0 (Rat.ceil lb) and ub = Rat.ceil ub in
        if lb >= ub then Exact ub else Bounds { lb; ub }
  in
  {
    Hd_engine.Solver.outcome;
    visited = r.visited;
    generated = r.generated;
    elapsed = r.elapsed;
    ordering = r.ordering;
  }
