(** det-k-decomp: hypertree decompositions of width at most k
    (Gottlob--Leone--Scarcello's opt-k-decomp line, in the
    deterministic formulation of Gottlob & Samer).

    A {e hypertree decomposition} is a generalized hypertree
    decomposition that additionally satisfies the descendant condition
    (condition 4 of Definition 5.x in the literature): for every node
    [p], the vertices of [lambda(p)] that occur anywhere in the subtree
    rooted at [p] must already belong to [chi(p)].  That condition is
    what makes "hw(H) <= k" decidable in polynomial time for fixed [k],
    whereas the same question for ghw is NP-complete — the
    computational gap the paper's Section 2.3.2 describes.

    The algorithm searches top-down: pick a separator [S] of at most
    [k] hyperedges covering the connector vertices shared with the
    parent, split the remaining hyperedges into [var(S)]-connected
    components, and recurse, memoising failed (component, connector)
    pairs.

    Widths relate as [ghw(H) <= hw(H) <= tw(H) + 1], both
    property-tested in the suite. *)

(** A hypertree decomposition, as a GHD whose descendant condition
    holds. *)
type t = Hd_core.Ghd.t

(** Raised when the budget expires mid-search: the question "hw <= k?"
    is then unanswered (a [None] would wrongly claim hw > k). *)
exception Timeout

(** [decide ?within h ~k] finds a hypertree decomposition of width at
    most [k], or [None] when [hw h > k].  [within] bounds the run
    (deadline, state cap, cooperative cancellation).
    @raise Timeout when the budget expires or is cancelled.
    @raise Invalid_argument when some vertex of [h] lies in no
    hyperedge or [k < 1]. *)
val decide :
  ?within:Hd_engine.Budget.t -> Hd_hypergraph.Hypergraph.t -> k:int -> t option

(** [hypertree_width ?upper ?time_limit ?within h] is [hw h] with a
    witness, found by trying k upward from the tw-ksc lower bound;
    [upper] (default: number of hyperedges) caps the search.  [within]
    takes precedence over [time_limit].
    @raise Timeout when the budget expires. *)
val hypertree_width :
  ?upper:int ->
  ?time_limit:float ->
  ?within:Hd_engine.Budget.t ->
  Hd_hypergraph.Hypergraph.t ->
  int * t

(** [descendant_condition_holds h ghd] checks condition 4 alone: for
    every node [p], [var(lambda p)] intersected with the vertices
    occurring in [p]'s subtree is contained in [chi p]. *)
val descendant_condition_holds : Hd_hypergraph.Hypergraph.t -> Hd_core.Ghd.t -> bool

(** The literature's other name for the descendant condition —
    [special_condition_holds = descendant_condition_holds].  This is
    the check [hd_validate] runs on [.ghd] witnesses. *)
val special_condition_holds : Hd_hypergraph.Hypergraph.t -> Hd_core.Ghd.t -> bool

(** [valid h hd] checks all four hypertree decomposition conditions. *)
val valid : Hd_hypergraph.Hypergraph.t -> t -> bool
