type 'a t = {
  compare : 'a -> 'a -> int;
  dummy : 'a;
  mutable data : 'a array;
  mutable size : int;
}

let create ~compare ~dummy = { compare; dummy; data = [||]; size = 0 }

let is_empty q = q.size = 0
let size q = q.size

let swap q i j =
  let t = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if q.compare q.data.(i) q.data.(p) < 0 then begin
      swap q i p;
      sift_up q p
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.compare q.data.(l) q.data.(!smallest) < 0 then smallest := l;
  if r < q.size && q.compare q.data.(r) q.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q x =
  if q.size >= Array.length q.data then begin
    (* grow with the dummy so spare slots never keep a real element
       reachable *)
    let grown = Array.make (max 16 (2 * Array.length q.data)) q.dummy in
    Array.blit q.data 0 grown 0 q.size;
    q.data <- grown
  end;
  q.data.(q.size) <- x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then raise Not_found;
  let top = q.data.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.data.(0) <- q.data.(q.size);
    sift_down q 0
  end;
  (* clear the vacated slot: A* states keep their whole parent chain
     alive, so a stale reference here pins dead frontier subtrees *)
  q.data.(q.size) <- q.dummy;
  top

let peek q = if q.size = 0 then raise Not_found else q.data.(0)
