(** Registration of the exact searches and ordering heuristics in the
    engine's solver table.

    [ensure ()] registers (idempotently): [astar-tw], [astar-tw-dedup],
    [bb-tw], [bb-tw-nopr2], [bb-tw-noreduce], [preprocess-tw],
    [min-fill], [min-degree], [mcs] (treewidth); [astar-ghw],
    [astar-ghw-dedup], [bb-ghw], [bb-ghw-greedy], [min-fill-ghw]
    (generalized hypertree width); [det-k] (hypertree width).  The GA
    family lives in [Hd_ga.Solvers].  Call it before resolving names
    via {!Hd_engine.Solver.find} or {!Hd_engine.Engine.run_by_name}. *)

val ensure : unit -> unit
