(** One-call width analysis of a hypergraph.

    Runs the whole ladder — acyclicity, treewidth, generalized
    hypertree width, fractional hypertree width, hypertree width —
    each under a share of a common time budget, and reports every
    number with its certainty.  This is the "question and answer"
    entry point: which width notions make this instance tractable, and
    at what cost. *)

type report = {
  n_vertices : int;
  n_hyperedges : int;
  primal_edges : int;
  acyclic : bool;  (** alpha-acyclic (GYO) — equivalent to ghw = 1 *)
  tw : Search_types.outcome;  (** treewidth via A*-tw *)
  ghw : Search_types.outcome;  (** generalized hypertree width via BB-ghw *)
  fhw : Hd_lp.Rat.t;
      (** fractional hypertree width via BB-fhw: the exact rational
          value when [fhw_exact], otherwise the best witnessed upper
          bound *)
  fhw_exact : bool;
  hw : int option;  (** hypertree width via det-k-decomp, [None] on timeout *)
  fhw_upper : float;
      (** [Rat.to_float fhw] — kept for historical call sites; use
          [fhw] for decisions *)
}

(** [analyze ?time_limit ?seed h] computes the report; [time_limit]
    (default 10s) is split across the exact searches. *)
val analyze :
  ?time_limit:float -> ?seed:int -> Hd_hypergraph.Hypergraph.t -> report

val pp : Format.formatter -> report -> unit
