(* The canonical definitions moved to Hd_engine.Solver / Hd_engine.Budget
   when the engine became the shared spine; these equations keep every
   historical call site compiling unchanged. *)

type outcome = Hd_engine.Solver.outcome =
  | Exact of int
  | Bounds of { lb : int; ub : int }

type result = Hd_engine.Solver.result = {
  outcome : outcome;
  visited : int;
  generated : int;
  elapsed : float;
  ordering : int array option;
}

type budget = Hd_engine.Budget.spec = {
  time_limit : float option;
  max_states : int option;
}

let no_budget = { time_limit = None; max_states = None }
let with_time seconds = { time_limit = Some seconds; max_states = None }
let value = Hd_engine.Solver.value

let pp_outcome ppf = function
  | Exact w -> Format.fprintf ppf "%d (exact)" w
  | Bounds { lb; ub } -> Format.fprintf ppf "[%d,%d]" lb ub
