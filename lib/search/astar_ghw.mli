(** A*-ghw: best-first exact search for generalized hypertree width
    (Chapter 9).

    The state space of {!Bb_ghw} explored best-first as in {!Astar_tw}:
    [g] is the largest exact bag cover on the path, [h] the
    tw-ksc-width bound of the remaining minor and
    [f = max (g, h, parent.f)].  The f-value of the last visited state
    is a valid ghw lower bound when the budget runs out — the anytime
    behaviour Table 9.1 reports. *)

val solve :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?dedup:bool ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  Search_types.result
(** [incumbent] shares bounds with racing solvers (hd_parallel
    portfolio), exactly as in {!Astar_tw.solve}. *)
