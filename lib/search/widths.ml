module Hypergraph = Hd_hypergraph.Hypergraph
open Search_types

type report = {
  n_vertices : int;
  n_hyperedges : int;
  primal_edges : int;
  acyclic : bool;
  tw : outcome;
  ghw : outcome;
  hw : int option;
  fhw_upper : float;
}

let analyze ?(time_limit = 10.0) ?(seed = 1) h =
  Solvers.ensure ();
  let primal = Hypergraph.primal h in
  let acyclic = Hd_hypergraph.Acyclicity.is_acyclic h in
  (* the ladder stages run under [sub]-budgets of one common clock:
     each takes an equal share of the time *remaining*, so whatever an
     early stage leaves unspent (an instant tw on a small kernel, say)
     rolls over to the harder ghw/hw questions instead of being
     discarded *)
  let total = Hd_engine.Budget.create ~time_limit () in
  Hd_engine.Budget.start total;
  let stage name stages p =
    Hd_engine.Engine.run_by_name ~seed name
      (Hd_engine.Budget.sub ~stages total)
      p
  in
  let tw = (stage "astar-tw" 3 (Hd_engine.Solver.Graph primal)).outcome in
  let ghw = (stage "bb-ghw" 2 (Hd_engine.Solver.Hypergraph h)).outcome in
  let hw =
    match (stage "det-k" 1 (Hd_engine.Solver.Hypergraph h)).outcome with
    | Exact w -> Some w
    | Bounds _ -> None
  in
  let fhw_upper =
    let rng = Random.State.make [| seed |] in
    let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
    let ws = Hd_core.Eval.of_hypergraph h in
    Hd_core.Eval.fhw_width ws sigma
  in
  {
    n_vertices = Hypergraph.n_vertices h;
    n_hyperedges = Hypergraph.n_edges h;
    primal_edges = Hd_graph.Graph.m primal;
    acyclic;
    tw;
    ghw;
    hw;
    fhw_upper;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d vertices, %d hyperedges (%d primal edges)@,\
     alpha-acyclic: %b@,\
     treewidth:     %a@,\
     ghw:           %a@,\
     hw:            %s@,\
     fhw:           <= %.3f@]"
    r.n_vertices r.n_hyperedges r.primal_edges r.acyclic pp_outcome r.tw
    pp_outcome r.ghw
    (match r.hw with Some w -> string_of_int w | None -> "(timeout)")
    r.fhw_upper
