module Hypergraph = Hd_hypergraph.Hypergraph
module Rat = Hd_lp.Rat
open Search_types

type report = {
  n_vertices : int;
  n_hyperedges : int;
  primal_edges : int;
  acyclic : bool;
  tw : outcome;
  ghw : outcome;
  fhw : Rat.t;
  fhw_exact : bool;
  hw : int option;
  fhw_upper : float;
}

let analyze ?(time_limit = 10.0) ?(seed = 1) h =
  Solvers.ensure ();
  let primal = Hypergraph.primal h in
  let acyclic = Hd_hypergraph.Acyclicity.is_acyclic h in
  (* the ladder stages run under [sub]-budgets of one common clock:
     each takes an equal share of the time *remaining*, so whatever an
     early stage leaves unspent (an instant tw on a small kernel, say)
     rolls over to the harder ghw/fhw/hw questions instead of being
     discarded *)
  let total = Hd_engine.Budget.create ~time_limit () in
  Hd_engine.Budget.start total;
  let stage name stages p =
    Hd_engine.Engine.run_by_name ~seed name
      (Hd_engine.Budget.sub ~stages total)
      p
  in
  let tw = (stage "astar-tw" 4 (Hd_engine.Solver.Graph primal)).outcome in
  let ghw = (stage "bb-ghw" 3 (Hd_engine.Solver.Hypergraph h)).outcome in
  (* fhw natively, not through the int registry: the exact rational is
     the point of the exercise *)
  let fhw, fhw_exact =
    match
      (Bb_fhw.solve ~within:(Hd_engine.Budget.sub ~stages:2 total) ~seed h)
        .outcome_q
    with
    | Bb_fhw.Exact_q q -> (q, true)
    | Bb_fhw.Bounds_q { ub; _ } -> (ub, false)
  in
  let hw =
    match (stage "hw-det-k" 1 (Hd_engine.Solver.Hypergraph h)).outcome with
    | Exact w -> Some w
    | Bounds _ -> None
  in
  {
    n_vertices = Hypergraph.n_vertices h;
    n_hyperedges = Hypergraph.n_edges h;
    primal_edges = Hd_graph.Graph.m primal;
    acyclic;
    tw;
    ghw;
    fhw;
    fhw_exact;
    hw;
    fhw_upper = Rat.to_float fhw;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d vertices, %d hyperedges (%d primal edges)@,\
     alpha-acyclic: %b@,\
     treewidth:     %a@,\
     ghw:           %a@,\
     fhw:           %s%a@,\
     hw:            %s@]"
    r.n_vertices r.n_hyperedges r.primal_edges r.acyclic pp_outcome r.tw
    pp_outcome r.ghw
    (if r.fhw_exact then "" else "<= ")
    Rat.pp r.fhw
    (match r.hw with Some w -> string_of_int w | None -> "(timeout)")
