(** BB-tw: depth-first branch and bound for treewidth (Section 4.4).

    The same ingredients as {!Astar_tw} — elimination-ordering search
    space, min-fill upper bound, minor-based lower bounds, simplicial /
    strongly-almost-simplicial reductions, pruning rules PR1 and PR2 —
    explored depth-first with an anytime upper bound, as in the
    algorithms QuickBB and BB-tw the paper compares against. *)

(** [use_pr2] and [use_reductions] (both on by default) exist for the
    pruning ablation bench.  [incumbent] shares bounds with racing
    solvers (hd_parallel portfolio): pruning reads the shared upper
    bound, every improvement is published with its witness, and the
    search stops early when the incumbent closes or is cancelled. *)
val solve :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  ?use_pr2:bool ->
  ?use_reductions:bool ->
  Hd_graph.Graph.t ->
  Search_types.result

val solve_hypergraph :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  Search_types.result
