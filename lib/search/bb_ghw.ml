module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs
open Search_types

type cover_mode = Ghw_common.cover_mode

exception Out_of_budget
exception Closed

let solve ?(budget = no_budget) ?within ?incumbent ?seed ?(cover = `Exact) h =
  Obs.with_span "bb_ghw.solve" @@ fun () ->
  Ghw_common.check_input h;
  (* subsumed hyperedges never matter for covers or coverage: searching
     the reduced instance is free speedup (same vertices, same primal,
     same ghw) *)
  let h = Hypergraph.remove_subsumed h in
  let n = Hypergraph.n_vertices h in
  let ticker =
    match within with
    | Some b -> Search_util.ticker_within b
    | None -> Search_util.make_ticker budget
  in
  let finish outcome ordering =
    {
      outcome;
      visited = Search_util.visited ticker;
      generated = Search_util.generated ticker;
      elapsed = Search_util.elapsed ticker;
      ordering;
    }
  in
  if n = 0 then finish (Exact 0) (Some [||])
  else begin
    let rng = Random.State.make [| Option.value seed ~default:0x6b6 |] in
    let ub_sigma, ub0, lb0 = Ghw_common.initial_bounds h rng in
    let inc =
      match incumbent with
      | Some i -> i
      | None -> (
          match Option.bind within Hd_engine.Budget.incumbent with
          | Some i -> i
          | None -> Incumbent.create ())
    in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma ub0);
    ignore (Incumbent.raise_lb inc lb0);
    let lb0 = max lb0 (Incumbent.lb inc) in
    let best_sigma = ref ub_sigma in
    let final_sigma () =
      match Incumbent.witness inc with
      | Some w -> Some w
      | None -> Some !best_sigma
    in
    if Incumbent.closed inc then
      finish (Exact (Incumbent.ub inc)) (final_sigma ())
    else begin
      let covers = Ghw_common.Cover.make h cover rng in
      let k = Hypergraph.max_edge_size h in
      let eg = Elim_graph.of_graph (Hypergraph.primal h) in
      let path = ref [] in
      let rec branch ~g_val ~f_floor ~reduced =
        if Search_util.out_of_budget ticker || Incumbent.cancelled inc then
          raise Out_of_budget;
        if Incumbent.closed inc then raise Closed;
        Search_util.tick_visited ticker;
        Obs.Counter.incr Search_util.c_expanded;
        let completion = max g_val (Ghw_common.Cover.completion_width covers eg) in
        if completion < Incumbent.ub inc then begin
          let sigma = Ghw_common.record_ordering ~n eg !path in
          if Incumbent.offer_ub inc ~witness:sigma completion then begin
            Obs.Counter.incr Search_util.c_ub_improved;
            best_sigma := sigma
          end
        end;
        (* a completion no better than g exists iff covering the rest
           at once already fits in g: then nothing below can improve *)
        if completion > g_val && f_floor < Incumbent.ub inc then begin
          let candidates =
            (* simplicial reduction only: the almost-simplicial rule is
               degree-based and specific to treewidth *)
            match Elim_graph.find_reducible eg ~lb:(-1) with
            | Some w ->
                Obs.Counter.incr Search_util.c_reductions;
                [ (w, true) ]
            | None ->
                let last = match !path with v :: _ -> v | [] -> -1 in
                let keep u =
                  reduced || last < 0
                  || not
                       (Search_util.prune_child ~adjacent_case:false eg ~last
                          ~candidate:u)
                in
                List.rev
                  (Elim_graph.fold_alive
                     (fun u acc -> if keep u then (u, false) :: acc else acc)
                     eg [])
          in
          let candidates =
            List.sort
              (fun (a, _) (b, _) ->
                compare (Elim_graph.degree eg a) (Elim_graph.degree eg b))
              candidates
          in
          List.iter
            (fun (v, via_reduction) ->
              Search_util.tick_generated ticker;
              Obs.Counter.incr Search_util.c_generated;
              let c = Ghw_common.Cover.bag_width covers eg v in
              let g'' = max g_val c in
              if g'' < Incumbent.ub inc then begin
                Elim_graph.eliminate eg v;
                path := v :: !path;
                let h_val =
                  if Elim_graph.n_alive eg <= 1 then 0
                  else
                    Lower_bounds.ghw_of_elim ~rng ~trials:1 ~max_edge_size:k eg
                in
                let f = max (max g'' h_val) f_floor in
                if f < Incumbent.ub inc then
                  branch ~g_val:g'' ~f_floor:f ~reduced:via_reduction;
                path := List.tl !path;
                Elim_graph.restore_last eg
              end)
            candidates
        end
      in
      match branch ~g_val:0 ~f_floor:lb0 ~reduced:false with
      | () ->
          let outcome =
            match cover with
            | `Exact ->
                (* exhausted the tree with exact covers: ub is optimal *)
                let w = Incumbent.ub inc in
                ignore (Incumbent.raise_lb inc w);
                Exact w
            | `Greedy ->
                (* greedy covers only prove the upper bound *)
                let ubv = Incumbent.ub inc in
                Bounds { lb = min lb0 ubv; ub = ubv }
          in
          finish outcome (final_sigma ())
      | exception Closed -> finish (Exact (Incumbent.ub inc)) (final_sigma ())
      | exception Out_of_budget ->
          let ubv = Incumbent.ub inc in
          finish (Bounds { lb = min lb0 ubv; ub = ubv }) (final_sigma ())
    end
  end
