(** Treewidth-safe graph preprocessing (Section 4.4.3, after
    Bodlaender et al.).

    The reduction rules shrink a graph without lowering its treewidth
    below a maintained floor [low]:

    - {e islet / twig / series}: vertices of degree 0, 1, 2 are
      simplicial or almost simplicial and reduce with
      [low >= degree];
    - {e simplicial}: a vertex whose neighbourhood is a clique reduces
      with [low >= degree];
    - {e strongly almost simplicial}: an almost simplicial vertex of
      degree at most [low] reduces.

    After exhaustion, [tw(g) = max (low, tw(reduced))], so exact
    searches and heuristics can run on the (often much smaller) kernel.
    The searches already apply these rules dynamically; this module
    exposes them as a standalone preprocessor, plus a convenience
    wrapper around {!Astar_tw}. *)

type result = {
  reduced : Hd_graph.Graph.t;
      (** the kernel; eliminated vertices remain as isolated vertices
          to keep the numbering stable *)
  eliminated : int list;
      (** vertices removed, in elimination order (first removed
          first) *)
  low : int;  (** the treewidth floor the eliminations force *)
}

(** [reduce ?lb g] applies the rules to exhaustion.  [lb] seeds the
    floor (e.g. with a minor-min-width bound), which enables more
    strongly-almost-simplicial reductions. *)
val reduce : ?lb:int -> Hd_graph.Graph.t -> result

(** [treewidth_with_preprocessing ?budget ?seed g] reduces, then runs
    A*-tw on the kernel and recombines: the result equals [tw g], with
    a witness ordering over the original vertices. *)
val treewidth_with_preprocessing :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?seed:int ->
  Hd_graph.Graph.t ->
  Search_types.result
