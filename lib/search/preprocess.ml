module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
open Search_types

type result = { reduced : Graph.t; eliminated : int list; low : int }

let reduce ?(lb = 0) g =
  let eg = Elim_graph.of_graph g in
  let low = ref lb in
  let eliminated = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    match Elim_graph.find_reducible eg ~lb:!low with
    | Some v ->
        (* eliminating a simplicial vertex forces a bag of size
           degree + 1; almost simplicial vertices only fire when their
           degree is within the floor, so the floor update is sound
           either way *)
        low := max !low (Elim_graph.degree eg v);
        Elim_graph.eliminate eg v;
        eliminated := v :: !eliminated;
        progress := true
    | None -> ()
  done;
  {
    reduced = Elim_graph.to_graph eg;
    eliminated = List.rev !eliminated;
    low = !low;
  }

let treewidth_with_preprocessing ?(budget = no_budget) ?within ?seed g =
  let n = Graph.n g in
  let rng_lb =
    Hd_bounds.Lower_bounds.treewidth
      ~rng:(Random.State.make [| Option.value seed ~default:1 |])
      g
  in
  let { reduced; eliminated; low } = reduce ~lb:rng_lb g in
  let inner = Astar_tw.solve ~budget ?within ?seed reduced in
  let outcome =
    match inner.outcome with
    | Exact w -> Exact (max w low)
    | Bounds { lb; ub } -> Bounds { lb = max lb low; ub = max ub low }
  in
  (* stitch the witness ordering: the kernel's ordering runs first
     (it is the tail of sigma), then the preprocessed eliminations in
     reverse removal order toward the front.  Kernel orderings include
     the already-eliminated vertices as isolated padding; keep their
     slots but move the true eliminations behind them. *)
  let ordering =
    match inner.ordering with
    | None -> None
    | Some kernel_sigma ->
        let removed = Array.make n false in
        List.iter (fun v -> removed.(v) <- true) eliminated;
        (* kernel vertices in kernel order (they keep their relative
           positions), preprocessed vertices appended at the back in
           reverse removal order so the first-removed is eliminated
           first *)
        let kernel_part =
          Array.to_list kernel_sigma |> List.filter (fun v -> not removed.(v))
        in
        let sigma = Array.make n (-1) in
        let i = ref 0 in
        List.iter
          (fun v ->
            sigma.(!i) <- v;
            incr i)
          kernel_part;
        List.iter
          (fun v ->
            sigma.(!i) <- v;
            incr i)
          (List.rev eliminated);
        Some sigma
  in
  { inner with outcome; ordering }
