(** Shared result and budget types of the exact-search algorithms. *)

(** How a search ended. *)
type outcome =
  | Exact of int  (** the optimum was proved *)
  | Bounds of { lb : int; ub : int }
      (** the budget expired; the optimum lies in [lb, ub] *)

type result = {
  outcome : outcome;
  visited : int;  (** search states visited (expanded) *)
  generated : int;  (** search states evaluated *)
  elapsed : float;  (** wall-clock seconds *)
  ordering : int array option;
      (** an elimination ordering realising the best width found, when
          one was reached *)
}

(** Resource limits for a search run. *)
type budget = {
  time_limit : float option;  (** wall-clock seconds *)
  max_states : int option;  (** cap on generated states *)
}

(** No limits: the search runs to completion. *)
val no_budget : budget

(** [with_time seconds] is a budget limited only by wall-clock time. *)
val with_time : float -> budget

(** [value outcome] is the proved optimum or the upper bound. *)
val value : outcome -> int

(** [pp_outcome ppf o] prints ["w (exact)"] or ["[lb,ub]"]. *)
val pp_outcome : Format.formatter -> outcome -> unit
