(** Shared result and budget types of the exact-search algorithms.

    These are thin aliases of the engine's canonical types
    ({!Hd_engine.Solver.outcome}, {!Hd_engine.Solver.result},
    {!Hd_engine.Budget.spec}): a value of one type {e is} a value of
    the other, so search code and engine code interoperate without
    conversions. *)

(** How a search ended. *)
type outcome = Hd_engine.Solver.outcome =
  | Exact of int  (** the optimum was proved *)
  | Bounds of { lb : int; ub : int }
      (** the budget expired; the optimum lies in [lb, ub] *)

type result = Hd_engine.Solver.result = {
  outcome : outcome;
  visited : int;  (** search states visited (expanded) *)
  generated : int;  (** search states evaluated *)
  elapsed : float;  (** wall-clock seconds *)
  ordering : int array option;
      (** an elimination ordering realising the best width found, when
          one was reached *)
}

(** Resource limits for a search run — the passive description;
    solvers turn it into a running {!Hd_engine.Budget.t}. *)
type budget = Hd_engine.Budget.spec = {
  time_limit : float option;  (** wall-clock seconds *)
  max_states : int option;  (** cap on generated states *)
}

(** No limits: the search runs to completion. *)
val no_budget : budget

(** [with_time seconds] is a budget limited only by wall-clock time. *)
val with_time : float -> budget

(** [value outcome] is the proved optimum or the upper bound. *)
val value : outcome -> int

(** [pp_outcome ppf o] prints ["w (exact)"] or ["[lb,ub]"]. *)
val pp_outcome : Format.formatter -> outcome -> unit
