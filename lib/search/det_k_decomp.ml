module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd

type t = Ghd.t

(* an in-construction decomposition node *)
type node = { chi : Bitset.t; lambda : int list; children : node list }

let vertices_of_edges h edges ~n =
  let vars = Bitset.create n in
  Bitset.iter (fun e -> Array.iter (Bitset.add vars) (Hypergraph.edge h e)) edges;
  vars

(* connected components of the edge set [comp] where two edges touch
   when they share a vertex outside [separator_vars] *)
let components h comp ~separator_vars ~n ~m =
  let unassigned = Bitset.copy comp in
  let result = ref [] in
  while not (Bitset.is_empty unassigned) do
    let seed = Bitset.choose unassigned in
    let component = Bitset.create m in
    let frontier_vertices = Bitset.create n in
    let queue = Queue.create () in
    Queue.push seed queue;
    Bitset.remove unassigned seed;
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      Bitset.add component e;
      Array.iter
        (fun v ->
          if (not (Bitset.mem separator_vars v)) && not (Bitset.mem frontier_vertices v)
          then begin
            Bitset.add frontier_vertices v;
            List.iter
              (fun e' ->
                if Bitset.mem unassigned e' then begin
                  Bitset.remove unassigned e';
                  Queue.push e' queue
                end)
              (Hypergraph.incident h v)
          end)
        (Hypergraph.edge h e)
    done;
    result := component :: !result
  done;
  !result

exception Found of node

exception Timeout

let decide ?within h ~k =
  if k < 1 then invalid_arg "Det_k_decomp.decide: k >= 1 required";
  let ticker = Option.map Hd_engine.Budget.ticker within in
  let check_deadline () =
    match ticker with
    | Some tk when Hd_engine.Budget.out_of_budget tk -> raise Timeout
    | _ -> ()
  in
  if not (Hypergraph.all_vertices_covered h) then
    invalid_arg "Det_k_decomp.decide: every vertex must lie in some hyperedge";
  let n = Hypergraph.n_vertices h in
  let m = Hypergraph.n_edges h in
  let all_edges = Bitset.full m in
  (* failed (component, connector) pairs; successes are never
     recomputed because the recursion stops at the first success *)
  let failed : (Bitset.t * Bitset.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rec decompose comp connector =
    if Bitset.cardinal comp <= k then begin
      (* base: one node holding the whole component *)
      let chi = vertices_of_edges h comp ~n in
      Some { chi; lambda = Bitset.elements comp; children = [] }
    end
    else if Hashtbl.mem failed (comp, connector) then None
    else begin
      check_deadline ();
      let comp_vars = vertices_of_edges h comp ~n in
      (* candidate separator edges must touch the component or the
         connector; others cannot help *)
      let touches e =
        Array.exists
          (fun v -> Bitset.mem comp_vars v || Bitset.mem connector v)
          (Hypergraph.edge h e)
      in
      let candidates =
        List.filter touches (List.init m (fun e -> e))
      in
      let candidate_array = Array.of_list candidates in
      let try_separator lambda =
        let separator = Bitset.create m in
        List.iter (Bitset.add separator) lambda;
        let separator_vars = vertices_of_edges h separator ~n in
        (* descent: unless the component holds nothing beyond the
           connector, some separator edge must reach into it — a
           separator seeing only connector vertices leaves the
           component in one piece, so the progress check below would
           reject it anyway after the (expensive) component split *)
        let descends =
          Bitset.subset comp_vars connector
          || List.exists
               (fun e ->
                 Array.exists
                   (fun v ->
                     Bitset.mem comp_vars v && not (Bitset.mem connector v))
                   (Hypergraph.edge h e))
               lambda
        in
        if not (Bitset.subset connector separator_vars) || not descends then
          None
        else begin
          (* chi respects the descendant condition: only vertices the
             subtree can still see *)
          let chi = Bitset.copy separator_vars in
          let scope = Bitset.copy comp_vars in
          Bitset.union_into ~src:connector ~dst:scope;
          Bitset.inter_into ~src:scope ~dst:chi;
          (* remaining edges: those of the component not absorbed by
             this node's bag *)
          let remaining = Bitset.copy comp in
          Bitset.iter
            (fun e ->
              if Array.for_all (Bitset.mem chi) (Hypergraph.edge h e) then
                Bitset.remove remaining e)
            comp;
          if Bitset.is_empty remaining then
            Some { chi; lambda; children = [] }
          else begin
            let parts = components h remaining ~separator_vars ~n ~m in
            (* progress: every part must be strictly smaller *)
            if List.exists (fun part -> Bitset.equal part comp) parts then None
            else
              let rec solve_children parts acc =
                match parts with
                | [] -> Some (List.rev acc)
                | part :: rest -> (
                    let part_vars = vertices_of_edges h part ~n in
                    let child_connector = Bitset.copy chi in
                    Bitset.inter_into ~src:part_vars ~dst:child_connector;
                    match decompose part child_connector with
                    | None -> None
                    | Some child -> solve_children rest (child :: acc))
              in
              match solve_children parts [] with
              | None -> None
              | Some children -> Some { chi; lambda; children }
          end
        end
      in
      (* enumerate separators of size <= k over the candidates,
         index-increasing; attempt as soon as the connector is covered *)
      let covered = Bitset.create n in
      let result =
        try
          let rec enumerate start chosen slots covered_connector =
            if covered_connector then begin
              match try_separator (List.rev chosen) with
              | Some node -> raise (Found node)
              | None -> ()
            end;
            if slots > 0 then
              for i = start to Array.length candidate_array - 1 do
                (* at large k the loop visits C(m, k) subsets between
                   recursive calls — check the clock here too, not just
                   at decompose entries *)
                check_deadline ();
                let e = candidate_array.(i) in
                (* useless-edge pruning: an edge covering no
                   still-uncovered connector vertex and disjoint from
                   the component only wastes a slot — its vertices
                   influence neither chi nor the component split, so
                   every separator using it has a sub-separator
                   without it that this enumeration also visits *)
                let useful =
                  Array.exists
                    (fun v ->
                      Bitset.mem comp_vars v
                      || (Bitset.mem connector v && not (Bitset.mem covered v)))
                    (Hypergraph.edge h e)
                in
                if useful then begin
                  let added = ref [] in
                  Array.iter
                    (fun v ->
                      if Bitset.mem connector v && not (Bitset.mem covered v)
                      then begin
                        Bitset.add covered v;
                        added := v :: !added
                      end)
                    (Hypergraph.edge h e);
                  enumerate (i + 1) (e :: chosen) (slots - 1)
                    (Bitset.subset connector covered);
                  List.iter (Bitset.remove covered) !added
                end
              done
          in
          enumerate 0 [] k (Bitset.is_empty connector);
          None
        with Found node -> Some node
      in
      if result = None then
        Hashtbl.replace failed (Bitset.copy comp, Bitset.copy connector) ();
      result
    end
  in
  match decompose all_edges (Bitset.create n) with
  | None -> None
  | Some root ->
      (* flatten the node tree into a Ghd.t *)
      let bags = ref [] and parents = ref [] and lambdas = ref [] in
      let counter = ref 0 in
      let rec emit node parent =
        let id = !counter in
        incr counter;
        bags := node.chi :: !bags;
        parents := parent :: !parents;
        lambdas := Array.of_list node.lambda :: !lambdas;
        List.iter (fun child -> emit child id) node.children
      in
      emit root (-1);
      let td =
        Td.make
          ~bags:(Array.of_list (List.rev !bags))
          ~parent:(Array.of_list (List.rev !parents))
      in
      Some (Ghd.make ~td ~lambda:(Array.of_list (List.rev !lambdas)))

let hypertree_width ?upper ?time_limit ?within h =
  let cap = Option.value upper ~default:(max 1 (Hypergraph.n_edges h)) in
  let within =
    match within with
    | Some _ as b -> b
    | None ->
        Option.map
          (fun s -> Hd_engine.Budget.create ~time_limit:s ())
          time_limit
  in
  (* ghw lower-bounds hw, so start the iteration there *)
  let start = max 1 (Hd_bounds.Lower_bounds.ghw h) in
  let rec go k =
    if k > cap then
      invalid_arg "Det_k_decomp.hypertree_width: upper cap exceeded"
    else
      match decide ?within h ~k with
      | Some hd -> (k, hd)
      | None -> go (k + 1)
  in
  go start

let descendant_condition_holds h ghd =
  let td = ghd.Ghd.td in
  let k = Td.n_nodes td in
  let n = Hypergraph.n_vertices h in
  (* subtree_vars.(p) = union of chi over p's subtree *)
  let subtree_vars = Array.init k (fun p -> Bitset.copy (Td.bag td p)) in
  (* children have larger... no ordering guarantee: iterate to fixpoint
     bottom-up via repeated passes (trees are small) *)
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to k - 1 do
      let parent = td.Td.parent.(p) in
      if parent >= 0 then begin
        let before = Bitset.cardinal subtree_vars.(parent) in
        Bitset.union_into ~src:subtree_vars.(p) ~dst:subtree_vars.(parent);
        if Bitset.cardinal subtree_vars.(parent) <> before then changed := true
      end
    done
  done;
  let rec check p =
    p >= k
    ||
    let lambda_vars = Bitset.create n in
    Array.iter
      (fun e -> Array.iter (Bitset.add lambda_vars) (Hypergraph.edge h e))
      ghd.Ghd.lambda.(p);
    Bitset.inter_into ~src:subtree_vars.(p) ~dst:lambda_vars;
    Bitset.subset lambda_vars (Td.bag td p) && check (p + 1)
  in
  check 0

(* the literature's other name for condition 4 *)
let special_condition_holds = descendant_condition_holds

let valid h hd = Ghd.valid h hd && descendant_condition_holds h hd
