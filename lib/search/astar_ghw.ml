module Bitset = Hd_graph.Bitset
module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs
open Search_types

type state = {
  parent : state option;
  vertex : int;
  g : int;
  h : int;
  f : int;
  depth : int;
  mutable children : int list;
  reduced : bool;
}

let compare_states a b =
  let c = compare a.f b.f in
  if c <> 0 then c else compare b.depth a.depth

let path_of s =
  let rec go s acc =
    match s.parent with None -> acc | Some p -> go p (s.vertex :: acc)
  in
  go s []

let sync eg current_path s =
  let target = path_of s in
  let rec split xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> split xs' ys'
    | _ -> (xs, ys)
  in
  let to_undo, to_do = split !current_path target in
  List.iter (fun _ -> Elim_graph.restore_last eg) to_undo;
  List.iter (Elim_graph.eliminate eg) to_do;
  current_path := target

let ordering_of_path ~n path eg =
  let sigma = Array.make n (-1) in
  let i = ref (n - 1) in
  List.iter
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    path;
  Elim_graph.iter_alive
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    eg;
  sigma

let children_of eg ~parent_reduced ~last =
  match Elim_graph.find_reducible eg ~lb:(-1) with
  | Some w ->
      Obs.Counter.incr Search_util.c_reductions;
      ([ w ], true)
  | None ->
      let keep u =
        parent_reduced || last < 0
        || not
             (Search_util.prune_child ~adjacent_case:false eg ~last
                ~candidate:u)
      in
      let kept =
        List.rev
          (Elim_graph.fold_alive
             (fun u acc -> if keep u then u :: acc else acc)
             eg [])
      in
      (kept, false)

let solve ?(budget = no_budget) ?within ?(dedup = false) ?incumbent ?seed h =
  Obs.with_span "astar_ghw.solve" @@ fun () ->
  Ghw_common.check_input h;
  (* subsumed hyperedges never matter for covers or coverage: searching
     the reduced instance is free speedup (same vertices, same primal,
     same ghw) *)
  let h = Hypergraph.remove_subsumed h in
  let n = Hypergraph.n_vertices h in
  let ticker =
    match within with
    | Some b -> Search_util.ticker_within b
    | None -> Search_util.make_ticker budget
  in
  let finish outcome ordering =
    {
      outcome;
      visited = Search_util.visited ticker;
      generated = Search_util.generated ticker;
      elapsed = Search_util.elapsed ticker;
      ordering;
    }
  in
  if n = 0 then finish (Exact 0) (Some [||])
  else begin
    let rng = Random.State.make [| Option.value seed ~default:0xa5a |] in
    let ub_sigma, ub0, lb0 = Ghw_common.initial_bounds h rng in
    let inc =
      match incumbent with
      | Some i -> i
      | None -> (
          match Option.bind within Hd_engine.Budget.incumbent with
          | Some i -> i
          | None -> Incumbent.create ())
    in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma ub0);
    ignore (Incumbent.raise_lb inc lb0);
    let lb0 = max lb0 (Incumbent.lb inc) in
    let best_sigma = ref ub_sigma in
    let final_sigma () =
      match Incumbent.witness inc with
      | Some w -> Some w
      | None -> Some !best_sigma
    in
    if Incumbent.closed inc then
      finish (Exact (Incumbent.ub inc)) (final_sigma ())
    else begin
      let covers = Ghw_common.Cover.make h `Exact rng in
      let k = Hypergraph.max_edge_size h in
      let best_lb = ref lb0 in
      let eg = Elim_graph.of_graph (Hypergraph.primal h) in
      let current_path = ref [] in
      let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 4096 in
      let root_children, root_reduced = children_of eg ~parent_reduced:true ~last:(-1) in
      let root =
        {
          parent = None;
          vertex = -1;
          g = 0;
          h = lb0;
          f = lb0;
          depth = 0;
          children = root_children;
          reduced = root_reduced;
        }
      in
      (* the root is reachable from every state's parent chain anyway,
         so using it as the queue's slot-clearing dummy retains nothing *)
      let queue = Pq.create ~compare:compare_states ~dummy:root in
      Pq.push queue root;
      let rec search () =
        if Incumbent.closed inc then
          finish (Exact (Incumbent.ub inc)) (final_sigma ())
        else if Pq.is_empty queue then begin
          let w = Incumbent.ub inc in
          ignore (Incumbent.raise_lb inc w);
          finish (Exact w) (final_sigma ())
        end
        else if Search_util.out_of_budget ticker || Incumbent.cancelled inc
        then begin
          let ubv = Incumbent.ub inc in
          finish (Bounds { lb = min !best_lb ubv; ub = ubv }) (final_sigma ())
        end
        else begin
          let s = Pq.pop queue in
          if s.f >= Incumbent.ub inc then begin
            Obs.Counter.incr Search_util.c_stale;
            search ()
          end
          else begin
            Search_util.tick_visited ticker;
            Obs.Counter.incr Search_util.c_expanded;
            sync eg current_path s;
            if s.f > !best_lb then begin
              best_lb := s.f;
              (* the frontier minimum f is a sound global lower bound *)
              ignore (Incumbent.raise_lb inc s.f);
              Obs.Counter.incr Search_util.c_lb_improved
            end;
            let completion = Ghw_common.Cover.completion_width covers eg in
            if completion <= s.g then begin
              let sigma = ordering_of_path ~n (path_of s) eg in
              ignore (Incumbent.offer_ub inc ~witness:sigma s.g);
              ignore (Incumbent.raise_lb inc s.g);
              finish (Exact s.g) (Some sigma)
            end
            else begin
              expand s completion;
              s.children <- [];
              search ()
            end
          end
        end
      and expand s completion_here =
        (* anytime upper bound from this state *)
        let total = max s.g completion_here in
        if total < Incumbent.ub inc then begin
          let sigma = ordering_of_path ~n (path_of s) eg in
          if Incumbent.offer_ub inc ~witness:sigma total then begin
            Obs.Counter.incr Search_util.c_ub_improved;
            best_sigma := sigma
          end
        end;
        List.iter
          (fun v ->
            if not (Search_util.out_of_budget ticker) then begin
              Search_util.tick_generated ticker;
              Obs.Counter.incr Search_util.c_generated;
              let c = Ghw_common.Cover.bag_width covers eg v in
              let g' = max s.g c in
              if g' < Incumbent.ub inc then begin
                Elim_graph.eliminate eg v;
                let h' =
                  if Elim_graph.n_alive eg <= 1 then 0
                  else Lower_bounds.ghw_of_elim ~rng ~trials:1 ~max_edge_size:k eg
                in
                let f' = max (max g' h') s.f in
                if f' < Incumbent.ub inc then begin
                  let dominated =
                    dedup
                    &&
                    let key = Elim_graph.alive eg in
                    match Hashtbl.find_opt seen key with
                    | Some g_seen when g_seen <= g' ->
                        Obs.Counter.incr Search_util.c_duplicates;
                        true
                    | _ ->
                        Hashtbl.replace seen (Bitset.copy key) g';
                        false
                  in
                  if not dominated then begin
                    let children, reduced =
                      children_of eg ~parent_reduced:s.reduced ~last:v
                    in
                    Pq.push queue
                      {
                        parent = Some s;
                        vertex = v;
                        g = g';
                        h = h';
                        f = f';
                        depth = s.depth + 1;
                        children;
                        reduced;
                      }
                  end
                end;
                Elim_graph.restore_last eg
              end
            end)
          s.children
      in
      search ()
    end
  end
