module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Bitset = Hd_graph.Bitset
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs
open Search_types

type state = {
  parent : state option;
  vertex : int; (* eliminated on entering this state; -1 at the root *)
  g : int;
  h : int;
  f : int;
  depth : int;
  mutable children : int list;
  reduced : bool;
}

let compare_states a b =
  (* smallest f first; among equal f prefer deeper states, which reach
     goals sooner once the frontier sits at the optimum (Section 5.3) *)
  let c = compare a.f b.f in
  if c <> 0 then c else compare b.depth a.depth

(* The elimination path from the root to [s], in elimination order. *)
let path_of s =
  let rec go s acc =
    match s.parent with None -> acc | Some p -> go p (s.vertex :: acc)
  in
  go s []

(* Move the shared elimination graph from the state it is currently at
   to state [s]: restore back to the deepest common ancestor, then
   eliminate along [s]'s remaining path.  [current_path] is kept in
   elimination order. *)
let sync eg current_path s =
  let target = path_of s in
  let rec split xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> split xs' ys'
    | _ -> (xs, ys)
  in
  let to_undo, to_do = split !current_path target in
  List.iter (fun _ -> Elim_graph.restore_last eg) to_undo;
  List.iter (Elim_graph.eliminate eg) to_do;
  current_path := target

(* sigma places the first-eliminated vertex last (library convention) *)
let ordering_of_path ~n path eg =
  let sigma = Array.make n (-1) in
  let i = ref (n - 1) in
  List.iter
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    path;
  Elim_graph.iter_alive
    (fun v ->
      sigma.(!i) <- v;
      decr i)
    eg;
  sigma

let children_of eg ~lb ~parent_reduced ~last =
  match Elim_graph.find_reducible eg ~lb with
  | Some w ->
      Obs.Counter.incr Search_util.c_reductions;
      ([ w ], true)
  | None ->
      let keep u =
        parent_reduced || last < 0
        || not (Search_util.prune_child eg ~last ~candidate:u)
      in
      let kept =
        List.rev
          (Elim_graph.fold_alive
             (fun u acc -> if keep u then u :: acc else acc)
             eg [])
      in
      (kept, false)

let solve ?(budget = no_budget) ?within ?(dedup = false) ?incumbent ?seed g =
  Obs.with_span "astar_tw.solve" @@ fun () ->
  let n = Graph.n g in
  let ticker =
    match within with
    | Some b -> Search_util.ticker_within b
    | None -> Search_util.make_ticker budget
  in
  let finish outcome ordering =
    {
      outcome;
      visited = Search_util.visited ticker;
      generated = Search_util.generated ticker;
      elapsed = Search_util.elapsed ticker;
      ordering;
    }
  in
  if n <= 1 then finish (Exact (n - 1)) (Some (Array.init n (fun i -> i)))
  else begin
    let rng = Random.State.make [| Option.value seed ~default:0x7ea |] in
    let eval = Hd_core.Eval.of_graph g in
    let ub_sigma, ub0 =
      Hd_core.Ordering_heuristics.best_of rng g ~trials:3
        ~eval:(Hd_core.Eval.tw_width eval)
    in
    let lb = Lower_bounds.treewidth ~rng g in
    (* all bound traffic goes through the (possibly shared) incumbent:
       racing solvers see our improvements and vice versa *)
    let inc =
      match incumbent with
      | Some i -> i
      | None -> (
          match Option.bind within Hd_engine.Budget.incumbent with
          | Some i -> i
          | None -> Incumbent.create ())
    in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma ub0);
    ignore (Incumbent.raise_lb inc lb);
    let lb = max lb (Incumbent.lb inc) in
    let best_sigma = ref ub_sigma in
    let final_sigma () =
      match Incumbent.witness inc with
      | Some w -> Some w
      | None -> Some !best_sigma
    in
    if Incumbent.closed inc then finish (Exact (Incumbent.ub inc)) (final_sigma ())
    else begin
      let best_lb = ref lb in
      let eg = Elim_graph.of_graph g in
      let current_path = ref [] in
      let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 4096 in
      let root_children, root_reduced =
        children_of eg ~lb ~parent_reduced:true ~last:(-1)
      in
      let root =
        {
          parent = None;
          vertex = -1;
          g = 0;
          h = lb;
          f = lb;
          depth = 0;
          children = root_children;
          reduced = root_reduced;
        }
      in
      (* the root is reachable from every state's parent chain anyway,
         so using it as the queue's slot-clearing dummy retains nothing *)
      let queue = Pq.create ~compare:compare_states ~dummy:root in
      Pq.push queue root;
      let rec search () =
        if Incumbent.closed inc then
          (* some racer (possibly us) proved lb = ub *)
          finish (Exact (Incumbent.ub inc)) (final_sigma ())
        else if Pq.is_empty queue then begin
          let w = Incumbent.ub inc in
          (* every state below w was pruned: w is optimal; closing the
             incumbent releases the other portfolio members *)
          ignore (Incumbent.raise_lb inc w);
          finish (Exact w) (final_sigma ())
        end
        else if Search_util.out_of_budget ticker || Incumbent.cancelled inc
        then begin
          let ubv = Incumbent.ub inc in
          finish (Bounds { lb = min !best_lb ubv; ub = ubv }) (final_sigma ())
        end
        else begin
          let s = Pq.pop queue in
          if s.f >= Incumbent.ub inc then begin
            (* stale entry: the upper bound improved since the push *)
            Obs.Counter.incr Search_util.c_stale;
            search ()
          end
          else begin
            Search_util.tick_visited ticker;
            Obs.Counter.incr Search_util.c_expanded;
            sync eg current_path s;
            if s.f > !best_lb then begin
              best_lb := s.f;
              (* the frontier minimum f is a sound global lower bound *)
              ignore (Incumbent.raise_lb inc s.f);
              Obs.Counter.incr Search_util.c_lb_improved
            end;
            if s.g >= Elim_graph.n_alive eg - 1 then begin
              let sigma = ordering_of_path ~n (path_of s) eg in
              ignore (Incumbent.offer_ub inc ~witness:sigma s.g);
              ignore (Incumbent.raise_lb inc s.g);
              finish (Exact s.g) (Some sigma)
            end
            else begin
              expand s;
              s.children <- [];
              search ()
            end
          end
        end
      and expand s =
        List.iter
          (fun v ->
            if not (Search_util.out_of_budget ticker) then begin
              Search_util.tick_generated ticker;
              Obs.Counter.incr Search_util.c_generated;
              let d = Elim_graph.degree eg v in
              let g' = max s.g d in
              Elim_graph.eliminate eg v;
              (* PR 1: completing in any order costs at most
                 max (g', n' - 1) *)
              let n' = Elim_graph.n_alive eg in
              let completion = max g' (n' - 1) in
              if completion < Incumbent.ub inc then begin
                let sigma = ordering_of_path ~n (path_of s @ [ v ]) eg in
                if Incumbent.offer_ub inc ~witness:sigma completion then begin
                  Obs.Counter.incr Search_util.c_pr1;
                  Obs.Counter.incr Search_util.c_ub_improved;
                  best_sigma := sigma
                end
              end;
              let h' =
                if n' <= 1 then 0 else Lower_bounds.treewidth_of_elim ~rng ~trials:1 eg
              in
              let f' = max (max g' h') s.f in
              if f' < Incumbent.ub inc then begin
                let dominated =
                  dedup
                  &&
                  let key = Elim_graph.alive eg in
                  match Hashtbl.find_opt seen key with
                  | Some g_seen when g_seen <= g' ->
                      Obs.Counter.incr Search_util.c_duplicates;
                      true
                  | _ ->
                      Hashtbl.replace seen (Bitset.copy key) g';
                      false
                in
                if not dominated then begin
                  let children, reduced =
                    children_of eg ~lb:f' ~parent_reduced:s.reduced ~last:v
                  in
                  Pq.push queue
                    {
                      parent = Some s;
                      vertex = v;
                      g = g';
                      h = h';
                      f = f';
                      depth = s.depth + 1;
                      children;
                      reduced;
                    }
                end
              end;
              Elim_graph.restore_last eg
            end)
          s.children
      in
      search ()
    end
  end

let solve_hypergraph ?budget ?within ?dedup ?incumbent ?seed h =
  solve ?budget ?within ?dedup ?incumbent ?seed
    (Hd_hypergraph.Hypergraph.primal h)
