(** A mutable binary-heap priority queue.

    [Pq.create ~compare ~dummy] orders elements so that {!pop} returns
    a minimal element under [compare] — the best-first frontier of the
    A* algorithms.

    [dummy] is a throwaway element used to fill vacated and spare
    slots of the backing array.  It is never returned and never passed
    to [compare]; it exists so that popped elements become unreachable
    immediately (A* states carry their entire parent chain, so a stale
    slot would pin an arbitrarily large dead subtree in memory).  Any
    value of the element type works; a long-lived one (e.g. the root
    state) costs nothing extra. *)

type 'a t

val create : compare:('a -> 'a -> int) -> dummy:'a -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop q] removes and returns a minimal element, and clears the
    vacated slot so the element is not retained by the queue.
    @raise Not_found when [q] is empty. *)
val pop : 'a t -> 'a

(** [peek q] returns a minimal element without removing it.
    @raise Not_found when [q] is empty. *)
val peek : 'a t -> 'a
