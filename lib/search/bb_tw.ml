module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Lower_bounds = Hd_bounds.Lower_bounds
module Incumbent = Hd_core.Incumbent
module Obs = Hd_obs.Obs
open Search_types

exception Out_of_budget
exception Closed

let solve ?(budget = no_budget) ?within ?incumbent ?seed ?(use_pr2 = true)
    ?(use_reductions = true) g =
  Obs.with_span "bb_tw.solve" @@ fun () ->
  let n = Graph.n g in
  let ticker =
    match within with
    | Some b -> Search_util.ticker_within b
    | None -> Search_util.make_ticker budget
  in
  let finish outcome ordering =
    {
      outcome;
      visited = Search_util.visited ticker;
      generated = Search_util.generated ticker;
      elapsed = Search_util.elapsed ticker;
      ordering;
    }
  in
  if n <= 1 then finish (Exact (n - 1)) (Some (Array.init n (fun i -> i)))
  else begin
    let rng = Random.State.make [| Option.value seed ~default:0xb0b |] in
    let eval = Hd_core.Eval.of_graph g in
    let ub_sigma, ub0 =
      Hd_core.Ordering_heuristics.best_of rng g ~trials:3
        ~eval:(Hd_core.Eval.tw_width eval)
    in
    let lb0 = Lower_bounds.treewidth ~rng g in
    let inc =
      match incumbent with
      | Some i -> i
      | None -> (
          match Option.bind within Hd_engine.Budget.incumbent with
          | Some i -> i
          | None -> Incumbent.create ())
    in
    ignore (Incumbent.offer_ub inc ~witness:ub_sigma ub0);
    ignore (Incumbent.raise_lb inc lb0);
    let lb0 = max lb0 (Incumbent.lb inc) in
    let best_sigma = ref ub_sigma in
    let final_sigma () =
      match Incumbent.witness inc with
      | Some w -> Some w
      | None -> Some !best_sigma
    in
    if Incumbent.closed inc then
      finish (Exact (Incumbent.ub inc)) (final_sigma ())
    else begin
      let eg = Elim_graph.of_graph g in
      let path = ref [] in
      (* vertices eliminated so far, most recent first *)
      let record_solution width =
        if width < Incumbent.ub inc then begin
          (* sigma's back is eliminated first: live vertices fill the
             front (eliminated last, in any order), then the path in
             most-recent-first order puts the first elimination at the
             very back *)
          let sigma = Array.make n (-1) in
          let i = ref 0 in
          Elim_graph.iter_alive
            (fun v ->
              sigma.(!i) <- v;
              incr i)
            eg;
          List.iter
            (fun v ->
              sigma.(!i) <- v;
              incr i)
            !path;
          if Incumbent.offer_ub inc ~witness:sigma width then begin
            Obs.Counter.incr Search_util.c_ub_improved;
            best_sigma := sigma
          end
        end
      in
      (* depth-first over elimination choices; [g_val] is the width of
         the partial ordering, [f_floor] the inherited f of the parent *)
      let rec branch ~g_val ~f_floor ~reduced =
        if Search_util.out_of_budget ticker || Incumbent.cancelled inc then
          raise Out_of_budget;
        if Incumbent.closed inc then raise Closed;
        Search_util.tick_visited ticker;
        Obs.Counter.incr Search_util.c_expanded;
        let n' = Elim_graph.n_alive eg in
        (* PR 1 *)
        let completion = max g_val (n' - 1) in
        if completion < Incumbent.ub inc then begin
          Obs.Counter.incr Search_util.c_pr1;
          record_solution completion
        end;
        if n' - 1 > g_val && f_floor < Incumbent.ub inc then begin
          let reducible =
            if use_reductions then Elim_graph.find_reducible eg ~lb:f_floor
            else None
          in
          let candidates =
            match reducible with
            | Some w ->
                Obs.Counter.incr Search_util.c_reductions;
                [ (w, true) ]
            | None ->
                let last = match !path with v :: _ -> v | [] -> -1 in
                let keep u =
                  (not use_pr2) || reduced || last < 0
                  || not (Search_util.prune_child eg ~last ~candidate:u)
                in
                List.rev
                  (Elim_graph.fold_alive
                     (fun u acc -> if keep u then (u, false) :: acc else acc)
                     eg [])
          in
          (* explore low-degree vertices first: they concentrate good
             orderings early, tightening ub for later siblings *)
          let candidates =
            List.sort
              (fun (a, _) (b, _) ->
                compare (Elim_graph.degree eg a) (Elim_graph.degree eg b))
              candidates
          in
          List.iter
            (fun (v, via_reduction) ->
              Search_util.tick_generated ticker;
              Obs.Counter.incr Search_util.c_generated;
              let d = Elim_graph.degree eg v in
              let g'' = max g_val d in
              if g'' < Incumbent.ub inc then begin
                Elim_graph.eliminate eg v;
                path := v :: !path;
                let h =
                  if Elim_graph.n_alive eg <= 1 then 0
                  else Lower_bounds.treewidth_of_elim ~rng ~trials:1 eg
                in
                let f = max (max g'' h) f_floor in
                if f < Incumbent.ub inc then
                  branch ~g_val:g'' ~f_floor:f ~reduced:via_reduction;
                path := List.tl !path;
                Elim_graph.restore_last eg
              end)
            candidates
        end
      in
      match branch ~g_val:0 ~f_floor:lb0 ~reduced:false with
      | () ->
          (* exhausted the tree: the incumbent ub is optimal *)
          let w = Incumbent.ub inc in
          ignore (Incumbent.raise_lb inc w);
          finish (Exact w) (final_sigma ())
      | exception Closed -> finish (Exact (Incumbent.ub inc)) (final_sigma ())
      | exception Out_of_budget ->
          let ubv = Incumbent.ub inc in
          finish (Bounds { lb = min lb0 ubv; ub = ubv }) (final_sigma ())
    end
  end

let solve_hypergraph ?budget ?within ?incumbent ?seed h =
  solve ?budget ?within ?incumbent ?seed (Hd_hypergraph.Hypergraph.primal h)
