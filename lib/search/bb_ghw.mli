(** BB-ghw: branch and bound for generalized hypertree width
    (Chapter 8).

    Chapter 3 licenses searching elimination orderings: some ordering,
    with every bag's set cover solved exactly, realises ghw (Theorem 3).
    The search walks orderings of the primal graph depth-first; a
    state's [g] is the largest exact cover of a bag created so far, its
    [h] the tw-ksc-width lower bound (Section 8.1) of the remaining
    minor.  Simplicial reduction (Section 8.2), the non-adjacent case of
    pruning rule PR2 and the PR1-style completion bound — covering all
    remaining vertices at once — shrink the tree (Section 8.3).  Exact
    bag covers are memoised across the whole run. *)

type cover_mode =
  [ `Exact  (** optimal lambda per bag: the search is an exact method *)
  | `Greedy  (** greedy covers: faster, upper bounds only (ablation) *) ]

val solve :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?incumbent:Hd_core.Incumbent.t ->
  ?seed:int ->
  ?cover:cover_mode ->
  Hd_hypergraph.Hypergraph.t ->
  Search_types.result
(** [incumbent] shares bounds with racing solvers (hd_parallel
    portfolio), exactly as in {!Bb_tw.solve}. *)
