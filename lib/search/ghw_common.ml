module Bitset = Hd_graph.Bitset
module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover
module Lower_bounds = Hd_bounds.Lower_bounds

type cover_mode = [ `Exact | `Greedy ]

(* Cover machinery shared with A*-ghw. *)
module Cover = struct
  type t = {
    hypergraph : Hypergraph.t;
    cache : (Bitset.t, int) Hashtbl.t;
    mode : cover_mode;
    rng : Random.State.t;
    scratch : Bitset.t;
  }

  let make h mode rng =
    {
      hypergraph = h;
      cache = Hashtbl.create 4096;
      mode;
      rng;
      scratch = Bitset.create (max 1 (Hypergraph.n_vertices h));
    }

  (* cover size of the elimination bag {v} u N(v) *)
  let bag_width t eg v =
    Bitset.blit ~src:(Elim_graph.adjacency eg v) ~dst:t.scratch;
    Bitset.add t.scratch v;
    let problem = { Set_cover.universe = t.scratch; hypergraph = t.hypergraph } in
    match t.mode with
    | `Exact -> Set_cover.exact_size ~cache:t.cache problem
    | `Greedy -> Set_cover.greedy_size ~rng:t.rng problem

  (* greedy cover of all live vertices: a valid width for any
     completion of the current partial ordering *)
  let completion_width t eg =
    if Elim_graph.n_alive eg = 0 then 0
    else begin
      Bitset.blit ~src:(Elim_graph.alive eg) ~dst:t.scratch;
      Set_cover.greedy_size ~rng:t.rng
        { Set_cover.universe = t.scratch; hypergraph = t.hypergraph }
    end
end

let initial_bounds h rng =
  let eval = Hd_core.Eval.of_hypergraph h in
  let g = Hypergraph.primal h in
  let ub_sigma, ub =
    Hd_core.Ordering_heuristics.best_of rng g ~trials:3
      ~eval:(Hd_core.Eval.ghw_width ~rng eval)
  in
  let lb = Lower_bounds.ghw ~rng h in
  (ub_sigma, ub, lb)

let check_input h =
  if not (Hypergraph.all_vertices_covered h) then
    invalid_arg "Ghw search: every vertex must lie in some hyperedge"

let record_ordering ~n eg path =
  (* live vertices fill the front (eliminated last); the path,
     most-recent-first, ends with the first elimination at the back *)
  let sigma = Array.make n (-1) in
  let i = ref 0 in
  Elim_graph.iter_alive
    (fun v ->
      sigma.(!i) <- v;
      incr i)
    eg;
  List.iter
    (fun v ->
      sigma.(!i) <- v;
      incr i)
    path;
  sigma

