module B = Hd_engine.Budget
module S = Hd_engine.Solver
module Incumbent = Hd_core.Incumbent

let register ~name ~kind ~doc run = S.register { S.name; kind; doc; run }

(* a quick one-shot ordering heuristic as an anytime solver: evaluate
   the ordering, publish it, report Bounds (no lower bound proved) *)
let heuristic ~default_seed ~width ordering_of ?seed b p =
  let (w, sigma), secs =
    Hd_engine.Clock.time @@ fun () ->
    let rng =
      Random.State.make [| Option.value seed ~default:default_seed |]
    in
    let sigma = ordering_of rng p in
    (width rng p sigma, sigma)
  in
  (match B.incumbent b with
  | Some inc -> ignore (Incumbent.offer_ub inc ~witness:sigma w)
  | None -> ());
  {
    S.outcome = S.Bounds { lb = 0; ub = w };
    visited = 0;
    generated = 1;
    elapsed = secs;
    ordering = Some sigma;
  }

let tw_width _rng p sigma =
  let ws = Hd_core.Eval.of_graph (S.primal_of p) in
  Hd_core.Eval.tw_width ws sigma

let ghw_width rng p sigma =
  let ws = Hd_core.Eval.of_hypergraph (S.hypergraph_of p) in
  Hd_core.Eval.ghw_width ~rng ws sigma

(* fhw is rational; the int-valued registry carries its ceiling (the
   exact value is recovered from the witness via Eval.fhw_width_q) *)
let fhw_width_ceil _rng p sigma =
  let ws = Hd_core.Eval.of_hypergraph (S.hypergraph_of p) in
  Hd_lp.Rat.ceil (Hd_core.Eval.fhw_width_q ws sigma)

let det_k ?seed b p =
  ignore seed;
  let h = S.hypergraph_of p in
  let r, secs =
    Hd_engine.Clock.time @@ fun () ->
    match Det_k_decomp.hypertree_width ~within:b h with
    | w, _hd -> S.Exact w
    | exception Det_k_decomp.Timeout ->
        let lb = max 1 (Hd_bounds.Lower_bounds.ghw h) in
        S.Bounds { lb; ub = max lb (max 1 (Hd_hypergraph.Hypergraph.n_edges h)) }
  in
  (match (r, B.incumbent b) with
  | S.Exact w, Some inc ->
      ignore (Incumbent.offer_ub inc w);
      ignore (Incumbent.raise_lb inc w)
  | _ -> ());
  { S.outcome = r; visited = 0; generated = 0; elapsed = secs; ordering = None }

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    let tw ~name ~doc run =
      register ~name ~kind:S.Tw ~doc (fun ?seed b p ->
          run ?seed ~within:b (S.primal_of p))
    in
    let ghw ~name ~doc run =
      register ~name ~kind:S.Ghw ~doc (fun ?seed b p ->
          run ?seed ~within:b (S.hypergraph_of p))
    in
    tw ~name:"astar-tw" ~doc:"best-first exact treewidth (Chapter 5)"
      (fun ?seed ~within g -> Astar_tw.solve ~within ?seed g);
    tw ~name:"astar-tw-dedup"
      ~doc:"A*-tw merging states with equal eliminated sets"
      (fun ?seed ~within g -> Astar_tw.solve ~within ~dedup:true ?seed g);
    tw ~name:"bb-tw" ~doc:"depth-first branch and bound (Section 4.4)"
      (fun ?seed ~within g -> Bb_tw.solve ~within ?seed g);
    tw ~name:"bb-tw-nopr2" ~doc:"BB-tw without pruning rule PR2 (ablation)"
      (fun ?seed ~within g -> Bb_tw.solve ~within ~use_pr2:false ?seed g);
    tw ~name:"bb-tw-noreduce"
      ~doc:"BB-tw without simplicial reductions (ablation)"
      (fun ?seed ~within g -> Bb_tw.solve ~within ~use_reductions:false ?seed g);
    tw ~name:"preprocess-tw"
      ~doc:"Bodlaender-style kernelization, then A*-tw on the kernel"
      (fun ?seed ~within g ->
        Preprocess.treewidth_with_preprocessing ~within ?seed g);
    register ~name:"min-fill" ~kind:S.Tw
      ~doc:"min-fill elimination ordering (upper bound only)"
      (heuristic ~default_seed:0x3f1 ~width:tw_width (fun rng p ->
           Hd_core.Ordering_heuristics.min_fill rng (S.primal_of p)));
    register ~name:"min-degree" ~kind:S.Tw
      ~doc:"min-degree elimination ordering (upper bound only)"
      (heuristic ~default_seed:0x3f2 ~width:tw_width (fun rng p ->
           Hd_core.Ordering_heuristics.min_degree rng (S.primal_of p)));
    register ~name:"mcs" ~kind:S.Tw
      ~doc:"maximum-cardinality-search ordering (upper bound only)"
      (heuristic ~default_seed:0x3f3 ~width:tw_width (fun rng p ->
           Hd_core.Ordering_heuristics.max_cardinality rng (S.primal_of p)));
    ghw ~name:"astar-ghw" ~doc:"best-first exact ghw (Chapter 9)"
      (fun ?seed ~within h -> Astar_ghw.solve ~within ?seed h);
    ghw ~name:"astar-ghw-dedup"
      ~doc:"A*-ghw merging states with equal eliminated sets"
      (fun ?seed ~within h -> Astar_ghw.solve ~within ~dedup:true ?seed h);
    ghw ~name:"bb-ghw" ~doc:"branch and bound for ghw (Chapter 8)"
      (fun ?seed ~within h -> Bb_ghw.solve ~within ?seed h);
    ghw ~name:"bb-ghw-greedy"
      ~doc:"BB-ghw with greedy covers (upper bounds only, ablation)"
      (fun ?seed ~within h -> Bb_ghw.solve ~within ~cover:`Greedy ?seed h);
    register ~name:"min-fill-ghw" ~kind:S.Ghw
      ~doc:"min-fill ordering with greedy covers (upper bound only)"
      (heuristic ~default_seed:0x3f4 ~width:ghw_width (fun rng p ->
           Hd_core.Ordering_heuristics.min_fill_hypergraph rng
             (S.hypergraph_of p)));
    register ~name:"fhw-bb" ~kind:S.Fhw
      ~doc:"branch and bound for exact fractional hypertree width (LP covers)"
      (fun ?seed b p ->
        Bb_fhw.to_engine_result (Bb_fhw.solve ~within:b ?seed (S.hypergraph_of p)));
    register ~name:"fhw-min-fill" ~kind:S.Fhw
      ~doc:"min-fill ordering with exact LP covers (upper bound only)"
      (heuristic ~default_seed:0x3f5 ~width:fhw_width_ceil (fun rng p ->
           Hd_core.Ordering_heuristics.min_fill_hypergraph rng
             (S.hypergraph_of p)));
    register ~name:"hw-det-k" ~kind:S.Hw
      ~doc:"det-k-decomp: exact hypertree width (Gottlob & Samer)" det_k;
    (* historical name, same solver *)
    register ~name:"det-k" ~kind:S.Hw
      ~doc:"alias of hw-det-k (kept for scripts)" det_k
  end
