(* Internal helpers shared by the four exact-search algorithms. *)

module Elim_graph = Hd_graph.Elim_graph
module Obs = Hd_obs.Obs

(* Observability counters shared by A*-tw, BB-tw, BB-ghw and A*-ghw;
   the per-algorithm spans (e.g. "astar_tw.solve") tell the runs apart.
   Registered here at module-init time so they appear in every report,
   even at 0.  Naming scheme: docs/OBSERVABILITY.md. *)
let c_expanded = Obs.Counter.make "search.nodes_expanded"
let c_generated = Obs.Counter.make "search.nodes_generated"
let c_duplicates = Obs.Counter.make "search.duplicates_pruned"
let c_stale = Obs.Counter.make "search.stale_pops"
let c_pr1 = Obs.Counter.make "search.pr1_fires"
let c_pr2 = Obs.Counter.make "search.pr2_fires"
let c_reductions = Obs.Counter.make "search.reductions_applied"
let c_ub_improved = Obs.Counter.make "search.ub_improvements"
let c_lb_improved = Obs.Counter.make "search.lb_improvements"

(* Pruning rule PR 2 (Section 4.4.5).  The graph [eg] is positioned
   just after eliminating some vertex [v]; [swap_equivalent eg u] holds
   when eliminating [u] before [v] would have produced an ordering of
   identical width, so that only one of the two branches needs
   exploring.  With [v] and [u] non-adjacent (before [v]'s elimination)
   this is always so; with them adjacent it requires each to own a
   still-alive neighbour that the other lacked. *)
let swap_equivalent ?(adjacent_case = true) eg u =
  match Elim_graph.last_step eg with
  | None -> false
  | Some { Elim_graph.vertex = _; nbrs; fill } ->
      if not (List.mem u nbrs) then true
      else if not adjacent_case then
        (* the adjacent-vertex case preserves bag sizes (sound for
           treewidth) but permutes bag contents, which can change exact
           set-cover widths — callers optimising ghw disable it *)
        false
      else
        let fill_partners =
          List.filter_map
            (fun (a, b) ->
              if a = u then Some b else if b = u then Some a else None)
            fill
        in
        (* v's private neighbour: a fill partner of u was a neighbour of
           v but not of u before the elimination *)
        let v_has_private = fill_partners <> [] in
        (* u's private neighbour: a current neighbour of u outside v's
           old neighbourhood that did not arrive via fill *)
        let u_has_private =
          List.exists
            (fun b -> (not (List.mem b nbrs)) && not (List.mem b fill_partners))
            (Elim_graph.neighbors eg u)
        in
        v_has_private && u_has_private

(* [prune_child eg ~last ~candidate] decides whether the branch
   eliminating [candidate] immediately after [last] is PR2-redundant;
   the kept branch is the one eliminating the smaller vertex first. *)
let prune_child ?adjacent_case eg ~last ~candidate =
  let pruned = last > candidate && swap_equivalent ?adjacent_case eg candidate in
  if pruned then Obs.Counter.incr c_pr2;
  pruned

(* The per-run clock for budget checks is the engine's amortized
   ticker; [make_ticker] keeps the historical spec-based entry point,
   [ticker_within] attaches to a caller-supplied running budget. *)
type ticker = Hd_engine.Budget.ticker

let make_ticker (spec : Search_types.budget) =
  Hd_engine.Budget.ticker (Hd_engine.Budget.of_spec spec)

let ticker_within = Hd_engine.Budget.ticker
let elapsed = Hd_engine.Budget.ticker_elapsed
let out_of_budget = Hd_engine.Budget.out_of_budget
let tick_visited = Hd_engine.Budget.tick_visited
let tick_generated = Hd_engine.Budget.tick_generated
let visited = Hd_engine.Budget.visited
let generated = Hd_engine.Budget.generated
