(** Branch and bound for exact fractional hypertree width.

    The BB-ghw search tree with every integral set cover replaced by
    the exact rational LP optimum rho* ({!Hd_setcover.Fractional}):
    the minimum over elimination orderings of the maximum bag rho*
    equals fhw, because rho* is monotone under bag inclusion, so the
    ordering characterisation of ghw carries over unchanged.  All
    pruning decisions compare exact {!Hd_lp.Rat} values.

    Lower bounds use the fractional k-set-cover argument: a clique
    minor of [c] vertices forces a bag whose fractional cover weighs
    at least [c/k] when hyperedges have at most [k] vertices. *)

type outcome_q =
  | Exact_q of Hd_lp.Rat.t  (** the exact fractional hypertree width *)
  | Bounds_q of { lb : Hd_lp.Rat.t; ub : Hd_lp.Rat.t }
      (** budget exhausted: fhw lies in [[lb, ub]]; [ub] is witnessed
          by [ordering] *)

type result_q = {
  outcome_q : outcome_q;
  visited : int;
  generated : int;
  elapsed : float;
  ordering : int array option;
      (** an elimination ordering whose maximum bag rho* equals the
          reported upper bound *)
}

(** [solve h] computes the exact fhw of [h] (every vertex must lie in
    some hyperedge).  Budgets behave as in {!Bb_ghw.solve}; the shared
    int {!Hd_core.Incumbent} (when [within] carries one) receives
    [ceil] of the rational bounds. *)
val solve :
  ?budget:Search_types.budget ->
  ?within:Hd_engine.Budget.t ->
  ?seed:int ->
  Hd_hypergraph.Hypergraph.t ->
  result_q

(** [to_engine_result r] is [r] with rational bounds collapsed to
    their ceilings — the registry-facing view.  Sound under the
    engine's max-combining of block results since
    [ceil (max a b) = max (ceil a) (ceil b)]; the exact rational is
    recovered from [r.ordering] via {!Hd_core.Eval.fhw_width_q}. *)
val to_engine_result : result_q -> Hd_engine.Solver.result
