(* Observability: counters, histograms, hierarchical timed spans, and a
   structured JSON run report.

   Design constraints (docs/OBSERVABILITY.md, docs/PARALLELISM.md):
   - near-zero overhead when disabled: every recording entry point
     checks the [enabled] flag before doing any work, so a disabled
     counter increment costs one load and one branch;
   - domain-safe: counters and histogram cells are [Atomic.t], so
     concurrent increments from the hd_parallel worker domains are
     never lost; registries are mutex-protected; span trees are
     per-domain (Domain.DLS) and merged by name at report time;
   - no dependencies beyond unix (wall-clock); the JSON printer and the
     minimal parser are hand-rolled;
   - instruments register at module-initialisation time, so every
     counter linked into a program appears in the report even at 0. *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* one lock for every registry: registration and report generation are
   cold paths, contention is irrelevant there *)
let registry_mutex = Mutex.create ()
let locked f = Mutex.protect registry_mutex f

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* fixed six-decimal precision: small enough magnitudes (span times,
     histogram means) re-parse to a float that prints identically, so
     print/parse round-trips are stable *)
  let float_literal f =
    if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

  let rec write buf ~level t =
    let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            write buf ~level:(level + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            escape buf k;
            Buffer.add_string buf ": ";
            write buf ~level:(level + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    write buf ~level:0 t;
    Buffer.contents buf

  (* single-line rendering for line-oriented protocols (hd_server) *)
  let rec write_compact buf t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            write_compact buf item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            write_compact buf v)
          fields;
        Buffer.add_char buf '}'

  let to_compact t =
    let buf = Buffer.create 256 in
    write_compact buf t;
    Buffer.contents buf

  exception Parse_error of string

  (* A minimal recursive-descent parser, sufficient for the reports this
     module prints (and standard JSON in general).  Used by the tests to
     check that reports round-trip; not a hardened general parser. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
            | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
            | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
            | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
            | Some ('"' | '\\' | '/') ->
                Buffer.add_char buf (Option.get (peek ()));
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* the printer only emits \u00XX for control bytes *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_number_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_number_char c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
      then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let fields = ref [ field () ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              fields := field () :: !fields;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !fields)
          end
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let parse_opt s = try Some (parse s) with Parse_error _ -> None

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Event taps                                                          *)
(* ------------------------------------------------------------------ *)

(* A tiny synchronous event bus: instrumented code emits named events
   (the hd_server scheduler emits one per job slice), subscribers see
   them in emission order with a global sequence number.  The
   subscriber list is an immutable list in an Atomic — emit takes no
   lock and calls the callbacks directly on the emitting domain, so
   callbacks must be fast, domain-safe, and must not raise (exceptions
   are swallowed).  Unlike counters, taps are NOT gated on [enabled]:
   progress streaming works without --stats; with no subscribers an
   emit is one atomic load. *)
module Tap = struct
  type event = { seq : int; name : string; data : Json.t }
  type subscription = int

  let subscribers : (int * (event -> unit)) list Atomic.t = Atomic.make []
  let next_subscription = Atomic.make 0
  let next_seq = Atomic.make 0

  let rec update f =
    let cur = Atomic.get subscribers in
    if not (Atomic.compare_and_set subscribers cur (f cur)) then update f

  let subscribe f =
    let id = Atomic.fetch_and_add next_subscription 1 in
    update (fun l -> (id, f) :: l);
    id

  let unsubscribe id = update (List.filter (fun (i, _) -> i <> id))
  let active () = Atomic.get subscribers <> []

  let emit name data =
    match Atomic.get subscribers with
    | [] -> ()
    | subs ->
        let seq = Atomic.fetch_and_add next_seq 1 in
        let e = { seq; name; data } in
        List.iter (fun (_, f) -> try f e with _ -> ()) subs
end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c

  (* fetch_and_add keeps concurrent increments from worker domains
     exact; disabled cost stays one load and one branch *)
  let incr c = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.value 1)

  let add c n =
    if n < 0 then invalid_arg "Obs.Counter.add: counters are monotonic";
    if Atomic.get enabled then ignore (Atomic.fetch_and_add c.value n)

  let value c = Atomic.get c.value
  let name c = c.name
  let all () = locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* power-of-two buckets: bucket 0 holds value 0, bucket i >= 1 holds
     values v with 2^(i-1) <= v < 2^i, the last bucket everything
     larger.  Enough resolution to see join-size blowups without
     per-value storage. *)
  let n_buckets = 32

  type t = {
    name : string;
    count : int Atomic.t;
    sum : int Atomic.t;
    min_value : int Atomic.t;
    max_value : int Atomic.t;
    buckets : int Atomic.t array;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    locked @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            count = Atomic.make 0;
            sum = Atomic.make 0;
            min_value = Atomic.make max_int;
            max_value = Atomic.make min_int;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.add registry name h;
        h

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      min (n_buckets - 1) (bits 0 v)
    end

  (* monotone CAS: keep retrying while our value still improves on the
     published one *)
  let rec atomic_min cell v =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

  let rec atomic_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

  let observe h v =
    if Atomic.get enabled then begin
      ignore (Atomic.fetch_and_add h.count 1);
      ignore (Atomic.fetch_and_add h.sum v);
      atomic_min h.min_value v;
      atomic_max h.max_value v;
      let b = bucket_of v in
      ignore (Atomic.fetch_and_add h.buckets.(b) 1)
    end

  let count h = Atomic.get h.count
  let sum h = Atomic.get h.sum

  let mean h =
    let c = count h in
    if c = 0 then 0.0 else float_of_int (sum h) /. float_of_int c

  let name h = h.name
  let all () = locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) registry [])

  let reset h =
    Atomic.set h.count 0;
    Atomic.set h.sum 0;
    Atomic.set h.min_value max_int;
    Atomic.set h.max_value min_int;
    Array.iter (fun b -> Atomic.set b 0) h.buckets
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type node = {
    name : string;
    mutable calls : int;
    mutable seconds : float;
    mutable children : node list; (* reverse creation order *)
  }

  let fresh_root () = { name = "root"; calls = 0; seconds = 0.0; children = [] }

  (* Spans are strictly nested within one domain, so each domain owns a
     private tree and stack (no synchronisation on the hot path); the
     trees of all domains that ever opened a span are merged by name
     when a report is taken. *)
  type ctx = { root : node; mutable stack : node list }

  let contexts : ctx list ref = ref []

  let key =
    Domain.DLS.new_key (fun () ->
        let ctx = { root = fresh_root (); stack = [] } in
        locked (fun () -> contexts := ctx :: !contexts);
        ctx)

  let context () = Domain.DLS.get key

  let current ctx = match ctx.stack with node :: _ -> node | [] -> ctx.root

  let find_child parent name =
    match List.find_opt (fun n -> n.name = name) parent.children with
    | Some n -> n
    | None ->
        let n = { name; calls = 0; seconds = 0.0; children = [] } in
        parent.children <- n :: parent.children;
        n

  (* Merge same-named nodes level by level, preserving first-creation
     order.  Input forests are in creation order; the result is too.
     Reports taken while worker domains are mid-span may observe a
     torn calls/seconds pair for the spans still open there — take
     reports at quiescent points (the portfolio does). *)
  let rec merge_forests (forests : node list list) : node list =
    let tbl : (string, node * node list list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let order = ref [] in
    List.iter
      (fun forest ->
        List.iter
          (fun n ->
            let merged, kids =
              match Hashtbl.find_opt tbl n.name with
              | Some e -> e
              | None ->
                  let e =
                    ({ name = n.name; calls = 0; seconds = 0.0; children = [] },
                     ref [])
                  in
                  Hashtbl.add tbl n.name e;
                  order := fst e :: !order;
                  e
            in
            merged.calls <- merged.calls + n.calls;
            merged.seconds <- merged.seconds +. n.seconds;
            kids := List.rev n.children :: !kids)
          forest)
      forests;
    let out = List.rev !order in
    List.iter
      (fun m ->
        let _, kids = Hashtbl.find tbl m.name in
        (* store reverse creation order, the invariant span_json expects *)
        m.children <- List.rev (merge_forests (List.rev !kids)))
      out;
    out

  let merged () =
    let ctxs = locked (fun () -> !contexts) in
    merge_forests (List.rev_map (fun c -> List.rev c.root.children) ctxs)
end

let with_span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let ctx = Span.context () in
    let node = Span.find_child (Span.current ctx) name in
    ctx.Span.stack <- node :: ctx.Span.stack;
    let started = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        node.Span.calls <- node.Span.calls + 1;
        node.Span.seconds <-
          node.Span.seconds +. (Unix.gettimeofday () -. started);
        match ctx.Span.stack with
        | _ :: rest -> ctx.Span.stack <- rest
        | [] -> ())
      f
  end

(* ------------------------------------------------------------------ *)
(* Reset and report                                                    *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.Counter.value 0) Counter.registry;
  Hashtbl.iter (fun _ h -> Histogram.reset h) Histogram.registry;
  List.iter
    (fun ctx ->
      ctx.Span.root.Span.children <- [];
      ctx.Span.root.Span.calls <- 0;
      ctx.Span.root.Span.seconds <- 0.0;
      ctx.Span.stack <- [])
    !Span.contexts

let sorted_names to_name xs =
  List.sort (fun a b -> compare (to_name a) (to_name b)) xs

let histogram_json (h : Histogram.t) =
  let open Json in
  let count = Histogram.count h in
  let bucket i = Atomic.get h.Histogram.buckets.(i) in
  Obj
    [
      ("count", Int count);
      ("sum", Int (Histogram.sum h));
      ("min", if count = 0 then Null else Int (Atomic.get h.Histogram.min_value));
      ("max", if count = 0 then Null else Int (Atomic.get h.Histogram.max_value));
      ("mean", Float (Histogram.mean h));
      ( "pow2_buckets",
        (* trailing empty buckets elided to keep reports short *)
        let last =
          let rec go i = if i < 0 then -1 else if bucket i > 0 then i else go (i - 1) in
          go (Histogram.n_buckets - 1)
        in
        List (List.init (last + 1) (fun i -> Int (bucket i))) );
    ]

let rec span_json (node : Span.node) =
  let open Json in
  Obj
    [
      ("name", String node.Span.name);
      ("calls", Int node.Span.calls);
      ("seconds", Float node.Span.seconds);
      ("children", List (List.rev_map span_json node.Span.children));
    ]

let report () =
  let open Json in
  let counters =
    sorted_names Counter.name (Counter.all ())
    |> List.map (fun c -> (Counter.name c, Int (Counter.value c)))
  in
  let histograms =
    sorted_names Histogram.name (Histogram.all ())
    |> List.map (fun h -> (Histogram.name h, histogram_json h))
  in
  Obj
    [
      ("schema", String "hd_obs/1");
      ("generated_at_unix", Int (int_of_float (Unix.time ())));
      ("enabled", Bool (Atomic.get enabled));
      ("counters", Obj counters);
      ("histograms", Obj histograms);
      ("spans", List (List.map span_json (Span.merged ())));
    ]

let report_string () = Json.to_string (report ())

let write_report path =
  let text = report_string () in
  if path = "-" then print_endline text
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc text;
        output_char oc '\n')
  end
