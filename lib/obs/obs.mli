(** Observability for the hypertree library: monotonic counters,
    power-of-two histograms, hierarchical timed spans, and a structured
    JSON run report.

    The module is a process-wide singleton.  Instrumented code creates
    its counters at module-initialisation time

    {[
      let c_expanded = Obs.Counter.make "search.nodes_expanded"
    ]}

    and bumps them on the hot path with {!Counter.incr}.  Recording is
    gated on a single global {e enabled} flag: while disabled (the
    default) every recording entry point returns after one load and one
    branch, so instrumentation can stay in release builds.  Reports are
    serialised with a hand-rolled JSON printer — no dependencies beyond
    [unix].

    The module is domain-safe: counters and histogram cells are
    [Atomic.t] (concurrent increments from hd_parallel worker domains
    are exact), registries are mutex-protected, and each domain keeps
    its own span tree — {!report} merges them by name.  Take reports
    and call {!reset} at quiescent points (no worker domain mid-span);
    see {e docs/PARALLELISM.md}.

    The counter and span naming scheme, the report schema, and the
    overhead characteristics are documented in
    {e docs/OBSERVABILITY.md}. *)

(** {1 Global switch} *)

val enable : unit -> unit
(** [enable ()] turns recording on.  Counters, histograms and spans
    created before enabling are retained (at their current values). *)

val disable : unit -> unit
(** [disable ()] turns recording off.  Values accumulated so far are
    kept and still appear in {!report}. *)

val is_enabled : unit -> bool
(** [is_enabled ()] is [true] between {!enable} and {!disable}. *)

(** {1 JSON}

    A minimal JSON value type with a deterministic pretty-printer and a
    small parser.  The parser exists so that reports can be checked to
    round-trip (and so downstream tools need no JSON dependency); it
    handles standard JSON but is not hardened against adversarial
    input. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list  (** fields in printing order *)

  val to_string : t -> string
  (** [to_string v] pretty-prints [v] as two-space-indented JSON.
      Floats print with six decimals; non-finite floats print as
      [null]. *)

  val to_compact : t -> string
  (** [to_compact v] renders [v] on a single line with no spaces — the
      wire form of line-oriented protocols (hd_server,
      docs/SERVER.md). *)

  exception Parse_error of string

  val parse : string -> t
  (** [parse s] parses one JSON value spanning the whole of [s].
      @raise Parse_error on malformed input. *)

  val parse_opt : string -> t option
  (** [parse_opt s] is [Some (parse s)], or [None] on malformed
      input. *)

  val member : string -> t -> t option
  (** [member key v] is field [key] of the object [v]; [None] when [v]
      is not an object or lacks the field. *)
end

(** {1 Event taps}

    A synchronous process-wide event bus.  Instrumented code {!Tap.emit}s
    named events carrying a JSON payload — the hd_server scheduler
    emits one per job slice — and any number of subscribers observe
    them in emission order.  Taps are {e not} gated on the global
    enabled switch: with no subscribers an emit costs one atomic load,
    so emission points can stay unconditional. *)

module Tap : sig
  type event = {
    seq : int;  (** global emission sequence number *)
    name : string;  (** dotted event name, e.g. ["server.slice"] *)
    data : Json.t;  (** event payload *)
  }

  type subscription

  val subscribe : (event -> unit) -> subscription
  (** [subscribe f] registers [f] for every subsequent {!emit}.  [f]
      runs synchronously on the emitting domain: it must be fast,
      domain-safe, and not raise (exceptions are swallowed). *)

  val unsubscribe : subscription -> unit

  val active : unit -> bool
  (** [active ()] holds while at least one subscriber is registered. *)

  val emit : string -> Json.t -> unit
  (** [emit name data] delivers an event to every subscriber; a no-op
      (one atomic load) when there are none. *)
end

(** {1 Counters} *)

module Counter : sig
  type t
  (** A named, process-wide monotonic counter. *)

  val make : string -> t
  (** [make name] returns {e the} counter registered under [name],
      creating it at 0 on first use.  Calls with the same name return
      the same counter, so modules can share a counter by name.
      Creation is intended for module-initialisation time: every
      counter linked into the program then appears in {!report}, even
      when never incremented. *)

  val incr : t -> unit
  (** [incr c] adds 1 to [c] when recording is enabled; otherwise it is
      a no-op costing one load and one branch. *)

  val add : t -> int -> unit
  (** [add c n] adds [n >= 0] to [c] when recording is enabled.
      @raise Invalid_argument when [n] is negative — counters are
      monotonic. *)

  val value : t -> int
  (** [value c] is the current value (readable whether or not recording
      is enabled). *)

  val name : t -> string

  val all : unit -> t list
  (** All registered counters, in unspecified order. *)
end

(** {1 Histograms} *)

module Histogram : sig
  type t
  (** A named distribution summary of non-negative integer observations:
      count, sum, min, max, and power-of-two buckets (bucket 0 holds
      value 0; bucket [i >= 1] holds [2{^i-1} <= v < 2{^i}]). *)

  val make : string -> t
  (** [make name] returns the histogram registered under [name],
      creating it empty on first use (same sharing rule as
      {!Counter.make}). *)

  val observe : t -> int -> unit
  (** [observe h v] records one observation when recording is enabled;
      otherwise a no-op. *)

  val count : t -> int
  val sum : t -> int
  val mean : t -> float
  (** [mean h] is [0.0] for an empty histogram. *)

  val name : t -> string
  val all : unit -> t list
end

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a timed span.  Spans nest: a
    span started while another is running becomes its child, and
    repeated entries into the same [name] under the same parent
    aggregate (call count and total wall-clock seconds) into one node
    of the span tree reported by {!report}.  The span is closed — and
    its time recorded — even when [f] raises.  When recording is
    disabled this is exactly [f ()]. *)

(** {1 Reset and reports} *)

val reset : unit -> unit
(** [reset ()] zeroes every counter and histogram and discards the span
    tree.  Registrations survive (the same {!Counter.t} handles keep
    working), so [reset] is the way to delimit measurement windows —
    the benchmark harness calls it between tables.  Do not call it from
    inside an open {!with_span}. *)

val report : unit -> Json.t
(** [report ()] is a snapshot of all counters (sorted by name),
    histograms (sorted by name), and the span tree, as the JSON
    document described in {e docs/OBSERVABILITY.md}
    (schema ["hd_obs/1"]). *)

val report_string : unit -> string
(** [report_string ()] is [Json.to_string (report ())]. *)

val write_report : string -> unit
(** [write_report path] writes {!report_string} to [path], or to
    standard output when [path] is ["-"]. *)
