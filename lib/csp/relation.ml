type t = { scope : int array; tuples : int array list }

let check_scope scope =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Relation.make: duplicate variable in scope";
      Hashtbl.add seen v ())
    scope

let make ~scope tuples =
  check_scope scope;
  let arity = Array.length scope in
  List.iter
    (fun t ->
      if Array.length t <> arity then
        invalid_arg "Relation.make: tuple arity mismatch")
    tuples;
  let seen = Hashtbl.create (List.length tuples) in
  let deduped =
    List.filter
      (fun t ->
        if Hashtbl.mem seen t then false
        else begin
          Hashtbl.add seen t ();
          true
        end)
      tuples
  in
  { scope; tuples = deduped }

let scope r = r.scope
let arity r = Array.length r.scope
let cardinality r = List.length r.tuples
let tuples r = r.tuples
let is_empty r = r.tuples = []

let mem r tuple = List.exists (fun t -> t = tuple) r.tuples

let index_of scope var =
  let rec go i =
    if i >= Array.length scope then raise Not_found
    else if scope.(i) = var then i
    else go (i + 1)
  in
  go 0

let value r tuple ~var = tuple.(index_of r.scope var)

let positions r vars = Array.map (index_of r.scope) vars

(* variables common to both scopes, in [a]'s scope order, with their
   positions in each *)
let shared_of a b =
  let vars = ref [] and pa = ref [] and pb = ref [] in
  Array.iteri
    (fun i v ->
      match index_of b.scope v with
      | j ->
          vars := v :: !vars;
          pa := i :: !pa;
          pb := j :: !pb
      | exception Not_found -> ())
    a.scope;
  ( Array.of_list (List.rev !vars),
    Array.of_list (List.rev !pa),
    Array.of_list (List.rev !pb) )

let key_at positions tuple = Array.map (fun i -> tuple.(i)) positions

(* hash index on a position subset: key (the values at those positions)
   -> matching tuples, in list order *)
let index_at r positions =
  let table = Hashtbl.create (max 16 (cardinality r)) in
  List.iter
    (fun t ->
      let key = key_at positions t in
      let bucket =
        match Hashtbl.find_opt table key with Some b -> b | None -> []
      in
      Hashtbl.replace table key (t :: bucket))
    (List.rev r.tuples);
  table

let index_on r ~vars = index_at r (positions r vars)

let matching r ~vars key =
  match Hashtbl.find_opt (index_on r ~vars) key with
  | Some ts -> ts
  | None -> []

let join a b =
  let _, a_pos, b_pos = shared_of a b in
  (* positions of b's private variables *)
  let b_private_pos =
    Array.of_list
      (List.filter
         (fun j -> not (Array.exists (( = ) j) b_pos))
         (List.init (Array.length b.scope) Fun.id))
  in
  let out_scope =
    Array.append a.scope (Array.map (fun j -> b.scope.(j)) b_private_pos)
  in
  (* hash join: index b on the shared key, probe with a's tuples *)
  let table = index_at b b_pos in
  let out = ref [] in
  List.iter
    (fun ta ->
      match Hashtbl.find_opt table (key_at a_pos ta) with
      | None -> ()
      | Some tbs ->
          List.iter
            (fun tb ->
              out := Array.append ta (key_at b_private_pos tb) :: !out)
            tbs)
    a.tuples;
  make ~scope:out_scope (List.rev !out)

let semijoin a b =
  let _, a_pos, b_pos = shared_of a b in
  let keys = Hashtbl.create (max 16 (cardinality b)) in
  List.iter (fun t -> Hashtbl.replace keys (key_at b_pos t) ()) b.tuples;
  {
    a with
    tuples = List.filter (fun t -> Hashtbl.mem keys (key_at a_pos t)) a.tuples;
  }

let project r vars =
  let ps = positions r vars in
  make ~scope:vars (List.map (key_at ps) r.tuples)

let select r ~var ~value =
  let i = index_of r.scope var in
  { r with tuples = List.filter (fun t -> t.(i) = value) r.tuples }

let full ~scope ~domains =
  check_scope scope;
  let doms = Array.map (fun v -> domains.(v)) scope in
  let k = Array.length scope in
  let out = ref [] in
  let tuple = Array.make k 0 in
  let rec fill i =
    if i = k then out := Array.copy tuple :: !out
    else
      Array.iter
        (fun value ->
          tuple.(i) <- value;
          fill (i + 1))
        doms.(i)
  in
  if k = 0 then make ~scope []
  else begin
    fill 0;
    make ~scope (List.rev !out)
  end

let equal a b =
  a.scope = b.scope
  && List.sort compare a.tuples = List.sort compare b.tuples

let pp ppf r =
  Format.fprintf ppf "@[<v>scope(%s): %d tuples"
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.scope)))
    (cardinality r);
  List.iter
    (fun t ->
      Format.fprintf ppf "@,(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int t))))
    r.tuples;
  Format.fprintf ppf "@]"
