module Obs = Hd_obs.Obs

(* Observability: semijoin work during acyclic solving, and the sizes
   of the intermediate relations it produces.  Join-side counters live
   in Solver, which materialises the bag relations. *)
let c_semijoins = Obs.Counter.make "csp.semijoins"
let c_semijoin_tuples = Obs.Counter.make "csp.semijoin_tuples"
let h_relation_size = Obs.Histogram.make "csp.intermediate_relation_size"

type t = { relations : Relation.t array; parent : int array }

(* children-before-parents order (reverse BFS from the root) *)
let bottom_up_order t =
  let m = Array.length t.relations in
  let order = Array.make m 0 in
  let depth = Array.make m (-1) in
  let rec depth_of i =
    if depth.(i) >= 0 then depth.(i)
    else begin
      let d = if t.parent.(i) = -1 then 0 else depth_of t.parent.(i) + 1 in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to m - 1 do
    ignore (depth_of i);
    order.(i) <- i
  done;
  Array.sort (fun a b -> compare depth.(b) depth.(a)) order;
  order

(* variables of [scope] also in [other], in [scope] order *)
let shared_vars scope other =
  Array.of_list
    (List.filter
       (fun v -> Array.exists (( = ) v) other)
       (Array.to_list scope))

let acyclic_solve t ~n_vars =
  Obs.with_span "csp.acyclic_solve" @@ fun () ->
  let m = Array.length t.relations in
  if m = 0 then Some (Array.make n_vars min_int)
  else begin
    let rel = Array.copy t.relations in
    let order = bottom_up_order t in
    (* bottom-up: eliminate parent tuples with no support below *)
    let failed = ref false in
    Array.iter
      (fun i ->
        if (not !failed) && t.parent.(i) <> -1 then begin
          let p = t.parent.(i) in
          rel.(p) <- Relation.semijoin rel.(p) rel.(i);
          Obs.Counter.incr c_semijoins;
          let size = Relation.cardinality rel.(p) in
          Obs.Counter.add c_semijoin_tuples size;
          Obs.Histogram.observe h_relation_size size;
          if Relation.is_empty rel.(p) then failed := true
        end)
      order;
    if !failed || Array.exists Relation.is_empty rel then None
    else begin
      (* top-down: pick tuples consistent with what is already fixed.
         By the running intersection property the fixed variables of a
         node's scope are exactly those shared with its parent, so one
         hash-index probe replaces the former full scan. *)
      let assignment = Array.make n_vars min_int in
      let assign_from i =
        let scope = Relation.scope rel.(i) in
        let p = t.parent.(i) in
        let shared =
          if p = -1 then [||]
          else shared_vars scope (Relation.scope rel.(p))
        in
        let key = Array.map (fun v -> assignment.(v)) shared in
        match Relation.matching rel.(i) ~vars:shared key with
        | tuple :: _ ->
            Array.iteri (fun k v -> assignment.(v) <- tuple.(k)) scope
        | [] ->
            (* cannot happen on a correctly reduced join tree *)
            assert false
      in
      let top_down = Array.of_list (List.rev (Array.to_list order)) in
      Array.iter assign_from top_down;
      Some assignment
    end
  end

let count_solutions t =
  Obs.with_span "csp.count_solutions" @@ fun () ->
  let m = Array.length t.relations in
  if m = 0 then 1
  else begin
    let order = bottom_up_order t in
    (* weight table per node: tuple -> number of consistent extensions
       into the node's subtree.  Child weights are aggregated into a
       hash table keyed by the shared variables, so each parent tuple
       costs one lookup per child instead of a scan of the child's
       tuple list. *)
    let weights = Array.make m [] in
    Array.iter
      (fun i ->
        let r = t.relations.(i) in
        let scope = Relation.scope r in
        let children =
          List.filter (fun j -> t.parent.(j) = i) (List.init m Fun.id)
        in
        let child_tables =
          List.map
            (fun c ->
              let rc = t.relations.(c) in
              let shared = shared_vars scope (Relation.scope rc) in
              let pc = Relation.positions rc shared in
              let sums = Hashtbl.create 64 in
              List.iter
                (fun (tuple, w) ->
                  let key = Array.map (fun p -> tuple.(p)) pc in
                  Hashtbl.replace sums key
                    (w + Option.value (Hashtbl.find_opt sums key) ~default:0))
                weights.(c);
              (Relation.positions r shared, sums))
            children
        in
        let weight_of tuple =
          List.fold_left
            (fun acc (ps, sums) ->
              if acc = 0 then 0
              else
                let key = Array.map (fun p -> tuple.(p)) ps in
                acc * Option.value (Hashtbl.find_opt sums key) ~default:0)
            1 child_tables
        in
        weights.(i) <-
          List.map (fun tuple -> (tuple, weight_of tuple)) (Relation.tuples r))
      order;
    (* sum over the root(s); a forest multiplies across components *)
    let total = ref 1 in
    for i = 0 to m - 1 do
      if t.parent.(i) = -1 then
        total := !total * List.fold_left (fun acc (_, w) -> acc + w) 0 weights.(i)
    done;
    !total
  end

let is_join_tree t =
  let m = Array.length t.relations in
  let vars =
    Array.fold_left
      (fun acc r -> Array.fold_left (fun acc v -> max acc v) acc (Relation.scope r))
      (-1)
      t.relations
  in
  let rec check v =
    if v > vars then true
    else begin
      let has i = Array.exists (( = ) v) (Relation.scope t.relations.(i)) in
      let occurrences = List.filter has (List.init m Fun.id) in
      let internal_edges =
        List.filter
          (fun i -> t.parent.(i) <> -1 && has i && has t.parent.(i))
          (List.init m Fun.id)
      in
      (occurrences = []
      || List.length internal_edges = List.length occurrences - 1)
      && check (v + 1)
    end
  in
  check 0
