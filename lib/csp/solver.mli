(** Solving CSPs from decompositions (Section 2.4).

    Both solvers transform the CSP into a solution-equivalent acyclic
    instance — a join tree — and run {!Join_tree.acyclic_solve}:

    - {!solve_with_td} is steps 4-5 of Join Tree Clustering: place each
      constraint in a bag containing its scope, solve each bag
      subproblem by join + cartesian extension (cost O(d^(w+1))).
    - {!solve_with_ghd} completes the GHD (Lemma 2) and computes each
      node's relation as the projection onto chi(p) of the join of the
      lambda(p) constraint relations (cost O(|I|^(k+1) log |I|) for
      width k — this is where small ghw pays off).

    Variables outside every bag (impossible for decompositions of the
    CSP's own hypergraph) would be left at their first domain value. *)

(** [solve_with_td csp td] returns a solution or [None].
    @raise Invalid_argument when [td] is not a tree decomposition of
    the CSP's constraint hypergraph. *)
val solve_with_td :
  Csp.t -> Hd_core.Tree_decomposition.t -> int array option

(** [solve_with_ghd csp ghd] returns a solution or [None].
    @raise Invalid_argument when [ghd] is not a GHD of the CSP's
    constraint hypergraph. *)
val solve_with_ghd : Csp.t -> Hd_core.Ghd.t -> int array option

(** [solve csp ~strategy] decomposes the CSP's hypergraph with a greedy
    ordering heuristic and solves.  [`Td] solves via a tree
    decomposition, [`Ghd] via a generalized hypertree decomposition.

    [solver] names a registered engine solver (see
    {!Hd_engine.Solver}) whose witness ordering replaces the min-fill
    default — the caller must have registered it, e.g. via
    [Hd_search.Solvers.ensure].  [time_limit] bounds that solver's run.
    When the named solver returns no ordering the min-fill fallback is
    used.
    @raise Invalid_argument on an unknown solver name. *)
val solve :
  ?solver:string ->
  ?time_limit:float ->
  Csp.t ->
  strategy:[ `Td | `Ghd ] ->
  seed:int ->
  int array option

(** [solve_if_acyclic csp] detects alpha-acyclicity by GYO reduction
    and, when the CSP is acyclic, solves it directly on the join tree
    of its constraint relations — the fast path of Section 2.2.3,
    with no decomposition step at all.  [None] when the CSP is cyclic;
    [Some None] when acyclic but unsatisfiable. *)
val solve_if_acyclic : Csp.t -> int array option option

(** [count_with_td csp td] counts the complete consistent assignments
    of [csp] by sum-product message passing over the join tree derived
    from [td] — model counting in time exponential only in the width.
    @raise Invalid_argument when [td] is not a tree decomposition of
    the CSP's constraint hypergraph. *)
val count_with_td : Csp.t -> Hd_core.Tree_decomposition.t -> int

(** [relation_of_edge csp h e] is the relation attached to hyperedge
    [e] of the CSP's hypergraph [h]: constraint [e]'s relation for real
    constraints, the full unary relation for the singleton hyperedges
    added to cover constraint-free variables. *)
val relation_of_edge :
  Csp.t -> Hd_hypergraph.Hypergraph.t -> int -> Relation.t
