(** Finite relations over CSP variables.

    A relation pairs a scope — an array of distinct variable ids — with
    a set of tuples of the same arity; tuple component [i] is the value
    of variable [scope.(i)].  The operations here are the relational
    algebra that acyclic solving and decomposition-based solving need:
    natural join, semijoin and projection (Sections 2.2.3 and 2.4). *)

type t

(** [make ~scope tuples] deduplicates [tuples].
    @raise Invalid_argument on arity mismatch or duplicate scope
    variables. *)
val make : scope:int array -> int array list -> t

val scope : t -> int array
val arity : t -> int
val cardinality : t -> int

(** [tuples r] lists the tuples in an unspecified but stable order. *)
val tuples : t -> int array list

val is_empty : t -> bool

(** [mem r tuple] tests membership. *)
val mem : t -> int array -> bool

(** [value tuple r ~var] extracts variable [var]'s value from a tuple of
    [r].
    @raise Not_found when [var] is outside the scope. *)
val value : t -> int array -> var:int -> int

(** [positions r vars] is the scope position of each of [vars].
    @raise Not_found when some variable is outside the scope. *)
val positions : t -> int array -> int array

(** [index_on r ~vars] is a hash index of [r] on the variable subset
    [vars]: the key [Array.map (value r t) vars] (values in [vars]
    order) maps to the matching tuples.  This is the same
    index-on-attribute-subset scheme as [Hd_query.Qrelation]; {!join},
    {!semijoin} and the join-tree algorithms are built on it, so no
    operation scans a relation per probe.
    @raise Not_found when some variable is outside the scope. *)
val index_on : t -> vars:int array -> (int array, int array list) Hashtbl.t

(** [matching r ~vars key] lists the tuples of [r] agreeing with [key]
    on [vars], via {!index_on}. *)
val matching : t -> vars:int array -> int array -> int array list

(** [join a b] is the natural join [a ⋈ b]; its scope is the union of
    scopes (a's variables first). *)
val join : t -> t -> t

(** [semijoin a b] is [a ⋉ b]: the tuples of [a] that match at least one
    tuple of [b] on the shared variables.  With disjoint scopes this is
    [a] itself (or empty when [b] is empty). *)
val semijoin : t -> t -> t

(** [project r vars] is the projection of [r] onto [vars] (which must be
    a subset of the scope). *)
val project : t -> int array -> t

(** [select r ~var ~value] keeps tuples assigning [value] to [var]. *)
val select : t -> var:int -> value:int -> t

(** [full ~scope ~domains] is the cartesian product of the variables'
    domains — the unconstrained relation. *)
val full : scope:int array -> domains:int array array -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
