module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Obs = Hd_obs.Obs

(* Observability: join work while materialising bag relations.  The
   semijoin side is counted in Join_tree.acyclic_solve. *)
let c_joins = Obs.Counter.make "csp.joins"
let c_join_tuples = Obs.Counter.make "csp.join_tuples"
let h_relation_size = Obs.Histogram.make "csp.intermediate_relation_size"

(* [Relation.join] with its output size recorded *)
let join_counted a b =
  let r = Relation.join a b in
  Obs.Counter.incr c_joins;
  let size = Relation.cardinality r in
  Obs.Counter.add c_join_tuples size;
  Obs.Histogram.observe h_relation_size size;
  r

let domains_of csp =
  Array.init (Csp.n_variables csp) (fun v -> Csp.domain csp v)

let relation_of_edge csp h e =
  let cs = Array.of_list (Csp.constraints csp) in
  if e < Array.length cs then cs.(e)
  else begin
    (* a singleton hyperedge covering an unconstrained variable *)
    let scope = Array.map (fun v -> v) (Hypergraph.edge h e) in
    Relation.full ~scope ~domains:(domains_of csp)
  end

(* fill variables the join tree left untouched (none when the
   decomposition covers all variables, but stay total anyway) *)
let finalize csp = function
  | None -> None
  | Some assignment ->
      Array.iteri
        (fun v value ->
          if value = min_int then assignment.(v) <- (Csp.domain csp v).(0))
        assignment;
      if Csp.consistent csp assignment then Some assignment else None

let solve_with_td csp td =
  Obs.with_span "csp.solve_with_td" @@ fun () ->
  let h = Csp.hypergraph csp in
  if not (Td.valid_for_hypergraph h td) then
    invalid_arg "Solver.solve_with_td: not a tree decomposition of the CSP";
  let n_nodes = Td.n_nodes td in
  let domains = domains_of csp in
  (* step 1 of JTC: place each constraint in one covering bag *)
  let placed = Array.make n_nodes [] in
  List.iteri
    (fun _i r ->
      let scope = Relation.scope r in
      let node =
        let rec find p =
          if p >= n_nodes then assert false
          else if Array.for_all (Bitset.mem (Td.bag td p)) scope then p
          else find (p + 1)
        in
        find 0
      in
      placed.(node) <- r :: placed.(node))
    (Csp.constraints csp);
  (* step 2: solve each bag subproblem — join the placed constraints,
     then extend with the bag variables not yet in the scope *)
  let relations =
    Array.init n_nodes (fun p ->
        let base =
          match placed.(p) with
          | [] -> Relation.make ~scope:[||] [ [||] ]
          | r :: rest -> List.fold_left join_counted r rest
        in
        let scope_vars = Relation.scope base in
        let missing =
          List.filter
            (fun v -> not (Array.exists (( = ) v) scope_vars))
            (Bitset.elements (Td.bag td p))
        in
        List.fold_left
          (fun acc v ->
            join_counted acc (Relation.full ~scope:[| v |] ~domains))
          base missing)
  in
  let jt = { Join_tree.relations; parent = td.Td.parent } in
  finalize csp
    (Join_tree.acyclic_solve jt ~n_vars:(Csp.n_variables csp))

(* the join tree built by [solve_with_td]'s clustering, reused for
   counting *)
let join_tree_of_td csp td =
  let h = Csp.hypergraph csp in
  if not (Td.valid_for_hypergraph h td) then
    invalid_arg "Solver: not a tree decomposition of the CSP";
  let n_nodes = Td.n_nodes td in
  let domains = domains_of csp in
  let placed = Array.make n_nodes [] in
  List.iter
    (fun r ->
      let scope = Relation.scope r in
      let node =
        let rec find p =
          if p >= n_nodes then assert false
          else if Array.for_all (Bitset.mem (Td.bag td p)) scope then p
          else find (p + 1)
        in
        find 0
      in
      placed.(node) <- r :: placed.(node))
    (Csp.constraints csp);
  let relations =
    Array.init n_nodes (fun p ->
        let base =
          match placed.(p) with
          | [] -> Relation.make ~scope:[||] [ [||] ]
          | r :: rest -> List.fold_left join_counted r rest
        in
        let scope_vars = Relation.scope base in
        let missing =
          List.filter
            (fun v -> not (Array.exists (( = ) v) scope_vars))
            (Bitset.elements (Td.bag td p))
        in
        List.fold_left
          (fun acc v ->
            join_counted acc (Relation.full ~scope:[| v |] ~domains))
          base missing)
  in
  { Join_tree.relations; parent = td.Td.parent }

let count_with_td csp td =
  Obs.with_span "csp.count_with_td" @@ fun () ->
  (* every variable occurs in some bag (singleton hyperedges are added
     for unconstrained variables), so bag-variable counting is total *)
  Join_tree.count_solutions (join_tree_of_td csp td)

let solve_with_ghd csp ghd =
  Obs.with_span "csp.solve_with_ghd" @@ fun () ->
  let h = Csp.hypergraph csp in
  if not (Ghd.valid h ghd) then
    invalid_arg "Solver.solve_with_ghd: not a GHD of the CSP";
  let ghd = Ghd.complete h ghd in
  let n_nodes = Td.n_nodes ghd.Ghd.td in
  let relations =
    Array.init n_nodes (fun p ->
        let lambda = ghd.Ghd.lambda.(p) in
        let joined =
          match Array.to_list lambda with
          | [] -> Relation.make ~scope:[||] [ [||] ]
          | e :: rest ->
              List.fold_left
                (fun acc e' -> join_counted acc (relation_of_edge csp h e'))
                (relation_of_edge csp h e)
                rest
        in
        (* project onto chi(p) *)
        let chi = Array.of_list (Bitset.elements (Td.bag ghd.Ghd.td p)) in
        Relation.project joined chi)
  in
  let jt = { Join_tree.relations; parent = ghd.Ghd.td.Td.parent } in
  finalize csp
    (Join_tree.acyclic_solve jt ~n_vars:(Csp.n_variables csp))

let solve ?solver ?time_limit csp ~strategy ~seed =
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| seed |] in
  let sigma =
    (* [solver] picks a registered engine solver for the decomposition
       ordering (the caller links and registers the provider library);
       the default stays the dependency-free min-fill heuristic *)
    match solver with
    | None -> Hd_core.Ordering_heuristics.min_fill_hypergraph rng h
    | Some name -> (
        let r =
          Hd_engine.Engine.run_by_name ~seed name
            (Hd_engine.Budget.create ?time_limit ())
            (Hd_engine.Solver.Hypergraph h)
        in
        match r.Hd_engine.Solver.ordering with
        | Some sigma -> sigma
        | None -> Hd_core.Ordering_heuristics.min_fill_hypergraph rng h)
  in
  match strategy with
  | `Td -> solve_with_td csp (Td.of_ordering_hypergraph h sigma)
  | `Ghd ->
      solve_with_ghd csp (Ghd.of_ordering h sigma ~cover:(`Greedy (Some rng)))

let solve_if_acyclic csp =
  let h = Csp.hypergraph csp in
  match Hd_hypergraph.Acyclicity.join_tree h with
  | None -> None
  | Some parent ->
      let relations =
        Array.init (Hypergraph.n_edges h) (fun e -> relation_of_edge csp h e)
      in
      let jt = { Join_tree.relations; parent } in
      Some
        (finalize csp
           (Join_tree.acyclic_solve jt ~n_vars:(Csp.n_variables csp)))
