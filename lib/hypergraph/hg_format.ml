(* A small hand-rolled scanner: atoms "name(v1,...,vk)" separated by
   commas; '%' comments to end of line.  Every token carries its line
   so parse errors can point into the file. *)

type token = Ident of string | Lparen | Rparen | Comma | Period

let tokenize ~fail text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let is_ident_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '\'' -> true
    | _ -> false
  in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = '%' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' then begin
      push Lparen;
      incr i
    end
    else if c = ')' then begin
      push Rparen;
      incr i
    end
    else if c = ',' then begin
      push Comma;
      incr i
    end
    else if c = '.' then begin
      push Period;
      incr i
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (Ident (String.sub text start (!i - start)))
    end
    else fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

let parse_string ?(source = "<string>") text =
  let fail line msg =
    failwith (Printf.sprintf "Hg_format: %s, line %d: %s" source line msg)
  in
  let vars = Hashtbl.create 64 in
  let var_order = ref [] in
  let intern name =
    match Hashtbl.find_opt vars name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length vars in
        Hashtbl.add vars name id;
        var_order := name :: !var_order;
        id
  in
  let rec parse_atoms tokens acc =
    match tokens with
    | [] -> List.rev acc
    | ((Comma | Period), _) :: rest -> parse_atoms rest acc
    | (Ident name, line) :: (Lparen, _) :: rest ->
        let rec parse_vars tokens vs =
          match tokens with
          | (Ident v, _) :: rest -> parse_vars rest (intern v :: vs)
          | (Comma, _) :: rest -> parse_vars rest vs
          | (Rparen, _) :: rest -> (List.rev vs, rest)
          | (Lparen, l) :: _ ->
              fail l (Printf.sprintf "unexpected '(' inside atom %S" name)
          | (Period, l) :: _ ->
              fail l
                (Printf.sprintf "unexpected '.' inside atom %S (missing \")\"?)"
                   name)
          | [] ->
              fail line
                (Printf.sprintf
                   "unterminated atom %S: end of input before \")\"" name)
        in
        let vs, rest = parse_vars rest [] in
        (* tolerate empty edge bodies: an empty hyperedge constrains
           nothing, so "name()" is skipped rather than rejected *)
        if vs = [] then parse_atoms rest acc
        else parse_atoms rest ((name, vs) :: acc)
    | (Ident name, line) :: _ ->
        fail line
          (Printf.sprintf "atom %S lacks an argument list (expected '(')" name)
    | (_, line) :: _ -> fail line "expected an atom"
  in
  let atoms = parse_atoms (tokenize ~fail text) [] in
  if atoms = [] then fail 1 "no (non-empty) atoms";
  let n = Hashtbl.length vars in
  let vertex_names = Array.make n "" in
  List.iteri
    (fun i name -> vertex_names.(n - 1 - i) <- name)
    !var_order;
  let edge_names = Array.of_list (List.map fst atoms) in
  (* attribute construction-time rejections (Hypergraph.create's
     Invalid_argument) to the instance too: a corpus sweep over
     thousands of files must be able to say *which* file was bad *)
  try Hypergraph.create ~vertex_names ~edge_names ~n (List.map snd atoms)
  with Invalid_argument msg ->
    failwith (Printf.sprintf "Hg_format: %s: %s" source msg)

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~source:path text

let to_string h =
  let buf = Buffer.create 1024 in
  let m = Hypergraph.n_edges h in
  for i = 0 to m - 1 do
    Buffer.add_string buf (Hypergraph.edge_name h i);
    Buffer.add_char buf '(';
    Buffer.add_string buf
      (String.concat ","
         (List.map (Hypergraph.vertex_name h) (Hypergraph.edge_list h i)));
    Buffer.add_string buf (if i = m - 1 then ").\n" else "),\n")
  done;
  Buffer.contents buf
