(** Reading and writing hypergraphs in the HyperBench / DaimlerChrysler
    text format used by the CSP hypergraph library the paper evaluates
    on: a list of atoms

    {[ edge_name(var1, var2, ...), ]}

    separated by commas (a trailing comma or period is tolerated),
    percent-sign comments, arbitrary whitespace — atoms may span
    multiple lines.  Variable names are interned in order of first
    appearance.

    Malformed input raises [Failure] whose message always names the
    source (the file path, for {!parse_file}) and, for scan/parse
    errors, the line number of the offending token — so a corpus sweep
    over many files produces attributable logs.  Empty edge bodies
    ([name()]), which
    some HyperBench exports contain, are tolerated and skipped: an
    empty hyperedge constrains nothing and {!Hypergraph.create} would
    reject it. *)

(** [parse_string ?source text] parses hypergraph text.  [source]
    (default ["<string>"]) names the input in error messages.
    @raise Failure with [source] and a line number on malformed input
    or when no (non-empty) atom remains. *)
val parse_string : ?source:string -> string -> Hypergraph.t

(** [parse_file path] is {!parse_string} on the file's contents, with
    [path] as the error-message source. *)
val parse_file : string -> Hypergraph.t

(** [to_string h] renders [h] in the same format, one atom per line. *)
val to_string : Hypergraph.t -> string
