type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* names.(id), valid below [n] *)
  mutable n : int;
}

let create () = { ids = Hashtbl.create 256; names = Array.make 16 ""; n = 0 }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.names then begin
        let grown = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 grown 0 id;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.n <- id + 1;
      Hashtbl.add t.ids s id;
      id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Intern.name: unallocated id";
  t.names.(id)

let size t = t.n
