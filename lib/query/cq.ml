type term = Var of string | Const of string

type atom = { pred : string; args : term array }

type t = {
  head_pred : string;
  head : string array;
  body : atom list;
}

(* ------------------------------------------------------------------ *)
(* Lexer: identifiers, quoted constants, punctuation, ":-".  Every     *)
(* token carries its line so errors can point at the source.           *)
(* ------------------------------------------------------------------ *)

type token = Ident of string | Quoted of string | Lparen | Rparen | Comma | Period | Turnstile

let tokenize ~fail text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let is_ident_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '\'' -> true
    | _ -> false
  in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = '%' || c = '#' then
      while !i < n && text.[!i] <> '\n' do incr i done
    else if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' then begin push Lparen; incr i end
    else if c = ')' then begin push Rparen; incr i end
    else if c = ',' then begin push Comma; incr i end
    else if c = '.' then begin push Period; incr i end
    else if c = ':' then begin
      if !i + 1 < n && text.[!i + 1] = '-' then begin
        push Turnstile;
        i := !i + 2
      end
      else fail !line "expected \":-\""
    end
    else if c = '"' then begin
      let start_line = !line in
      let start = !i + 1 in
      incr i;
      while !i < n && text.[!i] <> '"' do
        if text.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then fail start_line "unterminated string constant";
      push (Quoted (String.sub text start (!i - start)));
      incr i
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do incr i done;
      push (Ident (String.sub text start (!i - start)))
    end
    else fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let is_variable_name s =
  String.length s > 0
  && match s.[0] with 'A' .. 'Z' | '_' -> true | _ -> false

let term_of_ident s = if is_variable_name s then Var s else Const s

(* parse one rule off the token stream, returning the remainder *)
let parse_rule ~source tokens =
  let fail line msg =
    failwith (Printf.sprintf "Cq: %s, line %d: %s" source line msg)
  in
  let last_line tokens =
    match List.rev tokens with (_, l) :: _ -> l | [] -> 1
  in
  (* atom := ident LPAREN [term {COMMA term}] RPAREN *)
  let parse_atom tokens =
    match tokens with
    | (Ident pred, line) :: (Lparen, _) :: rest ->
        let rec terms tokens acc expect_term =
          match tokens with
          | (Rparen, _) :: rest ->
              if expect_term && acc <> [] then
                fail line "trailing comma in atom argument list";
              ({ pred; args = Array.of_list (List.rev acc) }, rest)
          | (Ident s, _) :: rest when expect_term ->
              after_term rest (term_of_ident s :: acc)
          | (Quoted s, _) :: rest when expect_term ->
              after_term rest (Const s :: acc)
          | (_, l) :: _ -> fail l (Printf.sprintf "malformed atom %S" pred)
          | [] ->
              fail line
                (Printf.sprintf "unterminated atom %S (missing \")\")" pred)
        and after_term tokens acc =
          match tokens with
          | (Comma, _) :: rest -> terms rest acc true
          | (Rparen, _) :: rest ->
              ({ pred; args = Array.of_list (List.rev acc) }, rest)
          | (_, l) :: _ ->
              fail l (Printf.sprintf "expected ',' or ')' in atom %S" pred)
          | [] ->
              fail line
                (Printf.sprintf "unterminated atom %S (missing \")\")" pred)
        in
        terms rest [] true
    | (Ident pred, line) :: _ ->
        fail line (Printf.sprintf "atom %S lacks an argument list" pred)
    | (_, line) :: _ -> fail line "expected an atom"
    | [] -> fail (last_line tokens) "expected an atom"
  in
  let head_atom, tokens = parse_atom tokens in
  (match tokens with
  | (Turnstile, _) :: _ -> ()
  | (_, line) :: _ -> fail line "expected \":-\" after the head atom"
  | [] -> fail (last_line tokens) "expected \":-\" after the head atom");
  let tokens = List.tl tokens in
  let rec parse_body tokens acc =
    let atom, rest = parse_atom tokens in
    match rest with
    | (Comma, _) :: rest -> parse_body rest (atom :: acc)
    | (Period, _) :: rest -> (List.rev (atom :: acc), rest)
    | [] -> (List.rev (atom :: acc), [])
    | (_, line) :: _ -> fail line "expected ',' or '.' after an atom"
  in
  let body, rest = parse_body tokens [] in
  (* head safety: head terms must be variables occurring in the body *)
  let body_vars = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Array.iter
        (function Var v -> Hashtbl.replace body_vars v () | Const _ -> ())
        a.args)
    body;
  let head =
    Array.map
      (function
        | Var v ->
            if not (Hashtbl.mem body_vars v) then
              fail 1
                (Printf.sprintf
                   "unsafe query: head variable %S does not occur in the body"
                   v);
            v
        | Const c ->
            fail 1
              (Printf.sprintf "head argument %S must be a variable" c))
      head_atom.args
  in
  ({ head_pred = head_atom.pred; head; body }, rest)

let parse_multi_string ?(source = "<query>") text =
  let fail line msg =
    failwith (Printf.sprintf "Cq: %s, line %d: %s" source line msg)
  in
  let rec go tokens acc =
    match tokens with
    | [] -> List.rev acc
    | _ ->
        let q, rest = parse_rule ~source tokens in
        go rest (q :: acc)
  in
  go (tokenize ~fail text) []

let parse_string ?(source = "<query>") text =
  let fail line msg =
    failwith (Printf.sprintf "Cq: %s, line %d: %s" source line msg)
  in
  let q, rest = parse_rule ~source (tokenize ~fail text) in
  (match rest with
  | [] -> ()
  | (_, line) :: _ -> fail line "trailing input after the final '.'");
  q

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_multi_file path = parse_multi_string ~source:path (read_file path)

let parse_file path = parse_string ~source:path (read_file path)

let atom_vars a =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (function
      | Var v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            out := v :: !out
          end
      | Const _ -> ())
    a.args;
  Array.of_list (List.rev !out)

let is_ground a = Array.for_all (function Const _ -> true | Var _ -> false) a.args

let variables q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun a ->
      Array.iter
        (function
          | Var v ->
              if not (Hashtbl.mem seen v) then begin
                Hashtbl.add seen v ();
                out := v :: !out
              end
          | Const _ -> ())
        a.args)
    q.body;
  Array.of_list (List.rev !out)

let hypergraph q =
  let vars = variables q in
  let id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add id v i) vars;
  let proper = List.filter (fun a -> not (is_ground a)) q.body in
  if proper = [] then
    invalid_arg "Cq.hypergraph: no body atom has a variable";
  let edges =
    List.map
      (fun a ->
        Array.to_list (Array.map (Hashtbl.find id) (atom_vars a)))
      proper
  in
  let edge_names = Array.of_list (List.map (fun a -> a.pred) proper) in
  Hd_hypergraph.Hypergraph.create ~vertex_names:vars ~edge_names
    ~n:(Array.length vars) edges

let term_to_string = function
  | Var v -> v
  | Const c ->
      let plain =
        String.length c > 0
        && (not (is_variable_name c))
        && String.for_all
             (function
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '\'' -> true
               | _ -> false)
             c
      in
      if plain then c else "\"" ^ c ^ "\""

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.pred
    (String.concat "," (Array.to_list (Array.map term_to_string a.args)))

let to_string q =
  Printf.sprintf "%s(%s) :- %s." q.head_pred
    (String.concat "," (Array.to_list q.head))
    (String.concat ", " (List.map atom_to_string q.body))
