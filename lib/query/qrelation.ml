module Obs = Hd_obs.Obs

(* Observability: hash-join work on the query path.  Semijoin pass
   totals live in Yannakakis; these count the per-operation tuple
   traffic. *)
let c_joins = Obs.Counter.make "query.joins"
let c_join_tuples = Obs.Counter.make "query.join_tuples"
let c_semijoins = Obs.Counter.make "query.semijoins"
let c_semijoin_kept = Obs.Counter.make "query.semijoin_kept_tuples"
let c_index_builds = Obs.Counter.make "query.index_builds"

(* per-tuple Hashtbl probes on the row-at-a-time path: each one hashes
   a boxed int-array key; the columnar engine's equivalent work shows
   up under query.radix_probes instead (see Colexec) *)
let c_hash_probes = Obs.Counter.make "query.hash_probes"
let h_relation_size = Obs.Histogram.make "query.relation_size"

type t = {
  scope : int array;
  cols : int array array;  (* cols.(j).(i) = row i, column j *)
  n : int;
  mutable indexes : (int array * (int array, int list) Hashtbl.t) list;
}

let check_scope scope =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Qrelation: duplicate attribute in scope";
      Hashtbl.add seen v ())
    scope

let scope r = r.scope
let arity r = Array.length r.scope
let cardinality r = r.n
let is_empty r = r.n = 0
let get r i j = r.cols.(j).(i)
let col r j = r.cols.(j)
let columns r = r.cols
let row r i = Array.map (fun col -> col.(i)) r.cols

let rows r =
  List.init r.n (row r)

(* rows assumed distinct and of the right arity *)
let of_rows_unchecked ~scope rows ~n =
  let k = Array.length scope in
  let cols = Array.init k (fun _ -> Array.make n 0) in
  List.iteri
    (fun i row ->
      for j = 0 to k - 1 do
        cols.(j).(i) <- row.(j)
      done)
    rows;
  Obs.Histogram.observe h_relation_size n;
  { scope; cols; n; indexes = [] }

(* columns assumed equal-length, rows distinct; scope not revalidated —
   the columnar kernel's materialisation entry point *)
let of_columns_unchecked ~scope cols ~n =
  Obs.Histogram.observe h_relation_size n;
  { scope; cols; n; indexes = [] }

let make ~scope rows =
  check_scope scope;
  let k = Array.length scope in
  let seen = Hashtbl.create (max 16 (List.length rows)) in
  let deduped = ref [] in
  let n = ref 0 in
  List.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Qrelation.make: tuple arity mismatch";
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        deduped := row :: !deduped;
        incr n
      end)
    rows;
  of_rows_unchecked ~scope (List.rev !deduped) ~n:!n

let position r attr =
  let k = Array.length r.scope in
  let rec go j =
    if j >= k then raise Not_found
    else if r.scope.(j) = attr then j
    else go (j + 1)
  in
  go 0

let positions r attrs = Array.map (position r) attrs

let key_at r positions i = Array.map (fun p -> r.cols.(p).(i)) positions

let index_on r positions =
  match List.find_opt (fun (p, _) -> p = positions) r.indexes with
  | Some (_, table) -> table
  | None ->
      Obs.Counter.incr c_index_builds;
      let table = Hashtbl.create (max 16 r.n) in
      (* descending fill so each bucket lists row ids ascending *)
      for i = r.n - 1 downto 0 do
        let key = key_at r positions i in
        let bucket =
          match Hashtbl.find_opt table key with Some b -> b | None -> []
        in
        Hashtbl.replace table key (i :: bucket)
      done;
      r.indexes <- (positions, table) :: r.indexes;
      table

let matching r ~on key =
  Obs.Counter.incr c_hash_probes;
  match Hashtbl.find_opt (index_on r on) key with
  | Some rows -> rows
  | None -> []

let all_positions r = Array.init (arity r) Fun.id

let mem r tuple =
  if Array.length tuple <> arity r then false
  else matching r ~on:(all_positions r) tuple <> []

(* attributes of [a] also in [b], in [a]'s scope order *)
let shared_attrs a b =
  Array.of_list
    (List.filter
       (fun v -> Array.exists (( = ) v) b.scope)
       (Array.to_list a.scope))

let join a b =
  let shared = shared_attrs a b in
  let pa = positions a shared and pb = positions b shared in
  let b_priv =
    Array.of_list
      (List.filter
         (fun j -> not (Array.exists (( = ) j) pb))
         (List.init (arity b) Fun.id))
  in
  let out_scope =
    Array.append a.scope (Array.map (fun j -> b.scope.(j)) b_priv)
  in
  let ka = arity a and kp = Array.length b_priv in
  let index = index_on b pb in
  let out = ref [] in
  let n = ref 0 in
  for i = 0 to a.n - 1 do
    Obs.Counter.incr c_hash_probes;
    match Hashtbl.find_opt index (key_at a pa i) with
    | None -> ()
    | Some bs ->
        List.iter
          (fun jb ->
            let row = Array.make (ka + kp) 0 in
            for j = 0 to ka - 1 do
              row.(j) <- a.cols.(j).(i)
            done;
            for j = 0 to kp - 1 do
              row.(ka + j) <- b.cols.(b_priv.(j)).(jb)
            done;
            out := row :: !out;
            incr n)
          bs
  done;
  Obs.Counter.incr c_joins;
  Obs.Counter.add c_join_tuples !n;
  (* distinct inputs give distinct output rows: an output row determines
     its generating pair *)
  of_rows_unchecked ~scope:out_scope (List.rev !out) ~n:!n

let filter_rows r keep_ids ~n =
  let k = arity r in
  let cols = Array.init k (fun _ -> Array.make n 0) in
  List.iteri
    (fun i' i ->
      for j = 0 to k - 1 do
        cols.(j).(i') <- r.cols.(j).(i)
      done)
    keep_ids;
  Obs.Histogram.observe h_relation_size n;
  { scope = r.scope; cols; n; indexes = [] }

let semijoin a b =
  let shared = shared_attrs a b in
  let pa = positions a shared and pb = positions b shared in
  let index = index_on b pb in
  let keep = ref [] in
  let n = ref 0 in
  for i = a.n - 1 downto 0 do
    Obs.Counter.incr c_hash_probes;
    if Hashtbl.mem index (key_at a pa i) then begin
      keep := i :: !keep;
      incr n
    end
  done;
  Obs.Counter.incr c_semijoins;
  Obs.Counter.add c_semijoin_kept !n;
  if !n = a.n then a else filter_rows a !keep ~n:!n

let project r attrs =
  check_scope attrs;
  let ps = positions r attrs in
  let seen = Hashtbl.create (max 16 r.n) in
  let out = ref [] in
  let n = ref 0 in
  for i = r.n - 1 downto 0 do
    let row = key_at r ps i in
    if not (Hashtbl.mem seen row) then begin
      Hashtbl.add seen row ();
      out := row :: !out;
      incr n
    end
  done;
  (* reversed iteration + prepending keeps first-occurrence order up to
     dedup choice; order is unspecified anyway *)
  of_rows_unchecked ~scope:attrs !out ~n:!n

let select_eq r ~attr ~value =
  let p = position r attr in
  let keep = ref [] in
  let n = ref 0 in
  for i = r.n - 1 downto 0 do
    if r.cols.(p).(i) = value then begin
      keep := i :: !keep;
      incr n
    end
  done;
  filter_rows r !keep ~n:!n

let equal a b =
  a.scope = b.scope
  && a.n = b.n
  && List.sort compare (rows a) = List.sort compare (rows b)

let pp ppf r =
  Format.fprintf ppf "@[<v>scope(%s): %d rows"
    (String.concat "," (Array.to_list (Array.map string_of_int r.scope)))
    r.n;
  for i = 0 to min (r.n - 1) 19 do
    Format.fprintf ppf "@,(%s)"
      (String.concat ","
         (Array.to_list (Array.map string_of_int (row r i))))
  done;
  if r.n > 20 then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
