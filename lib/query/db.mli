(** Relational instances: named base tables of interned constants.

    A database maps relation names to {!Qrelation.t} base tables whose
    scope is the column numbering [0 .. arity - 1].  Facts are loaded
    from CSV ([,]-separated) or TSV (tab-separated) files, one file per
    relation (the relation is named after the file), one tuple per
    line; blank lines and [#] comment lines are skipped.  All constants
    share one {!Intern.t}. *)

type t

val create : unit -> t

val interner : t -> Intern.t

(** [add db ~name rows] adds facts (string constants) to relation
    [name], creating it or unioning with existing facts.
    @raise Failure when [rows] disagree in arity with each other or
    with the existing relation. *)
val add : t -> name:string -> string array list -> unit

(** [load_file db ?name path] loads [path] as relation [name] (default:
    the file's basename without extension).  The separator is a tab for
    [.tsv] files and a comma otherwise.
    @raise Failure with file and line information on ragged rows;
    @raise Sys_error on unreadable files. *)
val load_file : t -> ?name:string -> string -> unit

(** [load_dir db dir] loads every [.csv] and [.tsv] file of [dir]. *)
val load_dir : t -> string -> unit

val find : t -> string -> Qrelation.t option

val relation_names : t -> string list

(** [relation_for_atom db ~var_id atom] is the relation of [atom]'s
    matches: constant arguments are selected on, repeated variables
    are filtered for equality, and the result is projected onto
    [atom]'s distinct variables with scope [var_id v] per variable
    (first-occurrence order — {!Cq.atom_vars}).  For a ground atom the
    scope is empty and the result is non-empty iff the fact holds.
    @raise Failure on an unknown relation or an arity mismatch. *)
val relation_for_atom : t -> var_id:(string -> int) -> Cq.atom -> Qrelation.t

(** [decode db row] maps interned ids back to strings. *)
val decode : t -> int array -> string array
