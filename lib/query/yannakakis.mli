(** Yannakakis-style conjunctive query answering over (G)HDs.

    The pipeline (the paper's "answer" to a question, Sections 2.2-2.5):

    + extract the query's hypergraph ({!Cq.hypergraph});
    + when it is alpha-acyclic, take the GYO join tree directly (one
      node per atom, ghw 1); otherwise compute an elimination ordering
      (min-fill, BB-ghw, or the {!Hd_parallel.Portfolio} race,
      depending on [method_]), build a GHD with exact set-cover labels
      and complete it (Lemma 2);
    + materialise one relation per node: the hash join of the node's
      lambda-label atoms projected onto its bag;
    + semijoin-reduce the tree bottom-up (and, except in boolean mode,
      top-down), after which the tree is globally consistent;
    + enumerate answers backtrack-free, project onto the head
      variables, and deduplicate — or count / decide without
      materialising any answer.

    Total cost is polynomial in [||D||^w + |answers|] for a width-[w]
    plan; after the two semijoin passes the enumeration touches no
    tuple that fails to extend to a full solution (the
    [query.enum_dead_ends] counter stays 0 — asserted in the test
    suite). *)

type mode =
  | Answers  (** materialise the distinct answer set *)
  | Count  (** number of distinct answers, without materialising them
               when the head covers every body variable *)
  | Boolean  (** emptiness only: bottom-up semijoins, nothing more *)

type method_ =
  | Auto  (** GYO join tree when acyclic, else min-fill GHD *)
  | Min_fill  (** always decompose, min-fill ordering *)
  | Bb_ghw  (** always decompose, branch-and-bound ghw ordering *)
  | Portfolio  (** always decompose, parallel portfolio ordering *)

type engine =
  | Columnar
      (** vector-at-a-time over selection vectors and radix-partitioned
          int-hash probes ({!Colexec}); the default *)
  | Rows
      (** the retained row-at-a-time reference: materialised semijoins
          over boxed-key [Hashtbl] indexes *)

type stats = {
  acyclic : bool;  (** answered via the GYO join tree *)
  width : int;  (** 1 when acyclic, else the GHD width of the plan *)
  bags : int;  (** join tree nodes *)
  tuples_materialized : int;  (** total bag tuples before reduction *)
  tuples_after_reduction : int;  (** total bag tuples after semijoins *)
  semijoins : int;  (** semijoin operations performed *)
}

type result = {
  mode : mode;
  answers : string array list;
      (** decoded distinct answers ([Answers] mode only, unspecified
          order) *)
  count : int;  (** distinct answers ([Answers]/[Count]; 1/0 for
                    [Boolean]) *)
  nonempty : bool;
  stats : stats;
}

(** [run ~mode db q] answers [q] over [db].  [engine] picks the
    execution kernel (default [Columnar]; [Rows] is the reference the
    test suite cross-checks against).  [jobs] sizes the [Portfolio]
    race; [seed] and [time_limit] parameterise the decomposition search
    ([time_limit] bounds only that search, not evaluation).  [ordering]
    supplies an elimination ordering computed elsewhere — batch
    evaluation and the server's bulk submit share one decomposition
    across many isomorphic queries this way; it is ignored on the
    acyclic [Auto] path, which needs no decomposition.  [par] runs the
    columnar semijoin, join-probe and column-gather loops
    partitioned-parallel on the given scheduler; results are
    byte-identical to the sequential run (see {!Colexec.semijoin}).
    @raise Failure on relations missing from [db] or arity
    mismatches. *)
val run :
  ?engine:engine ->
  ?method_:method_ ->
  ?jobs:int ->
  ?seed:int ->
  ?time_limit:float ->
  ?ordering:int array ->
  ?par:Hd_parallel.Scheduler.t ->
  mode:mode ->
  Db.t ->
  Cq.t ->
  result

(** [ordering_for ~method_ ~jobs ~seed ~time_limit h] is the
    elimination ordering [run] would search for on the GHD path —
    exposed so batch drivers can compute it once per structure and
    replay it via [?ordering]. *)
val ordering_for :
  method_:method_ ->
  jobs:int ->
  seed:int ->
  time_limit:float ->
  Hd_hypergraph.Hypergraph.t ->
  int array
