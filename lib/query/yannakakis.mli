(** Yannakakis-style conjunctive query answering over (G)HDs.

    The pipeline (the paper's "answer" to a question, Sections 2.2-2.5):

    + extract the query's hypergraph ({!Cq.hypergraph});
    + when it is alpha-acyclic, take the GYO join tree directly (one
      node per atom, ghw 1); otherwise compute an elimination ordering
      (min-fill, BB-ghw, or the {!Hd_parallel.Portfolio} race,
      depending on [method_]), build a GHD with exact set-cover labels
      and complete it (Lemma 2);
    + materialise one relation per node: the hash join of the node's
      lambda-label atoms projected onto its bag;
    + semijoin-reduce the tree bottom-up (and, except in boolean mode,
      top-down), after which the tree is globally consistent;
    + enumerate answers backtrack-free, project onto the head
      variables, and deduplicate — or count / decide without
      materialising any answer.

    Total cost is polynomial in [||D||^w + |answers|] for a width-[w]
    plan; after the two semijoin passes the enumeration touches no
    tuple that fails to extend to a full solution (the
    [query.enum_dead_ends] counter stays 0 — asserted in the test
    suite). *)

type mode =
  | Answers  (** materialise the distinct answer set *)
  | Count  (** number of distinct answers, without materialising them
               when the head covers every body variable *)
  | Boolean  (** emptiness only: bottom-up semijoins, nothing more *)

type method_ =
  | Auto  (** GYO join tree when acyclic, else min-fill GHD *)
  | Min_fill  (** always decompose, min-fill ordering *)
  | Bb_ghw  (** always decompose, branch-and-bound ghw ordering *)
  | Portfolio  (** always decompose, parallel portfolio ordering *)

type stats = {
  acyclic : bool;  (** answered via the GYO join tree *)
  width : int;  (** 1 when acyclic, else the GHD width of the plan *)
  bags : int;  (** join tree nodes *)
  tuples_materialized : int;  (** total bag tuples before reduction *)
  tuples_after_reduction : int;  (** total bag tuples after semijoins *)
  semijoins : int;  (** semijoin operations performed *)
}

type result = {
  mode : mode;
  answers : string array list;
      (** decoded distinct answers ([Answers] mode only, unspecified
          order) *)
  count : int;  (** distinct answers ([Answers]/[Count]; 1/0 for
                    [Boolean]) *)
  nonempty : bool;
  stats : stats;
}

(** [run ~mode db q] answers [q] over [db].  [jobs] sizes the
    [Portfolio] race; [seed] and [time_limit] parameterise the
    decomposition search ([time_limit] bounds only that search, not
    evaluation).
    @raise Failure on relations missing from [db] or arity
    mismatches. *)
val run :
  ?method_:method_ ->
  ?jobs:int ->
  ?seed:int ->
  ?time_limit:float ->
  mode:mode ->
  Db.t ->
  Cq.t ->
  result
