(** Conjunctive queries: the AST, a datalog-ish parser, and the
    query-to-hypergraph extraction that feeds the decomposition stack.

    A conjunctive query is one rule

    {[ ans(X,Y) :- r(X,Z), s(Z,Y). ]}

    with a head listing the free (output) variables and a body of
    relational atoms.  Identifiers starting with an uppercase letter or
    [_] are variables; everything else (including numbers and
    double-quoted strings) is a constant.  [%] and [#] start comments to
    end of line; atoms may span lines.  The query must be {e safe}:
    every head variable occurs in the body. *)

type term = Var of string | Const of string

type atom = { pred : string; args : term array }

type t = {
  head_pred : string;  (** name of the head atom, e.g. ["ans"] *)
  head : string array;  (** free variables, in head order *)
  body : atom list;
}

(** [parse_string ?source text] parses one rule.
    @raise Failure with [source] and a line number on malformed or
    unsafe input. *)
val parse_string : ?source:string -> string -> t

(** [parse_file path] is {!parse_string} on the file's contents. *)
val parse_file : string -> t

(** [parse_multi_string ?source text] parses a sequence of rules — a
    batch workload, one ['.']-terminated rule after another (comments
    and whitespace between rules as usual).  Empty input is the empty
    batch.
    @raise Failure as {!parse_string}. *)
val parse_multi_string : ?source:string -> string -> t list

(** [parse_multi_file path] is {!parse_multi_string} on the file's
    contents. *)
val parse_multi_file : string -> t list

(** [variables q] lists the distinct body variables in first-occurrence
    order — the vertex numbering used by {!hypergraph}. *)
val variables : t -> string array

(** [atom_vars a] lists [a]'s distinct variables in first-occurrence
    order. *)
val atom_vars : atom -> string array

(** [is_ground a] holds when [a] has no variables. *)
val is_ground : atom -> bool

(** [hypergraph q] is the query's hypergraph (one vertex per variable of
    {!variables}, one hyperedge per non-ground body atom, in body
    order), the structure whose generalized hypertree width governs the
    cost of answering [q].  Ground atoms contribute no hyperedge — they
    are membership tests evaluated separately.
    @raise Invalid_argument when no body atom has a variable. *)
val hypergraph : t -> Hd_hypergraph.Hypergraph.t

val to_string : t -> string
