module Obs = Hd_obs.Obs

(* Observability: the vector-at-a-time execution kernel.  Selection
   vectors replace materialised semijoin intermediates, radix
   partitions replace boxed-key Hashtbl indexes; the counters let the
   bench attribute per-tuple work to each engine (the row path counts
   the same events under query.hash_probes). *)
let c_selvec_semijoins = Obs.Counter.make "query.selvec_semijoins"
let c_selvec_kept = Obs.Counter.make "query.selvec_kept_rows"
let c_radix_partitions = Obs.Counter.make "query.radix_partitions"
let c_radix_probes = Obs.Counter.make "query.radix_probes"
let c_radix_bucket_skips = Obs.Counter.make "query.radix_bucket_skips"
let c_radix_join_tuples = Obs.Counter.make "query.radix_join_tuples"

(* ------------------------------------------------------------------ *)
(* Selection vectors and key hashing                                   *)
(* ------------------------------------------------------------------ *)

type sel = int array

let all_rows r = Array.init (Qrelation.cardinality r) Fun.id

(* ------------------------------------------------------------------ *)
(* Partitioned-parallel probe loops                                    *)
(* ------------------------------------------------------------------ *)

module Sched = Hd_parallel.Scheduler

(* Chunk boundaries are a function of the probe count and the grain
   alone — never of the worker count or the interleaving — and chunk
   outputs are concatenated in chunk order, so a parallel pass is
   byte-identical to the sequential scan at any [-j].  The grain is a
   process-wide knob only so tests can force multi-chunk runs on tiny
   inputs. *)
let default_grain = 2048
let grain_cell = Atomic.make default_grain
let set_grain g = Atomic.set grain_cell (max 1 g)
let grain () = Atomic.get grain_cell

(* [chunked par n scan] runs [scan lo hi] over deterministic chunks of
   [0, n) and returns the per-chunk results in chunk order.  Falls back
   to one inline chunk when [par] is absent, sequential, or the input
   is below the grain. *)
let chunked (par : Sched.t option) n (scan : int -> int -> 'a) : 'a array =
  let g = grain () in
  match par with
  | Some s when Sched.size s > 0 && n > g ->
      let nc = (n + g - 1) / g in
      let out = Array.make nc None in
      Sched.run_all s
        (List.init nc (fun c () ->
             let lo = c * g in
             out.(c) <- Some (scan lo (min n (lo + g)))));
      Array.map
        (function Some v -> v | None -> failwith "Colexec.chunked: lost chunk")
        out
  | _ -> [| scan 0 n |]

(* Multiplicative mixing over the key columns.  Only [bucket_of] needs
   a non-negative value; full hashes are compared raw (deterministic
   native-int wraparound). *)
let[@inline] mix h v = ((h + v) * 0x9E3779B97F4A7) lxor (h lsr 31)

let hash_cols (cols : int array array) (pos : int array) i =
  let h = ref 0x50b7f1 in
  for j = 0 to Array.length pos - 1 do
    h := mix !h cols.(pos.(j)).(i)
  done;
  !h

let hash_vals (key : int array) =
  let h = ref 0x50b7f1 in
  for j = 0 to Array.length key - 1 do
    h := mix !h key.(j)
  done;
  !h

let[@inline] bucket_of h mask = (h lxor (h lsr 17)) land mask

(* smallest power of two >= max 8 n, capped so a tiny build side never
   allocates a huge bucket directory *)
let directory_size n =
  let b = ref 8 in
  while !b < n && !b < 1 lsl 20 do
    b := !b lsl 1
  done;
  !b

let cols_at r pos = Array.map (fun p -> Qrelation.col r p) pos

(* ------------------------------------------------------------------ *)
(* Growable int vectors (join outputs of unknown size)                 *)
(* ------------------------------------------------------------------ *)

module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; len = 0 }

  let push t v =
    if t.len = Array.length t.a then begin
      let a' = Array.make (2 * Array.length t.a) 0 in
      Array.blit t.a 0 a' 0 t.len;
      t.a <- a'
    end;
    t.a.(t.len) <- v;
    t.len <- t.len + 1

  let get t i = t.a.(i)
  let set t i v = t.a.(i) <- v
  let length t = t.len
  let to_array t = Array.sub t.a 0 t.len
end

(* ------------------------------------------------------------------ *)
(* Radix partitioning                                                  *)
(* ------------------------------------------------------------------ *)

(* build-side rows scattered into hash buckets by counting sort: rows
   of bucket [b] are [rows.(starts.(b) .. starts.(b+1) - 1)], with the
   full key hash kept per entry so probes reject mismatches without
   touching the columns *)
type partition = {
  mask : int;
  starts : int array;
  rows : int array;
  hashes : int array;
}

let partition r pos sel =
  Obs.Counter.incr c_radix_partitions;
  let n = Array.length sel in
  let cols = Qrelation.columns r in
  let nbuckets = directory_size n in
  let mask = nbuckets - 1 in
  let hs = Array.make n 0 in
  let counts = Array.make (nbuckets + 1) 0 in
  for s = 0 to n - 1 do
    let h = hash_cols cols pos sel.(s) in
    hs.(s) <- h;
    let b = bucket_of h mask in
    counts.(b + 1) <- counts.(b + 1) + 1
  done;
  for b = 1 to nbuckets do
    counts.(b) <- counts.(b) + counts.(b - 1)
  done;
  let starts = Array.copy counts in
  let rows = Array.make n 0 and hashes = Array.make n 0 in
  for s = 0 to n - 1 do
    let b = bucket_of hs.(s) mask in
    let slot = counts.(b) in
    counts.(b) <- slot + 1;
    rows.(slot) <- sel.(s);
    hashes.(slot) <- hs.(s)
  done;
  { mask; starts; rows; hashes }

let[@inline] cols_equal_at (acols : int array array) i (bcols : int array array)
    jb =
  let k = Array.length acols in
  let rec go j = j >= k || (acols.(j).(i) = bcols.(j).(jb) && go (j + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Selection-vector semijoin                                           *)
(* ------------------------------------------------------------------ *)

let semijoin ?par ~probe:(ra, sela, pa) ~build:(rb, selb, pb) () =
  Obs.Counter.incr c_selvec_semijoins;
  let result =
    if Array.length selb = 0 then [||]
    else begin
      let part = partition rb pb selb in
      let acols = cols_at ra pa and bcols = cols_at rb pb in
      let probe_cols = Qrelation.columns ra in
      let scan lo hi =
        let out = Ivec.create ~capacity:(max 16 (hi - lo)) () in
        for s = lo to hi - 1 do
          let i = sela.(s) in
          let h = hash_cols probe_cols pa i in
          let b = bucket_of h part.mask in
          let lo' = part.starts.(b) and hi' = part.starts.(b + 1) in
          if lo' = hi' then Obs.Counter.incr c_radix_bucket_skips
          else begin
            Obs.Counter.incr c_radix_probes;
            let e = ref lo' in
            let hit = ref false in
            while (not !hit) && !e < hi' do
              if
                part.hashes.(!e) = h
                && cols_equal_at acols i bcols part.rows.(!e)
              then hit := true
              else incr e
            done;
            if !hit then Ivec.push out i
          end
        done;
        Ivec.to_array out
      in
      match chunked par (Array.length sela) scan with
      | [| one |] -> one
      | many -> Array.concat (Array.to_list many)
    end
  in
  Obs.Counter.add c_selvec_kept (Array.length result);
  result

(* ------------------------------------------------------------------ *)
(* Multiway join + projection (bag materialisation)                    *)
(* ------------------------------------------------------------------ *)

(* intermediate join result; columns may alias an input relation's
   storage (never mutated) *)
type mat = { scope : int array; cols : int array array; n : int }

let mat_of_relation r =
  {
    scope = Qrelation.scope r;
    cols = Qrelation.columns r;
    n = Qrelation.cardinality r;
  }

let mat_positions scope attrs =
  Array.map
    (fun a ->
      let k = Array.length scope in
      let rec go j =
        if j >= k then raise Not_found
        else if scope.(j) = a then j
        else go (j + 1)
      in
      go 0)
    attrs

let shared_attrs sa sb =
  Array.of_list
    (List.filter (fun v -> Array.exists (( = ) v) sb) (Array.to_list sa))

let cols_at_mat a pos = Array.map (fun p -> a.cols.(p)) pos

let join_mat ?par a (b : Qrelation.t) =
  let b_scope = Qrelation.scope b in
  let shared = shared_attrs a.scope b_scope in
  let pa = mat_positions a.scope shared in
  let pb = Qrelation.positions b shared in
  let b_priv =
    Array.of_list
      (List.filter
         (fun j -> not (Array.exists (( = ) j) pb))
         (List.init (Array.length b_scope) Fun.id))
  in
  let out_scope =
    Array.append a.scope (Array.map (fun j -> b_scope.(j)) b_priv)
  in
  let ka = Array.length a.scope and kp = Array.length b_priv in
  let part = partition b pb (all_rows b) in
  let acols = cols_at_mat a pa and bcols = cols_at b pb in
  let bp_cols = cols_at b b_priv in
  (* pairs of matching (left row, right row), found radix-wise over
     deterministic probe chunks *)
  let scan lo0 hi0 =
    let li = Ivec.create () and ri = Ivec.create () in
    for i = lo0 to hi0 - 1 do
      let h = hash_cols a.cols pa i in
      let bkt = bucket_of h part.mask in
      let lo = part.starts.(bkt) and hi = part.starts.(bkt + 1) in
      if lo = hi then Obs.Counter.incr c_radix_bucket_skips
      else begin
        Obs.Counter.incr c_radix_probes;
        for e = lo to hi - 1 do
          if part.hashes.(e) = h && cols_equal_at acols i bcols part.rows.(e)
          then begin
            Ivec.push li i;
            Ivec.push ri part.rows.(e)
          end
        done
      end
    done;
    (Ivec.to_array li, Ivec.to_array ri)
  in
  let pairs = chunked par a.n scan in
  let li = Array.concat (Array.to_list (Array.map fst pairs)) in
  let ri = Array.concat (Array.to_list (Array.map snd pairs)) in
  let n = Array.length li in
  Obs.Counter.add c_radix_join_tuples n;
  (* column materialisation: one independent gather per output column *)
  let cols = Array.make (ka + kp) [||] in
  let fill j =
    let col = Array.make n 0 in
    (if j < ka then
       let src = a.cols.(j) in
       for t = 0 to n - 1 do
         col.(t) <- src.(li.(t))
       done
     else
       let src = bp_cols.(j - ka) in
       for t = 0 to n - 1 do
         col.(t) <- src.(ri.(t))
       done);
    cols.(j) <- col
  in
  (match par with
  | Some s when Sched.size s > 0 && ka + kp > 1 && n > grain () ->
      Sched.run_all s (List.init (ka + kp) (fun j () -> fill j))
  | _ ->
      for j = 0 to ka + kp - 1 do
        fill j
      done);
  { scope = out_scope; cols; n }

(* dedup-project [m] onto [attrs] via an open chained hash over the
   projected values, then freeze as a columnar relation *)
let project_mat m attrs =
  let ps = mat_positions m.scope attrs in
  let pcols = cols_at_mat m ps in
  let k = Array.length ps in
  let nbuckets = directory_size (2 * m.n) in
  let mask = nbuckets - 1 in
  let head = Array.make nbuckets (-1) in
  let next = Ivec.create () and keep = Ivec.create () and khash = Ivec.create () in
  for i = 0 to m.n - 1 do
    let h = hash_cols m.cols ps i in
    let b = bucket_of h mask in
    let slot = ref head.(b) in
    let dup = ref false in
    while (not !dup) && !slot <> -1 do
      if
        Ivec.get khash !slot = h
        &&
        let j0 = Ivec.get keep !slot in
        let rec eq j = j >= k || (pcols.(j).(i) = pcols.(j).(j0) && eq (j + 1)) in
        eq 0
      then dup := true
      else slot := Ivec.get next !slot
    done;
    if not !dup then begin
      let s = Ivec.length keep in
      Ivec.push keep i;
      Ivec.push khash h;
      Ivec.push next head.(b);
      head.(b) <- s
    end
  done;
  let n = Ivec.length keep in
  let cols =
    Array.init k (fun j ->
        let src = pcols.(j) in
        Array.init n (fun t -> src.(Ivec.get keep t)))
  in
  Qrelation.of_columns_unchecked ~scope:(Array.copy attrs) cols ~n

let join_project ?par rels ~scope =
  match rels with
  | [] -> invalid_arg "Colexec.join_project: no relations"
  | r :: rest ->
      let m = List.fold_left (join_mat ?par) (mat_of_relation r) rest in
      project_mat m scope

(* ------------------------------------------------------------------ *)
(* Enumeration index: shared-key -> surviving row ids                  *)
(* ------------------------------------------------------------------ *)

module Index = struct
  (* chained hash over the selection's rows, keyed on [pos]; probes
     compare the actual column values so collisions cannot lie *)
  type t = {
    kcols : int array array;
    mask : int;
    head : int array;
    next : int array;
    rows : int array;
    hashes : int array;
  }

  let build r ~pos ~sel =
    let n = Array.length sel in
    let kcols = cols_at r pos in
    let cols = Qrelation.columns r in
    let nbuckets = directory_size n in
    let mask = nbuckets - 1 in
    let head = Array.make nbuckets (-1) in
    let next = Array.make n (-1) in
    let hashes = Array.make n 0 in
    (* reverse fill so each chain lists selection order ascending *)
    for s = n - 1 downto 0 do
      let h = hash_cols cols pos sel.(s) in
      let b = bucket_of h mask in
      hashes.(s) <- h;
      next.(s) <- head.(b);
      head.(b) <- s
    done;
    { kcols; mask; head; next; rows = sel; hashes }

  let iter t key f =
    let h = hash_vals key in
    let k = Array.length key in
    let b = bucket_of h t.mask in
    if t.head.(b) = -1 then Obs.Counter.incr c_radix_bucket_skips
    else begin
      Obs.Counter.incr c_radix_probes;
      let slot = ref t.head.(b) in
      while !slot <> -1 do
        let s = !slot in
        (if t.hashes.(s) = h then
           let i = t.rows.(s) in
           let rec eq j = j >= k || (t.kcols.(j).(i) = key.(j) && eq (j + 1)) in
           if eq 0 then f i);
        slot := t.next.(s)
      done
    end
end

(* ------------------------------------------------------------------ *)
(* Keyed weight sums (weighted counting without materialisation)       *)
(* ------------------------------------------------------------------ *)

module Keysum = struct
  (* distinct shared keys of a child's surviving rows, each with the
     total weight of the rows carrying it *)
  type t = {
    kcols : int array array;
    mask : int;
    head : int array;
    next : Ivec.t;
    reprs : Ivec.t;  (* slot -> representative row id *)
    sums : Ivec.t;  (* slot -> accumulated weight; mutated in place *)
    hashes : Ivec.t;
  }

  let build r ~pos ~sel ~weights =
    let n = Array.length sel in
    let kcols = cols_at r pos in
    let cols = Qrelation.columns r in
    let k = Array.length pos in
    let nbuckets = directory_size n in
    let mask = nbuckets - 1 in
    let head = Array.make nbuckets (-1) in
    let t =
      {
        kcols;
        mask;
        head;
        next = Ivec.create ();
        reprs = Ivec.create ();
        sums = Ivec.create ();
        hashes = Ivec.create ();
      }
    in
    for s = 0 to n - 1 do
      let i = sel.(s) in
      let h = hash_cols cols pos i in
      let b = bucket_of h mask in
      let slot = ref head.(b) in
      let found = ref (-1) in
      while !found = -1 && !slot <> -1 do
        if
          Ivec.get t.hashes !slot = h
          &&
          let j0 = Ivec.get t.reprs !slot in
          let rec eq j = j >= k || (kcols.(j).(i) = kcols.(j).(j0) && eq (j + 1)) in
          eq 0
        then found := !slot
        else slot := Ivec.get t.next !slot
      done;
      if !found >= 0 then
        Ivec.set t.sums !found (Ivec.get t.sums !found + weights.(s))
      else begin
        let slot' = Ivec.length t.reprs in
        Ivec.push t.reprs i;
        Ivec.push t.sums weights.(s);
        Ivec.push t.hashes h;
        Ivec.push t.next head.(b);
        head.(b) <- slot'
      end
    done;
    t

  (* sum of the weights of build rows matching [key]; 0 when none *)
  let find t key =
    let h = hash_vals key in
    let k = Array.length key in
    let b = bucket_of h t.mask in
    if t.head.(b) = -1 then begin
      Obs.Counter.incr c_radix_bucket_skips;
      0
    end
    else begin
      Obs.Counter.incr c_radix_probes;
      let slot = ref t.head.(b) in
      let result = ref 0 in
      let continue = ref true in
      while !continue && !slot <> -1 do
        (if Ivec.get t.hashes !slot = h then
           let i = Ivec.get t.reprs !slot in
           let rec eq j = j >= k || (t.kcols.(j).(i) = key.(j) && eq (j + 1)) in
           if eq 0 then begin
             result := Ivec.get t.sums !slot;
             continue := false
           end);
        if !continue then slot := Ivec.get t.next !slot
      done;
      !result
    end
end
