module Obs = Hd_obs.Obs

(* batch workloads re-derive the same atom relations (same predicate,
   same constant/repetition pattern, same variable numbering) for
   every query of the batch; the per-atom cache makes those re-uses
   O(1) *)
let c_atom_cache_hits = Obs.Counter.make "query.atom_cache_hits"
let c_atom_cache_misses = Obs.Counter.make "query.atom_cache_misses"

type t = {
  intern : Intern.t;
  rels : (string, Qrelation.t) Hashtbl.t;
  (* atom signature -> filtered/projected relation; flushed on add *)
  atom_cache : (string, Qrelation.t) Hashtbl.t;
}

let create () =
  {
    intern = Intern.create ();
    rels = Hashtbl.create 16;
    atom_cache = Hashtbl.create 32;
  }

let interner db = db.intern

let find db name = Hashtbl.find_opt db.rels name

let relation_names db =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) db.rels [])

let base_scope k = Array.init k Fun.id

let add db ~name rows =
  Hashtbl.reset db.atom_cache;
  let interned =
    List.map (fun row -> Array.map (Intern.intern db.intern) row) rows
  in
  match (find db name, interned) with
  | None, [] -> ()
  | None, first :: _ ->
      let k = Array.length first in
      List.iter
        (fun row ->
          if Array.length row <> k then
            failwith
              (Printf.sprintf "Db.add: relation %S: ragged tuple arities" name))
        interned;
      Hashtbl.replace db.rels name (Qrelation.make ~scope:(base_scope k) interned)
  | Some r, _ ->
      let k = Qrelation.arity r in
      List.iter
        (fun row ->
          if Array.length row <> k then
            failwith
              (Printf.sprintf
                 "Db.add: relation %S expects arity %d tuples" name k))
        interned;
      Hashtbl.replace db.rels name
        (Qrelation.make ~scope:(base_scope k) (Qrelation.rows r @ interned))

let split_line sep line =
  String.split_on_char sep line |> List.map String.trim |> Array.of_list

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let name_of_path path =
  let base = Filename.basename path in
  try Filename.chop_extension base with Invalid_argument _ -> base

let load_file db ?name path =
  let name = match name with Some n -> n | None -> name_of_path path in
  let sep =
    if Filename.check_suffix (String.lowercase_ascii path) ".tsv" then '\t'
    else ','
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rows = ref [] in
      let arity = ref (-1) in
      let lineno = ref 0 in
      (try
         while true do
           let line = strip_cr (input_line ic) in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" && trimmed.[0] <> '#' then begin
             let row = split_line sep line in
             if !arity = -1 then arity := Array.length row
             else if Array.length row <> !arity then
               failwith
                 (Printf.sprintf
                    "Db: %s, line %d: expected %d fields, got %d" path
                    !lineno !arity (Array.length row));
             rows := row :: !rows
           end
         done
       with End_of_file -> ());
      add db ~name (List.rev !rows))

let load_dir db dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.iter
    (fun entry ->
      let lower = String.lowercase_ascii entry in
      if
        Filename.check_suffix lower ".csv"
        || Filename.check_suffix lower ".tsv"
      then load_file db (Filename.concat dir entry))
    entries

(* the derived relation is a function of the predicate and the
   argument shape alone: constants by interned id, variables by their
   assigned scope id (repetitions included) *)
let atom_cache_key db ~var_id (atom : Cq.atom) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf atom.Cq.pred;
  Array.iter
    (fun term ->
      Buffer.add_char buf '|';
      match term with
      | Cq.Const c ->
          Buffer.add_char buf 'c';
          Buffer.add_string buf
            (match Intern.find db.intern c with
            | Some v -> string_of_int v
            | None -> "?")
      | Cq.Var v ->
          Buffer.add_char buf 'v';
          Buffer.add_string buf (string_of_int (var_id v)))
    atom.Cq.args;
  Buffer.contents buf

let relation_for_atom_uncached db ~var_id (atom : Cq.atom) =
  let base =
    match find db atom.Cq.pred with
    | Some r -> r
    | None ->
        failwith
          (Printf.sprintf "Db: unknown relation %S in query" atom.Cq.pred)
  in
  let k = Array.length atom.Cq.args in
  if Qrelation.arity base <> k then
    failwith
      (Printf.sprintf "Db: relation %S has arity %d, query atom has arity %d"
         atom.Cq.pred (Qrelation.arity base) k);
  (* per-position obligations: a constant to equal, or the position of
     the variable's first occurrence to agree with *)
  let first_pos = Hashtbl.create 8 in
  let checks =
    Array.to_list
      (Array.mapi
         (fun j term ->
           match term with
           | Cq.Const c -> (
               match Intern.find db.intern c with
               | Some v -> Some (j, `Const v)
               | None -> Some (j, `Never))
           | Cq.Var v -> (
               match Hashtbl.find_opt first_pos v with
               | Some j0 -> Some (j, `SameAs j0)
               | None ->
                   Hashtbl.add first_pos v j;
                   None))
         atom.Cq.args)
    |> List.filter_map Fun.id
  in
  let vars = Cq.atom_vars atom in
  let var_cols = Array.map (fun v -> Hashtbl.find first_pos v) vars in
  let scope = Array.map var_id vars in
  let out = ref [] in
  for i = Qrelation.cardinality base - 1 downto 0 do
    let ok =
      List.for_all
        (fun (j, oblig) ->
          match oblig with
          | `Const v -> Qrelation.get base i j = v
          | `SameAs j0 -> Qrelation.get base i j = Qrelation.get base i j0
          | `Never -> false)
        checks
    in
    if ok then
      out := Array.map (fun j -> Qrelation.get base i j) var_cols :: !out
  done;
  Qrelation.make ~scope !out

let relation_for_atom db ~var_id atom =
  let key = atom_cache_key db ~var_id atom in
  match Hashtbl.find_opt db.atom_cache key with
  | Some r ->
      Obs.Counter.incr c_atom_cache_hits;
      r
  | None ->
      Obs.Counter.incr c_atom_cache_misses;
      let r = relation_for_atom_uncached db ~var_id atom in
      Hashtbl.replace db.atom_cache key r;
      r

let decode db row = Array.map (Intern.name db.intern) row
