module Hypergraph = Hd_hypergraph.Hypergraph
module Acyclicity = Hd_hypergraph.Acyclicity
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Bitset = Hd_graph.Bitset
module St = Hd_search.Search_types
module Obs = Hd_obs.Obs

(* Observability: bag materialisation, semijoin passes, and the
   enumeration's tuple-producing work.  After full reduction the
   enumeration is backtrack-free, so query.enum_dead_ends stays 0 —
   the test suite asserts this. *)
let c_bag_tuples = Obs.Counter.make "query.bag_tuples"
let c_reduce_semijoins = Obs.Counter.make "query.reduce_semijoins"
let c_enum_rows = Obs.Counter.make "query.enum_rows"
let c_enum_dead_ends = Obs.Counter.make "query.enum_dead_ends"
let c_answers = Obs.Counter.make "query.answers"

(* row-engine probe attribution; shares the registry slot with
   Qrelation's handle *)
let c_hash_probes = Obs.Counter.make "query.hash_probes"
let h_bag_size = Obs.Histogram.make "query.bag_size"

type mode = Answers | Count | Boolean

type method_ = Auto | Min_fill | Bb_ghw | Portfolio

type engine = Columnar | Rows

type stats = {
  acyclic : bool;
  width : int;
  bags : int;
  tuples_materialized : int;
  tuples_after_reduction : int;
  semijoins : int;
}

type result = {
  mode : mode;
  answers : string array list;
  count : int;
  nonempty : bool;
  stats : stats;
}

exception Empty_result

(* a join tree of materialised relations: rels.(i)'s scope is node i's
   bag, parent.(i) = -1 for roots *)
type tree = { rels : Qrelation.t array; parent : int array }

(* children-before-parents order *)
let bottom_up_order parent =
  let m = Array.length parent in
  let depth = Array.make m (-1) in
  let rec depth_of i =
    if depth.(i) >= 0 then depth.(i)
    else begin
      let d = if parent.(i) = -1 then 0 else depth_of parent.(i) + 1 in
      depth.(i) <- d;
      d
    end
  in
  let order = Array.init m Fun.id in
  for i = 0 to m - 1 do
    ignore (depth_of i)
  done;
  Array.sort (fun a b -> compare depth.(b) depth.(a)) order;
  order

let total_tuples rels =
  Array.fold_left (fun acc r -> acc + Qrelation.cardinality r) 0 rels

(* ------------------------------------------------------------------ *)
(* Planning: hypergraph -> join tree of materialised bag relations     *)
(* ------------------------------------------------------------------ *)

let ordering_for ~method_ ~jobs ~seed ~time_limit h =
  let budget = St.with_time time_limit in
  let min_fill () =
    Hd_core.Ordering_heuristics.min_fill_hypergraph
      (Random.State.make [| seed |])
      h
  in
  match method_ with
  | Auto | Min_fill -> min_fill ()
  | Bb_ghw -> (
      (* through the engine: block-split the query hypergraph first,
         then run the registered BB-ghw on each biconnected piece *)
      Hd_search.Solvers.ensure ();
      let r =
        Hd_engine.Engine.run_by_name ~seed "bb-ghw"
          (Hd_engine.Budget.of_spec budget)
          (Hd_engine.Solver.Hypergraph h)
      in
      match r.Hd_engine.Solver.ordering with
      | Some sigma -> sigma
      | None -> min_fill ())
  | Portfolio -> (
      match
        (Hd_parallel.Portfolio.solve_ghw ~jobs ~budget ~seed h)
          .Hd_parallel.Portfolio.ordering
      with
      | Some sigma -> sigma
      | None -> min_fill ())

let observe_bag r =
  Obs.Counter.add c_bag_tuples (Qrelation.cardinality r);
  Obs.Histogram.observe h_bag_size (Qrelation.cardinality r)

(* materialise one relation per GHD node: join the lambda-label atom
   relations, project onto the bag.  Completion (Lemma 2) guarantees
   every atom is enforced unprojected at some node. *)
let materialize_ghd ?par ~engine ghd atom_rels =
  Obs.with_span "query.materialize" @@ fun () ->
  let td = ghd.Ghd.td in
  let n_nodes = Td.n_nodes td in
  let rels =
    Array.init n_nodes (fun p ->
        let lambda = ghd.Ghd.lambda.(p) in
        let chi = Array.of_list (Bitset.elements (Td.bag td p)) in
        let r =
          match (engine, Array.to_list lambda) with
          | _, [] -> Qrelation.make ~scope:[||] [ [||] ]
          | Columnar, es ->
              Colexec.join_project ?par
                (List.map (fun e -> atom_rels.(e)) es)
                ~scope:chi
          | Rows, e :: rest ->
              let joined =
                List.fold_left
                  (fun acc e' -> Qrelation.join acc atom_rels.(e'))
                  atom_rels.(e) rest
              in
              Qrelation.project joined chi
        in
        observe_bag r;
        r)
  in
  { rels; parent = td.Td.parent }

let plan ?par ~engine ~method_ ~jobs ~seed ~time_limit ~ordering h atom_rels =
  Obs.with_span "query.plan" @@ fun () ->
  let acyclic_tree () =
    match Acyclicity.join_tree h with
    | Some parent ->
        Array.iter observe_bag atom_rels;
        Some ({ rels = Array.copy atom_rels; parent }, 1, true)
    | None -> None
  in
  let ghd_plan () =
    let sigma =
      (* a caller-supplied ordering (batch evaluation, server bulk
         submit) skips the per-query decomposition search entirely *)
      match ordering with
      | Some sigma -> sigma
      | None ->
          Obs.with_span "query.decompose" @@ fun () ->
          ordering_for ~method_ ~jobs ~seed ~time_limit h
    in
    let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
    let ghd = Ghd.complete h ghd in
    (materialize_ghd ?par ~engine ghd atom_rels, Ghd.width ghd, false)
  in
  match method_ with
  | Auto -> (
      match acyclic_tree () with Some t -> t | None -> ghd_plan ())
  | Min_fill | Bb_ghw | Portfolio -> ghd_plan ()

let shared_vars sa sb =
  Array.of_list
    (List.filter (fun v -> Array.exists (( = ) v) sb) (Array.to_list sa))

(* ------------------------------------------------------------------ *)
(* Row engine: materialised semijoin reduction                         *)
(* ------------------------------------------------------------------ *)

(* bottom-up pass; raises Empty_result as soon as any relation empties *)
let reduce_bottom_up t ~semijoins =
  let order = bottom_up_order t.parent in
  Array.iter
    (fun (r : Qrelation.t) -> if Qrelation.is_empty r then raise Empty_result)
    t.rels;
  Array.iter
    (fun i ->
      let p = t.parent.(i) in
      if p <> -1 then begin
        t.rels.(p) <- Qrelation.semijoin t.rels.(p) t.rels.(i);
        incr semijoins;
        Obs.Counter.incr c_reduce_semijoins;
        if Qrelation.is_empty t.rels.(p) then raise Empty_result
      end)
    order

(* top-down pass: after it, every tuple everywhere takes part in at
   least one full solution (full reduction) *)
let reduce_top_down t ~semijoins =
  let order = bottom_up_order t.parent in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let p = t.parent.(i) in
    if p <> -1 then begin
      t.rels.(i) <- Qrelation.semijoin t.rels.(i) t.rels.(p);
      incr semijoins;
      Obs.Counter.incr c_reduce_semijoins
    end
  done

(* number of distinct full assignments admitted by the (reduced) tree:
   per-node weights accumulated children-first, one hash lookup per
   parent tuple and child.  The scratch table and probe key are hoisted
   and reused — the per-tuple path allocates only on insertion. *)
let count_assignments t =
  let m = Array.length t.rels in
  let children = Array.make m [] in
  Array.iteri
    (fun i p -> if p <> -1 then children.(p) <- i :: children.(p))
    t.parent;
  let weights = Array.make m [||] in
  let sums : (int array, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun i ->
      let r = t.rels.(i) in
      let w = Array.make (Qrelation.cardinality r) 1 in
      List.iter
        (fun c ->
          let rc = t.rels.(c) in
          let shared = shared_vars (Qrelation.scope r) (Qrelation.scope rc) in
          let pr = Qrelation.positions r shared in
          let pc = Qrelation.positions rc shared in
          let k = Array.length shared in
          Hashtbl.reset sums;
          Array.iteri
            (fun j wj ->
              let key = Array.map (fun p -> Qrelation.get rc j p) pc in
              Obs.Counter.incr c_hash_probes;
              let prev = try Hashtbl.find sums key with Not_found -> 0 in
              Hashtbl.replace sums key (wj + prev))
            weights.(c);
          let key = Array.make k 0 in
          for j = 0 to Qrelation.cardinality r - 1 do
            for x = 0 to k - 1 do
              key.(x) <- Qrelation.get r j pr.(x)
            done;
            Obs.Counter.incr c_hash_probes;
            w.(j) <- w.(j) * (try Hashtbl.find sums key with Not_found -> 0)
          done)
        children.(i);
      weights.(i) <- w)
    (bottom_up_order t.parent);
  let total = ref 1 in
  Array.iteri
    (fun i p ->
      if p = -1 then
        total := !total * Array.fold_left ( + ) 0 weights.(i))
    t.parent;
  !total

(* visit every full assignment of the reduced tree in depth-first
   pre-order; on a fully reduced tree every row extends, so the work is
   proportional to the solutions emitted, never to dead intermediate
   tuples *)
let enumerate t ~n_vars ~on_solution =
  Obs.with_span "query.enumerate" @@ fun () ->
  let order =
    let o = bottom_up_order t.parent in
    Array.init (Array.length o) (fun k -> o.(Array.length o - 1 - k))
  in
  let m = Array.length order in
  let info =
    Array.map
      (fun i ->
        let r = t.rels.(i) in
        let sc = Qrelation.scope r in
        let parent_scope =
          if t.parent.(i) = -1 then [||]
          else Qrelation.scope t.rels.(t.parent.(i))
        in
        let shared = shared_vars sc parent_scope in
        let index = Qrelation.index_on r (Qrelation.positions r shared) in
        let fresh =
          Array.of_list
            (List.filter_map
               (fun j ->
                 let v = sc.(j) in
                 if Array.exists (( = ) v) shared then None else Some (j, v))
               (List.init (Array.length sc) Fun.id))
        in
        (r, shared, index, fresh))
      order
  in
  let env = Array.make (max 1 n_vars) (-1) in
  let rec go k =
    if k = m then on_solution env
    else begin
      let r, shared, index, fresh = info.(k) in
      let key = Array.map (fun v -> env.(v)) shared in
      Obs.Counter.incr c_hash_probes;
      match Hashtbl.find_opt index key with
      | None -> Obs.Counter.incr c_enum_dead_ends
      | Some row_ids ->
          List.iter
            (fun rid ->
              Obs.Counter.incr c_enum_rows;
              Array.iter
                (fun (j, v) -> env.(v) <- Qrelation.get r rid j)
                fresh;
              go (k + 1))
            row_ids
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Columnar engine: selection vectors over immutable bags              *)
(* ------------------------------------------------------------------ *)

(* the live selection per node; bags themselves are never rewritten *)
type colstate = { tree : tree; sels : Colexec.sel array }

let col_semijoin ?par st ~probe:i ~build:c =
  let r = st.tree.rels.(i) and rc = st.tree.rels.(c) in
  let shared = shared_vars (Qrelation.scope r) (Qrelation.scope rc) in
  st.sels.(i) <-
    Colexec.semijoin ?par
      ~probe:(r, st.sels.(i), Qrelation.positions r shared)
      ~build:(rc, st.sels.(c), Qrelation.positions rc shared)
      ()

let col_reduce_bottom_up ?par st ~semijoins =
  let order = bottom_up_order st.tree.parent in
  Array.iter
    (fun sel -> if Array.length sel = 0 then raise Empty_result)
    st.sels;
  Array.iter
    (fun i ->
      let p = st.tree.parent.(i) in
      if p <> -1 then begin
        col_semijoin ?par st ~probe:p ~build:i;
        incr semijoins;
        Obs.Counter.incr c_reduce_semijoins;
        if Array.length st.sels.(p) = 0 then raise Empty_result
      end)
    order

let col_reduce_top_down ?par st ~semijoins =
  let order = bottom_up_order st.tree.parent in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let p = st.tree.parent.(i) in
    if p <> -1 then begin
      col_semijoin ?par st ~probe:i ~build:p;
      incr semijoins;
      Obs.Counter.incr c_reduce_semijoins
    end
  done

let col_surviving st = Array.fold_left (fun acc s -> acc + Array.length s) 0 st.sels

(* weighted counting over selection slots: weights.(i).(s) counts the
   full assignments below node i extending selection slot s *)
let col_count_assignments st =
  let t = st.tree in
  let m = Array.length t.rels in
  let children = Array.make m [] in
  Array.iteri
    (fun i p -> if p <> -1 then children.(p) <- i :: children.(p))
    t.parent;
  let weights = Array.make m [||] in
  Array.iter
    (fun i ->
      let r = t.rels.(i) in
      let sel = st.sels.(i) in
      let w = Array.make (Array.length sel) 1 in
      List.iter
        (fun c ->
          let rc = t.rels.(c) in
          let shared = shared_vars (Qrelation.scope r) (Qrelation.scope rc) in
          let pr = Qrelation.positions r shared in
          let pc = Qrelation.positions rc shared in
          let ks =
            Colexec.Keysum.build rc ~pos:pc ~sel:st.sels.(c)
              ~weights:weights.(c)
          in
          let k = Array.length shared in
          let key = Array.make k 0 in
          for s = 0 to Array.length sel - 1 do
            let row = sel.(s) in
            for x = 0 to k - 1 do
              key.(x) <- Qrelation.get r row pr.(x)
            done;
            w.(s) <- w.(s) * Colexec.Keysum.find ks key
          done)
        children.(i);
      weights.(i) <- w)
    (bottom_up_order t.parent);
  let total = ref 1 in
  Array.iteri
    (fun i p ->
      if p = -1 then total := !total * Array.fold_left ( + ) 0 weights.(i))
    t.parent;
  !total

(* backtrack-free enumeration over selection vectors: per node a
   chained int-hash Index of the surviving rows on the parent-shared
   columns, probed with a reused scratch key; fresh variables are read
   straight out of the base columns (late materialisation) *)
let col_enumerate st ~n_vars ~on_solution =
  Obs.with_span "query.enumerate" @@ fun () ->
  let t = st.tree in
  let order =
    let o = bottom_up_order t.parent in
    Array.init (Array.length o) (fun k -> o.(Array.length o - 1 - k))
  in
  let m = Array.length order in
  let info =
    Array.map
      (fun i ->
        let r = t.rels.(i) in
        let sc = Qrelation.scope r in
        let parent_scope =
          if t.parent.(i) = -1 then [||]
          else Qrelation.scope t.rels.(t.parent.(i))
        in
        let shared = shared_vars sc parent_scope in
        let index =
          Colexec.Index.build r
            ~pos:(Qrelation.positions r shared)
            ~sel:st.sels.(i)
        in
        let fresh =
          Array.of_list
            (List.filter_map
               (fun j ->
                 let v = sc.(j) in
                 if Array.exists (( = ) v) shared then None
                 else Some (Qrelation.col r j, v))
               (List.init (Array.length sc) Fun.id))
        in
        (shared, index, fresh, Array.make (Array.length shared) 0))
      order
  in
  let env = Array.make (max 1 n_vars) (-1) in
  let rec go k =
    if k = m then on_solution env
    else begin
      let shared, index, fresh, key = info.(k) in
      for x = 0 to Array.length shared - 1 do
        key.(x) <- env.(shared.(x))
      done;
      let any = ref false in
      Colexec.Index.iter index key (fun rid ->
          any := true;
          Obs.Counter.incr c_enum_rows;
          Array.iter (fun (colv, v) -> env.(v) <- colv.(rid)) fresh;
          go (k + 1));
      if not !any then Obs.Counter.incr c_enum_dead_ends
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let empty_result mode stats = { mode; answers = []; count = 0; nonempty = false; stats }

let run ?(engine = Columnar) ?(method_ = Auto) ?(jobs = 1) ?(seed = 42)
    ?(time_limit = 10.0) ?ordering ?par ~mode db q =
  Obs.with_span "query.run" @@ fun () ->
  let vars = Cq.variables q in
  let n_vars = Array.length vars in
  let var_ids = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add var_ids v i) vars;
  let var_id v = Hashtbl.find var_ids v in
  let head_ids = Array.map var_id q.Cq.head in
  let ground, proper = List.partition Cq.is_ground q.Cq.body in
  let no_stats ~acyclic ~width ~bags =
    {
      acyclic;
      width;
      bags;
      tuples_materialized = 0;
      tuples_after_reduction = 0;
      semijoins = 0;
    }
  in
  (* ground atoms are membership tests independent of the variables *)
  let ground_holds =
    List.for_all
      (fun a -> not (Qrelation.is_empty (Db.relation_for_atom db ~var_id a)))
      ground
  in
  if not ground_holds then
    empty_result mode (no_stats ~acyclic:true ~width:0 ~bags:0)
  else if proper = [] then
    (* variable-free query: the single empty answer *)
    {
      mode;
      answers = (match mode with Answers -> [ [||] ] | _ -> []);
      count = 1;
      nonempty = true;
      stats = no_stats ~acyclic:true ~width:0 ~bags:0;
    }
  else begin
    let h = Cq.hypergraph q in
    let atom_rels =
      Array.of_list
        (List.map (fun a -> Db.relation_for_atom db ~var_id a) proper)
    in
    let tree, width, acyclic =
      plan ?par ~engine ~method_ ~jobs ~seed ~time_limit ~ordering h atom_rels
    in
    let bags = Array.length tree.rels in
    let tuples_materialized = total_tuples tree.rels in
    let semijoins = ref 0 in
    let head_covers_all =
      let covered = Array.make n_vars false in
      Array.iter (fun v -> covered.(v) <- true) head_ids;
      Array.for_all Fun.id covered
    in
    let stats_now tuples_after_reduction =
      {
        acyclic;
        width;
        bags;
        tuples_materialized;
        tuples_after_reduction;
        semijoins = !semijoins;
      }
    in
    (* mode dispatch shared by both engines once reduction is done *)
    let finish ~stats ~count_all ~enum =
      match mode with
      | Boolean ->
          { mode; answers = []; count = 1; nonempty = true; stats = stats () }
      | Count when head_covers_all ->
          (* the head covers every variable: distinct answers are in
             bijection with full assignments — count by weights, no
             materialisation *)
          let count = count_all () in
          Obs.Counter.add c_answers count;
          { mode; answers = []; count; nonempty = count > 0; stats = stats () }
      | Count ->
          (* a genuine projection: enumerate and count distinct heads *)
          let seen = Hashtbl.create 256 in
          enum (fun env ->
              let proj = Array.map (fun v -> env.(v)) head_ids in
              if not (Hashtbl.mem seen proj) then begin
                Hashtbl.add seen proj ();
                Obs.Counter.incr c_answers
              end);
          let count = Hashtbl.length seen in
          { mode; answers = []; count; nonempty = count > 0; stats = stats () }
      | Answers ->
          let seen = Hashtbl.create 256 in
          enum (fun env ->
              let proj = Array.map (fun v -> env.(v)) head_ids in
              if not (Hashtbl.mem seen proj) then begin
                Hashtbl.add seen proj ();
                Obs.Counter.incr c_answers
              end);
          let answers =
            Hashtbl.fold (fun proj () acc -> Db.decode db proj :: acc) seen []
          in
          {
            mode;
            answers;
            count = Hashtbl.length seen;
            nonempty = answers <> [];
            stats = stats ();
          }
    in
    match engine with
    | Rows -> (
        try
          Obs.with_span "query.reduce" (fun () ->
              reduce_bottom_up tree ~semijoins;
              if mode <> Boolean then reduce_top_down tree ~semijoins);
          finish
            ~stats:(fun () -> stats_now (total_tuples tree.rels))
            ~count_all:(fun () -> count_assignments tree)
            ~enum:(fun f -> enumerate tree ~n_vars ~on_solution:f)
        with Empty_result -> empty_result mode (stats_now (total_tuples tree.rels)))
    | Columnar -> (
        let st =
          { tree; sels = Array.map Colexec.all_rows tree.rels }
        in
        try
          Obs.with_span "query.reduce" (fun () ->
              col_reduce_bottom_up ?par st ~semijoins;
              if mode <> Boolean then col_reduce_top_down ?par st ~semijoins);
          finish
            ~stats:(fun () -> stats_now (col_surviving st))
            ~count_all:(fun () -> col_count_assignments st)
            ~enum:(fun f -> col_enumerate st ~n_vars ~on_solution:f)
        with Empty_result -> empty_result mode (stats_now (col_surviving st)))
  end
