exception Witness

(* Iterate every assignment of the body variables satisfying all atoms,
   calling [on_solution env] with [env.(var id) = value].  Variable ids
   follow [Cq.variables]. *)
let solve db (q : Cq.t) ~on_solution =
  let vars = Cq.variables q in
  let var_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add var_id v i) vars;
  let env = Array.make (max 1 (Array.length vars)) (-1) in
  let atoms = Array.of_list q.Cq.body in
  let rels =
    Array.map
      (fun (a : Cq.atom) ->
        match Db.find db a.Cq.pred with
        | Some r ->
            if Qrelation.arity r <> Array.length a.Cq.args then
              failwith
                (Printf.sprintf
                   "Brute_force: relation %S has arity %d, atom has arity %d"
                   a.Cq.pred (Qrelation.arity r) (Array.length a.Cq.args))
            else r
        | None ->
            failwith
              (Printf.sprintf "Brute_force: unknown relation %S" a.Cq.pred))
      atoms
  in
  let interner = Db.interner db in
  let rec go k =
    if k = Array.length atoms then on_solution env
    else begin
      let atom = atoms.(k) and rel = rels.(k) in
      let args = atom.Cq.args in
      let n_args = Array.length args in
      for i = 0 to Qrelation.cardinality rel - 1 do
        (* match the row against the atom, binding fresh variables *)
        let bound = ref [] in
        let ok = ref true in
        let j = ref 0 in
        while !ok && !j < n_args do
          let v = Qrelation.get rel i !j in
          (match args.(!j) with
          | Cq.Const c ->
              if
                match Intern.find interner c with
                | Some cv -> cv <> v
                | None -> true
              then ok := false
          | Cq.Var name ->
              let id = Hashtbl.find var_id name in
              if env.(id) = -1 then begin
                env.(id) <- v;
                bound := id :: !bound
              end
              else if env.(id) <> v then ok := false);
          incr j
        done;
        if !ok then go (k + 1);
        List.iter (fun id -> env.(id) <- -1) !bound
      done
    end
  in
  go 0

let head_ids q =
  let vars = Cq.variables q in
  let var_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add var_id v i) vars;
  Array.map (fun v -> Hashtbl.find var_id v) q.Cq.head

let distinct_answers db q =
  let head = head_ids q in
  let seen = Hashtbl.create 64 in
  solve db q ~on_solution:(fun env ->
      let proj = Array.map (fun id -> env.(id)) head in
      if not (Hashtbl.mem seen proj) then Hashtbl.add seen proj ());
  Hashtbl.fold (fun proj () acc -> proj :: acc) seen []

let answers db q = List.map (Db.decode db) (distinct_answers db q)

let count db q = List.length (distinct_answers db q)

let boolean db q =
  try
    solve db q ~on_solution:(fun _ -> raise Witness);
    false
  with Witness -> true
