(** Constant interning: a bijection between the strings appearing in a
    relational instance and dense integer ids.

    Every constant a database or query mentions is interned exactly
    once; relations then store and compare plain [int]s, so tuple
    hashing, joins and semijoins never touch string data on the hot
    path.  Ids are dense ([0 .. size - 1]) in first-interning order. *)

type t

val create : unit -> t

(** [intern t s] is the id of [s], allocating the next free id on first
    sight. *)
val intern : t -> string -> int

(** [find t s] is [Some id] when [s] has been interned. *)
val find : t -> string -> int option

(** [name t id] is the string interned as [id].
    @raise Invalid_argument on an unallocated id. *)
val name : t -> int -> string

(** [size t] is the number of interned constants. *)
val size : t -> int
