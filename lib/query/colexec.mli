(** Vector-at-a-time columnar execution kernel for the query path.

    The row-at-a-time Yannakakis engine pays, per probed tuple, one
    boxed [int array] key allocation, one structural hash of it, and —
    after every semijoin — a full re-materialisation of the surviving
    relation (dropping its cached indexes).  This module replaces all
    of that on the hot path:

    - {b selection vectors}: a semijoin pass returns the surviving row
      ids of the {e unchanged} base relation ([int array], ascending) —
      no intermediate relation is ever materialised;
    - {b radix partitioning}: the build side is scattered into
      power-of-two hash buckets by counting sort; probes compute one
      integer hash over the key columns, skip empty buckets outright,
      and verify candidates against the actual column values (collision
      -safe, zero allocation per probe);
    - {b late materialisation}: enumeration walks selection vectors
      through chained int-hash {!Index}es and reads output values
      column-wise only when a full solution is emitted.

    Counters: [query.selvec_semijoins], [query.selvec_kept_rows],
    [query.radix_partitions], [query.radix_probes],
    [query.radix_bucket_skips], [query.radix_join_tuples].  The
    retained row engine counts its probes under [query.hash_probes],
    which is what the bench compares against. *)

(** A selection vector: row ids of a base relation, ascending. *)
type sel = int array

(** [all_rows r] selects every row of [r]. *)
val all_rows : Qrelation.t -> sel

(** [semijoin ?par ~probe:(a, sa, pa) ~build:(b, sb, pb) ()] is the
    selection of [sa]'s rows whose values at columns [pa] match some
    [sb] row of [b] at columns [pb].  [pa] and [pb] must list the
    shared attributes in the same order.  The build side is
    radix-partitioned once; probing allocates nothing per row.

    With [par] the probe side is scanned in parallel chunks on the
    scheduler.  Chunk boundaries depend only on the probe count and
    {!set_grain}, and chunk outputs concatenate in chunk order, so the
    result is byte-identical to the sequential scan at any worker
    count. *)
val semijoin :
  ?par:Hd_parallel.Scheduler.t ->
  probe:Qrelation.t * sel * int array ->
  build:Qrelation.t * sel * int array ->
  unit ->
  sel

(** [join_project ?par rels ~scope] is the natural join of [rels]
    projected (with dedup) onto [scope] — bag materialisation.  Joins
    are radix-partitioned hash joins building columnar intermediates;
    the projection dedups through an open chained int-hash, never
    boxing a key.  [par] parallelises the probe and column-gather
    loops exactly as in {!semijoin} (the dedup projection stays
    sequential — its chained hash is order-sensitive).
    @raise Invalid_argument on an empty relation list;
    @raise Not_found when [scope] mentions an attribute absent from
    every relation. *)
val join_project :
  ?par:Hd_parallel.Scheduler.t ->
  Qrelation.t list ->
  scope:int array ->
  Qrelation.t

(** [set_grain g] sets the minimum per-chunk probe count for the
    parallel paths (default 2048); tests lower it to force multi-chunk
    runs on small inputs. *)
val set_grain : int -> unit

val default_grain : int

(** Chained int-hash index over a selection, keyed on a column subset:
    the backbone of backtrack-free enumeration over selection
    vectors. *)
module Index : sig
  type t

  (** [build r ~pos ~sel] indexes the rows of [sel] on columns [pos].
      Each chain lists row ids in selection order. *)
  val build : Qrelation.t -> pos:int array -> sel:sel -> t

  (** [iter t key f] calls [f row_id] for every indexed row whose key
      columns equal [key] (length must match [pos]).  Zero allocation;
      callers reuse a scratch key buffer across probes. *)
  val iter : t -> int array -> (int -> unit) -> unit
end

(** Keyed weight aggregation for counting without materialisation:
    distinct shared keys of a child's surviving rows with the summed
    weight of the rows carrying each. *)
module Keysum : sig
  type t

  (** [build r ~pos ~sel ~weights] groups [sel]'s rows by their values
      at [pos]; [weights.(s)] is the weight of the row at selection
      slot [s]. *)
  val build : Qrelation.t -> pos:int array -> sel:sel -> weights:int array -> t

  (** [find t key] is the accumulated weight of the rows keyed [key],
      or [0] when none. *)
  val find : t -> int array -> int
end
