(** Brute-force CQ evaluation: backtracking over the body atoms in
    query order, scanning each base table for tuples consistent with
    the partial assignment.  Exponential in general — this is the
    correctness oracle {!Yannakakis} is tested and benchmarked
    against, not a practical evaluator. *)

(** [answers db q] is the set of distinct answers (decoded constant
    tuples over the head variables), in an unspecified order. *)
val answers : Db.t -> Cq.t -> string array list

(** [count db q] is the number of distinct answers. *)
val count : Db.t -> Cq.t -> int

(** [boolean db q] holds when [q] has at least one answer (early
    exit on the first witness). *)
val boolean : Db.t -> Cq.t -> bool
