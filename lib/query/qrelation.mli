(** Columnar finite relations for query answering.

    A [Qrelation.t] pairs a scope — an array of distinct attribute ids
    (query-variable ids, or column numbers [0 .. k-1] for base tables)
    — with a deduplicated set of integer tuples stored column-wise.
    All values are interned constants ({!Intern}), so comparisons are
    integer comparisons.

    The module keeps {e hash indexes on attribute subsets}: an index
    maps the tuple of values at a position subset to the matching row
    ids, is built once on demand and cached on the relation, and backs
    {!join}, {!semijoin} and the Yannakakis enumeration — replacing the
    scan-based joins of the CSP layer's list relations on the query
    path.  Relations are immutable apart from that cache. *)

type t

(** [make ~scope rows] deduplicates [rows] (first occurrence kept, order
    preserved).
    @raise Invalid_argument on arity mismatch or duplicate scope
    attributes. *)
val make : scope:int array -> int array list -> t

(** [of_columns_unchecked ~scope cols ~n] wraps already-columnar data:
    [cols.(j).(i)] is row [i], column [j], rows assumed distinct,
    every column of length [n], [scope] assumed duplicate-free.  The
    columnar kernel's ({!Colexec}) materialisation entry point — the
    arrays are adopted, not copied, and must not be mutated after. *)
val of_columns_unchecked : scope:int array -> int array array -> n:int -> t

val scope : t -> int array
val arity : t -> int
val cardinality : t -> int
val is_empty : t -> bool

(** [get r i j] is column [j] of row [i]. *)
val get : t -> int -> int -> int

(** [col r j] is column [j]'s backing array — flat access for the
    columnar kernel.  Do not mutate. *)
val col : t -> int -> int array

(** [columns r] is the full column-major storage.  Do not mutate. *)
val columns : t -> int array array

(** [row r i] is row [i] as a fresh array. *)
val row : t -> int -> int array

(** [rows r] lists all rows in their stable stored order. *)
val rows : t -> int array list

val mem : t -> int array -> bool

(** [position r attr] is [attr]'s column.
    @raise Not_found when [attr] is outside the scope. *)
val position : t -> int -> int

(** [positions r attrs] maps {!position} over [attrs]. *)
val positions : t -> int array -> int array

(** [index_on r positions] is the hash index of [r] on the given column
    subset: the key [Array.map (fun p -> get r i p) positions] maps to
    every matching row id [i] (ascending).  Indexes are cached per
    position subset; do not mutate the returned table. *)
val index_on : t -> int array -> (int array, int list) Hashtbl.t

(** [matching r ~on key] lists the rows of [r] whose values at columns
    [on] equal [key], via {!index_on}. *)
val matching : t -> on:int array -> int array -> int list

(** [join a b] is the natural join on the shared attributes; its scope
    is [a]'s attributes followed by [b]'s private ones.  Hash join:
    [b] is indexed on the shared columns and [a]'s rows probe it. *)
val join : t -> t -> t

(** [semijoin a b] keeps the rows of [a] with at least one match in [b]
    on the shared attributes.  With disjoint scopes this is [a] itself
    when [b] is non-empty, and the empty relation otherwise. *)
val semijoin : t -> t -> t

(** [project r attrs] projects (with deduplication) onto [attrs]. *)
val project : t -> int array -> t

(** [select_eq r ~attr ~value] keeps rows assigning [value] to
    [attr]. *)
val select_eq : t -> attr:int -> value:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
