(** Exact fractional edge covers.

    Relaxing the set cover integrality gives the fractional cover
    number rho*(bag): assign a weight in [0, 1] to every hyperedge so
    each bag vertex receives total weight at least 1, minimising the
    weight sum.  Replacing exact covers with rho* in the width of an
    ordering yields the fractional hypertree width, the third width
    measure of the hypertree decomposition literature, with
    fhw <= ghw <= hw.

    All values are exact rationals computed by {!Hd_lp.Simplex}; no
    float ever enters a decision path.  Counter: [lp.oracle_calls]. *)

(** [cover_value problem] is rho* of the bag, the exact optimum of the
    covering LP.
    @raise Invalid_argument when some bag vertex lies in no
    hyperedge. *)
val cover_value : Set_cover.problem -> Hd_lp.Rat.t

(** [cover problem] also returns the per-hyperedge weights (paired
    with hyperedge indices; only candidates with positive weight
    appear). *)
val cover : Set_cover.problem -> Hd_lp.Rat.t * (int * Hd_lp.Rat.t) list

(** [verify problem weights] checks, in exact arithmetic, that
    [weights] is a feasible fractional cover: every weight is
    non-negative and every universe vertex receives total weight at
    least 1.  Used by [hd_validate] to audit witnesses. *)
val verify : Set_cover.problem -> (int * Hd_lp.Rat.t) list -> bool
