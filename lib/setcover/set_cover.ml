module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Obs = Hd_obs.Obs

(* Observability: set-cover calls dominate the cost of the ghw
   searches, and the memo table is their main accelerator. *)
let c_greedy_calls = Obs.Counter.make "setcover.greedy_calls"
let c_exact_calls = Obs.Counter.make "setcover.exact_calls"
let c_memo_hits = Obs.Counter.make "setcover.memo_hits"
let c_memo_misses = Obs.Counter.make "setcover.memo_misses"

type problem = { universe : Bitset.t; hypergraph : Hypergraph.t }

(* Hyperedges that can contribute to the cover: those meeting the
   universe.  Collected through the incidence lists so sparse bags stay
   cheap. *)
let candidate_edges problem =
  let seen = Hashtbl.create 16 in
  Bitset.fold
    (fun v acc ->
      List.fold_left
        (fun acc e ->
          if Hashtbl.mem seen e then acc
          else begin
            Hashtbl.add seen e ();
            e :: acc
          end)
        acc
        (Hypergraph.incident problem.hypergraph v))
    problem.universe []

let check_coverable problem =
  Bitset.iter
    (fun v ->
      if Hypergraph.incident problem.hypergraph v = [] then
        invalid_arg
          (Printf.sprintf "Set_cover: vertex %d lies in no hyperedge" v))
    problem.universe

let covered_count problem edge uncovered =
  let count = ref 0 in
  Array.iter
    (fun v -> if Bitset.mem uncovered v then incr count)
    (Hypergraph.edge problem.hypergraph edge);
  !count

let greedy ?rng problem =
  Obs.Counter.incr c_greedy_calls;
  check_coverable problem;
  let uncovered = Bitset.copy problem.universe in
  let candidates = candidate_edges problem in
  let chosen = ref [] in
  while not (Bitset.is_empty uncovered) do
    let best_gain = ref 0 and ties = ref 0 and pick = ref (-1) in
    List.iter
      (fun e ->
        let gain = covered_count problem e uncovered in
        if gain > !best_gain then begin
          best_gain := gain;
          ties := 1;
          pick := e
        end
        else if gain = !best_gain && gain > 0 then begin
          incr ties;
          match rng with
          | Some rng -> if Random.State.int rng !ties = 0 then pick := e
          | None -> ()
        end)
      candidates;
    assert (!pick >= 0);
    chosen := !pick :: !chosen;
    Array.iter
      (fun v -> if Bitset.mem uncovered v then Bitset.remove uncovered v)
      (Hypergraph.edge problem.hypergraph !pick)
  done;
  List.rev !chosen

let greedy_size ?rng problem = List.length (greedy ?rng problem)

let cover_size_lower_bound ~universe_size ~max_set_size =
  if universe_size = 0 then 0
  else (universe_size + max_set_size - 1) / max_set_size

let is_cover problem chosen =
  let covered = Bitset.create (Bitset.capacity problem.universe) in
  List.iter
    (fun e ->
      Array.iter (Bitset.add covered) (Hypergraph.edge problem.hypergraph e))
    chosen;
  Bitset.subset problem.universe covered

(* Exact cover by depth-first branch and bound: branch on the uncovered
   vertex contained in the fewest candidate hyperedges (fail-first), try
   each hyperedge containing it, prune with the k-set-cover bound. *)
let exact ?ub problem =
  Obs.Counter.incr c_exact_calls;
  check_coverable problem;
  let h = problem.hypergraph in
  let greedy_cover = greedy problem in
  let best = ref (Array.of_list greedy_cover) in
  let best_size = ref (List.length greedy_cover) in
  let limit = match ub with None -> !best_size | Some u -> min u !best_size in
  let cutoff = ref limit in
  let candidates = candidate_edges problem in
  let uncovered = Bitset.copy problem.universe in
  let chosen = ref [] in
  let rec branch depth =
    if Bitset.is_empty uncovered then begin
      if depth < !cutoff then begin
        best := Array.of_list !chosen;
        best_size := depth;
        cutoff := depth
      end
    end
    else
      let remaining = Bitset.cardinal uncovered in
      (* every further set covers at most the best gain any candidate
         still offers — much sharper than the static max-edge-size bound
         once the leftover vertices are scattered *)
      let max_gain =
        List.fold_left
          (fun acc e -> max acc (covered_count problem e uncovered))
          1 candidates
      in
      let lb =
        cover_size_lower_bound ~universe_size:remaining ~max_set_size:max_gain
      in
      if depth + lb < !cutoff then begin
        (* fail-first: pick the uncovered vertex with fewest options *)
        let pivot = ref (-1) and pivot_options = ref max_int in
        Bitset.iter
          (fun v ->
            let options = List.length (Hypergraph.incident h v) in
            if options < !pivot_options then begin
              pivot := v;
              pivot_options := options
            end)
          uncovered;
        (* try the pivot's hyperedges best-gain first: the greedy-like
           branch tightens the cutoff early and prunes the rest *)
        let ranked =
          Hypergraph.incident h !pivot
          |> List.map (fun e -> (-covered_count problem e uncovered, e))
          |> List.sort compare
        in
        List.iter
          (fun (neg_gain, e) ->
            if -neg_gain > 0 then begin
              let newly =
                Array.to_list (Hypergraph.edge h e)
                |> List.filter (Bitset.mem uncovered)
              in
              List.iter (Bitset.remove uncovered) newly;
              chosen := e :: !chosen;
              branch (depth + 1);
              chosen := List.tl !chosen;
              List.iter (Bitset.add uncovered) newly
            end)
          ranked
      end
  in
  branch 0;
  Array.to_list !best

let exact_size ?cache ?ub problem =
  match cache with
  | None -> List.length (exact ?ub problem)
  | Some table -> (
      match Hashtbl.find_opt table problem.universe with
      | Some size ->
          Obs.Counter.incr c_memo_hits;
          size
      | None ->
          Obs.Counter.incr c_memo_misses;
          (* only unbounded results are true optima; caching a
             [ub]-truncated result would poison later queries *)
          let size = List.length (exact problem) in
          ignore ub;
          Hashtbl.add table (Bitset.copy problem.universe) size;
          size)
