module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Rat = Hd_lp.Rat
module Obs = Hd_obs.Obs

let c_oracle = Obs.Counter.make "lp.oracle_calls"

let candidate_edges { Set_cover.universe; hypergraph } =
  Bitset.iter
    (fun v ->
      if Hypergraph.incident hypergraph v = [] then
        invalid_arg "Fractional.cover: vertex lies in no hyperedge")
    universe;
  let vertices = Bitset.elements universe in
  let seen = Hashtbl.create 16 in
  let candidates =
    List.concat_map (fun v -> Hypergraph.incident hypergraph v) vertices
    |> List.filter (fun e ->
           if Hashtbl.mem seen e then false
           else begin
             Hashtbl.add seen e ();
             true
           end)
    |> Array.of_list
  in
  (vertices, candidates)

let cover problem =
  Obs.Counter.incr c_oracle;
  let { Set_cover.hypergraph; _ } = problem in
  let vertices, candidates = candidate_edges problem in
  if vertices = [] then (Rat.zero, [])
  else begin
    let n = Array.length candidates in
    let m = List.length vertices in
    let constraints =
      Array.of_list
        (List.map
           (fun v ->
             Array.map
               (fun e ->
                 if Array.exists (( = ) v) (Hypergraph.edge hypergraph e) then
                   Rat.one
                 else Rat.zero)
               candidates)
           vertices)
    in
    match
      Hd_lp.Simplex.minimize
        ~objective:(Array.make n Rat.one)
        ~constraints
        ~bounds:(Array.make m Rat.one)
    with
    | Hd_lp.Simplex.Optimal { value; solution } ->
        let weights =
          Array.to_list (Array.mapi (fun j e -> (e, solution.(j))) candidates)
          |> List.filter (fun (_, w) -> Rat.sign w > 0)
        in
        (value, weights)
    | Hd_lp.Simplex.Infeasible | Hd_lp.Simplex.Unbounded ->
        (* cannot happen: weight 1 on every candidate is feasible and
           the objective is bounded below by 0 *)
        assert false
  end

let cover_value problem = fst (cover problem)

let verify { Set_cover.universe; hypergraph } weights =
  List.for_all (fun (_, w) -> Rat.sign w >= 0) weights
  && Bitset.for_all
       (fun v ->
         let received =
           List.fold_left
             (fun acc (e, w) ->
               if Array.exists (( = ) v) (Hypergraph.edge hypergraph e) then
                 Rat.add acc w
               else acc)
             Rat.zero weights
         in
         Rat.compare_int received 1 >= 0)
       universe
