(* Exact two-phase primal simplex over dense Rat tableaus.

   Minimises c.x subject to A x >= b, x >= 0 — the shape of the
   fractional-edge-cover LP (one >= 1 row per vertex of a bag, one
   column per candidate hyperedge).  Both the entering and the leaving
   choice follow Bland's smallest-index rule, so the method terminates
   on every input without any perturbation; all zero tests are exact,
   so the reported optimum is the true rational optimum, not a
   float-epsilon approximation. *)

module Obs = Hd_obs.Obs

let c_solves = Obs.Counter.make "lp.solves"
let c_pivots = Obs.Counter.make "lp.pivots"

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

(* Tableau layout: [m] constraint rows and one objective row (last);
   columns are the structural variables, surplus variables, artificial
   variables, and the right-hand side (last).  [basis.(row)] is the
   variable currently basic in that row. *)
type tableau = {
  rows : Rat.t array array;
  basis : int array;
  m : int;
  cols : int; (* total variable columns, excluding the rhs *)
}

let pivot t ~row ~col =
  Obs.Counter.incr c_pivots;
  let width = t.cols + 1 in
  let scale = t.rows.(row).(col) in
  for j = 0 to width - 1 do
    t.rows.(row).(j) <- Rat.div t.rows.(row).(j) scale
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let factor = t.rows.(i).(col) in
      if Rat.sign factor <> 0 then
        for j = 0 to width - 1 do
          t.rows.(i).(j) <-
            Rat.sub t.rows.(i).(j) (Rat.mul factor t.rows.(row).(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering variable = smallest index with negative
   reduced cost; leaving row = exact minimum ratio, ties broken by the
   smallest basic-variable index.  Guarantees termination. *)
let rec iterate t ~allowed =
  let objective = t.rows.(t.m) in
  let entering = ref (-1) in
  (try
     for j = 0 to t.cols - 1 do
       if allowed j && Rat.sign objective.(j) < 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let best_row = ref (-1) and best_ratio = ref Rat.zero in
    for i = 0 to t.m - 1 do
      let coeff = t.rows.(i).(col) in
      if Rat.sign coeff > 0 then begin
        let ratio = Rat.div t.rows.(i).(t.cols) coeff in
        let better =
          !best_row < 0
          ||
          let c = Rat.compare ratio !best_ratio in
          c < 0 || (c = 0 && t.basis.(i) < t.basis.(!best_row))
        in
        if better then begin
          best_ratio := ratio;
          best_row := i
        end
      end
    done;
    if !best_row < 0 then `Unbounded
    else begin
      pivot t ~row:!best_row ~col;
      iterate t ~allowed
    end
  end

let minimize ~objective ~constraints ~bounds =
  Obs.Counter.incr c_solves;
  let m = Array.length constraints in
  let n = Array.length objective in
  if Array.length bounds <> m then
    invalid_arg "Simplex.minimize: bounds length mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Simplex.minimize: constraint arity mismatch")
    constraints;
  Array.iter
    (fun b ->
      if Rat.sign b < 0 then invalid_arg "Simplex.minimize: negative bound")
    bounds;
  (* columns: n structural, m surplus, m artificial *)
  let cols = n + m + m in
  let rows = Array.make_matrix (m + 1) (cols + 1) Rat.zero in
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      rows.(i).(j) <- constraints.(i).(j)
    done;
    rows.(i).(n + i) <- Rat.of_int (-1);
    (* surplus *)
    rows.(i).(n + m + i) <- Rat.one;
    (* artificial *)
    rows.(i).(cols) <- bounds.(i);
    basis.(i) <- n + m + i
  done;
  let t = { rows; basis; m; cols } in
  (* phase 1: minimise the sum of artificials.  The objective row must
     be expressed over the current (artificial) basis: subtract each
     constraint row. *)
  for j = 0 to cols do
    let s = ref Rat.zero in
    for i = 0 to m - 1 do
      s := Rat.add !s rows.(i).(j)
    done;
    rows.(m).(j) <-
      (if j >= n + m && j < cols then Rat.sub Rat.one !s else Rat.neg !s)
  done;
  (match iterate t ~allowed:(fun _ -> true) with
  | `Unbounded -> assert false (* phase 1 is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = Rat.neg rows.(m).(cols) in
  if Rat.sign phase1_value > 0 then Infeasible
  else begin
    (* drive any residual artificial variables out of the basis *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= n + m then begin
        let found = ref false in
        for j = 0 to n + m - 1 do
          if (not !found) && Rat.sign rows.(i).(j) <> 0 then begin
            pivot t ~row:i ~col:j;
            found := true
          end
        done
        (* a row with no pivotable column is all-zero: redundant *)
      end
    done;
    (* phase 2 objective over the current basis *)
    for j = 0 to cols do
      rows.(m).(j) <- (if j < n then objective.(j) else Rat.zero)
    done;
    rows.(m).(cols) <- Rat.zero;
    for i = 0 to m - 1 do
      let b = t.basis.(i) in
      if b < n then begin
        let factor = rows.(m).(b) in
        if Rat.sign factor <> 0 then
          for j = 0 to cols do
            rows.(m).(j) <- Rat.sub rows.(m).(j) (Rat.mul factor rows.(i).(j))
          done
      end
    done;
    let artificial_banned j = j < n + m in
    match iterate t ~allowed:artificial_banned with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n Rat.zero in
        for i = 0 to m - 1 do
          if t.basis.(i) < n then solution.(t.basis.(i)) <- rows.(i).(cols)
        done;
        let value = ref Rat.zero in
        for j = 0 to n - 1 do
          value := Rat.add !value (Rat.mul objective.(j) solution.(j))
        done;
        Optimal { value = !value; solution }
  end
