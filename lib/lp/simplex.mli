(** Exact rational linear programming.

    A dense two-phase primal simplex over {!Rat} tableaus, specialised
    to the covering shape [min c.x  s.t.  A x >= b, x >= 0].  Entering
    and leaving variables both follow Bland's smallest-index rule, so
    the method terminates on every input (no cycling, no
    perturbation); all arithmetic is exact, so [Optimal] carries the
    true rational optimum.  This is the fractional-edge-cover oracle
    behind the [fhw-*] solvers (see {e docs/WIDTHS.md}).

    Counters: [lp.solves], [lp.pivots]. *)

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

(** [minimize ~objective ~constraints ~bounds] solves
    [min objective . x] subject to [constraints.(i) . x >= bounds.(i)]
    for every row [i] and [x >= 0].
    @raise Invalid_argument on mismatched dimensions or a negative
    bound. *)
val minimize :
  objective:Rat.t array ->
  constraints:Rat.t array array ->
  bounds:Rat.t array ->
  outcome
