(** Arbitrary-precision signed integers.

    The integer kernel under {!Rat}: sign-plus-magnitude numbers in
    base [2^30] limbs, implemented on native ints with no external
    dependency.  Only the operations exact rational arithmetic needs
    are exposed — ring operations, comparison, division with
    remainder, gcd, and conversions. *)

type t

val zero : t
val one : t

val of_int : int -> t

(** [to_int_opt v] is [v] as a native int when it fits, else [None]. *)
val to_int_opt : t -> int option

val is_zero : t -> bool

(** [sign v] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is the truncated quotient and remainder: the quotient
    rounds toward zero and the remainder carries the sign of [a],
    matching [Stdlib.( / )] and [Stdlib.( mod )].
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0]
    is [0]. *)
val gcd : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [to_float v] is the nearest float — display only, never used on a
    decision path. *)
val to_float : t -> float

(** [to_string v] is the decimal representation. *)
val to_string : t -> string

(** [of_string s] parses an optionally signed decimal integer.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val hash : t -> int
val pp : Format.formatter -> t -> unit
