(* Arbitrary-precision signed integers: sign + little-endian magnitude
   in base 2^30.  Limbs are OCaml ints, so every intermediate product
   (limb * limb + two carries < 2^61) stays inside the native 63-bit
   range — no boxing, no external dependency.  The operation set is
   exactly what exact rational arithmetic needs: ring ops, comparison,
   divmod (for gcd and floor/ceil) and decimal conversion. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

(* invariants: [mag] has no high (trailing) zero limbs; [sign] is -1, 0
   or 1, and 0 exactly when [mag] is empty *)
type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }

(* --- magnitude helpers (arrays may carry high zeros on input) --- *)

let effective_length m =
  let l = ref (Array.length m) in
  while !l > 0 && m.(!l - 1) = 0 do
    decr l
  done;
  !l

let norm_mag m =
  let l = effective_length m in
  if l = Array.length m then m else Array.sub m 0 l

let cmp_mag a b =
  let la = effective_length a and lb = effective_length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let cur =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- cur land limb_mask;
    carry := cur lsr limb_bits
  done;
  norm_mag r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let cur = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if cur < 0 then begin
      r.(i) <- cur + base;
      borrow := 1
    end
    else begin
      r.(i) <- cur;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  norm_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = r.(!k) + !carry in
          r.(!k) <- cur land limb_mask;
          carry := cur lsr limb_bits;
          incr k
        done
      end
    done;
    norm_mag r
  end

let bit_length m =
  let l = effective_length m in
  if l = 0 then 0
  else begin
    let top = m.(l - 1) in
    let bits = ref 0 in
    let v = ref top in
    while !v > 0 do
      incr bits;
      v := !v lsr 1
    done;
    ((l - 1) * limb_bits) + !bits
  end

let bit m i =
  let limb = i / limb_bits in
  if limb >= Array.length m then false
  else m.(limb) land (1 lsl (i mod limb_bits)) <> 0

(* shift-subtract long division on magnitudes: O(bits(n) * limbs(d)).
   The numbers flowing through rational pivoting stay small (every Rat
   is gcd-normalised), so the simple algorithm wins over Knuth D. *)
let divmod_mag n d =
  let ld = effective_length d in
  if ld = 0 then raise Division_by_zero;
  if cmp_mag n d < 0 then ([||], norm_mag (Array.copy n))
  else begin
    let nbits = bit_length n in
    let q = Array.make (Array.length n) 0 in
    (* remainder stays < d, so ld + 1 limbs suffice for the doubled
       intermediate *)
    let r = Array.make (ld + 1) 0 in
    for i = nbits - 1 downto 0 do
      (* r := 2r + bit_i(n) *)
      let carry = ref (if bit n i then 1 else 0) in
      for j = 0 to ld do
        let cur = (r.(j) lsl 1) lor !carry in
        r.(j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      if cmp_mag r d >= 0 then begin
        (* r := r - d *)
        let borrow = ref 0 in
        for j = 0 to ld do
          let cur = r.(j) - (if j < ld then d.(j) else 0) - !borrow in
          if cur < 0 then begin
            r.(j) <- cur + base;
            borrow := 1
          end
          else begin
            r.(j) <- cur;
            borrow := 0
          end
        done;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (norm_mag q, norm_mag r)
  end

(* --- signed interface --- *)

let of_mag sign m = if Array.length m = 0 then zero else { sign; mag = m }

let of_int v =
  if v = 0 then zero
  else begin
    (* via Int64 so [abs min_int] cannot overflow *)
    let sign = if v < 0 then -1 else 1 in
    let m = ref (Int64.abs (Int64.of_int v)) in
    let limbs = ref [] in
    while Int64.compare !m 0L > 0 do
      limbs := Int64.to_int (Int64.logand !m (Int64.of_int limb_mask)) :: !limbs;
      m := Int64.shift_right_logical !m limb_bits
    done;
    { sign; mag = Array.of_list (List.rev !limbs) }
  end

let to_int_opt v =
  (* fits when the magnitude is below 2^62 *)
  if bit_length v.mag > 62 then None
  else begin
    let acc = ref 0 in
    for i = Array.length v.mag - 1 downto 0 do
      acc := (!acc lsl limb_bits) lor v.mag.(i)
    done;
    if !acc < 0 then None else Some (v.sign * !acc)
  end

let is_zero v = v.sign = 0
let sign v = v.sign
let neg v = { v with sign = -v.sign }
let abs v = { v with sign = Stdlib.abs v.sign }
let equal a b = a.sign = b.sign && cmp_mag a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * cmp_mag a.mag b.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = add_mag a.mag b.mag }
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = sub_mag a.mag b.mag }
    else { sign = b.sign; mag = sub_mag b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mul_mag a.mag b.mag }

(* truncated division: quotient rounds toward zero, remainder carries
   the dividend's sign — the C convention, matching [Stdlib.( / )] *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = divmod_mag a.mag b.mag in
  (of_mag (a.sign * b.sign) q, of_mag a.sign r)

let gcd a b =
  let rec go a b = if Array.length b = 0 then a else go b (snd (divmod_mag a b)) in
  let m = go (norm_mag a.mag) (norm_mag b.mag) in
  of_mag (if Array.length m = 0 then 0 else 1) m

let to_float v =
  let acc = ref 0.0 in
  for i = Array.length v.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int v.mag.(i)
  done;
  float_of_int v.sign *. !acc

let to_string v =
  if v.sign = 0 then "0"
  else begin
    (* peel 9 decimal digits at a time with small-divisor division *)
    let d = 1_000_000_000 in
    let chunks = ref [] in
    let m = ref (Array.copy v.mag) in
    while effective_length !m > 0 do
      let cur = !m in
      let l = effective_length cur in
      let q = Array.make l 0 in
      let r = ref 0 in
      for i = l - 1 downto 0 do
        let x = (!r lsl limb_bits) lor cur.(i) in
        q.(i) <- x / d;
        r := x mod d
      done;
      chunks := !r :: !chunks;
      m := norm_mag q
    done;
    let buf = Buffer.create 16 in
    if v.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let ten = of_int 10 in
  let acc = ref zero in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' ->
        acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
  done;
  if negative then neg !acc else !acc

let hash v =
  Array.fold_left (fun acc limb -> (acc * 1_000_003) + limb) v.sign v.mag
  land max_int

let pp ppf v = Format.pp_print_string ppf (to_string v)
