(* Exact rational numbers over Bigint, always normalised: positive
   denominator, gcd(|num|, den) = 1, zero represented as 0/1.  Every
   comparison is exact cross-multiplication — no float ever enters a
   decision path built on this module. *)

type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let make_big num den =
  let s = Bigint.sign den in
  if s = 0 then invalid_arg "Rat.make: zero denominator";
  let num, den = if s < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
  if Bigint.is_zero num then zero
  else begin
    let g = Bigint.gcd num den in
    let num, _ = Bigint.divmod num g in
    let den, _ = Bigint.divmod den g in
    { num; den }
  end

let make num den = make_big (Bigint.of_int num) (Bigint.of_int den)
let of_int v = { num = Bigint.of_int v; den = Bigint.one }
let num v = v.num
let den v = v.den
let is_integer v = Bigint.equal v.den Bigint.one
let sign v = Bigint.sign v.num
let neg v = { v with num = Bigint.neg v.num }

let add a b =
  make_big
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make_big (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv v =
  if Bigint.is_zero v.num then raise Division_by_zero;
  make_big v.den v.num

let div a b = mul a (inv b)

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let compare_int v k = compare v (of_int k)

(* floor for a positive-denominator fraction: truncated division is
   floor for non-negative numerators; negative numerators with a
   remainder round one further down *)
let floor_big v =
  let q, r = Bigint.divmod v.num v.den in
  if Bigint.sign v.num >= 0 || Bigint.is_zero r then q
  else Bigint.sub q Bigint.one

let ceil_big v = Bigint.neg (floor_big (neg v))

let to_int_exn what big =
  match Bigint.to_int_opt big with
  | Some i -> i
  | None -> invalid_arg (what ^ ": out of native int range")

let floor v = to_int_exn "Rat.floor" (floor_big v)
let ceil v = to_int_exn "Rat.ceil" (ceil_big v)
let to_float v = Bigint.to_float v.num /. Bigint.to_float v.den

let to_string v =
  if is_integer v then Bigint.to_string v.num
  else Bigint.to_string v.num ^ "/" ^ Bigint.to_string v.den

let of_string s =
  match String.index_opt s '/' with
  | None -> make_big (Bigint.of_string (String.trim s)) Bigint.one
  | Some i ->
      make_big
        (Bigint.of_string (String.trim (String.sub s 0 i)))
        (Bigint.of_string
           (String.trim (String.sub s (i + 1) (String.length s - i - 1))))

let hash v = (Bigint.hash v.num * 31) + Bigint.hash v.den
let pp ppf v = Format.pp_print_string ppf (to_string v)
