(** Exact arbitrary-precision rational numbers.

    The value type of the LP layer: every {!Simplex} tableau entry and
    every fractional cover weight is a [Rat.t], so optimality decisions
    are made by exact integer cross-multiplication, never by float
    comparison against an epsilon.  Values are kept normalised
    (positive denominator, coprime parts), which also keeps the
    underlying {!Bigint}s small through long pivot sequences. *)

type t

val zero : t
val one : t

(** [make num den] is the normalised rational [num/den].
    @raise Invalid_argument when [den = 0]. *)
val make : int -> int -> t

(** [make_big num den] is {!make} over arbitrary-precision parts. *)
val make_big : Bigint.t -> Bigint.t -> t

val of_int : int -> t

(** Normalised numerator (sign-carrying). *)
val num : t -> Bigint.t

(** Normalised denominator (always positive). *)
val den : t -> Bigint.t

val is_integer : t -> bool

(** [sign v] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when the divisor is zero. *)
val div : t -> t -> t

(** [inv v] is [1/v].  @raise Division_by_zero when [v] is zero. *)
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** [compare_int v k] is [compare v (of_int k)]. *)
val compare_int : t -> int -> int

(** [floor v] / [ceil v] as native ints.
    @raise Invalid_argument when the result exceeds the native range. *)
val floor : t -> int

val ceil : t -> int

(** Nearest float — display and reporting only, never a decision. *)
val to_float : t -> float

(** ["num/den"], or just ["num"] for integers. *)
val to_string : t -> string

(** Parses ["3"], ["3/2"], ["-7/5"] …
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val hash : t -> int
val pp : Format.formatter -> t -> unit
