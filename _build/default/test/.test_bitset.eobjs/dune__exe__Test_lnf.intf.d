test/test_lnf.mli:
