test/test_bitset.ml: Alcotest Hd_graph List QCheck QCheck_alcotest
