test/test_setcover.mli:
