test/test_hypergraph.ml: Alcotest Fun Hd_graph Hd_hypergraph List QCheck QCheck_alcotest Random
