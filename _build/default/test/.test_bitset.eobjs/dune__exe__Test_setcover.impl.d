test/test_setcover.ml: Alcotest Array Fun Hashtbl Hd_graph Hd_hypergraph Hd_setcover List QCheck QCheck_alcotest Random
