test/test_core.ml: Alcotest Fun Hd_core Hd_graph Hd_hypergraph List QCheck QCheck_alcotest Random String
