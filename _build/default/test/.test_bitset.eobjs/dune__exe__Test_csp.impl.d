test/test_csp.ml: Alcotest Array Hd_core Hd_csp Hd_graph List QCheck QCheck_alcotest Random
