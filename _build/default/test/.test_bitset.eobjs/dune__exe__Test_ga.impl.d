test/test_ga.ml: Alcotest Array Hd_core Hd_ga Hd_graph Hd_hypergraph Hd_search List Printf QCheck QCheck_alcotest Random Unix
