test/test_graph.ml: Alcotest Array Hd_graph Hd_search List QCheck QCheck_alcotest Random
