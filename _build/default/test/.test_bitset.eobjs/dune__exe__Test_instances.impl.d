test/test_instances.ml: Alcotest Hd_core Hd_graph Hd_hypergraph Hd_instances Hd_search List Printf Random String
