test/test_lnf.ml: Alcotest Array Fun Hd_core Hd_graph Hd_hypergraph List QCheck QCheck_alcotest Random
