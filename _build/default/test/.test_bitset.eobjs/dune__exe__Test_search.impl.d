test/test_search.ml: Alcotest Array Format Fun Hd_core Hd_graph Hd_hypergraph Hd_search List QCheck QCheck_alcotest Random Unix
