test/test_bounds.ml: Alcotest Fun Hd_bounds Hd_core Hd_graph Hd_hypergraph List QCheck QCheck_alcotest Random
