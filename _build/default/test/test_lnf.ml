(* Tests for Chapter 3: leaf normal form and the
   elimination-ordering search-space theorem. *)

module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Ordering = Hd_core.Ordering
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Eval = Hd_core.Eval
module Lnf = Hd_core.Leaf_normal_form

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let example5 () =
  Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ]

let random_hypergraph rng ~n =
  let m = 1 + Random.State.int rng 6 in
  let edges =
    List.init m (fun _ ->
        List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
  in
  (* connect everything through one covering edge so all vertices are
     covered (required by ordering extraction) *)
  Hypergraph.create ~n (edges @ [ List.init n Fun.id ])

let test_transform_example () =
  let h = example5 () in
  let td = Td.of_ordering_hypergraph h (Ordering.identity 6) in
  let lnf = Lnf.transform h td in
  check "is lnf" true (Lnf.is_leaf_normal_form h lnf);
  check "still a TD" true (Td.valid_for_hypergraph h lnf.Lnf.td);
  (* Theorem 1: every bag of the result is contained in a bag of the
     input *)
  let contained =
    Array.for_all
      (fun i ->
        let b = Td.bag lnf.Lnf.td i in
        Array.exists
          (fun j -> Bitset.subset b (Td.bag td j))
          (Array.init (Td.n_nodes td) Fun.id))
      (Array.init (Td.n_nodes lnf.Lnf.td) Fun.id)
  in
  check "bags contained (Theorem 1)" true contained

let test_single_edge () =
  let h = Hypergraph.create ~n:3 [ [ 0; 1; 2 ] ] in
  let td = Td.of_ordering_hypergraph h (Ordering.identity 3) in
  let lnf = Lnf.transform h td in
  check "single edge lnf" true (Lnf.is_leaf_normal_form h lnf);
  let sigma = Lnf.ordering_of h lnf in
  check "sigma perm" true (Ordering.is_permutation sigma)

let prop_transform_sound =
  QCheck.Test.make ~count:150 ~name:"transform: LNF, valid, bags contained"
    QCheck.(make QCheck.Gen.(pair (2 -- 9) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let h = random_hypergraph rng ~n in
      let td = Td.of_ordering_hypergraph h (Ordering.random rng n) in
      let lnf = Lnf.transform h td in
      Lnf.is_leaf_normal_form h lnf
      && Td.valid_for_hypergraph h lnf.Lnf.td
      && Array.for_all
           (fun i ->
             let b = Td.bag lnf.Lnf.td i in
             Array.exists
               (fun j -> Bitset.subset b (Td.bag td j))
               (Array.init (Td.n_nodes td) Fun.id))
           (Array.init (Td.n_nodes lnf.Lnf.td) Fun.id))

(* Theorem 2, executable: for any GHD, the ordering extracted via leaf
   normal form has width (exact covers) at most the GHD's width. *)
let prop_theorem2 =
  QCheck.Test.make ~count:150 ~name:"Theorem 2: extracted ordering beats GHD"
    QCheck.(make QCheck.Gen.(triple (2 -- 9) int int))
    (fun (n, seed, oseed) ->
      let rng = Random.State.make [| seed; oseed |] in
      let h = random_hypergraph rng ~n in
      (* an arbitrary GHD via a random ordering and exact covers *)
      let ghd = Ghd.of_ordering h (Ordering.random rng n) ~cover:`Exact in
      let sigma = Lnf.ordering_for_ghd h ghd in
      Ordering.is_permutation sigma
      &&
      let ws = Eval.of_hypergraph h in
      Eval.ghw_width_exact ws sigma <= Ghd.width ghd)

(* Lemma 13, executable: every clique produced by eliminating along the
   extracted ordering is contained in some bag of the LNF decomposition. *)
let prop_lemma13 =
  QCheck.Test.make ~count:100 ~name:"Lemma 13: cliques inside LNF bags"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let h = random_hypergraph rng ~n in
      let td0 = Td.of_ordering_hypergraph h (Ordering.random rng n) in
      let lnf = Lnf.transform h td0 in
      let sigma = Lnf.ordering_of h lnf in
      let td = Td.of_ordering_hypergraph h sigma in
      (* the bags of td are exactly cliques(sigma, H) *)
      Array.for_all
        (fun i ->
          let b = Td.bag td i in
          Array.exists
            (fun j -> Bitset.subset b (Td.bag lnf.Lnf.td j))
            (Array.init (Td.n_nodes lnf.Lnf.td) Fun.id))
        (Array.init (Td.n_nodes td) Fun.id))

let test_figure_3_example () =
  (* The Figure 3.2 hypergraph: h1(x1,x2), h2(x2,x3,x4), h3(x4,x5),
     h4(x5,x6), h5(x1,x6).  A 6-cycle-like structure with ghw 2. *)
  let h =
    Hypergraph.create ~n:6 [ [ 0; 1 ]; [ 1; 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 0; 5 ] ]
  in
  let rng = Random.State.make [| 23 |] in
  let td = Td.of_ordering_hypergraph h (Ordering.random rng 6) in
  let lnf = Lnf.transform h td in
  check "figure 3 lnf" true (Lnf.is_leaf_normal_form h lnf);
  check_int "leaves = hyperedges" 5
    (Array.length lnf.Lnf.leaf_of_edge)


let test_uncovered_vertex_rejected () =
  (* vertex 2 lies in no hyperedge: no ordering can be extracted *)
  let h = Hypergraph.create ~n:3 [ [ 0; 1 ] ] in
  let td =
    Td.make
      ~bags:
        [| Hd_graph.Bitset.of_list 3 [ 0; 1; 2 ] |]
      ~parent:[| -1 |]
  in
  let lnf = Lnf.transform h td in
  check "lnf fine" true (Lnf.is_leaf_normal_form h lnf);
  check "uncovered rejected" true
    (try
       ignore (Lnf.ordering_of h lnf);
       false
     with Invalid_argument _ -> true)

let test_not_a_decomposition_rejected () =
  let h = example5 () in
  let bogus =
    Td.make ~bags:[| Hd_graph.Bitset.of_list 6 [ 0; 1 ] |] ~parent:[| -1 |]
  in
  check "transform rejects" true
    (try
       ignore (Lnf.transform h bogus);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "leaf normal form"
    [
      ( "unit",
        [
          Alcotest.test_case "example 5" `Quick test_transform_example;
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "figure 3 hypergraph" `Quick test_figure_3_example;
          Alcotest.test_case "uncovered vertex" `Quick test_uncovered_vertex_rejected;
          Alcotest.test_case "bogus decomposition" `Quick test_not_a_decomposition_rejected;
        ] );
      ( "theorems",
        List.map QCheck_alcotest.to_alcotest
          [ prop_transform_sound; prop_theorem2; prop_lemma13 ] );
    ]
