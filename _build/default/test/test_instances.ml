module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Graphs = Hd_instances.Graphs
module Hypergraphs = Hd_instances.Hypergraphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_queen () =
  let g = Graphs.queen 5 in
  check_int "queen5_5 vertices" 25 (Graph.n g);
  check_int "queen5_5 edges" 160 (Graph.m g);
  (* the DIMACS .col files list each edge in both directions (320 lines) *)
  let g8 = Graphs.queen 8 in
  check_int "queen8_8 edges" 728 (Graph.m g8);
  (* row 0 is a clique of 5 *)
  check "row clique" true (Graph.mem_edge g 0 4);
  check "diagonal" true (Graph.mem_edge g 0 24);
  check "knight move not adjacent" false (Graph.mem_edge g 0 7)

let test_mycielski () =
  (* DIMACS sizes: myciel3 = Groetzsch graph *)
  List.iter
    (fun (k, v, e) ->
      let g = Graphs.mycielski k in
      check_int (Printf.sprintf "myciel%d vertices" k) v (Graph.n g);
      check_int (Printf.sprintf "myciel%d edges" k) e (Graph.m g))
    [ (3, 11, 20); (4, 23, 71); (5, 47, 236); (6, 95, 755); (7, 191, 2360) ];
  (* Mycielski graphs are triangle-free *)
  let g = Graphs.mycielski 4 in
  let triangle = ref false in
  for a = 0 to Graph.n g - 1 do
    List.iter
      (fun b ->
        if b > a then
          List.iter (fun c -> if c > b && Graph.mem_edge g a c then triangle := true)
            (Graph.neighbors g b))
      (Graph.neighbors g a)
  done;
  check "triangle-free" false !triangle

let test_random_families_sizes () =
  List.iter
    (fun (name, v, e) ->
      match Graphs.by_name name with
      | None -> Alcotest.failf "missing instance %s" name
      | Some g ->
          check_int (name ^ " vertices") v (Graph.n g);
          (* the book and miles .col files double-list edges; the
             builders target the undirected half *)
          let doubled =
            List.exists
              (fun p ->
                String.length name >= String.length p
                && String.sub name 0 (String.length p) = p)
              [ "anna"; "david"; "huck"; "jean"; "homer"; "miles"; "games" ]
          in
          let target = if doubled then e / 2 else e in
          let slack = max 40 (target / 10) in
          check (name ^ " edges close") true (abs (Graph.m g - target) <= slack))
    (List.filter
       (fun (name, _, _) ->
         List.exists
           (fun p -> String.length name >= String.length p
                     && String.sub name 0 (String.length p) = p)
           [ "anna"; "david"; "huck"; "jean"; "miles"; "le450"; "DSJC" ])
       Graphs.names)

let test_by_name_exact_families () =
  (match Graphs.by_name "queen6_6" with
  | Some g -> check_int "queen6_6" 290 (Graph.m g)
  | None -> Alcotest.fail "queen6_6 missing");
  (match Graphs.by_name "grid5" with
  | Some g -> check_int "grid5" 40 (Graph.m g)
  | None -> Alcotest.fail "grid5 missing");
  check "unknown" true (Graphs.by_name "nonexistent" = None)

let test_determinism () =
  match (Graphs.by_name "anna", Graphs.by_name "anna") with
  | Some a, Some b ->
      Alcotest.(check (list (pair int int))) "same seeded graph" (Graph.edges a) (Graph.edges b)
  | _ -> Alcotest.fail "anna missing"

let test_adder () =
  let h = Hypergraphs.adder 75 in
  check_int "adder_75 vertices" 376 (Hypergraph.n_vertices h);
  check_int "adder_75 edges" 526 (Hypergraph.n_edges h);
  let h99 = Hypergraphs.adder 99 in
  check_int "adder_99 vertices" 496 (Hypergraph.n_vertices h99);
  check_int "adder_99 edges" 694 (Hypergraph.n_edges h99);
  check "covered" true (Hypergraph.all_vertices_covered h);
  (* bounded ghw: the greedy evaluation of a min-fill ordering must stay
     small on every adder size *)
  let ws = Hd_core.Eval.of_hypergraph h in
  let rng = Random.State.make [| 2 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  check "adder ghw small" true (Hd_core.Eval.ghw_width ~rng ws sigma <= 4)

let test_bridge () =
  let h = Hypergraphs.bridge 50 in
  check_int "bridge_50 vertices" 452 (Hypergraph.n_vertices h);
  check_int "bridge_50 edges" 452 (Hypergraph.n_edges h);
  check "covered" true (Hypergraph.all_vertices_covered h)

let test_clique () =
  let h = Hypergraphs.clique 20 in
  check_int "clique_20 vertices" 20 (Hypergraph.n_vertices h);
  check_int "clique_20 edges" 190 (Hypergraph.n_edges h);
  check_int "max edge size" 2 (Hypergraph.max_edge_size h)

let test_grids () =
  let h2 = Hypergraphs.grid2d 20 in
  check_int "grid2d_20 vertices" 200 (Hypergraph.n_vertices h2);
  check_int "grid2d_20 edges" 200 (Hypergraph.n_edges h2);
  let h3 = Hypergraphs.grid3d 8 in
  check_int "grid3d_8 vertices" 256 (Hypergraph.n_vertices h3);
  check_int "grid3d_8 edges" 256 (Hypergraph.n_edges h3);
  check "covered" true (Hypergraph.all_vertices_covered h3)

let test_circuits () =
  List.iter
    (fun (name, v, e) ->
      match Hypergraphs.by_name name with
      | None -> Alcotest.failf "missing %s" name
      | Some h ->
          check_int (name ^ " vertices") v (Hypergraph.n_vertices h);
          check_int (name ^ " edges") e (Hypergraph.n_edges h);
          check (name ^ " covered") true (Hypergraph.all_vertices_covered h))
    [ ("b06", 48, 50); ("b09", 168, 169); ("c499", 202, 243); ("c880", 383, 443) ]

let test_small_instances_solvable () =
  (* the small family members are feasible for the exact methods *)
  (match Hypergraphs.by_name "clique_10" with
  | Some h -> (
      match (Hd_search.Bb_ghw.solve h).Hd_search.Search_types.outcome with
      | Hd_search.Search_types.Exact w -> check_int "clique_10 ghw" 5 w
      | Hd_search.Search_types.Bounds _ -> Alcotest.fail "should be exact")
  | None -> Alcotest.fail "clique_10 missing");
  match Hypergraphs.by_name "adder_15" with
  | Some h ->
      let result =
        Hd_search.Bb_ghw.solve
          ~budget:{ Hd_search.Search_types.time_limit = Some 5.0; max_states = None }
          h
      in
      let ub =
        match result.Hd_search.Search_types.outcome with
        | Hd_search.Search_types.Exact w -> w
        | Hd_search.Search_types.Bounds { ub; _ } -> ub
      in
      check "adder_15 ghw <= 3" true (ub <= 3)
  | None -> Alcotest.fail "adder_15 missing"


let test_registry_smoke () =
  (* every named graph builds, deterministically, at the right size *)
  List.iter
    (fun (name, v, _) ->
      match Graphs.by_name name with
      | None -> Alcotest.failf "graph %s missing" name
      | Some g -> check_int (name ^ " |V|") v (Graph.n g))
    Graphs.names;
  (* every named hypergraph builds, at the right size, fully covered *)
  List.iter
    (fun (name, v, e) ->
      match Hypergraphs.by_name name with
      | None -> Alcotest.failf "hypergraph %s missing" name
      | Some h ->
          check_int (name ^ " |V|") v (Hypergraph.n_vertices h);
          check_int (name ^ " |H|") e (Hypergraph.n_edges h);
          check (name ^ " covered") true (Hypergraph.all_vertices_covered h))
    Hypergraphs.names

let test_bridge_connected () =
  (* the bridge ladder must be one connected structure *)
  let h = Hypergraphs.bridge 10 in
  let g = Hypergraph.primal h in
  check "bridge primal connected" true (Graph.is_connected g)

let test_adder_names () =
  let h = Hypergraphs.adder 3 in
  Alcotest.(check string) "carry-in name" "cin"
    (Hypergraph.vertex_name h (Hypergraph.n_vertices h - 1));
  Alcotest.(check string) "a0" "a0" (Hypergraph.vertex_name h 0)

let () =
  Alcotest.run "instances"
    [
      ( "graphs",
        [
          Alcotest.test_case "queen" `Quick test_queen;
          Alcotest.test_case "mycielski" `Quick test_mycielski;
          Alcotest.test_case "random family sizes" `Quick test_random_families_sizes;
          Alcotest.test_case "by_name" `Quick test_by_name_exact_families;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "hypergraphs",
        [
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "bridge" `Quick test_bridge;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "grids" `Quick test_grids;
          Alcotest.test_case "circuits" `Quick test_circuits;
          Alcotest.test_case "registry smoke" `Quick test_registry_smoke;
          Alcotest.test_case "bridge connected" `Quick test_bridge_connected;
          Alcotest.test_case "adder names" `Quick test_adder_names;
          Alcotest.test_case "small instances solvable" `Slow test_small_instances_solvable;
        ] );
    ]
