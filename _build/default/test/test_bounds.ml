module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Lb = Hd_bounds.Lower_bounds
module Eval = Hd_core.Eval
module Ordering = Hd_core.Ordering

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_degeneracy () =
  check_int "K5" 4 (Lb.degeneracy (Graph.complete 5));
  check_int "C6" 2 (Lb.degeneracy (Graph.cycle 6));
  check_int "P5" 1 (Lb.degeneracy (Graph.path 5));
  check_int "grid4" 2 (Lb.degeneracy (Graph.grid 4 4))

let test_minor_min_width () =
  check_int "K5" 4 (Lb.minor_min_width (Graph.complete 5));
  check "C6 >= 2" true (Lb.minor_min_width (Graph.cycle 6) >= 2);
  check "tree <= 1" true (Lb.minor_min_width (Graph.path 7) <= 1);
  (* mmw dominates degeneracy on grids *)
  let g = Graph.grid 5 5 in
  check "grid5 mmw >= 3" true (Lb.minor_min_width g >= 3)

let test_minor_gamma_r () =
  check_int "K4" 3 (Lb.minor_gamma_r (Graph.complete 4));
  check "C5 >= 2" true (Lb.minor_gamma_r (Graph.cycle 5) >= 2)

let test_combined_le_treewidth () =
  (* known treewidths: K_n -> n-1, C_n -> 2, P_n -> 1, grid n -> n *)
  let cases =
    [
      (Graph.complete 6, 5);
      (Graph.cycle 8, 2);
      (Graph.path 9, 1);
      (Graph.grid 3 3, 3);
      (Graph.grid 4 4, 4);
    ]
  in
  List.iter
    (fun (g, tw) ->
      let lb = Lb.treewidth g in
      check "lb <= tw" true (lb <= tw);
      check "lb >= 1" true (lb >= 1))
    cases

let test_ghw_bound () =
  (* clique K6 as binary hypergraph: ghw = 3, k = 2, tw lb = 5 ->
     bound = ceil(6/2) = 3: tight here *)
  let h = Hypergraph.of_graph (Graph.complete 6) in
  check_int "K6 ghw lb" 3 (Lb.ghw h);
  (* one big hyperedge: ghw = 1, bound must not exceed it *)
  let h2 = Hypergraph.create ~n:5 [ [ 0; 1; 2; 3; 4 ] ] in
  check_int "single edge ghw lb" 1 (Lb.ghw h2)

let prop_lb_le_ub =
  QCheck.Test.make ~count:100 ~name:"treewidth lb <= min-fill ub"
    QCheck.(make QCheck.Gen.(pair (2 -- 12) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.4 then Graph.add_edge g u v
        done
      done;
      let lb = Lb.treewidth ~rng g in
      let ws = Eval.of_graph g in
      let ub =
        Eval.tw_width ws (Hd_core.Ordering_heuristics.min_fill rng g)
      in
      lb <= ub)

let prop_ghw_lb_le_exact_eval =
  QCheck.Test.make ~count:60 ~name:"ghw lb <= exact width of any ordering"
    QCheck.(make QCheck.Gen.(pair (2 -- 7) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 5 in
      let edges =
        List.init m (fun _ ->
            List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
        @ [ List.init n Fun.id ]
      in
      let h = Hypergraph.create ~n edges in
      let lb = Lb.ghw ~rng h in
      let ws = Eval.of_hypergraph h in
      (* lb must not exceed the width of the best of a few orderings *)
      let best = ref max_int in
      for _ = 1 to 10 do
        best := min !best (Eval.ghw_width_exact ws (Ordering.random rng n))
      done;
      lb <= !best)


let prop_degeneracy_le_mmw =
  QCheck.Test.make ~count:100 ~name:"degeneracy <= minor-min-width"
    QCheck.(make QCheck.Gen.(pair (2 -- 12) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.4 then Graph.add_edge g u v
        done
      done;
      (* contraction dominates deletion step-by-step; empirically mmw
         never drops below MMD on these families (both are valid lbs
         regardless) *)
      Lb.degeneracy g <= Lb.minor_min_width ~rng g)

let test_elim_snapshot_bound () =
  (* the bound computed on an elimination-graph snapshot must match the
     bound on the materialised remaining graph *)
  let g = Graph.grid 4 4 in
  let eg = Hd_graph.Elim_graph.of_graph g in
  Hd_graph.Elim_graph.eliminate eg 0;
  Hd_graph.Elim_graph.eliminate eg 5;
  let rng1 = Random.State.make [| 9 |] in
  let via_elim = Lb.treewidth_of_elim ~rng:rng1 ~trials:2 eg in
  let rng2 = Random.State.make [| 9 |] in
  let via_graph =
    Lb.treewidth ~rng:rng2 ~trials:2 (Hd_graph.Elim_graph.to_graph eg)
  in
  check_int "snapshot = materialised" via_graph via_elim

let () =
  Alcotest.run "bounds"
    [
      ( "treewidth",
        [
          Alcotest.test_case "degeneracy" `Quick test_degeneracy;
          Alcotest.test_case "minor-min-width" `Quick test_minor_min_width;
          Alcotest.test_case "minor-gamma_R" `Quick test_minor_gamma_r;
          Alcotest.test_case "combined vs known tw" `Quick test_combined_le_treewidth;
        ] );
      ("ghw", [ Alcotest.test_case "tw-ksc-width" `Quick test_ghw_bound ]);
      ( "elim snapshot",
        [ Alcotest.test_case "matches materialised graph" `Quick test_elim_snapshot_bound ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lb_le_ub; prop_ghw_lb_le_exact_eval; prop_degeneracy_le_mmw ]
      );
    ]
