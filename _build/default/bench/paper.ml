(* Values the paper's tables report, used as the reference column of
   every regenerated table.  "n/a" entries correspond to instances the
   paper does not list or to pages truncated in the supplied text. *)

(* Table 5.1: the value A*-tw returned (bold = treewidth fixed), plus
   the QuickBB / BB-tw columns where given. *)
let table_5_1 : (string * string * string * string) list =
  [
    (* instance, A*-tw, QuickBB, BB-tw *)
    ("anna", "12*", "12", "12");
    ("david", "13*", "13", "13");
    ("huck", "10*", "10", "-");
    ("jean", "9*", "9", "-");
    ("queen5_5", "18*", "18", "18");
    ("queen6_6", "25*", "25", "25");
    ("queen7_7", "31", "35", "-");
    ("miles250", "9*", "9", "-");
    ("miles500", "22*", "22", "-");
    ("miles1000", "49*", "-", "-");
    ("myciel3", "5*", "5", "-");
    ("myciel4", "10*", "10", "10");
    ("myciel5", "16", "19", "19");
    ("DSJC125.1", "24", "-", "-");
    ("DSJC125.5", "82", "-", "-");
    ("DSJC125.9", "119*", "119", "-");
    ("zeroin.i.1", "50*", "-", "-");
    ("mulsol.i.1", "50*", "50", "-");
    ("fpsol2.i.1", "66*", "66", "-");
  ]

(* Table 5.2: grids — the treewidth of an n x n grid is n. *)
let table_5_2 : (string * string) list =
  [
    ("grid2", "2*");
    ("grid3", "3*");
    ("grid4", "4*");
    ("grid5", "5*");
    ("grid6", "6*");
    ("grid7", "5 (lb)");
    ("grid8", "5 (lb)");
  ]

(* Table 6.1: crossover ranking the paper found (best first), per
   instance family; POS won on every instance. *)
let table_6_1_ranking = [ "POS"; "OX2"; "PMX"; "CX"; "OX1"; "AP" ]

(* Table 6.2: mutation ranking; ISM best on most, EM close second. *)
let table_6_2_ranking = [ "ISM"; "EM"; "SM"; "SIM"; "DM"; "IVM" ]

(* Table 6.3: the winning combination. *)
let table_6_3_winner = (1.0, 0.3) (* crossover rate, mutation rate *)

(* Table 6.6: the best upper bound the paper's GA-tw reached (min
   column), with the previously best-known ub it compared against. *)
let table_6_6 : (string * int * int) list =
  [
    (* instance, known ub, GA-tw min *)
    ("anna", 12, 12);
    ("david", 13, 13);
    ("huck", 10, 10);
    ("jean", 9, 9);
    ("games120", 33, 32);
    ("queen5_5", 18, 18);
    ("queen6_6", 25, 26);
    ("queen7_7", 35, 35);
    ("queen8_8", 46, 45);
    ("queen9_9", 58, 58);
    ("queen10_10", 72, 72);
    ("myciel3", 5, 5);
    ("myciel4", 10, 10);
    ("myciel5", 19, 19);
    ("myciel6", 35, 35);
    ("myciel7", 54, 66);
    ("miles250", 9, 10);
    ("miles500", 22, 24);
    ("DSJC125.1", 64, 61);
    ("DSJC125.5", 109, 109);
    ("DSJC125.9", 119, 119);
  ]

(* Table 7.1: GA-ghw min width (vs the best ub previously reported). *)
let table_7_1 : (string * int * int) list =
  [
    (* instance, previous ub, GA-ghw min *)
    ("adder_75", 2, 3);
    ("adder_99", 2, 3);
    ("b06", 5, 4);
    ("b08", 10, 9);
    ("b09", 10, 7);
    ("b10", 14, 11);
    ("bridge_50", 2, 6);
    ("c499", 13, 11);
    ("c880", 19, 17);
    ("clique_20", 10, 11);
    ("grid2d_20", 11, 10);
    ("grid3d_8", 20, 21);
  ]

(* Table 7.2 (SAIGA-ghw) and Tables 8.1-9.2 (BB-ghw, A*-ghw) fall in
   pages truncated in the supplied text; the abstract and chapter
   summaries state that BB-ghw/A*-ghw fixed the exact ghw of several
   instances and improved bounds on others, which is the shape the
   regenerated tables check. *)
let truncated_note =
  "paper values for this table fall in pages truncated in the supplied\n\
   text; the shape check is: exact methods close small instances, GAs\n\
   match or improve the heuristic upper bound"
