bench/main.mli:
