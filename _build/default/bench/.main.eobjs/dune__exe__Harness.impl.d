bench/harness.ml: Hd_search List Printf String Unix
