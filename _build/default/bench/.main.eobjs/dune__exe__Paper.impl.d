bench/paper.ml:
