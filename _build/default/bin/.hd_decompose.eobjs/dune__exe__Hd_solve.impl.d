bin/hd_solve.ml: Arg Array Cmd Cmdliner Format Hd_csp Hd_hypergraph Hd_instances List Printf String Term Unix
