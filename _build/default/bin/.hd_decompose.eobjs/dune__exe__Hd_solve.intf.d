bin/hd_solve.mli:
