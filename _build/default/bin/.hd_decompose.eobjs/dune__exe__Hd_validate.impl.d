bin/hd_validate.ml: Arg Cmd Cmdliner Format Hd_core Hd_graph Hd_hypergraph Hd_instances Term
