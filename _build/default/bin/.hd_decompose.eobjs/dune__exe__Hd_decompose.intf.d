bin/hd_decompose.mli:
