bin/hd_validate.mli:
