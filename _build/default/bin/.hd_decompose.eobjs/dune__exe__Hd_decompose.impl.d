bin/hd_decompose.ml: Arg Array Cmd Cmdliner Format Hd_bounds Hd_core Hd_ga Hd_graph Hd_hypergraph Hd_instances Hd_search List Option Printf Random Term
