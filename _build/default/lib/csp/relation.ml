type t = { scope : int array; tuples : int array list }

let check_scope scope =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Relation.make: duplicate variable in scope";
      Hashtbl.add seen v ())
    scope

let make ~scope tuples =
  check_scope scope;
  let arity = Array.length scope in
  List.iter
    (fun t ->
      if Array.length t <> arity then
        invalid_arg "Relation.make: tuple arity mismatch")
    tuples;
  let seen = Hashtbl.create (List.length tuples) in
  let deduped =
    List.filter
      (fun t ->
        if Hashtbl.mem seen t then false
        else begin
          Hashtbl.add seen t ();
          true
        end)
      tuples
  in
  { scope; tuples = deduped }

let scope r = r.scope
let arity r = Array.length r.scope
let cardinality r = List.length r.tuples
let tuples r = r.tuples
let is_empty r = r.tuples = []

let mem r tuple = List.exists (fun t -> t = tuple) r.tuples

let index_of scope var =
  let rec go i =
    if i >= Array.length scope then raise Not_found
    else if scope.(i) = var then i
    else go (i + 1)
  in
  go 0

let value r tuple ~var = tuple.(index_of r.scope var)

(* positions of the shared variables in both scopes *)
let shared_positions a b =
  let pairs = ref [] in
  Array.iteri
    (fun i v ->
      match index_of b.scope v with
      | j -> pairs := (i, j) :: !pairs
      | exception Not_found -> ())
    a.scope;
  List.rev !pairs

let key_of positions tuple = List.map (fun i -> tuple.(i)) positions

let join a b =
  let shared = shared_positions a b in
  let a_pos = List.map fst shared and b_pos = List.map snd shared in
  (* positions of b's private variables *)
  let b_private_pos =
    List.filter
      (fun j -> not (List.mem j b_pos))
      (List.init (Array.length b.scope) Fun.id)
  in
  let out_scope =
    Array.append a.scope
      (Array.of_list (List.map (fun j -> b.scope.(j)) b_private_pos))
  in
  (* hash join on the shared key *)
  let table = Hashtbl.create (List.length b.tuples) in
  List.iter
    (fun t -> Hashtbl.add table (key_of b_pos t) t)
    b.tuples;
  let out = ref [] in
  List.iter
    (fun ta ->
      let key = key_of a_pos ta in
      List.iter
        (fun tb ->
          let extension = List.map (fun j -> tb.(j)) b_private_pos in
          out := Array.append ta (Array.of_list extension) :: !out)
        (Hashtbl.find_all table key))
    a.tuples;
  make ~scope:out_scope (List.rev !out)

let semijoin a b =
  let shared = shared_positions a b in
  let a_pos = List.map fst shared and b_pos = List.map snd shared in
  let keys = Hashtbl.create (List.length b.tuples) in
  List.iter (fun t -> Hashtbl.replace keys (key_of b_pos t) ()) b.tuples;
  { a with tuples = List.filter (fun t -> Hashtbl.mem keys (key_of a_pos t)) a.tuples }

let project r vars =
  let positions = Array.map (fun v -> index_of r.scope v) vars in
  make ~scope:vars
    (List.map (fun t -> Array.map (fun i -> t.(i)) positions) r.tuples)

let select r ~var ~value =
  let i = index_of r.scope var in
  { r with tuples = List.filter (fun t -> t.(i) = value) r.tuples }

let full ~scope ~domains =
  check_scope scope;
  let doms = Array.map (fun v -> domains.(v)) scope in
  let k = Array.length scope in
  let out = ref [] in
  let tuple = Array.make k 0 in
  let rec fill i =
    if i = k then out := Array.copy tuple :: !out
    else
      Array.iter
        (fun value ->
          tuple.(i) <- value;
          fill (i + 1))
        doms.(i)
  in
  if k = 0 then make ~scope []
  else begin
    fill 0;
    make ~scope (List.rev !out)
  end

let equal a b =
  a.scope = b.scope
  && List.sort compare a.tuples = List.sort compare b.tuples

let pp ppf r =
  Format.fprintf ppf "@[<v>scope(%s): %d tuples"
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.scope)))
    (cardinality r);
  List.iter
    (fun t ->
      Format.fprintf ppf "@,(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int t))))
    r.tuples;
  Format.fprintf ppf "@]"
