(** Join trees and algorithm Acyclic Solving (Figure 2.4).

    A join tree here is a rooted tree whose nodes carry relations; the
    connectedness condition for join trees (Definition 8) is assumed,
    which holds by construction for trees derived from tree
    decompositions or generalized hypertree decompositions. *)

type t = {
  relations : Relation.t array;
  parent : int array;  (** [-1] for the root *)
}

(** [acyclic_solve t ~n_vars] runs the bottom-up semijoin phase and, on
    success, the top-down assignment phase.  Returns an assignment
    array of length [n_vars] where variables not occurring in any scope
    stay [min_int]; [None] when the CSP has no solution.

    Running time is O(m . n log n) with [m] nodes and [n] the largest
    relation, as the paper states. *)
val acyclic_solve : t -> n_vars:int -> int array option

(** [count_solutions t] counts the complete consistent assignments to
    the variables occurring in [t]'s scopes, by sum-product dynamic
    programming over the tree: each node tuple's weight is the product
    over children of the summed weights of matching child tuples.
    Correct whenever [t] satisfies the join tree connectedness
    condition. *)
val count_solutions : t -> int

(** [is_join_tree t] checks the connectedness condition: nodes whose
    scopes share a variable must form a connected subtree for that
    variable. *)
val is_join_tree : t -> bool
