(** Adaptive consistency — bucket elimination as a CSP solver
    (Section 2.5, after Dechter).

    Constraints are partitioned into buckets along an elimination
    ordering (each constraint in the bucket of its first-eliminated
    variable).  Processing buckets in elimination order joins each
    bucket's relations and projects the bucket variable away, passing
    the result down; a backward pass then reads off a solution.  Time
    and space are exponential only in the width of the ordering —
    bucket elimination is "solving the CSP on the tree decomposition
    the ordering induces". *)

(** [solve csp sigma] decides [csp] along the elimination ordering
    [sigma] (a permutation of the variables; [sigma.(n-1)] is processed
    first) and returns a solution if one exists.
    @raise Invalid_argument when [sigma] is not a permutation. *)
val solve : Csp.t -> int array -> int array option

(** [solve_auto ?seed csp] picks a min-fill ordering of the constraint
    hypergraph and runs {!solve}. *)
val solve_auto : ?seed:int -> Csp.t -> int array option
