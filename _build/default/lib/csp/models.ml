module Graph = Hd_graph.Graph

let all_different_pairs ~domain_size =
  let tuples = ref [] in
  for a = domain_size - 1 downto 0 do
    for b = domain_size - 1 downto 0 do
      if a <> b then tuples := [| a; b |] :: !tuples
    done
  done;
  !tuples

let graph_coloring g ~colors =
  let edges = Graph.edges g in
  let pairs = all_different_pairs ~domain_size:colors in
  let constraints =
    List.map (fun (u, v) -> Relation.make ~scope:[| u; v |] pairs) edges
  in
  let domains = Array.init (Graph.n g) (fun _ -> Array.init colors Fun.id) in
  Csp.make ~domains constraints

let australia () =
  (* WA=0 NT=1 Q=2 SA=3 NSW=4 V=5 TAS=6 *)
  let names = [| "WA"; "NT"; "Q"; "SA"; "NSW"; "V"; "TAS" |] in
  let borders =
    [ (1, 0); (3, 0); (1, 2); (1, 3); (2, 3); (4, 2); (4, 5); (4, 3); (3, 5) ]
  in
  let pairs = all_different_pairs ~domain_size:3 in
  let constraints =
    List.map (fun (u, v) -> Relation.make ~scope:[| u; v |] pairs) borders
  in
  let domains = Array.init 7 (fun _ -> [| 0; 1; 2 |]) in
  Csp.make ~variable_names:names ~domains constraints

let example5 () =
  (* values: a=0, b=1, c=2 *)
  let a = 0 and b = 1 and c = 2 in
  let r1 = [ [| a; b; c |]; [| a; c; b |]; [| b; b; c |] ] in
  let r2 = [ [| a; b; c |]; [| a; c; b |] ] in
  let r3 = [ [| c; b; c |]; [| c; c; b |] ] in
  let constraints =
    [
      Relation.make ~scope:[| 0; 1; 2 |] r1;
      Relation.make ~scope:[| 0; 4; 5 |] r2;
      Relation.make ~scope:[| 2; 3; 4 |] r3;
    ]
  in
  let domains =
    Array.init 6 (fun v -> if v = 0 then [| a; b |] else [| b; c |])
  in
  Csp.make
    ~variable_names:[| "x1"; "x2"; "x3"; "x4"; "x5"; "x6" |]
    ~domains constraints

let sat clauses ~n_vars =
  let constraints =
    List.map
      (fun clause ->
        let vars =
          List.sort_uniq compare (List.map (fun l -> abs l - 1) clause)
        in
        let scope = Array.of_list vars in
        let k = Array.length scope in
        let index_of v =
          let rec go i = if scope.(i) = v then i else go (i + 1) in
          go 0
        in
        let satisfying = ref [] in
        for mask = (1 lsl k) - 1 downto 0 do
          let value v = (mask lsr index_of v) land 1 in
          let satisfied =
            List.exists
              (fun l ->
                let v = abs l - 1 in
                if l > 0 then value v = 1 else value v = 0)
              clause
          in
          if satisfied then
            satisfying := Array.init k (fun i -> (mask lsr i) land 1) :: !satisfying
        done;
        Relation.make ~scope !satisfying)
      clauses
  in
  let domains = Array.init n_vars (fun _ -> [| 0; 1 |]) in
  Csp.make ~domains constraints

let n_queens n =
  let constraints = ref [] in
  for r1 = 0 to n - 1 do
    for r2 = r1 + 1 to n - 1 do
      let tuples = ref [] in
      for c1 = n - 1 downto 0 do
        for c2 = n - 1 downto 0 do
          if c1 <> c2 && abs (c1 - c2) <> r2 - r1 then
            tuples := [| c1; c2 |] :: !tuples
        done
      done;
      constraints := Relation.make ~scope:[| r1; r2 |] !tuples :: !constraints
    done
  done;
  let domains = Array.init n (fun _ -> Array.init n Fun.id) in
  Csp.make ~domains !constraints

let random_csp ~seed ~n_vars ~domain_size ~n_constraints ~arity ~tightness =
  let rng = Random.State.make [| seed |] in
  let random_scope () =
    let rec draw acc =
      if List.length acc = arity then Array.of_list (List.sort compare acc)
      else
        let v = Random.State.int rng n_vars in
        if List.mem v acc then draw acc else draw (v :: acc)
    in
    draw []
  in
  let constraints =
    List.init n_constraints (fun _ ->
        let scope = random_scope () in
        let tuples = ref [] in
        let total = int_of_float (float_of_int domain_size ** float_of_int arity) in
        for code = 0 to total - 1 do
          if Random.State.float rng 1.0 >= tightness then begin
            let tuple = Array.make arity 0 in
            let rest = ref code in
            for i = 0 to arity - 1 do
              tuple.(i) <- !rest mod domain_size;
              rest := !rest / domain_size
            done;
            tuples := tuple :: !tuples
          end
        done;
        Relation.make ~scope !tuples)
  in
  let domains = Array.init n_vars (fun _ -> Array.init domain_size Fun.id) in
  Csp.make ~domains constraints
