let solve csp sigma =
  let n = Csp.n_variables csp in
  if not (Hd_core.Ordering.is_permutation sigma) || Array.length sigma <> n
  then invalid_arg "Adaptive_consistency.solve: not a permutation";
  if n = 0 then Some [||]
  else begin
    let pos = Hd_core.Ordering.positions sigma in
    (* bucket of a relation: the position of its first-eliminated
       (largest-position) variable *)
    let buckets = Array.make n [] in
    let place r =
      let scope = Relation.scope r in
      if Array.length scope > 0 then begin
        let p = Array.fold_left (fun acc v -> max acc pos.(v)) 0 scope in
        buckets.(p) <- r :: buckets.(p)
      end
    in
    List.iter place (Csp.constraints csp);
    (* forward phase: join each bucket, project the variable away *)
    let processed = Array.make n None in
    let rec forward i =
      if i < 0 then true
      else begin
        let v = sigma.(i) in
        let domain_rel =
          Relation.make ~scope:[| v |]
            (Array.to_list (Array.map (fun x -> [| x |]) (Csp.domain csp v)))
        in
        let joined =
          List.fold_left Relation.join domain_rel buckets.(i)
        in
        processed.(i) <- Some joined;
        if Relation.is_empty joined then false
        else begin
          let rest =
            Array.of_list
              (List.filter (( <> ) v) (Array.to_list (Relation.scope joined)))
          in
          if Array.length rest > 0 then place (Relation.project joined rest);
          forward (i - 1)
        end
      end
    in
    if not (forward (n - 1)) then None
    else begin
      (* backward phase: assign variables in reverse elimination order
         (position 0 first), each consistent with its bucket's join *)
      let assignment = Array.make n min_int in
      let ok = ref true in
      for i = 0 to n - 1 do
        if !ok then begin
          let v = sigma.(i) in
          match processed.(i) with
          | None -> ok := false
          | Some joined ->
              let scope = Relation.scope joined in
              let consistent tuple =
                let fine = ref true in
                Array.iteri
                  (fun k u ->
                    if u <> v && assignment.(u) = min_int then
                      (* variables later in elimination order are
                         already assigned; others cannot occur *)
                      fine := false
                    else if u <> v && tuple.(k) <> assignment.(u) then
                      fine := false)
                  scope;
                !fine
              in
              (match
                 List.find_opt consistent (Relation.tuples joined)
               with
              | Some tuple ->
                  Array.iteri
                    (fun k u -> if assignment.(u) = min_int then assignment.(u) <- tuple.(k))
                    scope
              | None -> ok := false)
        end
      done;
      if !ok && Csp.consistent csp assignment then Some assignment else None
    end
  end

let solve_auto ?(seed = 0) csp =
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| seed |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  solve csp sigma
