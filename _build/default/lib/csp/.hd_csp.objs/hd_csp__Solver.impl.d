lib/csp/solver.ml: Array Csp Hd_core Hd_graph Hd_hypergraph Join_tree List Random Relation
