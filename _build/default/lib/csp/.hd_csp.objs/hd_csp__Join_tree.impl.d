lib/csp/join_tree.ml: Array Fun List Relation
