lib/csp/adaptive_consistency.ml: Array Csp Hd_core List Random Relation
