lib/csp/relation.ml: Array Format Fun Hashtbl List String
