lib/csp/csp.mli: Hd_hypergraph Relation
