lib/csp/adaptive_consistency.mli: Csp
