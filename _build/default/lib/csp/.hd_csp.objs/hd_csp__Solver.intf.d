lib/csp/solver.mli: Csp Hd_core Hd_hypergraph Relation
