lib/csp/join_tree.mli: Relation
