lib/csp/models.mli: Csp Hd_graph
