lib/csp/relation.mli: Format
