lib/csp/csp.ml: Array Fun Hd_hypergraph List Relation
