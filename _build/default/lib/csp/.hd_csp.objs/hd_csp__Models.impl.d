lib/csp/models.ml: Array Csp Fun Hd_graph List Random Relation
