(** Constraint satisfaction problems (Definition 5).

    A CSP is variables with finite integer domains plus constraints,
    each a {!Relation.t} whose scope names the constrained variables.
    Variable names are optional and used only for display. *)

type t

(** [make ~domains constraints] builds a CSP on
    [Array.length domains] variables.
    @raise Invalid_argument when a constraint mentions an unknown
    variable. *)
val make :
  ?variable_names:string array -> domains:int array array -> Relation.t list -> t

val n_variables : t -> int
val domain : t -> int -> int array
val constraints : t -> Relation.t list
val n_constraints : t -> int
val variable_name : t -> int -> string

(** [hypergraph csp] is the constraint hypergraph (Definition 7):
    vertex = variable, hyperedge = constraint scope.  Variables in no
    constraint get a singleton hyperedge so decomposition-based solving
    can cover them. *)
val hypergraph : t -> Hd_hypergraph.Hypergraph.t

(** [consistent csp assignment] checks a complete assignment
    ([assignment.(v)] is [v]'s value) against all constraints. *)
val consistent : t -> int array -> bool

(** [solve_backtracking csp] finds one solution by plain backtracking
    with forward consistency checks — the correctness oracle the
    decomposition-based solvers are tested against. *)
val solve_backtracking : t -> int array option

(** [count_solutions csp] counts complete consistent assignments by
    exhaustive backtracking (use on small instances only). *)
val count_solutions : t -> int
