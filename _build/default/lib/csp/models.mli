(** Ready-made CSP instances: the paper's worked examples and standard
    benchmark families. *)

(** [australia ()] is Example 1: 3-colouring the states and territories
    of Australia.  Variables in order WA, NT, Q, SA, NSW, V, TAS;
    values 0 = red, 1 = green, 2 = blue. *)
val australia : unit -> Csp.t

(** [example5 ()] is the CSP of the paper's Example 5 (Figure 2.6),
    whose constraint hypergraph has the width-2 decompositions of
    Figures 2.6/2.7.  Domains: x1 in {a, b} = {0, 1}; x2..x6 in
    {b, c} = {1, 2}. *)
val example5 : unit -> Csp.t

(** [graph_coloring g ~colors] is the [colors]-coloring CSP of graph
    [g] (Example 1 generalised): one constraint per edge. *)
val graph_coloring : Hd_graph.Graph.t -> colors:int -> Csp.t

(** [sat clauses ~n_vars] is Example 2 generalised: boolean
    satisfiability as a CSP.  A clause is a list of non-zero DIMACS
    literals ([+v] positive, [-v] negative, variables 1-based);
    one constraint per clause listing its satisfying assignments. *)
val sat : int list list -> n_vars:int -> Csp.t

(** [n_queens n] places [n] queens: variable = column of the queen in
    each row, constraints between every row pair. *)
val n_queens : int -> Csp.t

(** [random_csp ~seed ~n_vars ~domain_size ~n_constraints ~arity
    ~tightness] draws scopes and allowed-tuple sets uniformly;
    [tightness] is the fraction of forbidden tuples. *)
val random_csp :
  seed:int ->
  n_vars:int ->
  domain_size:int ->
  n_constraints:int ->
  arity:int ->
  tightness:float ->
  Csp.t
