type t = {
  domains : int array array;
  constraints : Relation.t list;
  variable_names : string array option;
}

let make ?variable_names ~domains constraints =
  let n = Array.length domains in
  List.iter
    (fun r ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Csp.make: constraint scope out of range")
        (Relation.scope r))
    constraints;
  (match variable_names with
  | Some names when Array.length names <> n ->
      invalid_arg "Csp.make: variable_names length mismatch"
  | _ -> ());
  { domains; constraints; variable_names }

let n_variables csp = Array.length csp.domains
let domain csp v = csp.domains.(v)
let constraints csp = csp.constraints
let n_constraints csp = List.length csp.constraints

let variable_name csp v =
  match csp.variable_names with
  | Some names -> names.(v)
  | None -> "x" ^ string_of_int v

let hypergraph csp =
  let n = n_variables csp in
  let scopes =
    List.map (fun r -> Array.to_list (Relation.scope r)) csp.constraints
  in
  let covered = Array.make n false in
  List.iter (List.iter (fun v -> covered.(v) <- true)) scopes;
  let singletons =
    List.filter_map
      (fun v -> if covered.(v) then None else Some [ v ])
      (List.init n Fun.id)
  in
  let vertex_names =
    Array.init n (fun v -> variable_name csp v)
  in
  Hd_hypergraph.Hypergraph.create ~vertex_names ~n (scopes @ singletons)

let consistent csp assignment =
  List.for_all
    (fun r ->
      let tuple =
        Array.map (fun v -> assignment.(v)) (Relation.scope r)
      in
      Relation.mem r tuple)
    csp.constraints

(* Backtracking over variables in index order; after each assignment,
   every fully-assigned constraint is checked. *)
let backtrack csp ~on_solution =
  let n = n_variables csp in
  let assignment = Array.make n min_int in
  (* constraints indexed by their largest variable, so each is checked
     exactly once, as soon as it becomes fully assigned *)
  let by_last = Array.make (max n 1) [] in
  List.iter
    (fun r ->
      let last = Array.fold_left max 0 (Relation.scope r) in
      by_last.(last) <- r :: by_last.(last))
    csp.constraints;
  let rec assign v =
    if v = n then on_solution assignment
    else
      Array.iter
        (fun value ->
          assignment.(v) <- value;
          let ok =
            List.for_all
              (fun r ->
                let tuple =
                  Array.map (fun u -> assignment.(u)) (Relation.scope r)
                in
                Relation.mem r tuple)
              by_last.(v)
          in
          if ok then assign (v + 1))
        csp.domains.(v)
  in
  if n = 0 then on_solution assignment else assign 0

exception Found of int array

let solve_backtracking csp =
  try
    backtrack csp ~on_solution:(fun a -> raise (Found (Array.copy a)));
    None
  with Found a -> Some a

let count_solutions csp =
  let count = ref 0 in
  backtrack csp ~on_solution:(fun _ -> incr count);
  !count
