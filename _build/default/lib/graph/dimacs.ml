let parse_string text =
  let graph = ref None in
  let pending = ref [] in
  let handle_line lineno line =
    let line = String.trim line in
    if line = "" then ()
    else
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | "c" :: _ -> ()
      | [ "p"; ("edge" | "edges" | "col"); n; _m ] -> (
          match !graph with
          | Some _ -> failwith "Dimacs: duplicate problem line"
          | None ->
              let g = Graph.create (int_of_string n) in
              List.iter (fun (u, v) -> Graph.add_edge g u v) !pending;
              pending := [];
              graph := Some g)
      | [ "e"; u; v ] -> (
          let u = int_of_string u - 1 and v = int_of_string v - 1 in
          match !graph with
          | Some g -> Graph.add_edge g u v
          | None -> pending := (u, v) :: !pending)
      | _ -> failwith (Printf.sprintf "Dimacs: bad line %d: %s" lineno line)
  in
  String.split_on_char '\n' text |> List.iteri handle_line;
  match !graph with
  | Some g -> g
  | None -> failwith "Dimacs: missing problem line"

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)))
    (Graph.edges g);
  Buffer.contents buf
