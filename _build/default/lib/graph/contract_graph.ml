type t = {
  size : int;
  adj : Bitset.t array;
  live : Bitset.t;
  mutable live_count : int;
}

let of_graph g =
  let size = Graph.n g in
  {
    size;
    adj = Array.init size (fun v -> Bitset.copy (Graph.adjacency g v));
    live = Bitset.full size;
    live_count = size;
  }

let of_elim_graph ~t_elim =
  let size = Elim_graph.capacity t_elim in
  {
    size;
    adj = Array.init size (fun v -> Bitset.copy (Elim_graph.adjacency t_elim v));
    live = Bitset.copy (Elim_graph.alive t_elim);
    live_count = Elim_graph.n_alive t_elim;
  }

let n_alive t = t.live_count
let alive_list t = Bitset.elements t.live
let degree t v = Bitset.cardinal t.adj.(v)
let neighbors t v = Bitset.elements t.adj.(v)
let mem_edge t u v = u <> v && Bitset.mem t.adj.(u) v

let random_min vs ~key ~rng =
  let best_key = ref max_int and count = ref 0 and pick = ref (-1) in
  List.iter
    (fun v ->
      let k = key v in
      if k < !best_key then begin
        best_key := k;
        count := 1;
        pick := v
      end
      else if k = !best_key then begin
        (* reservoir sampling gives a uniform choice among ties *)
        incr count;
        if Random.State.int rng !count = 0 then pick := v
      end)
    vs;
  if !pick < 0 then raise Not_found;
  !pick

let min_degree_vertex t ~rng =
  random_min (alive_list t) ~key:(degree t) ~rng

let min_degree_neighbor t v ~rng = random_min (neighbors t v) ~key:(degree t) ~rng

let remove t v =
  assert (Bitset.mem t.live v);
  Bitset.iter (fun u -> Bitset.remove t.adj.(u) v) t.adj.(v);
  Bitset.clear t.adj.(v);
  Bitset.remove t.live v;
  t.live_count <- t.live_count - 1

let contract t u v =
  assert (u <> v && Bitset.mem t.live u && Bitset.mem t.live v);
  let merged = t.adj.(v) in
  Bitset.iter (fun w -> Bitset.remove t.adj.(w) v) merged;
  Bitset.remove t.live v;
  t.live_count <- t.live_count - 1;
  Bitset.remove merged u;
  Bitset.union_into ~src:merged ~dst:t.adj.(u);
  Bitset.iter (fun w -> Bitset.add t.adj.(w) u) merged;
  Bitset.clear merged
