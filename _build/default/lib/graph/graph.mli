(** Simple undirected graphs on vertices [0 .. n - 1].

    This is the "regular graph" of the paper: no self loops, no parallel
    edges.  The structure is mutable during construction ({!add_edge}) and
    treated as immutable afterwards; algorithms that eliminate or contract
    vertices work on {!Elim_graph} or on private copies. *)

type t

(** [create n] is the edgeless graph on [n] vertices. *)
val create : int -> t

(** [n g] is the number of vertices of [g]. *)
val n : t -> int

(** [m g] is the number of edges of [g]. *)
val m : t -> int

(** [add_edge g u v] inserts the undirected edge [{u, v}].  Inserting an
    existing edge or a self loop is a no-op. *)
val add_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool
val degree : t -> int -> int

(** [neighbors g v] lists the neighbours of [v] in increasing order. *)
val neighbors : t -> int -> int list

(** [adjacency g v] is the adjacency row of [v] as a bitset.  The result
    is the internal row: callers must not mutate it. *)
val adjacency : t -> int -> Bitset.t

(** [edges g] lists all edges [(u, v)] with [u < v]. *)
val edges : t -> (int * int) list

val of_edges : int -> (int * int) list -> t
val copy : t -> t

(** [complete n] is the clique [K_n]. *)
val complete : int -> t

(** [cycle n] is the cycle [C_n] (requires [n >= 3]). *)
val cycle : int -> t

(** [path n] is the path on [n] vertices. *)
val path : int -> t

(** [grid w h] is the [w * h] grid graph; vertex [(x, y)] has index
    [y * w + x]. *)
val grid : int -> int -> t

(** [is_clique g vs] holds when the vertices of [vs] are pairwise
    adjacent in [g]. *)
val is_clique : t -> Bitset.t -> bool

(** [max_degree g] is the largest vertex degree ([0] for the empty
    graph). *)
val max_degree : t -> int

(** [min_degree g] is the smallest vertex degree.
    @raise Invalid_argument on the graph with no vertices. *)
val min_degree : t -> int

(** [is_connected g] holds when [g] has at most one connected component
    (the empty graph counts as connected). *)
val is_connected : t -> bool

(** [components g] lists the connected components as vertex lists. *)
val components : t -> int list list

val pp : Format.formatter -> t -> unit
