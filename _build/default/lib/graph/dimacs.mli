(** Reading and writing graphs in DIMACS graph-coloring format.

    The format is the one of the Second DIMACS challenge benchmarks used
    in the paper's evaluation: a [p edge n m] problem line followed by
    [e u v] edge lines with 1-based vertex numbers.  Comment lines start
    with [c]. *)

(** [parse_string s] parses DIMACS text.
    @raise Failure on malformed input. *)
val parse_string : string -> Graph.t

(** [parse_file path] parses the DIMACS file at [path]. *)
val parse_file : string -> Graph.t

(** [to_string g] renders [g] in DIMACS format. *)
val to_string : Graph.t -> string
