lib/graph/contract_graph.mli: Elim_graph Graph Random
