lib/graph/elim_graph.mli: Bitset Graph
