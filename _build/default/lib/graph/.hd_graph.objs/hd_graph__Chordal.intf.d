lib/graph/chordal.mli: Graph Random
