lib/graph/contract_graph.ml: Array Bitset Elim_graph Graph List Random
