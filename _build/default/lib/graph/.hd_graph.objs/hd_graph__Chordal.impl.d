lib/graph/chordal.ml: Array Elim_graph Graph List Random
