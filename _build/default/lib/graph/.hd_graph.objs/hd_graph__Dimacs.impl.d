lib/graph/dimacs.ml: Buffer Graph List Printf String
