lib/graph/bitset.ml: Array Format Hashtbl List Sys
