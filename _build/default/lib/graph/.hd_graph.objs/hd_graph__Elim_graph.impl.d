lib/graph/elim_graph.ml: Array Bitset Graph List
