(** Destructive edge contraction, the primitive behind the minor-based
    treewidth lower bounds (minor-min-width, minor-gamma_R).

    A contract graph is consumed by the bound computation: there is no
    undo.  Build a fresh one per bound evaluation with {!of_graph} or
    {!of_elim_graph}. *)

type t

val of_graph : Graph.t -> t

(** [of_elim_graph eg] snapshots the live part of the elimination graph
    [eg]. *)
val of_elim_graph : t_elim:Elim_graph.t -> t

val n_alive : t -> int
val alive_list : t -> int list
val degree : t -> int -> int
val neighbors : t -> int -> int list
val mem_edge : t -> int -> int -> bool

(** [min_degree_vertex t ~rng] is a live vertex of minimum degree; ties
    are broken uniformly at random using [rng], as the paper's
    heuristics prescribe. *)
val min_degree_vertex : t -> rng:Random.State.t -> int

(** [min_degree_neighbor t v ~rng] is a neighbour of [v] of minimum
    degree, ties broken at random.
    @raise Not_found when [v] has no neighbour. *)
val min_degree_neighbor : t -> int -> rng:Random.State.t -> int

(** [contract t u v] contracts the edge [{u, v}]: [v]'s neighbours are
    merged into [u] and [v] disappears. *)
val contract : t -> int -> int -> unit

(** [remove t v] deletes the live vertex [v] and its incident edges. *)
val remove : t -> int -> unit
