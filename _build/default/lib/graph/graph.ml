type t = { size : int; adj : Bitset.t array; mutable edge_count : int }

let create size =
  assert (size >= 0);
  { size; adj = Array.init size (fun _ -> Bitset.create size); edge_count = 0 }

let n g = g.size
let m g = g.edge_count

let mem_edge g u v = u <> v && Bitset.mem g.adj.(u) v

let add_edge g u v =
  if u <> v && not (Bitset.mem g.adj.(u) v) then begin
    Bitset.add g.adj.(u) v;
    Bitset.add g.adj.(v) u;
    g.edge_count <- g.edge_count + 1
  end

let degree g v = Bitset.cardinal g.adj.(v)
let neighbors g v = Bitset.elements g.adj.(v)
let adjacency g v = g.adj.(v)

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    Bitset.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.rev !acc

let of_edges size es =
  let g = create size in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  { size = g.size; adj = Array.map Bitset.copy g.adj; edge_count = g.edge_count }

let complete size =
  let g = create size in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      add_edge g u v
    done
  done;
  g

let cycle size =
  assert (size >= 3);
  let g = create size in
  for v = 0 to size - 1 do
    add_edge g v ((v + 1) mod size)
  done;
  g

let path size =
  let g = create size in
  for v = 0 to size - 2 do
    add_edge g v (v + 1)
  done;
  g

let grid w h =
  let g = create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = (y * w) + x in
      if x < w - 1 then add_edge g v (v + 1);
      if y < h - 1 then add_edge g v (v + w)
    done
  done;
  g

let is_clique g vs =
  Bitset.for_all
    (fun u ->
      (* every other member of [vs] must be adjacent to [u] *)
      Bitset.for_all (fun v -> v = u || mem_edge g u v) vs)
    vs

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.size - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let min_degree g =
  if g.size = 0 then invalid_arg "Graph.min_degree: empty graph";
  let best = ref max_int in
  for v = 0 to g.size - 1 do
    if degree g v < !best then best := degree g v
  done;
  !best

let components g =
  let seen = Bitset.create g.size in
  let component root =
    let stack = ref [ root ] in
    let acc = ref [] in
    Bitset.add seen root;
    let rec go () =
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          acc := v :: !acc;
          Bitset.iter
            (fun u ->
              if not (Bitset.mem seen u) then begin
                Bitset.add seen u;
                stack := u :: !stack
              end)
            g.adj.(v);
          go ()
    in
    go ();
    List.sort compare !acc
  in
  let comps = ref [] in
  for v = g.size - 1 downto 0 do
    if not (Bitset.mem seen v) then comps := component v :: !comps
  done;
  !comps

let is_connected g = List.length (components g) <= 1

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %d vertices %d edges@,%a@]" g.size
    g.edge_count
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "(%d,%d)" u v))
    (edges g)
