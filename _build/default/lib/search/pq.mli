(** A mutable binary-heap priority queue.

    [Pq.create ~compare] orders elements so that {!pop} returns a
    minimal element under [compare] — the best-first frontier of the A*
    algorithms. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop q] removes and returns a minimal element.
    @raise Not_found when [q] is empty. *)
val pop : 'a t -> 'a

(** [peek q] returns a minimal element without removing it.
    @raise Not_found when [q] is empty. *)
val peek : 'a t -> 'a
