lib/search/ghw_common.ml: Array Hashtbl Hd_bounds Hd_core Hd_graph Hd_hypergraph Hd_setcover List Random
