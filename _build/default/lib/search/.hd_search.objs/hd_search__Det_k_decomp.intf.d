lib/search/det_k_decomp.mli: Hd_core Hd_hypergraph
