lib/search/preprocess.mli: Hd_graph Search_types
