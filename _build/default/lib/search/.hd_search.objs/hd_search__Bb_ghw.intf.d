lib/search/bb_ghw.mli: Hd_hypergraph Search_types
