lib/search/astar_ghw.ml: Array Ghw_common Hashtbl Hd_bounds Hd_graph Hd_hypergraph List Option Pq Random Search_types Search_util
