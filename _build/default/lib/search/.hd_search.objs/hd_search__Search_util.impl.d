lib/search/search_util.ml: Hd_graph List Search_types Unix
