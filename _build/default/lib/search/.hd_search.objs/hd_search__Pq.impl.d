lib/search/pq.ml: Array
