lib/search/preprocess.ml: Array Astar_tw Hd_bounds Hd_graph List Option Random Search_types
