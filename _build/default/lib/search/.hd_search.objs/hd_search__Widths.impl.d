lib/search/widths.ml: Astar_tw Bb_ghw Det_k_decomp Format Hd_core Hd_graph Hd_hypergraph Random Search_types
