lib/search/bb_tw.ml: Array Hd_bounds Hd_core Hd_graph Hd_hypergraph List Option Random Search_types Search_util
