lib/search/bb_ghw.ml: Ghw_common Hd_bounds Hd_graph Hd_hypergraph List Option Random Search_types Search_util
