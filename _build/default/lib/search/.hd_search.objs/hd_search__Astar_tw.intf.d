lib/search/astar_tw.mli: Hd_graph Hd_hypergraph Search_types
