lib/search/astar_tw.ml: Array Hashtbl Hd_bounds Hd_core Hd_graph Hd_hypergraph List Option Pq Random Search_types Search_util
