lib/search/pq.mli:
