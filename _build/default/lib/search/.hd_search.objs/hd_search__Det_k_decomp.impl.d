lib/search/det_k_decomp.ml: Array Hashtbl Hd_bounds Hd_core Hd_graph Hd_hypergraph List Option Queue Unix
