lib/search/bb_tw.mli: Hd_graph Hd_hypergraph Search_types
