lib/search/astar_ghw.mli: Hd_hypergraph Search_types
