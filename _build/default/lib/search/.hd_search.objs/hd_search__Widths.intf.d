lib/search/widths.mli: Format Hd_hypergraph Search_types
