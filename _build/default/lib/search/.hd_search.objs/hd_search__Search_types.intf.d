lib/search/search_types.mli: Format
