lib/search/search_types.ml: Format
