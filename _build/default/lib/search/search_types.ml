type outcome = Exact of int | Bounds of { lb : int; ub : int }

type result = {
  outcome : outcome;
  visited : int;
  generated : int;
  elapsed : float;
  ordering : int array option;
}

type budget = { time_limit : float option; max_states : int option }

let no_budget = { time_limit = None; max_states = None }
let with_time seconds = { time_limit = Some seconds; max_states = None }

let value = function Exact w -> w | Bounds { ub; _ } -> ub

let pp_outcome ppf = function
  | Exact w -> Format.fprintf ppf "%d (exact)" w
  | Bounds { lb; ub } -> Format.fprintf ppf "[%d,%d]" lb ub
