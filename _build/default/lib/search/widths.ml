module Hypergraph = Hd_hypergraph.Hypergraph
open Search_types

type report = {
  n_vertices : int;
  n_hyperedges : int;
  primal_edges : int;
  acyclic : bool;
  tw : outcome;
  ghw : outcome;
  hw : int option;
  fhw_upper : float;
}

let analyze ?(time_limit = 10.0) ?(seed = 1) h =
  let share = time_limit /. 3.0 in
  let budget = { time_limit = Some share; max_states = None } in
  let primal = Hypergraph.primal h in
  let acyclic = Hd_hypergraph.Acyclicity.is_acyclic h in
  let tw = (Astar_tw.solve ~budget ~seed primal).outcome in
  let ghw = (Bb_ghw.solve ~budget ~seed h).outcome in
  let hw =
    try Some (fst (Det_k_decomp.hypertree_width ~time_limit:share h))
    with Det_k_decomp.Timeout -> None
  in
  let fhw_upper =
    let rng = Random.State.make [| seed |] in
    let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
    let ws = Hd_core.Eval.of_hypergraph h in
    Hd_core.Eval.fhw_width ws sigma
  in
  {
    n_vertices = Hypergraph.n_vertices h;
    n_hyperedges = Hypergraph.n_edges h;
    primal_edges = Hd_graph.Graph.m primal;
    acyclic;
    tw;
    ghw;
    hw;
    fhw_upper;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d vertices, %d hyperedges (%d primal edges)@,\
     alpha-acyclic: %b@,\
     treewidth:     %a@,\
     ghw:           %a@,\
     hw:            %s@,\
     fhw:           <= %.3f@]"
    r.n_vertices r.n_hyperedges r.primal_edges r.acyclic pp_outcome r.tw
    pp_outcome r.ghw
    (match r.hw with Some w -> string_of_int w | None -> "(timeout)")
    r.fhw_upper
