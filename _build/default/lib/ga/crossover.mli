(** The six permutation crossover operators of Section 4.3.2, after
    Larranaga et al.

    Every operator maps two parent permutations of equal length to one
    offspring permutation (the paper's pairwise recombination applies
    each operator twice with the parents swapped to fill both slots). *)

type t =
  | PMX  (** partially-mapped crossover *)
  | CX  (** cycle crossover *)
  | OX1  (** order crossover *)
  | OX2  (** order-based crossover *)
  | POS  (** position-based crossover — the paper's winner (Table 6.1) *)
  | AP  (** alternating-position crossover *)

val all : t list
val name : t -> string
val of_name : string -> t option

(** [apply op rng parent1 parent2] is one offspring permutation. *)
val apply : t -> Random.State.t -> int array -> int array -> int array
