type t = PMX | CX | OX1 | OX2 | POS | AP

let all = [ PMX; CX; OX1; OX2; POS; AP ]

let name = function
  | PMX -> "PMX"
  | CX -> "CX"
  | OX1 -> "OX1"
  | OX2 -> "OX2"
  | POS -> "POS"
  | AP -> "AP"

let of_name s =
  match String.uppercase_ascii s with
  | "PMX" -> Some PMX
  | "CX" -> Some CX
  | "OX1" -> Some OX1
  | "OX2" -> Some OX2
  | "POS" -> Some POS
  | "AP" -> Some AP
  | _ -> None

(* two distinct cut points a <= b *)
let cut_points rng n =
  let a = Random.State.int rng n and b = Random.State.int rng n in
  if a <= b then (a, b) else (b, a)

(* a random subset of positions (coin toss per position), never empty
   nor full so the operator actually mixes *)
let random_positions rng n =
  let s = Array.init n (fun _ -> Random.State.bool rng) in
  s.(Random.State.int rng n) <- true;
  s.(Random.State.int rng n) <- false;
  s

let positions_of parent =
  let pos = Array.make (Array.length parent) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) parent;
  pos

let pmx rng p1 p2 =
  let n = Array.length p1 in
  let a, b = cut_points rng n in
  let child = Array.copy p2 in
  Array.blit p1 a child a (b - a + 1);
  let pos1 = positions_of p1 in
  let in_segment v =
    let i = pos1.(v) in
    i >= a && i <= b
  in
  for i = 0 to n - 1 do
    if i < a || i > b then begin
      (* follow the mapping p1[j] -> p2[j] out of the segment *)
      let v = ref p2.(i) in
      while in_segment !v do
        v := p2.(pos1.(!v))
      done;
      child.(i) <- !v
    end
  done;
  child

let cx _rng p1 p2 =
  let pos1 = positions_of p1 in
  let child = Array.copy p2 in
  let i = ref 0 in
  (* the first cycle: positions reachable from 0 via i -> pos1(p2(i)) *)
  let continue = ref true in
  while !continue do
    child.(!i) <- p1.(!i);
    i := pos1.(p2.(!i));
    if !i = 0 then continue := false
  done;
  child

let ox1 rng p1 p2 =
  let n = Array.length p1 in
  let a, b = cut_points rng n in
  let child = Array.make n (-1) in
  Array.blit p1 a child a (b - a + 1);
  let used = Array.make n false in
  for i = a to b do
    used.(p1.(i)) <- true
  done;
  (* walk p2 starting after the segment, filling positions after the
     segment first, wrapping around *)
  let fill_at = ref ((b + 1) mod n) in
  for k = 0 to n - 1 do
    let v = p2.((b + 1 + k) mod n) in
    if not used.(v) then begin
      child.(!fill_at) <- v;
      used.(v) <- true;
      fill_at := (!fill_at + 1) mod n;
      while !fill_at >= a && !fill_at <= b do
        fill_at := (!fill_at + 1) mod n
      done
    end
  done;
  child

let ox2 rng p1 p2 =
  let n = Array.length p1 in
  let selected = random_positions rng n in
  (* values of p2 at the selected positions, kept in p2's order *)
  let chosen = Array.make n false in
  for i = 0 to n - 1 do
    if selected.(i) then chosen.(p2.(i)) <- true
  done;
  let replacement = ref [] in
  for i = n - 1 downto 0 do
    if selected.(i) then replacement := p2.(i) :: !replacement
  done;
  (* rewrite those values inside p1, in p2's order *)
  let child = Array.copy p1 in
  let queue = ref !replacement in
  for i = 0 to n - 1 do
    if chosen.(p1.(i)) then begin
      match !queue with
      | v :: rest ->
          child.(i) <- v;
          queue := rest
      | [] -> assert false
    end
  done;
  child

let pos_xover rng p1 p2 =
  let n = Array.length p1 in
  let selected = random_positions rng n in
  let child = Array.make n (-1) in
  let used = Array.make n false in
  for i = 0 to n - 1 do
    if selected.(i) then begin
      child.(i) <- p2.(i);
      used.(p2.(i)) <- true
    end
  done;
  let fill = ref 0 in
  for i = 0 to n - 1 do
    let v = p1.(i) in
    if not used.(v) then begin
      while child.(!fill) >= 0 do
        incr fill
      done;
      child.(!fill) <- v;
      used.(v) <- true
    end
  done;
  child

let ap rng p1 p2 =
  let n = Array.length p1 in
  let child = Array.make n (-1) in
  let used = Array.make n false in
  let k = ref 0 in
  let take v =
    if not used.(v) then begin
      child.(!k) <- v;
      used.(v) <- true;
      incr k
    end
  in
  (* the coin decides which parent leads; then strictly alternate *)
  let first, second = if Random.State.bool rng then (p1, p2) else (p2, p1) in
  for i = 0 to n - 1 do
    take first.(i);
    take second.(i)
  done;
  child

let apply op rng p1 p2 =
  assert (Array.length p1 = Array.length p2);
  if Array.length p1 <= 1 then Array.copy p1
  else
    match op with
    | PMX -> pmx rng p1 p2
    | CX -> cx rng p1 p2
    | OX1 -> ox1 rng p1 p2
    | OX2 -> ox2 rng p1 p2
    | POS -> pos_xover rng p1 p2
    | AP -> ap rng p1 p2
