(** The six permutation mutation operators of Section 4.3.3.

    Every operator rewrites a permutation in place into another
    permutation of the same elements. *)

type t =
  | DM  (** displacement: move a random substring elsewhere *)
  | EM  (** exchange: swap two random elements *)
  | ISM  (** insertion: move one element — the paper's winner (Table 6.2) *)
  | SIM  (** simple inversion: reverse a random substring in place *)
  | IVM  (** inversion: move a random substring elsewhere, reversed *)
  | SM  (** scramble: shuffle a random substring *)

val all : t list
val name : t -> string
val of_name : string -> t option

(** [apply op rng sigma] mutates [sigma] in place. *)
val apply : t -> Random.State.t -> int array -> unit
