lib/ga/mutation.mli: Random
