lib/ga/mutation.ml: Array Random String
