lib/ga/ga_engine.mli: Crossover Mutation Random
