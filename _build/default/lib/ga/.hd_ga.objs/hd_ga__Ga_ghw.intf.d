lib/ga/ga_ghw.mli: Ga_engine Hd_core Hd_hypergraph
