lib/ga/local_search.ml: Array Hd_core Hd_graph Hd_hypergraph Mutation Random Unix
