lib/ga/saiga_ghw.ml: Array Crossover Float Ga_engine Hd_core Hd_hypergraph Mutation Random Unix
