lib/ga/local_search.mli: Hd_graph Hd_hypergraph Mutation
