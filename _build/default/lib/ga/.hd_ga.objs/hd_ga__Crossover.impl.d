lib/ga/crossover.ml: Array Random String
