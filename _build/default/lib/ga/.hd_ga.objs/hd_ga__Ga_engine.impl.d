lib/ga/ga_engine.ml: Array Crossover Hd_core List Mutation Random Unix
