lib/ga/saiga_ghw.mli: Crossover Ga_engine Hd_hypergraph Mutation
