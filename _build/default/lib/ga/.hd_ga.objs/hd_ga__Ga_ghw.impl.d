lib/ga/ga_ghw.ml: Ga_engine Hd_core Hd_hypergraph Random
