lib/ga/crossover.mli: Random
