lib/ga/ga_tw.mli: Ga_engine Hd_core Hd_graph Hd_hypergraph
