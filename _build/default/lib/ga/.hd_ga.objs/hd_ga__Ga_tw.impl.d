lib/ga/ga_tw.ml: Float Ga_engine Hd_core Hd_graph Hd_hypergraph
