type t = DM | EM | ISM | SIM | IVM | SM

let all = [ DM; EM; ISM; SIM; IVM; SM ]

let name = function
  | DM -> "DM"
  | EM -> "EM"
  | ISM -> "ISM"
  | SIM -> "SIM"
  | IVM -> "IVM"
  | SM -> "SM"

let of_name s =
  match String.uppercase_ascii s with
  | "DM" -> Some DM
  | "EM" -> Some EM
  | "ISM" -> Some ISM
  | "SIM" -> Some SIM
  | "IVM" -> Some IVM
  | "SM" -> Some SM
  | _ -> None

let cut_points rng n =
  let a = Random.State.int rng n and b = Random.State.int rng n in
  if a <= b then (a, b) else (b, a)

(* remove sigma.[a..b], insert it (possibly reversed) so that it starts
   at a random position of the shortened string *)
let displace rng sigma ~reversed =
  let n = Array.length sigma in
  let a, b = cut_points rng n in
  let len = b - a + 1 in
  let segment = Array.sub sigma a len in
  if reversed then begin
    let k = Array.length segment in
    for i = 0 to (k / 2) - 1 do
      let t = segment.(i) in
      segment.(i) <- segment.(k - 1 - i);
      segment.(k - 1 - i) <- t
    done
  end;
  let rest = Array.make (n - len) 0 in
  Array.blit sigma 0 rest 0 a;
  Array.blit sigma (b + 1) rest a (n - b - 1);
  let at = Random.State.int rng (n - len + 1) in
  Array.blit rest 0 sigma 0 at;
  Array.blit segment 0 sigma at len;
  Array.blit rest at sigma (at + len) (n - len - at)

let exchange rng sigma =
  let n = Array.length sigma in
  let i = Random.State.int rng n and j = Random.State.int rng n in
  let t = sigma.(i) in
  sigma.(i) <- sigma.(j);
  sigma.(j) <- t

let insertion rng sigma =
  let n = Array.length sigma in
  let i = Random.State.int rng n in
  let v = sigma.(i) in
  let j = Random.State.int rng n in
  if i < j then Array.blit sigma (i + 1) sigma i (j - i)
  else if j < i then Array.blit sigma j sigma (j + 1) (i - j);
  sigma.(j) <- v

let simple_inversion rng sigma =
  let n = Array.length sigma in
  let a, b = cut_points rng n in
  let i = ref a and j = ref b in
  while !i < !j do
    let t = sigma.(!i) in
    sigma.(!i) <- sigma.(!j);
    sigma.(!j) <- t;
    incr i;
    decr j
  done

let scramble rng sigma =
  let a, b = cut_points rng (Array.length sigma) in
  for i = b downto a + 1 do
    let j = a + Random.State.int rng (i - a + 1) in
    let t = sigma.(i) in
    sigma.(i) <- sigma.(j);
    sigma.(j) <- t
  done

let apply op rng sigma =
  if Array.length sigma > 1 then
    match op with
    | DM -> displace rng sigma ~reversed:false
    | EM -> exchange rng sigma
    | ISM -> insertion rng sigma
    | SIM -> simple_inversion rng sigma
    | IVM -> displace rng sigma ~reversed:true
    | SM -> scramble rng sigma
