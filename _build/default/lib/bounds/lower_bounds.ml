module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Contract_graph = Hd_graph.Contract_graph

let default_rng = lazy (Random.State.make [| 0x5eed |])

let get_rng = function Some rng -> rng | None -> Lazy.force default_rng

let degeneracy g =
  let cg = Contract_graph.of_graph g in
  let lb = ref 0 in
  (* no randomness needed: any minimum-degree vertex gives the same
     bound value *)
  let rng = Random.State.make [| 0 |] in
  while Contract_graph.n_alive cg > 0 do
    let v = Contract_graph.min_degree_vertex cg ~rng in
    lb := max !lb (Contract_graph.degree cg v);
    Contract_graph.remove cg v
  done;
  !lb

(* Shared driver for the two contraction bounds: [pick] selects the
   vertex whose degree is recorded, after which it is contracted into
   its minimum-degree neighbour (or removed when isolated). *)
let contraction_bound_on ?rng make_cg ~pick =
  let rng = get_rng rng in
  let cg = make_cg () in
  let lb = ref 0 in
  while Contract_graph.n_alive cg > 0 do
    match pick cg rng with
    | None ->
        (* no recordable vertex remains (gamma_R on a clique): finish by
           noting a clique of size s has treewidth s - 1 *)
        lb := max !lb (Contract_graph.n_alive cg - 1);
        List.iter (Contract_graph.remove cg) (Contract_graph.alive_list cg)
    | Some v ->
        lb := max !lb (Contract_graph.degree cg v);
        if Contract_graph.degree cg v = 0 then Contract_graph.remove cg v
        else
          let u = Contract_graph.min_degree_neighbor cg v ~rng in
          Contract_graph.contract cg u v
  done;
  !lb

let minor_min_width_on ?rng make_cg =
  contraction_bound_on ?rng make_cg ~pick:(fun cg rng ->
      Some (Contract_graph.min_degree_vertex cg ~rng))

let minor_min_width ?rng g =
  minor_min_width_on ?rng (fun () -> Contract_graph.of_graph g)

let minor_gamma_r_on ?rng make_cg =
  contraction_bound_on ?rng make_cg ~pick:(fun cg rng ->
      (* first vertex in ascending degree order not adjacent to all of
         its predecessors; on a clique no such vertex exists *)
      let by_degree =
        Contract_graph.alive_list cg
        |> List.map (fun v -> (Contract_graph.degree cg v, Random.State.bits rng, v))
        |> List.sort compare
        |> List.map (fun (_, _, v) -> v)
      in
      let rec find preceding = function
        | [] -> None
        | v :: rest ->
            if List.for_all (fun u -> Contract_graph.mem_edge cg v u) preceding
            then find (v :: preceding) rest
            else Some v
      in
      find [] by_degree)

let minor_gamma_r ?rng g =
  minor_gamma_r_on ?rng (fun () -> Contract_graph.of_graph g)

let best_over_trials ?rng ~trials f =
  let rng = get_rng rng in
  let rec go i acc = if i >= trials then acc else go (i + 1) (max acc (f rng)) in
  go 0 0

let treewidth ?rng ?(trials = 3) g =
  best_over_trials ?rng ~trials (fun rng ->
      max (minor_min_width ~rng g) (minor_gamma_r ~rng g))

(* snapshot the live part of the elimination graph directly — no Graph
   materialisation on the search's hot path *)
let treewidth_of_elim ?rng ?(trials = 3) eg =
  let make_cg () = Contract_graph.of_elim_graph ~t_elim:eg in
  best_over_trials ?rng ~trials (fun rng ->
      max (minor_min_width_on ~rng make_cg) (minor_gamma_r_on ~rng make_cg))

let tw_ksc_width_on ?rng ?(trials = 3) ~max_edge_size make_cg =
  let k = max 1 max_edge_size in
  let bound_of d = (d + 1 + k - 1) / k in
  best_over_trials ?rng ~trials (fun rng ->
      (* run the minor-min-width contraction but convert each recorded
         degree through the k-set-cover bound *)
      let cg = make_cg () in
      let lb = ref 0 in
      while Contract_graph.n_alive cg > 0 do
        let v = Contract_graph.min_degree_vertex cg ~rng in
        lb := max !lb (bound_of (Contract_graph.degree cg v));
        if Contract_graph.degree cg v = 0 then Contract_graph.remove cg v
        else
          let u = Contract_graph.min_degree_neighbor cg v ~rng in
          Contract_graph.contract cg u v
      done;
      !lb)

let tw_ksc_width ?rng ?trials ~max_edge_size g =
  tw_ksc_width_on ?rng ?trials ~max_edge_size (fun () ->
      Contract_graph.of_graph g)

let ghw ?rng ?trials h =
  tw_ksc_width ?rng ?trials
    ~max_edge_size:(Hd_hypergraph.Hypergraph.max_edge_size h)
    (Hd_hypergraph.Hypergraph.primal h)

let ghw_of_elim ?rng ?trials ~max_edge_size eg =
  tw_ksc_width_on ?rng ?trials ~max_edge_size (fun () ->
      Contract_graph.of_elim_graph ~t_elim:eg)
