lib/bounds/lower_bounds.ml: Hd_graph Hd_hypergraph Lazy List Random
