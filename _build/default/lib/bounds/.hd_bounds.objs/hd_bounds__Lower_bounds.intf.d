lib/bounds/lower_bounds.mli: Hd_graph Hd_hypergraph Random
