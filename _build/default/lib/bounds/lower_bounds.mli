(** Lower-bound heuristics for treewidth and generalized hypertree
    width.

    Treewidth bounds: all three heuristics exploit that the treewidth of
    a graph is at least the treewidth of any of its minors.

    - {!degeneracy} (MMD): repeatedly delete a minimum-degree vertex;
      the maximum minimum degree seen lower-bounds treewidth.
    - {!minor_min_width} (Figure 4.7, MMD+(least-c)): contract a
      minimum-degree vertex into its least-degree neighbour instead of
      deleting it.
    - {!minor_gamma_r} (Figure 4.8): same contraction process driven by
      the Ramachandramurthi gamma parameter — the degree of the first
      vertex, in ascending degree order, not adjacent to all its
      predecessors.

    GHW bound: {!tw_ksc_width} (Figure 8.1) combines a treewidth bound
    with the k-set-cover bound: a clique minor of size [d + 1] forces a
    bag of [d + 1] vertices, which no GHD can cover with fewer than
    [ceil((d + 1) / k)] hyperedges of size at most [k]. *)

(** [degeneracy g] is the MMD bound on [tw(g)]. *)
val degeneracy : Hd_graph.Graph.t -> int

(** [minor_min_width ?rng g] is the MMD+ bound; ties are broken at
    random. *)
val minor_min_width : ?rng:Random.State.t -> Hd_graph.Graph.t -> int

(** [minor_gamma_r ?rng g] is the minor-gamma_R bound. *)
val minor_gamma_r : ?rng:Random.State.t -> Hd_graph.Graph.t -> int

(** [treewidth ?rng ?trials g] is the best of {!minor_min_width} and
    {!minor_gamma_r} over [trials] randomised runs each (default 3) —
    the combined bound A*-tw uses. *)
val treewidth : ?rng:Random.State.t -> ?trials:int -> Hd_graph.Graph.t -> int

(** [treewidth_of_elim ?rng ?trials eg] applies {!treewidth} to the live
    part of an elimination graph — the [h]-value of a search state. *)
val treewidth_of_elim :
  ?rng:Random.State.t -> ?trials:int -> Hd_graph.Elim_graph.t -> int

(** [tw_ksc_width ?rng ?trials ~max_edge_size g] is the GHW lower bound
    of Figure 8.1 applied to the primal(-minor) graph [g] of a
    hypergraph with largest hyperedge size [max_edge_size]: the maximum
    over the contraction sequence of [ceil((d + 1) / k)]. *)
val tw_ksc_width :
  ?rng:Random.State.t -> ?trials:int -> max_edge_size:int -> Hd_graph.Graph.t -> int

(** [ghw ?rng ?trials h] is [tw_ksc_width] on [h]'s primal graph. *)
val ghw : ?rng:Random.State.t -> ?trials:int -> Hd_hypergraph.Hypergraph.t -> int

(** [ghw_of_elim ?rng ?trials ~max_edge_size eg] is the GHW bound for
    the remaining hypergraph during search, computed on the live primal
    minor [eg]. *)
val ghw_of_elim :
  ?rng:Random.State.t ->
  ?trials:int ->
  max_edge_size:int ->
  Hd_graph.Elim_graph.t ->
  int
