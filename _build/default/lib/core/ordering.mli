(** Elimination orderings (Definition 15).

    An elimination ordering of an n-vertex (hyper)graph is a permutation
    [sigma] of [0 .. n - 1], stored as an array: [sigma.(i)] is the i-th
    vertex of the ordering.  Following the paper's bucket-elimination
    convention, vertices are {e eliminated from the back}: [sigma.(n-1)]
    is eliminated first and [sigma.(0)] last, so [sigma.(0)] labels the
    root bag of the derived decomposition. *)

type t = int array

(** [is_permutation sigma] checks that [sigma] is a permutation of
    [0 .. length - 1]. *)
val is_permutation : t -> bool

(** [identity n] is [(0, 1, ..., n - 1)]. *)
val identity : int -> t

(** [random rng n] is a uniformly random permutation (Fisher-Yates). *)
val random : Random.State.t -> int -> t

(** [positions sigma] is the inverse permutation: [positions sigma].(v)
    is the index of vertex [v] in [sigma]. *)
val positions : t -> int array

(** [reverse sigma] is the reversed ordering. *)
val reverse : t -> t

val pp : Format.formatter -> t -> unit
