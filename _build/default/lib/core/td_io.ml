module Bitset = Hd_graph.Bitset

let to_string ~n_vertices td =
  let buf = Buffer.create 1024 in
  let k = Tree_decomposition.n_nodes td in
  let width_plus_one =
    Array.fold_left
      (fun acc b -> max acc (Bitset.cardinal b))
      0 td.Tree_decomposition.bags
  in
  Buffer.add_string buf
    (Printf.sprintf "s td %d %d %d\n" k width_plus_one n_vertices);
  Array.iteri
    (fun i b ->
      Buffer.add_string buf (Printf.sprintf "b %d" (i + 1));
      Bitset.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (v + 1))) b;
      Buffer.add_char buf '\n')
    td.Tree_decomposition.bags;
  List.iter
    (fun (child, parent) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" (child + 1) (parent + 1)))
    (Tree_decomposition.edges td);
  Buffer.contents buf

let parse_string text =
  let n_bags = ref (-1) and n_vertices = ref 0 in
  let bags = ref [] and tree_edges = ref [] in
  let handle lineno line =
    let line = String.trim line in
    if line = "" then ()
    else
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | "c" :: _ -> ()
      | [ "s"; "td"; bags'; _width; vertices ] ->
          if !n_bags >= 0 then failwith "Td_io: duplicate solution line";
          n_bags := int_of_string bags';
          n_vertices := int_of_string vertices
      | "b" :: id :: vs ->
          bags :=
            (int_of_string id - 1, List.map (fun v -> int_of_string v - 1) vs)
            :: !bags
      | [ a; b ] -> tree_edges := (int_of_string a - 1, int_of_string b - 1) :: !tree_edges
      | _ -> failwith (Printf.sprintf "Td_io: bad line %d: %s" lineno line)
  in
  String.split_on_char '\n' text |> List.iteri handle;
  if !n_bags < 0 then failwith "Td_io: missing solution line";
  let k = !n_bags in
  let bag_sets = Array.init (max k 1) (fun _ -> Bitset.create (max !n_vertices 1)) in
  List.iter
    (fun (id, vs) ->
      if id < 0 || id >= k then failwith "Td_io: bag id out of range";
      List.iter
        (fun v ->
          if v < 0 || v >= !n_vertices then failwith "Td_io: vertex out of range";
          Bitset.add bag_sets.(id) v)
        vs)
    !bags;
  (* root at bag 0 and orient the undirected tree edges by BFS *)
  let adjacency = Array.make (max k 1) [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= k || b < 0 || b >= k then
        failwith "Td_io: edge endpoint out of range";
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    !tree_edges;
  let parent = Array.make (max k 1) (-2) in
  if k > 0 then begin
    let queue = Queue.create () in
    Queue.push 0 queue;
    parent.(0) <- -1;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun j ->
          if parent.(j) = -2 then begin
            parent.(j) <- i;
            Queue.push j queue
          end)
        adjacency.(i)
    done;
    Array.iteri
      (fun i p ->
        if i < k && p = -2 then
          failwith "Td_io: tree edges do not connect all bags")
      parent
  end;
  Tree_decomposition.make
    ~bags:(Array.sub bag_sets 0 k)
    ~parent:(Array.sub parent 0 k)

let write_file path ~n_vertices td =
  let oc = open_out path in
  output_string oc (to_string ~n_vertices td);
  close_out oc

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
