(** Generalized hypertree decompositions (Definition 13).

    A GHD is a tree decomposition together with a hyperedge label
    lambda(p) on every node such that chi(p) is contained in the union
    of the vertices of lambda(p).  Its width is the largest |lambda(p)|;
    the minimum over all GHDs of a hypergraph is the generalized
    hypertree width, ghw.

    By the paper's Chapter 3 result (Theorems 2 and 3), ghw is reached
    by bucket elimination along some elimination ordering when every
    bag's set cover is solved exactly — {!of_ordering} with
    [`Exact] realises exactly that construction. *)

type t = private {
  td : Tree_decomposition.t;
  lambda : int array array;  (** hyperedge indices labelling each node *)
}

type cover_strategy =
  [ `Greedy of Random.State.t option  (** Figure 7.2, random tie-breaks *)
  | `Exact  (** branch-and-bound set cover — optimal lambda labels *) ]

(** [make h ~td ~lambda] packages a GHD.
    @raise Invalid_argument when [lambda] and [td] disagree in length. *)
val make : td:Tree_decomposition.t -> lambda:int array array -> t

(** [width ghd] is [max_p |lambda(p)|]. *)
val width : t -> int

(** [valid h ghd] checks all three GHD conditions against [h]. *)
val valid : Hd_hypergraph.Hypergraph.t -> t -> bool

(** [is_complete h ghd] checks Definition 14: every hyperedge [e] has a
    node [p] with [e] inside [chi(p)] and [e] a member of
    [lambda(p)]. *)
val is_complete : Hd_hypergraph.Hypergraph.t -> t -> bool

(** [complete h ghd] applies Lemma 2: attach, for every hyperedge not
    yet witnessed, a fresh child node labelled by exactly that
    hyperedge.  Width is unchanged (unless the input had width 0). *)
val complete : Hd_hypergraph.Hypergraph.t -> t -> t

(** [of_ordering h sigma ~cover] runs bucket elimination along [sigma]
    and covers every bag with hyperedges of [h] according to [cover]
    (Section 2.5.2). *)
val of_ordering :
  Hd_hypergraph.Hypergraph.t -> Ordering.t -> cover:cover_strategy -> t

(** [of_tree_decomposition h td ~cover] covers the bags of an arbitrary
    tree decomposition of [h], the generic TD-to-GHD conversion of
    Section 2.5.2. *)
val of_tree_decomposition :
  Hd_hypergraph.Hypergraph.t ->
  Tree_decomposition.t ->
  cover:cover_strategy ->
  t

val pp : Hd_hypergraph.Hypergraph.t -> Format.formatter -> t -> unit
