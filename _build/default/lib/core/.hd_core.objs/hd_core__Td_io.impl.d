lib/core/td_io.ml: Array Buffer Hd_graph List Printf Queue String Tree_decomposition
