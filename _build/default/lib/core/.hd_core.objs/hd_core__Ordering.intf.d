lib/core/ordering.mli: Format Random
