lib/core/leaf_normal_form.mli: Ghd Hd_hypergraph Ordering Tree_decomposition
