lib/core/eval.mli: Hashtbl Hd_graph Hd_hypergraph Ordering Random
