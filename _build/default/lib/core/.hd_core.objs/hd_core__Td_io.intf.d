lib/core/td_io.mli: Tree_decomposition
