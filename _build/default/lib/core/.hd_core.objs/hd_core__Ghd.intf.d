lib/core/ghd.mli: Format Hd_hypergraph Ordering Random Tree_decomposition
