lib/core/ordering_heuristics.ml: Array Hd_graph Hd_hypergraph List Random
