lib/core/ordering_heuristics.mli: Hd_graph Hd_hypergraph Ordering Random
