lib/core/ordering.ml: Array Format Random String
