lib/core/eval.ml: Array Hd_graph Hd_hypergraph Hd_setcover List
