lib/core/leaf_normal_form.ml: Array Ghd Hd_graph Hd_hypergraph List Tree_decomposition
