lib/core/tree_decomposition.ml: Array Buffer Format Hd_graph Hd_hypergraph List Ordering Printf String
