lib/core/ghd.ml: Array Format Hd_graph Hd_hypergraph Hd_setcover List Random String Tree_decomposition
