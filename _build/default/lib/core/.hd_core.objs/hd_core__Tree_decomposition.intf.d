lib/core/tree_decomposition.mli: Format Hd_graph Hd_hypergraph Ordering
