module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover

type t = { td : Tree_decomposition.t; lambda : int array array }

type cover_strategy = [ `Greedy of Random.State.t option | `Exact ]

let make ~td ~lambda =
  if Array.length lambda <> Tree_decomposition.n_nodes td then
    invalid_arg "Ghd.make: lambda length mismatch";
  { td; lambda }

let width ghd =
  Array.fold_left (fun acc l -> max acc (Array.length l)) 0 ghd.lambda

let lambda_vertices h lambda_p ~n =
  let vars = Bitset.create n in
  Array.iter
    (fun e -> Array.iter (Bitset.add vars) (Hypergraph.edge h e))
    lambda_p;
  vars

let valid h ghd =
  Tree_decomposition.valid_for_hypergraph h ghd.td
  && Array.for_all
       (fun i ->
         let vars =
           lambda_vertices h ghd.lambda.(i) ~n:(Hypergraph.n_vertices h)
         in
         Bitset.subset (Tree_decomposition.bag ghd.td i) vars)
       (Array.init (Tree_decomposition.n_nodes ghd.td) (fun i -> i))

let witness_node h ghd e =
  let edge = Hypergraph.edge h e in
  let k = Tree_decomposition.n_nodes ghd.td in
  let rec go i =
    if i >= k then None
    else
      let bag = Tree_decomposition.bag ghd.td i in
      if
        Array.for_all (Bitset.mem bag) edge
        && Array.exists (( = ) e) ghd.lambda.(i)
      then Some i
      else go (i + 1)
  in
  go 0

let is_complete h ghd =
  let rec go e =
    e >= Hypergraph.n_edges h || (witness_node h ghd e <> None && go (e + 1))
  in
  go 0

let complete h ghd =
  let missing =
    List.filter
      (fun e -> witness_node h ghd e = None)
      (List.init (Hypergraph.n_edges h) (fun e -> e))
  in
  if missing = [] then ghd
  else begin
    let k = Tree_decomposition.n_nodes ghd.td in
    let extra = List.length missing in
    let bags = Array.make (k + extra) (Bitset.create 0) in
    let parent = Array.make (k + extra) (-1) in
    for i = 0 to k - 1 do
      bags.(i) <- Tree_decomposition.bag ghd.td i;
      parent.(i) <- ghd.td.Tree_decomposition.parent.(i)
    done;
    let lambda = Array.make (k + extra) [||] in
    Array.blit ghd.lambda 0 lambda 0 k;
    List.iteri
      (fun j e ->
        (* hang a node labelled exactly by e under a node whose bag
           contains e; condition 1 of the input guarantees one exists *)
        let host =
          let rec find i =
            if i >= k then
              invalid_arg "Ghd.complete: input violates condition 1"
            else if
              Array.for_all
                (Bitset.mem (Tree_decomposition.bag ghd.td i))
                (Hypergraph.edge h e)
            then i
            else find (i + 1)
          in
          find 0
        in
        let node = k + j in
        bags.(node) <- Hypergraph.edge_set h e;
        parent.(node) <- host;
        lambda.(node) <- [| e |])
      missing;
    { td = Tree_decomposition.make ~bags ~parent; lambda }
  end

let cover_bag h bag ~cover =
  let problem = { Set_cover.universe = bag; hypergraph = h } in
  match cover with
  | `Greedy rng -> Array.of_list (Set_cover.greedy ?rng problem)
  | `Exact -> Array.of_list (Set_cover.exact problem)

let of_tree_decomposition h td ~cover =
  let k = Tree_decomposition.n_nodes td in
  let lambda =
    Array.init k (fun i -> cover_bag h (Tree_decomposition.bag td i) ~cover)
  in
  { td; lambda }

let of_ordering h sigma ~cover =
  of_tree_decomposition h (Tree_decomposition.of_ordering_hypergraph h sigma) ~cover

let pp h ppf ghd =
  Format.fprintf ppf "@[<v>generalized hypertree decomposition: width %d"
    (width ghd);
  for i = 0 to Tree_decomposition.n_nodes ghd.td - 1 do
    Format.fprintf ppf "@,node %d: chi=%a lambda={%s}" i Bitset.pp
      (Tree_decomposition.bag ghd.td i)
      (String.concat ","
         (List.map (Hypergraph.edge_name h) (Array.to_list ghd.lambda.(i))))
  done;
  Format.fprintf ppf "@]"
