(** The leaf normal form of tree decompositions (Chapter 3).

    A tree decomposition of a hypergraph H is in leaf normal form when
    (1) its leaves are in one-to-one correspondence with H's hyperedges,
    the leaf of hyperedge [e] labelled exactly by [e], and (2) an
    internal node carries a vertex Y iff it lies on a path between two
    leaves carrying Y (Definition 18).

    [transform] implements algorithm Transform Leaf Normal Form
    (Figure 3.1); by Theorem 1 every bag of the result is contained in
    some bag of the input.  [ordering_of] then extracts an elimination
    ordering sorted by deepest-common-ancestor depth (Lemma 13); by
    Theorem 2 the width of the hypergraph under that ordering — with
    exact set covering — is at most the width of any GHD whose tree
    decomposition was transformed.  Together these give the paper's
    central search-space result: elimination orderings suffice for
    generalized hypertree width. *)

type t = {
  td : Tree_decomposition.t;
  leaf_of_edge : int array;  (** node id of each hyperedge's leaf *)
}

(** [transform h td] rewrites [td] into leaf normal form.
    @raise Invalid_argument when [td] is not a tree decomposition of
    [h]. *)
val transform : Hd_hypergraph.Hypergraph.t -> Tree_decomposition.t -> t

(** [is_leaf_normal_form h lnf] checks both conditions of
    Definition 18. *)
val is_leaf_normal_form : Hd_hypergraph.Hypergraph.t -> t -> bool

(** [ordering_of h lnf] is an elimination ordering sorted by ascending
    depth of each vertex's deepest common ancestor of its leaves
    (shallower vertices are eliminated later, matching Lemma 13's
    premise).
    @raise Invalid_argument when some vertex of [h] lies in no
    hyperedge. *)
val ordering_of : Hd_hypergraph.Hypergraph.t -> t -> Ordering.t

(** [ordering_for_ghd h ghd] composes the pipeline of Theorem 2: view
    the GHD's tree decomposition, transform to leaf normal form, extract
    the ordering.  Bucket elimination with exact covers along the result
    has width at most [Ghd.width ghd]. *)
val ordering_for_ghd : Hd_hypergraph.Hypergraph.t -> Ghd.t -> Ordering.t
