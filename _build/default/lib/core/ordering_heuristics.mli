(** Greedy elimination-ordering heuristics (Section 4.4.2).

    Each heuristic grows the ordering from the back — position [n-1] is
    chosen and eliminated first, matching the paper's description of
    min-fill ("place it at position n") and this library's convention
    that [sigma.(n-1)] is eliminated first.  Ties are broken uniformly
    at random with the supplied state, as the paper's implementations
    do. *)

(** [min_fill rng g] repeatedly eliminates a vertex adding the fewest
    fill edges — the upper-bound heuristic of A*-tw and QuickBB. *)
val min_fill : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** [min_degree rng g] repeatedly eliminates a vertex of minimum current
    degree. *)
val min_degree : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** [max_cardinality rng g] is maximum cardinality search: vertices are
    numbered from position [0] upwards, each maximising the number of
    already-numbered neighbours; on chordal graphs the result is a
    perfect elimination ordering. *)
val max_cardinality : Random.State.t -> Hd_graph.Graph.t -> Ordering.t

(** [min_fill_hypergraph rng h] is {!min_fill} on [h]'s primal graph. *)
val min_fill_hypergraph : Random.State.t -> Hd_hypergraph.Hypergraph.t -> Ordering.t

(** [best_of rng g ~trials ~eval] runs [min_fill] and [min_degree]
    [trials] times each and returns the ordering with the smallest
    [eval] value together with that value. *)
val best_of :
  Random.State.t ->
  Hd_graph.Graph.t ->
  trials:int ->
  eval:(Ordering.t -> int) ->
  Ordering.t * int
