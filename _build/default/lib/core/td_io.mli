(** Tree decompositions in the PACE challenge .td interchange format.

    The format the treewidth community standardised:

    {[ c optional comments
       s td <num_bags> <max_bag_size> <num_vertices>
       b <bag_id> <v1> <v2> ...      (bag ids and vertices 1-based)
       <bag_id> <bag_id>             (tree edges)               ]}

    Writing and parsing this format lets decompositions produced here be
    checked by external validators and vice versa. *)

(** [to_string td] renders [td]; [n_vertices] is the vertex count of the
    underlying (hyper)graph recorded in the header. *)
val to_string : n_vertices:int -> Tree_decomposition.t -> string

(** [parse_string text] parses a .td file into a decomposition (rooted
    at the first bag).
    @raise Failure on malformed input or a disconnected edge set. *)
val parse_string : string -> Tree_decomposition.t

val write_file : string -> n_vertices:int -> Tree_decomposition.t -> unit
val parse_file : string -> Tree_decomposition.t
