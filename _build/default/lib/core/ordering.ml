type t = int array

let is_permutation sigma =
  let n = Array.length sigma in
  let seen = Array.make n false in
  let rec go i =
    i >= n
    || sigma.(i) >= 0
       && sigma.(i) < n
       && (not seen.(sigma.(i)))
       &&
       (seen.(sigma.(i)) <- true;
        go (i + 1))
  in
  go 0

let identity n = Array.init n (fun i -> i)

let random rng n =
  let sigma = identity n in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = sigma.(i) in
    sigma.(i) <- sigma.(j);
    sigma.(j) <- t
  done;
  sigma

let positions sigma =
  let pos = Array.make (Array.length sigma) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) sigma;
  pos

let reverse sigma =
  let n = Array.length sigma in
  Array.init n (fun i -> sigma.(n - 1 - i))

let pp ppf sigma =
  Format.fprintf ppf "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int sigma)))
