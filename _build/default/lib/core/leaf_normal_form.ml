module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph

type t = { td : Tree_decomposition.t; leaf_of_edge : int array }

(* The transformation adds and deletes nodes, so it works on a mutable
   adjacency representation and compacts into a Tree_decomposition at
   the end. *)

type work = {
  mutable bags : Bitset.t array;
  mutable adj : int list array; (* undirected tree adjacency *)
  mutable deleted : bool array;
  mutable count : int; (* number of allocated slots *)
}

let work_of_td td =
  let k = Tree_decomposition.n_nodes td in
  let adj = Array.make (max k 1) [] in
  List.iter
    (fun (c, p) ->
      adj.(c) <- p :: adj.(c);
      adj.(p) <- c :: adj.(p))
    (Tree_decomposition.edges td);
  {
    bags = Array.init k (fun i -> Bitset.copy (Tree_decomposition.bag td i));
    adj;
    deleted = Array.make (max k 1) false;
    count = k;
  }

let add_node w bag host =
  if w.count >= Array.length w.bags then begin
    let cap = max 8 (2 * Array.length w.bags) in
    let bags = Array.make cap (Bitset.create 0) in
    Array.blit w.bags 0 bags 0 w.count;
    w.bags <- bags;
    let adj = Array.make cap [] in
    Array.blit w.adj 0 adj 0 w.count;
    w.adj <- adj;
    let deleted = Array.make cap false in
    Array.blit w.deleted 0 deleted 0 w.count;
    w.deleted <- deleted
  end;
  let id = w.count in
  w.count <- w.count + 1;
  w.bags.(id) <- bag;
  w.adj.(id) <- [ host ];
  w.adj.(host) <- id :: w.adj.(host);
  id

let live_neighbors w i = List.filter (fun j -> not (w.deleted.(j))) w.adj.(i)

let degree w i = List.length (live_neighbors w i)

let transform h td =
  if not (Tree_decomposition.valid_for_hypergraph h td) then
    invalid_arg "Leaf_normal_form.transform: not a tree decomposition of h";
  let n = Hypergraph.n_vertices h in
  let m = Hypergraph.n_edges h in
  let w = work_of_td td in
  let original = Tree_decomposition.n_nodes td in
  (* step 2: one new leaf per hyperedge, hung off a covering node *)
  let leaf_of_edge =
    Array.init m (fun e ->
        let edge = Hypergraph.edge h e in
        let host =
          let rec find i =
            if i >= original then assert false
            else if Array.for_all (Bitset.mem w.bags.(i)) edge then i
            else find (i + 1)
          in
          find 0
        in
        add_node w (Hypergraph.edge_set h e) host)
  in
  let is_mapped = Array.make w.count false in
  Array.iter (fun l -> is_mapped.(l) <- true) leaf_of_edge;
  (* step 3: iteratively delete unmapped leaves (unrooted sense: degree
     <= 1) *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to original - 1 do
      if (not w.deleted.(i)) && (not is_mapped.(i)) && degree w i <= 1 then begin
        w.deleted.(i) <- true;
        changed := true
      end
    done
  done;
  (* Root the remaining tree to run subtree computations.  Prefer an
     internal node as root so every mapped leaf is a tree leaf. *)
  let live = ref [] in
  for i = w.count - 1 downto 0 do
    if not w.deleted.(i) then live := i :: !live
  done;
  let root =
    match List.filter (fun i -> not is_mapped.(i)) !live with
    | r :: _ -> r
    | [] -> ( match !live with r :: _ -> r | [] -> assert false)
  in
  let parent = Array.make w.count (-2) in
  let order = ref [] in
  (* DFS from root recording a top-down order *)
  let rec dfs i p =
    parent.(i) <- p;
    order := i :: !order;
    List.iter (fun j -> if j <> p then dfs j i) (live_neighbors w i)
  in
  dfs root (-1);
  let top_down = List.rev !order in
  let bottom_up = !order in
  (* step 4: for each vertex Y, keep Y at an internal node only if it
     lies on a path between two leaves carrying Y.  leaf_count.(i) = how
     many Y-leaves live in the subtree of i. *)
  let leaf_count = Array.make w.count 0 in
  let branching = Array.make w.count 0 in
  for y = 0 to n - 1 do
    let total = ref 0 in
    List.iter
      (fun i ->
        leaf_count.(i) <- 0;
        branching.(i) <- 0)
      top_down;
    List.iter
      (fun i ->
        if is_mapped.(i) && Bitset.mem w.bags.(i) y then begin
          leaf_count.(i) <- leaf_count.(i) + 1;
          incr total
        end;
        if parent.(i) >= 0 then begin
          if leaf_count.(i) > 0 then
            branching.(parent.(i)) <- branching.(parent.(i)) + 1;
          leaf_count.(parent.(i)) <- leaf_count.(parent.(i)) + leaf_count.(i)
        end)
      bottom_up;
    List.iter
      (fun i ->
        if (not is_mapped.(i)) && Bitset.mem w.bags.(i) y then
          let c = leaf_count.(i) in
          let on_path = (c > 0 && c < !total) || branching.(i) >= 2 in
          if not on_path then Bitset.remove w.bags.(i) y)
      top_down
  done;
  (* compact into a Tree_decomposition *)
  let live_nodes = Array.of_list (List.filter (fun i -> not w.deleted.(i)) (List.init w.count (fun i -> i))) in
  let new_id = Array.make w.count (-1) in
  Array.iteri (fun fresh old -> new_id.(old) <- fresh) live_nodes;
  let bags = Array.map (fun old -> w.bags.(old)) live_nodes in
  let parents =
    Array.map
      (fun old -> if parent.(old) = -1 then -1 else new_id.(parent.(old)))
      live_nodes
  in
  {
    td = Tree_decomposition.make ~bags ~parent:parents;
    leaf_of_edge = Array.map (fun l -> new_id.(l)) leaf_of_edge;
  }

let is_leaf_normal_form h lnf =
  let td = lnf.td in
  let k = Tree_decomposition.n_nodes td in
  let m = Hypergraph.n_edges h in
  (* condition 1: the mapped leaves are exactly the leaves, bijectively,
     and each is labelled by its hyperedge *)
  let is_mapped = Array.make k false in
  let cond1 =
    Array.length lnf.leaf_of_edge = m
    && Array.for_all (fun l -> l >= 0 && l < k) lnf.leaf_of_edge
    &&
    (Array.iter (fun l -> is_mapped.(l) <- true) lnf.leaf_of_edge;
     let rec distinct seen = function
       | [] -> true
       | l :: rest -> (not (List.mem l seen)) && distinct (l :: seen) rest
     in
     distinct [] (Array.to_list lnf.leaf_of_edge))
    && Array.for_all
         (fun e ->
           let l = lnf.leaf_of_edge.(e) in
           Bitset.equal (Tree_decomposition.bag td l) (Hypergraph.edge_set h e))
         (Array.init m (fun e -> e))
    (* every unrooted leaf is mapped *)
    && Array.for_all
         (fun i ->
           let deg =
             List.length (Tree_decomposition.children td i)
             + if Tree_decomposition.root td = i then 0 else 1
           in
           deg > 1 || is_mapped.(i))
         (Array.init k (fun i -> i))
  in
  cond1 && Tree_decomposition.valid_for_hypergraph h td

let depth_array td =
  let k = Tree_decomposition.n_nodes td in
  let depth = Array.make k (-1) in
  let rec compute i =
    if depth.(i) >= 0 then depth.(i)
    else begin
      let p = td.Tree_decomposition.parent.(i) in
      let d = if p = -1 then 0 else compute p + 1 in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to k - 1 do
    ignore (compute i)
  done;
  depth

let lca td depth a b =
  let parent = td.Tree_decomposition.parent in
  let a = ref a and b = ref b in
  while depth.(!a) > depth.(!b) do
    a := parent.(!a)
  done;
  while depth.(!b) > depth.(!a) do
    b := parent.(!b)
  done;
  while !a <> !b do
    a := parent.(!a);
    b := parent.(!b)
  done;
  !a

let ordering_of h lnf =
  let n = Hypergraph.n_vertices h in
  let depth = depth_array lnf.td in
  let dca_depth =
    Array.init n (fun v ->
        match Hypergraph.incident h v with
        | [] ->
            invalid_arg
              "Leaf_normal_form.ordering_of: vertex in no hyperedge"
        | e :: rest ->
            let node =
              List.fold_left
                (fun acc e' -> lca lnf.td depth acc lnf.leaf_of_edge.(e'))
                lnf.leaf_of_edge.(e) rest
            in
            depth.(node))
  in
  let sigma = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare dca_depth.(a) dca_depth.(b)) sigma;
  sigma

let ordering_for_ghd h ghd = ordering_of h (transform h ghd.Ghd.td)
