module Bitset = Hd_graph.Bitset
module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph

type t = { bags : Bitset.t array; parent : int array }

let make ~bags ~parent =
  let k = Array.length bags in
  if Array.length parent <> k then
    invalid_arg "Tree_decomposition.make: length mismatch";
  let roots = ref 0 in
  Array.iter
    (fun p ->
      if p = -1 then incr roots
      else if p < 0 || p >= k then
        invalid_arg "Tree_decomposition.make: parent out of range")
    parent;
  if k > 0 && !roots <> 1 then
    invalid_arg "Tree_decomposition.make: exactly one root required";
  (* acyclicity: walking parent pointers must terminate; since there is
     one -1 and k nodes, it suffices that each walk reaches the root *)
  Array.iteri
    (fun i _ ->
      let steps = ref 0 and cur = ref i in
      while !cur <> -1 do
        incr steps;
        if !steps > k then
          invalid_arg "Tree_decomposition.make: parent pointers contain a cycle";
        cur := parent.(!cur)
      done)
    parent;
  { bags; parent }

let n_nodes td = Array.length td.bags

let root td =
  let rec go i =
    if i >= Array.length td.parent then invalid_arg "Tree_decomposition.root"
    else if td.parent.(i) = -1 then i
    else go (i + 1)
  in
  go 0

let children td i =
  let acc = ref [] in
  for j = Array.length td.parent - 1 downto 0 do
    if td.parent.(j) = i then acc := j :: !acc
  done;
  !acc

let bag td i = td.bags.(i)

let width td =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b)) 0 td.bags - 1

let is_leaf td i = children td i = []

let edges td =
  let acc = ref [] in
  for i = Array.length td.parent - 1 downto 0 do
    if td.parent.(i) <> -1 then acc := (i, td.parent.(i)) :: !acc
  done;
  !acc

let connectedness_holds ~n td =
  let k = n_nodes td in
  if k = 0 then true
  else begin
    (* For each vertex v: the occurrence count must equal the size of
       one connected block.  Count occurrences and count tree edges both
       of whose endpoints contain v; connectedness of a forest slice
       holds iff edges = occurrences - 1 (when occurrences > 0). *)
    let occurrences = Array.make n 0 in
    let internal_edges = Array.make n 0 in
    Array.iter (fun b -> Bitset.iter (fun v -> occurrences.(v) <- occurrences.(v) + 1) b) td.bags;
    for i = 0 to k - 1 do
      let p = td.parent.(i) in
      if p <> -1 then
        Bitset.iter
          (fun v -> if Bitset.mem td.bags.(p) v then internal_edges.(v) <- internal_edges.(v) + 1)
          td.bags.(i)
    done;
    let rec go v =
      v >= n
      || (occurrences.(v) = 0 || internal_edges.(v) = occurrences.(v) - 1)
         && go (v + 1)
    in
    go 0
  end

let covers_all_sets td sets =
  List.for_all
    (fun set ->
      Array.exists
        (fun b -> List.for_all (fun v -> Bitset.mem b v) set)
        td.bags)
    sets

let valid_for_graph g td =
  covers_all_sets td (List.map (fun (u, v) -> [ u; v ]) (Graph.edges g))
  && connectedness_holds ~n:(Graph.n g) td

let valid_for_hypergraph h td =
  covers_all_sets td (Hypergraph.edges h)
  && connectedness_holds ~n:(Hypergraph.n_vertices h) td

let of_ordering g sigma =
  let n = Graph.n g in
  if Array.length sigma <> n then
    invalid_arg "Tree_decomposition.of_ordering: ordering length mismatch";
  if n = 0 then make ~bags:[||] ~parent:[||]
  else begin
    let pos = Ordering.positions sigma in
    let eg = Elim_graph.of_graph g in
    let bags = Array.init n (fun _ -> Bitset.create n) in
    let parent = Array.make n (-1) in
    (* eliminate from the back of sigma; node i is sigma.(i)'s bucket *)
    for i = n - 1 downto 0 do
      let v = sigma.(i) in
      let nbrs = Elim_graph.neighbors eg v in
      Bitset.add bags.(i) v;
      List.iter (Bitset.add bags.(i)) nbrs;
      (* connect to the bucket of the neighbour eliminated next, i.e.
         the neighbour with the largest position; with no neighbour the
         bucket hangs off the next bucket in the ordering so the result
         stays a tree *)
      let link =
        List.fold_left (fun acc u -> max acc pos.(u)) (-1) nbrs
      in
      if i > 0 then parent.(i) <- (if link >= 0 then link else i - 1);
      Elim_graph.eliminate eg v
    done;
    make ~bags ~parent
  end

let of_ordering_hypergraph h sigma = of_ordering (Hypergraph.primal h) sigma

(* contract child-into-parent (or parent-into-child) when one bag
   contains the other; repeat to fixpoint *)
let simplify td =
  let k = n_nodes td in
  if k <= 1 then td
  else begin
    (* union-find over nodes; merging keeps the larger bag *)
    let target = Array.init k (fun i -> i) in
    let rec find i = if target.(i) = i then i else find target.(i) in
    let bags = Array.map Bitset.copy td.bags in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to k - 1 do
        let p = td.parent.(i) in
        if p >= 0 then begin
          let ri = find i and rp = find p in
          if ri <> rp then begin
            if Bitset.subset bags.(ri) bags.(rp) then begin
              target.(ri) <- rp;
              changed := true
            end
            else if Bitset.subset bags.(rp) bags.(ri) then begin
              target.(rp) <- ri;
              changed := true
            end
          end
        end
      done
    done;
    (* compact representatives *)
    let fresh = Array.make k (-1) in
    let count = ref 0 in
    for i = 0 to k - 1 do
      if find i = i then begin
        fresh.(i) <- !count;
        incr count
      end
    done;
    let new_bags = Array.make !count (Bitset.create 0) in
    for i = 0 to k - 1 do
      if fresh.(i) >= 0 then new_bags.(fresh.(i)) <- bags.(i)
    done;
    (* parent of a representative: walk the original parent chain until
       leaving the merged class *)
    let new_parent = Array.make !count (-1) in
    for i = 0 to k - 1 do
      if fresh.(i) >= 0 then begin
        let rec up j =
          if j = -1 then -1
          else
            let r = find j in
            if r = i then up td.parent.(j) else fresh.(r)
        in
        new_parent.(fresh.(i)) <- up td.parent.(i)
      end
    done;
    make ~bags:new_bags ~parent:new_parent
  end

let to_dot ?(name = "td") td =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=box];\n" name);
  Array.iteri
    (fun i b ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"{%s}\"];\n" i
           (String.concat "," (List.map string_of_int (Bitset.elements b)))))
    td.bags;
  Array.iteri
    (fun i p ->
      if p >= 0 then Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" i p))
    td.parent;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf td =
  Format.fprintf ppf "@[<v>tree decomposition: %d nodes, width %d" (n_nodes td)
    (width td);
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "@,node %d (parent %d): %a" i td.parent.(i) Bitset.pp b)
    td.bags;
  Format.fprintf ppf "@]"
