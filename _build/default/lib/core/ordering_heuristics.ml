module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Hypergraph = Hd_hypergraph.Hypergraph

let random_argmin rng xs ~key =
  let best = ref max_int and ties = ref 0 and pick = ref (-1) in
  List.iter
    (fun v ->
      let k = key v in
      if k < !best then begin
        best := k;
        ties := 1;
        pick := v
      end
      else if k = !best then begin
        incr ties;
        if Random.State.int rng !ties = 0 then pick := v
      end)
    xs;
  !pick

let greedy_elimination rng g ~key =
  let n = Graph.n g in
  let eg = Elim_graph.of_graph g in
  let sigma = Array.make n 0 in
  for i = n - 1 downto 0 do
    let v = random_argmin rng (Elim_graph.alive_list eg) ~key:(key eg) in
    sigma.(i) <- v;
    Elim_graph.eliminate eg v
  done;
  sigma

let min_fill rng g = greedy_elimination rng g ~key:Elim_graph.fill_count
let min_degree rng g = greedy_elimination rng g ~key:Elim_graph.degree

let max_cardinality rng g =
  let n = Graph.n g in
  let numbered = Array.make n false in
  let weight = Array.make n 0 in
  let sigma = Array.make n 0 in
  let remaining = ref (List.init n (fun v -> v)) in
  for i = 0 to n - 1 do
    (* maximise numbered-neighbour count = minimise its negation *)
    let v = random_argmin rng !remaining ~key:(fun v -> -weight.(v)) in
    sigma.(i) <- v;
    numbered.(v) <- true;
    List.iter
      (fun u -> if not numbered.(u) then weight.(u) <- weight.(u) + 1)
      (Graph.neighbors g v);
    remaining := List.filter (( <> ) v) !remaining
  done;
  sigma

let min_fill_hypergraph rng h = min_fill rng (Hypergraph.primal h)

let best_of rng g ~trials ~eval =
  assert (trials > 0);
  let candidates =
    List.concat_map
      (fun heuristic -> List.init trials (fun _ -> heuristic rng g))
      [ min_fill; min_degree ]
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun (best_sigma, best_w) sigma ->
          let w = eval sigma in
          if w < best_w then (sigma, w) else (best_sigma, best_w))
        (first, eval first) rest
