(** Tree decompositions of hypergraphs (Definition 11).

    A tree decomposition is a rooted tree whose nodes carry vertex bags
    (the labelling function chi) such that (1) every hyperedge is
    contained in some bag and (2) the nodes containing any fixed vertex
    form a connected subtree.  Its width is the largest bag size minus
    one; the treewidth of a (hyper)graph is the minimum width over its
    tree decompositions.

    By Lemma 1 a tree of bags decomposes a hypergraph iff it decomposes
    the hypergraph's primal graph, so construction algorithms here
    operate on graphs while validation accepts either view. *)

type t = private {
  bags : Hd_graph.Bitset.t array;  (** [bags.(i)] is chi of node [i] *)
  parent : int array;
      (** [parent.(i)] is node [i]'s parent, [-1] for the root *)
}

(** [make ~bags ~parent] checks tree-shapedness (single root, acyclic
    parent pointers) and builds the decomposition.
    @raise Invalid_argument when [parent] does not describe a rooted
    tree or lengths differ. *)
val make : bags:Hd_graph.Bitset.t array -> parent:int array -> t

val n_nodes : t -> int
val root : t -> int
val children : t -> int -> int list
val bag : t -> int -> Hd_graph.Bitset.t

(** [width td] is [max_i |bags.(i)| - 1]. *)
val width : t -> int

(** [is_leaf td i] holds when node [i] has no children. *)
val is_leaf : t -> int -> bool

(** [edges td] lists the tree edges [(child, parent)]. *)
val edges : t -> (int * int) list

(** [valid_for_graph g td] checks both decomposition conditions against
    the regular graph [g] (every edge inside a bag, connectedness). *)
val valid_for_graph : Hd_graph.Graph.t -> t -> bool

(** [valid_for_hypergraph h td] checks both conditions against the
    hypergraph [h]. *)
val valid_for_hypergraph : Hd_hypergraph.Hypergraph.t -> t -> bool

(** [connectedness_holds ~n td] checks condition 2 alone: for every
    vertex in [0 .. n - 1], the nodes whose bags contain it induce a
    connected subtree. *)
val connectedness_holds : n:int -> t -> bool

(** [of_ordering g sigma] runs vertex elimination (Figure 2.12,
    equivalently bucket elimination, Figure 2.10) on graph [g] along
    [sigma], eliminating [sigma.(n-1)] first.  Node [i] of the result is
    the bucket of vertex [sigma.(i)]; the root is [sigma.(0)]'s bucket.
    The width of the result is the width of [g] under [sigma]. *)
val of_ordering : Hd_graph.Graph.t -> Ordering.t -> t

(** [of_ordering_hypergraph h sigma] is [of_ordering] on [h]'s primal
    graph. *)
val of_ordering_hypergraph : Hd_hypergraph.Hypergraph.t -> Ordering.t -> t

(** [simplify td] contracts away every node whose bag is a subset of a
    neighbour's bag — the standard "small" normal form.  Validity and
    width are preserved (width can only shrink in the degenerate case
    of a single all-subsumed chain); bucket-elimination decompositions
    typically shrink a lot.  Idempotent. *)
val simplify : t -> t

(** [to_dot ?name td] renders the decomposition in Graphviz dot format,
    one record-shaped node per bag. *)
val to_dot : ?name:string -> t -> string

val pp : Format.formatter -> t -> unit
