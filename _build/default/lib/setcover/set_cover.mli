(** Set covering of decomposition bags by hyperedges.

    Bucket elimination for generalized hypertree decompositions
    (Section 2.5.2) turns every bag chi(p) into a set cover instance:
    pick the fewest hyperedges whose union contains the bag.  The paper
    uses the classical greedy heuristic (Figure 7.2) inside the genetic
    algorithms and an exact solver (an IP solver in the thesis; a
    branch-and-bound here) inside BB-ghw / A*-ghw, where exactness makes
    the search an exact method for generalized hypertree width. *)

type problem = {
  universe : Hd_graph.Bitset.t;  (** the vertices to cover *)
  hypergraph : Hd_hypergraph.Hypergraph.t;
      (** the hyperedges available for covering *)
}

(** [greedy ?rng problem] covers the universe by repeatedly choosing a
    hyperedge containing the most still-uncovered vertices, ties broken
    uniformly at random when [rng] is given (first index otherwise).
    Returns the chosen hyperedge indices.
    @raise Invalid_argument when some universe vertex lies in no
    hyperedge. *)
val greedy : ?rng:Random.State.t -> problem -> int list

(** [exact ?ub problem] is an optimal cover, found by branch and bound
    seeded with the greedy solution.  [ub] prunes: if no cover smaller
    than [ub] exists the greedy cover (possibly of size [>= ub]) is
    returned.
    @raise Invalid_argument when some universe vertex lies in no
    hyperedge. *)
val exact : ?ub:int -> problem -> int list

(** [exact_size ?cache ?ub problem] is [List.length (exact problem)],
    with optional memoisation keyed on the universe — bags recur
    massively across branch-and-bound states. *)
val exact_size :
  ?cache:(Hd_graph.Bitset.t, int) Hashtbl.t -> ?ub:int -> problem -> int

(** [greedy_size ?rng problem] is [List.length (greedy problem)]. *)
val greedy_size : ?rng:Random.State.t -> problem -> int

(** [cover_size_lower_bound ~universe_size ~max_set_size] is the trivial
    k-set-cover lower bound [ceil(universe_size / max_set_size)]: no set
    covers more than [max_set_size] elements. *)
val cover_size_lower_bound : universe_size:int -> max_set_size:int -> int

(** [is_cover problem chosen] checks that the union of the chosen
    hyperedges contains the universe. *)
val is_cover : problem -> int list -> bool
