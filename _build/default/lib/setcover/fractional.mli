(** Fractional edge covers.

    Relaxing the set cover integrality gives the fractional cover
    number rho*(bag): assign a weight in [0, 1] to every hyperedge so
    each bag vertex receives total weight at least 1, minimising the
    weight sum.  Replacing exact covers with rho* in the width of an
    ordering yields the fractional hypertree width, the third width
    measure of the hypertree decomposition literature, with
    fhw <= ghw <= hw. *)

(** [cover_value problem] is rho* of the bag, computed by the simplex
    method on the covering LP.
    @raise Invalid_argument when some bag vertex lies in no
    hyperedge. *)
val cover_value : Set_cover.problem -> float

(** [cover problem] also returns the per-hyperedge weights (paired
    with hyperedge indices; only candidates touching the bag appear). *)
val cover : Set_cover.problem -> float * (int * float) list
