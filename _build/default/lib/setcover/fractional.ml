module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph

let cover problem =
  let { Set_cover.universe; hypergraph } = problem in
  Bitset.iter
    (fun v ->
      if Hypergraph.incident hypergraph v = [] then
        invalid_arg "Fractional.cover: vertex lies in no hyperedge")
    universe;
  let vertices = Bitset.elements universe in
  if vertices = [] then (0.0, [])
  else begin
    (* candidate edges: those meeting the bag *)
    let seen = Hashtbl.create 16 in
    let candidates =
      List.concat_map (fun v -> Hypergraph.incident hypergraph v) vertices
      |> List.filter (fun e ->
             if Hashtbl.mem seen e then false
             else begin
               Hashtbl.add seen e ();
               true
             end)
      |> Array.of_list
    in
    let n = Array.length candidates in
    let m = List.length vertices in
    let constraints =
      Array.of_list
        (List.map
           (fun v ->
             Array.map
               (fun e ->
                 if Array.exists (( = ) v) (Hypergraph.edge hypergraph e) then
                   1.0
                 else 0.0)
               candidates)
           vertices)
    in
    match
      Simplex.minimize ~objective:(Array.make n 1.0) ~constraints
        ~bounds:(Array.make m 1.0)
    with
    | Simplex.Optimal { value; solution } ->
        let weights =
          Array.to_list
            (Array.mapi (fun j e -> (e, solution.(j))) candidates)
          |> List.filter (fun (_, w) -> w > 1e-9)
        in
        (value, weights)
    | Simplex.Infeasible | Simplex.Unbounded ->
        (* cannot happen: weight 1 on every candidate is feasible and
           the objective is bounded below by 0 *)
        assert false
  end

let cover_value problem = fst (cover problem)
