type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let epsilon = 1e-9

(* Tableau layout: [m] constraint rows and one objective row (last);
   columns are the structural variables, surplus variables, artificial
   variables, and the right-hand side (last).  [basis.(row)] is the
   variable currently basic in that row. *)
type tableau = {
  rows : float array array;
  basis : int array;
  m : int;
  cols : int; (* total variable columns, excluding the rhs *)
}

let pivot t ~row ~col =
  let width = t.cols + 1 in
  let scale = t.rows.(row).(col) in
  for j = 0 to width - 1 do
    t.rows.(row).(j) <- t.rows.(row).(j) /. scale
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let factor = t.rows.(i).(col) in
      if abs_float factor > epsilon then
        for j = 0 to width - 1 do
          t.rows.(i).(j) <- t.rows.(i).(j) -. (factor *. t.rows.(row).(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering variable = smallest index with negative
   reduced cost; leaving row = min ratio, ties by smallest basis
   index.  Guarantees termination. *)
let rec iterate t ~allowed =
  let objective = t.rows.(t.m) in
  let entering = ref (-1) in
  (try
     for j = 0 to t.cols - 1 do
       if allowed j && objective.(j) < -.epsilon then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let best_row = ref (-1) and best_ratio = ref infinity in
    for i = 0 to t.m - 1 do
      let coeff = t.rows.(i).(col) in
      if coeff > epsilon then begin
        let ratio = t.rows.(i).(t.cols) /. coeff in
        if
          ratio < !best_ratio -. epsilon
          || (ratio < !best_ratio +. epsilon
             && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
        then begin
          best_ratio := ratio;
          best_row := i
        end
      end
    done;
    if !best_row < 0 then `Unbounded
    else begin
      pivot t ~row:!best_row ~col;
      iterate t ~allowed
    end
  end

let minimize ~objective ~constraints ~bounds =
  let m = Array.length constraints in
  let n = Array.length objective in
  if Array.length bounds <> m then
    invalid_arg "Simplex.minimize: bounds length mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Simplex.minimize: constraint arity mismatch")
    constraints;
  Array.iter
    (fun b -> if b < 0.0 then invalid_arg "Simplex.minimize: negative bound")
    bounds;
  (* columns: n structural, m surplus, m artificial *)
  let cols = n + m + m in
  let rows = Array.make_matrix (m + 1) (cols + 1) 0.0 in
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      rows.(i).(j) <- constraints.(i).(j)
    done;
    rows.(i).(n + i) <- -1.0;
    (* surplus *)
    rows.(i).(n + m + i) <- 1.0;
    (* artificial *)
    rows.(i).(cols) <- bounds.(i);
    basis.(i) <- n + m + i
  done;
  let t = { rows; basis; m; cols } in
  (* phase 1: minimise the sum of artificials.  The objective row must
     be expressed over the current (artificial) basis: subtract each
     constraint row. *)
  for j = 0 to cols do
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      s := !s +. rows.(i).(j)
    done;
    rows.(m).(j) <- (if j >= n + m && j < cols then 1.0 -. !s else -. !s)
  done;
  (match iterate t ~allowed:(fun _ -> true) with
  | `Unbounded -> assert false (* phase 1 is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = -.rows.(m).(cols) in
  if phase1_value > 1e-6 then Infeasible
  else begin
    (* drive any residual artificial variables out of the basis *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= n + m then begin
        let found = ref false in
        for j = 0 to n + m - 1 do
          if (not !found) && abs_float rows.(i).(j) > epsilon then begin
            pivot t ~row:i ~col:j;
            found := true
          end
        done
        (* a row with no pivotable column is all-zero: redundant *)
      end
    done;
    (* phase 2 objective over the current basis *)
    for j = 0 to cols do
      rows.(m).(j) <- (if j < n then objective.(j) else 0.0)
    done;
    rows.(m).(cols) <- 0.0;
    for i = 0 to m - 1 do
      let b = t.basis.(i) in
      if b < n then begin
        let factor = rows.(m).(b) in
        if abs_float factor > epsilon then
          for j = 0 to cols do
            rows.(m).(j) <- rows.(m).(j) -. (factor *. rows.(i).(j))
          done
      end
    done;
    let artificial_banned j = j < n + m in
    match iterate t ~allowed:artificial_banned with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n 0.0 in
        for i = 0 to m - 1 do
          if t.basis.(i) < n then solution.(t.basis.(i)) <- rows.(i).(cols)
        done;
        let value =
          Array.fold_left ( +. ) 0.0
            (Array.mapi (fun j c -> c *. solution.(j)) objective)
        in
        Optimal { value; solution }
  end
