(** A small dense two-phase simplex solver.

    Solves linear programs of the form

    {[ minimize    c . x
       subject to  A x >= b,   x >= 0 ]}

    with [b >= 0], via surplus + artificial variables and Bland's
    anti-cycling pivot rule.  Problem sizes here are tiny — one
    constraint per bag vertex, one variable per candidate hyperedge —
    so a dense tableau is the right tool.  This stands in for the
    LP/IP solver the literature uses for fractional edge covers. *)

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

(** [minimize ~objective ~constraints ~bounds] solves
    [min objective . x] subject to [constraints.(i) . x >= bounds.(i)]
    and [x >= 0].
    @raise Invalid_argument on dimension mismatch or negative
    bounds. *)
val minimize :
  objective:float array ->
  constraints:float array array ->
  bounds:float array ->
  outcome
