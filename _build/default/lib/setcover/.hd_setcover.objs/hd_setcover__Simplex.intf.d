lib/setcover/simplex.mli:
