lib/setcover/fractional.ml: Array Hashtbl Hd_graph Hd_hypergraph List Set_cover Simplex
