lib/setcover/set_cover.mli: Hashtbl Hd_graph Hd_hypergraph Random
