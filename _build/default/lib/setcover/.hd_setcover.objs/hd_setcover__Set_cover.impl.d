lib/setcover/set_cover.ml: Array Hashtbl Hd_graph Hd_hypergraph List Printf Random
