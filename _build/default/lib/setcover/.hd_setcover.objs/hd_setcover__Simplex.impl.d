lib/setcover/simplex.ml: Array
