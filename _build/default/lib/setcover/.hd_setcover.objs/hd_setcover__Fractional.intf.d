lib/setcover/fractional.mli: Set_cover
