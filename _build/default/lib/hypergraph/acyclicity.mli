(** Alpha-acyclicity and join trees (Definitions 8 and 9).

    A CSP is acyclic when its constraint hypergraph has a join tree: a
    tree over the hyperedges in which, for every vertex, the hyperedges
    containing it form a connected subtree.  The classical GYO
    (Graham / Yu-Ozsoyoglu) reduction decides this in polynomial time:
    repeatedly remove isolated vertices (vertices in at most one
    hyperedge) and hyperedges contained in other hyperedges; the
    hypergraph is acyclic iff everything vanishes.

    Acyclicity characterises width 1: a hypergraph with at least one
    edge has a generalized hypertree decomposition of width 1 iff it is
    alpha-acyclic — the property the test suite cross-checks against
    BB-ghw. *)

(** [is_acyclic h] decides alpha-acyclicity by GYO reduction. *)
val is_acyclic : Hypergraph.t -> bool

(** [join_tree h] is a join tree of [h] — [parent.(i)] gives hyperedge
    [i]'s parent, [-1] for roots (one per connected component) — or
    [None] when [h] is cyclic.

    The tree is built from the GYO elimination order: each eliminated
    hyperedge attaches to a surviving hyperedge containing its
    remaining vertices. *)
val join_tree : Hypergraph.t -> int array option

(** [is_join_tree h parent] checks the join tree conditions for the
    given parent structure over [h]'s hyperedges. *)
val is_join_tree : Hypergraph.t -> int array -> bool
