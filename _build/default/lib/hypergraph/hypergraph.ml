module Bitset = Hd_graph.Bitset
module Graph = Hd_graph.Graph

type t = {
  size : int;
  hyperedges : int array array;
  incidence : int list array; (* vertex -> hyperedge indices, ascending *)
  vertex_names : string array option;
  edge_names : string array option;
}

let sort_uniq_edge ~n vs =
  let vs = List.sort_uniq compare vs in
  if vs = [] then invalid_arg "Hypergraph.create: empty hyperedge";
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Hypergraph.create: vertex %d out of range [0,%d)" v n))
    vs;
  Array.of_list vs

let create ?vertex_names ?edge_names ~n edges =
  (match vertex_names with
  | Some names when Array.length names <> n ->
      invalid_arg "Hypergraph.create: vertex_names length mismatch"
  | _ -> ());
  (match edge_names with
  | Some names when Array.length names <> List.length edges ->
      invalid_arg "Hypergraph.create: edge_names length mismatch"
  | _ -> ());
  let hyperedges = Array.of_list (List.map (sort_uniq_edge ~n) edges) in
  let incidence = Array.make n [] in
  for i = Array.length hyperedges - 1 downto 0 do
    Array.iter (fun v -> incidence.(v) <- i :: incidence.(v)) hyperedges.(i)
  done;
  { size = n; hyperedges; incidence; vertex_names; edge_names }

let n_vertices h = h.size
let n_edges h = Array.length h.hyperedges
let edge h i = h.hyperedges.(i)
let edge_list h i = Array.to_list h.hyperedges.(i)
let edges h = Array.to_list (Array.map Array.to_list h.hyperedges)

let edge_set h i =
  let s = Bitset.create h.size in
  Array.iter (Bitset.add s) h.hyperedges.(i);
  s

let incident h v = h.incidence.(v)

let vertex_name h v =
  match h.vertex_names with
  | Some names -> names.(v)
  | None -> "v" ^ string_of_int v

let edge_name h i =
  match h.edge_names with
  | Some names -> names.(i)
  | None -> "h" ^ string_of_int i

let max_edge_size h =
  Array.fold_left (fun acc e -> max acc (Array.length e)) 0 h.hyperedges

let primal h =
  let g = Graph.create h.size in
  Array.iter
    (fun e ->
      let k = Array.length e in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          Graph.add_edge g e.(i) e.(j)
        done
      done)
    h.hyperedges;
  g

let dual h =
  let m = n_edges h in
  let g = Graph.create m in
  for v = 0 to h.size - 1 do
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter (fun j -> Graph.add_edge g i j) rest;
          pairs rest
    in
    pairs h.incidence.(v)
  done;
  g

let of_graph g =
  create ~n:(Graph.n g) (List.map (fun (u, v) -> [ u; v ]) (Graph.edges g))

let remove_subsumed h =
  let m = n_edges h in
  let subset a b =
    Array.for_all (fun v -> Array.exists (( = ) v) b) a
  in
  let keep = Array.make m true in
  for i = 0 to m - 1 do
    if keep.(i) then
      for j = 0 to m - 1 do
        if
          keep.(i) && i <> j
          && Array.length h.hyperedges.(i) <= Array.length h.hyperedges.(j)
          && subset h.hyperedges.(i) h.hyperedges.(j)
          (* among duplicates keep the smaller index *)
          && (Array.length h.hyperedges.(i) < Array.length h.hyperedges.(j)
             || (keep.(j) && j < i))
        then keep.(i) <- false
      done
  done;
  let surviving = List.filter (fun i -> keep.(i)) (List.init m Fun.id) in
  let edge_names =
    match h.edge_names with
    | None -> None
    | Some names -> Some (Array.of_list (List.map (fun i -> names.(i)) surviving))
  in
  create ?vertex_names:h.vertex_names ?edge_names ~n:h.size
    (List.map (fun i -> Array.to_list h.hyperedges.(i)) surviving)

let covers_vertex h v = h.incidence.(v) <> []

let all_vertices_covered h =
  let rec go v = v >= h.size || (covers_vertex h v && go (v + 1)) in
  go 0

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph %d vertices %d edges" h.size (n_edges h);
  Array.iteri
    (fun i e ->
      Format.fprintf ppf "@,%s(%s)" (edge_name h i)
        (String.concat "," (List.map (vertex_name h) (Array.to_list e))))
    h.hyperedges;
  Format.fprintf ppf "@]"
