(** Hypergraphs on vertices [0 .. n - 1].

    A hypergraph is a set of hyperedges, each a non-empty vertex set
    (Definition 2 of the paper).  Vertices may carry names (CSP variable
    names); hyperedges may carry names (constraint names).  The structure
    is immutable after construction. *)

type t

(** [create ~n edges] builds a hypergraph on [n] vertices.  Each
    hyperedge is deduplicated and sorted; empty hyperedges are rejected.
    @raise Invalid_argument on an empty hyperedge or an out-of-range
    vertex. *)
val create : ?vertex_names:string array -> ?edge_names:string array -> n:int -> int list list -> t

val n_vertices : t -> int
val n_edges : t -> int

(** [edge h i] is the sorted vertex array of hyperedge [i] (do not
    mutate). *)
val edge : t -> int -> int array

val edge_list : t -> int -> int list

(** [edges h] lists all hyperedges as sorted vertex lists, in index
    order. *)
val edges : t -> int list list

(** [edge_set h i] is hyperedge [i] as a bitset (a fresh copy). *)
val edge_set : t -> int -> Hd_graph.Bitset.t

(** [incident h v] lists the indices of hyperedges containing [v]. *)
val incident : t -> int -> int list

(** [vertex_name h v] is the name of [v] ("v<n>" when unnamed). *)
val vertex_name : t -> int -> string

val edge_name : t -> int -> string

(** [max_edge_size h] is the largest hyperedge cardinality, i.e. the
    parameter [k] of the k-set-cover lower bound. *)
val max_edge_size : t -> int

(** [primal h] is the Gaifman (primal) graph of [h] (Definition 3): two
    vertices are adjacent iff they share a hyperedge. *)
val primal : t -> Hd_graph.Graph.t

(** [dual h] is the dual graph (Definition 4): one vertex per hyperedge,
    adjacent iff the hyperedges intersect. *)
val dual : t -> Hd_graph.Graph.t

(** [of_graph g] views a regular graph as a hypergraph with one binary
    hyperedge per graph edge. *)
val of_graph : Hd_graph.Graph.t -> t

(** [remove_subsumed h] drops every hyperedge contained in another
    hyperedge (keeping one copy of duplicates).  The vertex set, the
    primal graph and the generalized hypertree width are unchanged — a
    subsumed edge is never needed in a cover and its condition-1
    coverage is implied — so the searches run on the reduced instance
    for free.  Names of surviving edges are preserved. *)
val remove_subsumed : t -> t

(** [covers_vertex h v] holds when some hyperedge contains [v].  Isolated
    vertices cannot appear in any generalized hypertree decomposition's
    lambda-labels, so most algorithms require every vertex covered. *)
val covers_vertex : t -> int -> bool

(** [all_vertices_covered h] holds when every vertex lies in at least one
    hyperedge. *)
val all_vertices_covered : t -> bool

val pp : Format.formatter -> t -> unit
