(* A small hand-rolled scanner: atoms "name(v1,...,vk)" separated by
   commas; '%' comments to end of line. *)

type token = Ident of string | Lparen | Rparen | Comma | Period

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '\'' -> true
    | _ -> false
  in
  while !i < n do
    let c = text.[!i] in
    if c = '%' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      tokens := Lparen :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := Rparen :: !tokens;
      incr i
    end
    else if c = ',' then begin
      tokens := Comma :: !tokens;
      incr i
    end
    else if c = '.' then begin
      tokens := Period :: !tokens;
      incr i
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := Ident (String.sub text start (!i - start)) :: !tokens
    end
    else failwith (Printf.sprintf "Hg_format: unexpected character %C" c)
  done;
  List.rev !tokens

let parse_string text =
  let vars = Hashtbl.create 64 in
  let var_order = ref [] in
  let intern name =
    match Hashtbl.find_opt vars name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length vars in
        Hashtbl.add vars name id;
        var_order := name :: !var_order;
        id
  in
  let rec parse_atoms tokens acc =
    match tokens with
    | [] -> List.rev acc
    | (Comma | Period) :: rest -> parse_atoms rest acc
    | Ident name :: Lparen :: rest ->
        let rec parse_vars tokens vs =
          match tokens with
          | Ident v :: rest -> parse_vars rest (intern v :: vs)
          | Comma :: rest -> parse_vars rest vs
          | Rparen :: rest -> (List.rev vs, rest)
          | _ -> failwith "Hg_format: unterminated atom"
        in
        let vs, rest = parse_vars rest [] in
        parse_atoms rest ((name, vs) :: acc)
    | _ -> failwith "Hg_format: expected atom"
  in
  let atoms = parse_atoms (tokenize text) [] in
  if atoms = [] then failwith "Hg_format: no atoms";
  let n = Hashtbl.length vars in
  let vertex_names = Array.make n "" in
  List.iteri
    (fun i name -> vertex_names.(n - 1 - i) <- name)
    !var_order;
  let edge_names = Array.of_list (List.map fst atoms) in
  Hypergraph.create ~vertex_names ~edge_names ~n (List.map snd atoms)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string h =
  let buf = Buffer.create 1024 in
  let m = Hypergraph.n_edges h in
  for i = 0 to m - 1 do
    Buffer.add_string buf (Hypergraph.edge_name h i);
    Buffer.add_char buf '(';
    Buffer.add_string buf
      (String.concat ","
         (List.map (Hypergraph.vertex_name h) (Hypergraph.edge_list h i)));
    Buffer.add_string buf (if i = m - 1 then ").\n" else "),\n")
  done;
  Buffer.contents buf
