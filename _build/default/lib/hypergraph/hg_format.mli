(** Reading and writing hypergraphs in the HyperBench / DaimlerChrysler
    text format used by the CSP hypergraph library the paper evaluates
    on: a list of atoms

    {[ edge_name(var1, var2, ...), ]}

    separated by commas (a trailing comma or period is tolerated),
    percent-sign comments, arbitrary whitespace.  Variable names are
    interned in order of first appearance. *)

(** [parse_string text] parses hypergraph text.
    @raise Failure on malformed input. *)
val parse_string : string -> Hypergraph.t

val parse_file : string -> Hypergraph.t

(** [to_string h] renders [h] in the same format, one atom per line. *)
val to_string : Hypergraph.t -> string
