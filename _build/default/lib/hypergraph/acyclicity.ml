module Bitset = Hd_graph.Bitset

(* GYO reduction.  Working edge sets shrink as isolated vertices
   disappear; an edge contained in another (alive) edge is removed and,
   for the join tree, attached to its container. *)
let reduce h =
  let m = Hypergraph.n_edges h in
  let n = Hypergraph.n_vertices h in
  let sets = Array.init m (fun i -> Hypergraph.edge_set h i) in
  let alive = Array.make m true in
  let alive_count = ref m in
  let parent = Array.make m (-1) in
  let occurrences = Array.make n 0 in
  Array.iteri
    (fun i set -> if alive.(i) then Bitset.iter (fun v -> occurrences.(v) <- occurrences.(v) + 1) set)
    sets;
  let changed = ref true in
  while !changed do
    changed := false;
    (* rule 1: drop vertices occurring in at most one alive edge *)
    for i = 0 to m - 1 do
      if alive.(i) then
        Bitset.iter
          (fun v ->
            if occurrences.(v) <= 1 then begin
              Bitset.remove sets.(i) v;
              occurrences.(v) <- 0;
              changed := true
            end)
          sets.(i)
    done;
    (* rule 2: drop edges contained in another alive edge *)
    for i = 0 to m - 1 do
      if alive.(i) then begin
        let container = ref (-1) in
        (try
           for j = 0 to m - 1 do
             if j <> i && alive.(j) && Bitset.subset sets.(i) sets.(j) then begin
               container := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !container >= 0 then begin
          alive.(i) <- false;
          decr alive_count;
          parent.(i) <- !container;
          Bitset.iter
            (fun v -> occurrences.(v) <- occurrences.(v) - 1)
            sets.(i);
          changed := true
        end
        else if Bitset.is_empty sets.(i) then begin
          (* last edge of its component: a root *)
          alive.(i) <- false;
          decr alive_count;
          parent.(i) <- -1;
          changed := true
        end
      end
    done
  done;
  (!alive_count, parent)

let is_acyclic h =
  let remaining, _ = reduce h in
  remaining = 0

let join_tree h =
  let remaining, parent = reduce h in
  if remaining = 0 then Some parent else None

let is_join_tree h parent =
  let m = Hypergraph.n_edges h in
  Array.length parent = m
  && Array.for_all (fun p -> p >= -1 && p < m) parent
  &&
  (* acyclic parent structure *)
  (try
     Array.iteri
       (fun i _ ->
         let steps = ref 0 and cur = ref i in
         while !cur <> -1 do
           incr steps;
           if !steps > m then raise Exit;
           cur := parent.(!cur)
         done)
       parent;
     true
   with Exit -> false)
  &&
  (* connectedness: for each vertex, occurrences form one subtree *)
  let n = Hypergraph.n_vertices h in
  let rec check v =
    if v >= n then true
    else begin
      let has i = Array.exists (( = ) v) (Hypergraph.edge h i) in
      let occurrences = List.filter has (List.init m Fun.id) in
      let internal =
        List.filter (fun i -> parent.(i) <> -1 && has parent.(i)) occurrences
      in
      (occurrences = [] || List.length internal = List.length occurrences - 1)
      && check (v + 1)
    end
  in
  check 0
