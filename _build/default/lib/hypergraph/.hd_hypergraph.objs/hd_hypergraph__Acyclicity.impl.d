lib/hypergraph/acyclicity.ml: Array Fun Hd_graph Hypergraph List
