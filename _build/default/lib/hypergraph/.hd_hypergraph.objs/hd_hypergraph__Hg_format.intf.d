lib/hypergraph/hg_format.mli: Hypergraph
