lib/hypergraph/acyclicity.mli: Hypergraph
