lib/hypergraph/hypergraph.ml: Array Format Fun Hd_graph List Printf String
