lib/hypergraph/hg_format.ml: Array Buffer Hashtbl Hypergraph List Printf String
