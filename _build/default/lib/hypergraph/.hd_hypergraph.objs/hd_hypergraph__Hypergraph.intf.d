lib/hypergraph/hypergraph.mli: Format Hd_graph
