module Hypergraph = Hd_hypergraph.Hypergraph

let adder k =
  if k < 1 then invalid_arg "Hypergraphs.adder: k >= 1 required";
  (* per bit: a, b, t, s, c at offsets 0..4; carry-in is the extra
     vertex n - 1 for bit 0 and c of the previous bit otherwise *)
  let n = (5 * k) + 1 in
  let cin0 = n - 1 in
  let a i = 5 * i
  and b i = (5 * i) + 1
  and t i = (5 * i) + 2
  and s i = (5 * i) + 3
  and c i = (5 * i) + 4 in
  let edges = ref [ [ cin0 ] ] in
  for i = k - 1 downto 0 do
    let cin = if i = 0 then cin0 else c (i - 1) in
    edges :=
      [ a i; b i; t i ]
      :: [ t i; cin; s i ]
      :: [ a i; b i; c i ]
      :: [ t i; cin; c i ]
      :: [ a i; cin; c i ]
      :: [ b i; cin; c i ]
      :: [ s i; c i ]
      :: !edges
  done;
  let names =
    Array.init n (fun v ->
        if v = cin0 then "cin"
        else
          let bit = v / 5 in
          let kind = [| "a"; "b"; "t"; "s"; "c" |].(v mod 5) in
          Printf.sprintf "%s%d" kind bit)
  in
  Hypergraph.create ~vertex_names:names ~n !edges

let bridge k =
  if k < 1 then invalid_arg "Hypergraphs.bridge: k >= 1 required";
  (* k blocks of 9 vertices on two rails; 9 hyperedges per block plus
     one rail tap at each end: 9k + 2 vertices, 9k + 2 hyperedges *)
  let n = (9 * k) + 2 in
  let r0 = n - 2 and r1 = n - 1 in
  let v i j = (9 * i) + j in
  let edges = ref [] in
  for i = k - 1 downto 0 do
    for j = 8 downto 0 do
      let members =
        if j = 0 && i > 0 then
          (* chain to the previous block *)
          [ v (i - 1) 8; v i 0; v i 3 ]
        else [ v i j; v i ((j + 1) mod 9); v i ((j + 3) mod 9) ]
      in
      edges := members :: !edges
    done
  done;
  edges := [ r0; v 0 0 ] :: !edges @ [ [ r1; v (k - 1) 8 ] ];
  Hypergraph.create ~n !edges

let clique k =
  let edges = ref [] in
  for u = k - 1 downto 0 do
    for v = k - 1 downto u + 1 do
      edges := [ u; v ] :: !edges
    done
  done;
  Hypergraph.create ~n:k !edges

let grid2d k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Hypergraphs.grid2d: even k >= 2 required";
  let w = k and h = k / 2 in
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = h - 1 downto 0 do
    for x = w - 1 downto 0 do
      edges := [ id x y; id ((x + 1) mod w) y; id x ((y + 1) mod h) ] :: !edges
    done
  done;
  Hypergraph.create ~n:(w * h) !edges

let grid3d k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Hypergraphs.grid3d: even k >= 2 required";
  let w = k and h = k and d = k / 2 in
  let id x y z = (((z * h) + y) * w) + x in
  let edges = ref [] in
  for z = d - 1 downto 0 do
    for y = h - 1 downto 0 do
      for x = w - 1 downto 0 do
        edges :=
          [
            id x y z;
            id ((x + 1) mod w) y z;
            id x ((y + 1) mod h) z;
            id x y ((z + 1) mod d);
          ]
          :: !edges
      done
    done
  done;
  Hypergraph.create ~n:(w * h * d) !edges

let circuit ~seed ~n_vars ~n_gates =
  if n_vars < 4 then invalid_arg "Hypergraphs.circuit: n_vars >= 4 required";
  if n_gates < (n_vars + 2) / 3 then
    invalid_arg "Hypergraphs.circuit: too few gates to cover all variables";
  let rng = Random.State.make [| seed |] in
  (* the last [gate_count] vertices are gate outputs; the rest are
     primary inputs.  Keep at least a quarter of the vertices as
     inputs. *)
  let gate_count = min n_gates (n_vars - max 2 (n_vars / 4)) in
  let first_output = n_vars - gate_count in
  let covered = Array.make n_vars false in
  (* fan-ins come from strictly earlier vertices, draining
     still-uncovered ones first so every input feeds some gate *)
  let next_uncovered = ref 0 in
  let pop_uncovered below =
    while !next_uncovered < below && covered.(!next_uncovered) do
      incr next_uncovered
    done;
    if !next_uncovered < below then Some !next_uncovered else None
  in
  let edges = ref [] in
  for g = gate_count - 1 downto 0 do
    let out = first_output + g in
    covered.(out) <- true;
    let fanin = min out (2 + Random.State.int rng 2) in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let candidate =
          match pop_uncovered out with
          | Some v -> v
          | None -> Random.State.int rng out
        in
        if List.mem candidate acc then draw acc remaining
        else begin
          covered.(candidate) <- true;
          draw (candidate :: acc) (remaining - 1)
        end
    in
    edges := (out :: draw [] fanin) :: !edges
  done;
  (* extra observation constraints up to the requested edge count *)
  for _ = 1 to n_gates - gate_count do
    let size = 2 + Random.State.int rng 2 in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let candidate =
          match pop_uncovered n_vars with
          | Some v -> v
          | None -> Random.State.int rng n_vars
        in
        if List.mem candidate acc then draw acc remaining
        else begin
          covered.(candidate) <- true;
          draw (candidate :: acc) (remaining - 1)
        end
    in
    edges := draw [] size :: !edges
  done;
  (* gates drain one uncovered vertex per fan-in slot, so everything
     before the last gate's output is covered; assert and absorb any
     straggler into the first edge *)
  let stragglers =
    List.filter (fun v -> not covered.(v)) (List.init n_vars Fun.id)
  in
  let edges =
    match (stragglers, !edges) with
    | [], es -> es
    | vs, e :: rest -> (vs @ e) :: rest
    | vs, [] -> [ vs ]
  in
  Hypergraph.create ~n:n_vars edges

let catalogue : (string * int * int * (unit -> Hypergraph.t)) list =
  let seed_of name = Hashtbl.hash name land 0xffff in
  let circuit_entry name v e =
    (name, v, e, fun () -> circuit ~seed:(seed_of name) ~n_vars:v ~n_gates:e)
  in
  [
    ("adder_15", 76, 106, fun () -> adder 15);
    ("adder_25", 126, 176, fun () -> adder 25);
    ("adder_50", 251, 351, fun () -> adder 50);
    ("adder_75", 376, 526, fun () -> adder 75);
    ("adder_99", 496, 694, fun () -> adder 99);
    ("bridge_15", 137, 137, fun () -> bridge 15);
    ("bridge_25", 227, 227, fun () -> bridge 25);
    ("bridge_50", 452, 452, fun () -> bridge 50);
    ("bridge_75", 677, 677, fun () -> bridge 75);
    ("bridge_99", 893, 893, fun () -> bridge 99);
    ("clique_10", 10, 45, fun () -> clique 10);
    ("clique_15", 15, 105, fun () -> clique 15);
    ("clique_20", 20, 190, fun () -> clique 20);
    ("grid2d_10", 50, 50, fun () -> grid2d 10);
    ("grid2d_14", 98, 98, fun () -> grid2d 14);
    ("grid2d_16", 128, 128, fun () -> grid2d 16);
    ("grid2d_20", 200, 200, fun () -> grid2d 20);
    ("grid3d_4", 32, 32, fun () -> grid3d 4);
    ("grid3d_6", 108, 108, fun () -> grid3d 6);
    ("grid3d_8", 256, 256, fun () -> grid3d 8);
    circuit_entry "b06" 48 50;
    circuit_entry "b08" 170 179;
    circuit_entry "b09" 168 169;
    circuit_entry "b10" 189 200;
    circuit_entry "c499" 202 243;
    circuit_entry "c880" 383 443;
    circuit_entry "NewSystem1" 142 84;
    circuit_entry "NewSystem2" 345 200;
    circuit_entry "NewSystem3" 474 278;
    circuit_entry "NewSystem4" 718 418;
    circuit_entry "s444" 205 202;
    circuit_entry "s510" 236 217;
    circuit_entry "s641" 433 398;
  ]

let by_name name =
  List.find_map
    (fun (n, _, _, build) -> if n = name then Some (build ()) else None)
    catalogue

let names = List.map (fun (n, v, e, _) -> (n, v, e)) catalogue
