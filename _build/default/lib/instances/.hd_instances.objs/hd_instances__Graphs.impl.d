lib/instances/graphs.ml: Array Hashtbl Hd_graph List Printf Random
