lib/instances/graphs.mli: Hd_graph
