lib/instances/hypergraphs.mli: Hd_hypergraph
