lib/instances/hypergraphs.ml: Array Fun Hashtbl Hd_hypergraph List Printf Random
