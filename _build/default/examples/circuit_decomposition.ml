(* Decomposing circuit verification hypergraphs — the workload family
   (adder_k, bridge_k, ISCAS-style circuits) behind Tables 7.1-9.2.
   Compares the heuristic ladder on each instance: greedy min-fill
   covers, GA-ghw, SAIGA-ghw and the exact branch and bound.

   Run with: dune exec examples/circuit_decomposition.exe *)

module Hypergraph = Hd_hypergraph.Hypergraph
module St = Hd_search.Search_types

let ga_config =
  Hd_ga.Ga_engine.default_config ~population_size:60 ~max_iterations:120
    ~seed:11 ()

let saiga_config =
  Hd_ga.Saiga_ghw.default_config ~n_islands:3 ~island_population:30
    ~epoch_length:10 ~max_epochs:12 ()

let evaluate name h =
  let rng = Random.State.make [| 5 |] in
  let ws = Hd_core.Eval.of_hypergraph h in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let min_fill = Hd_core.Eval.ghw_width ~rng ws sigma in
  let ga = (Hd_ga.Ga_ghw.run ga_config h).Hd_ga.Ga_engine.best in
  let saiga = (Hd_ga.Saiga_ghw.run saiga_config h).Hd_ga.Saiga_ghw.best in
  let bb =
    Hd_search.Bb_ghw.solve ~budget:{ St.time_limit = Some 5.0; max_states = None } h
  in
  let lb = Hd_bounds.Lower_bounds.ghw ~rng h in
  let bb_str = Format.asprintf "%a" St.pp_outcome bb.St.outcome in
  Format.printf "%-12s %4d %4d | %8d %6d %6d %12s %6d@." name
    (Hypergraph.n_vertices h) (Hypergraph.n_edges h) min_fill ga saiga bb_str
    lb

let () =
  Format.printf "%-12s %4s %4s | %8s %6s %6s %12s %6s@." "instance" "V" "H"
    "min-fill" "GA" "SAIGA" "BB(5s)" "lb";
  List.iter
    (fun name ->
      match Hd_instances.Hypergraphs.by_name name with
      | Some h -> evaluate name h
      | None -> failwith ("missing instance " ^ name))
    [ "adder_15"; "adder_25"; "bridge_15"; "clique_10"; "clique_15"; "grid2d_10"; "b06" ];
  print_endline "\nThe exact method closes the small instances; the GAs match";
  print_endline "or beat plain min-fill everywhere — the paper's Table 7.1/8.1 shape."
