(* Boolean satisfiability as a CSP (Example 2): random 3-SAT instances
   are translated to CSPs, their constraint hypergraphs decomposed, and
   the formulas decided through generalized hypertree decompositions,
   cross-checked against a backtracking oracle.

   Run with: dune exec examples/sat_solving.exe *)

module Csp = Hd_csp.Csp
module Models = Hd_csp.Models
module Solver = Hd_csp.Solver

let random_3sat rng ~n_vars ~n_clauses =
  List.init n_clauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Random.State.int rng n_vars in
          if Random.State.bool rng then v else -v))

let () =
  let rng = Random.State.make [| 2026 |] in
  (* the worked example of the paper's Example 2 *)
  let phi = [ [ -1; 2; 3 ]; [ 1; -4 ]; [ -3; -5 ] ] in
  let csp = Models.sat phi ~n_vars:5 in
  (match Solver.solve csp ~strategy:`Ghd ~seed:1 with
  | Some a ->
      Format.printf "Example 2 formula satisfied by:";
      Array.iteri (fun v b -> Format.printf " x%d=%b" (v + 1) (b = 1)) a;
      Format.printf "@.@."
  | None -> failwith "Example 2 is satisfiable");

  (* a sweep across the phase-transition ratio *)
  let n_vars = 14 in
  Format.printf "%8s %8s %6s %6s %9s@." "clauses" "ratio" "GHD" "oracle" "ghw(ub)";
  List.iter
    (fun n_clauses ->
      let clauses = random_3sat rng ~n_vars ~n_clauses in
      let csp = Models.sat clauses ~n_vars in
      let h = Csp.hypergraph csp in
      let hrng = Random.State.make [| n_clauses |] in
      let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph hrng h in
      let ws = Hd_core.Eval.of_hypergraph h in
      let width = Hd_core.Eval.ghw_width ~rng:hrng ws sigma in
      let via_ghd = Solver.solve csp ~strategy:`Ghd ~seed:3 <> None in
      let oracle = Csp.solve_backtracking csp <> None in
      assert (via_ghd = oracle);
      Format.printf "%8d %8.2f %6b %6b %9d@." n_clauses
        (float_of_int n_clauses /. float_of_int n_vars)
        via_ghd oracle width)
    [ 10; 20; 30; 40; 50; 60; 70 ];
  print_endline "\nsat_solving: GHD decisions agree with the oracle"
