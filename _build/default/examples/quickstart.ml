(* Quickstart: build a hypergraph, compute decompositions with several
   methods, validate them, and inspect widths.

   Run with: dune exec examples/quickstart.exe *)

module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Ordering = Hd_core.Ordering

let () =
  (* The paper's Example 5 hypergraph: three ternary constraints
     h1(x1,x2,x3), h2(x1,x5,x6), h3(x3,x4,x5).  Vertices are 0-based. *)
  let h =
    Hypergraph.create
      ~vertex_names:[| "x1"; "x2"; "x3"; "x4"; "x5"; "x6" |]
      ~edge_names:[| "h1"; "h2"; "h3" |]
      ~n:6
      [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ]
  in
  Format.printf "%a@.@." Hypergraph.pp h;

  (* 1. A tree decomposition from an elimination ordering (bucket
     elimination, Figure 2.10). *)
  let sigma = [| 0; 2; 4; 1; 3; 5 |] in
  assert (Ordering.is_permutation sigma);
  let td = Td.of_ordering_hypergraph h sigma in
  Format.printf "tree decomposition from %a:@.%a@.@." Ordering.pp sigma Td.pp td;
  assert (Td.valid_for_hypergraph h td);

  (* 2. Upgrade it to a generalized hypertree decomposition by covering
     every bag with hyperedges (Section 2.5.2). *)
  let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
  Format.printf "generalized hypertree decomposition (exact covers):@.%a@.@."
    (Ghd.pp h) ghd;
  assert (Ghd.valid h ghd);

  (* 3. Exact widths via the search algorithms. *)
  let tw =
    match (Hd_search.Astar_tw.solve_hypergraph h).Hd_search.Search_types.outcome with
    | Hd_search.Search_types.Exact w -> w
    | Hd_search.Search_types.Bounds _ -> assert false
  in
  let ghw =
    match (Hd_search.Bb_ghw.solve h).Hd_search.Search_types.outcome with
    | Hd_search.Search_types.Exact w -> w
    | Hd_search.Search_types.Bounds _ -> assert false
  in
  Format.printf "treewidth(H) = %d, ghw(H) = %d (Figure 2.6/2.7 report 2/2)@.@."
    tw ghw;

  (* 4. The Chapter 3 pipeline: any GHD yields, via leaf normal form, an
     elimination ordering at least as good. *)
  let sigma' = Hd_core.Leaf_normal_form.ordering_for_ghd h ghd in
  let ws = Hd_core.Eval.of_hypergraph h in
  Format.printf
    "leaf-normal-form ordering %a has exact-cover width %d <= %d@." Ordering.pp
    sigma'
    (Hd_core.Eval.ghw_width_exact ws sigma')
    (Ghd.width ghd);

  print_endline "quickstart: all assertions passed"
