(* Triangulating the moral graph of a Bayesian network (Section 4.5):
   the original application of Larranaga et al.'s genetic algorithm
   that this library's GA framework reproduces.

   A Bayesian network is a DAG of stochastic variables; exact inference
   works on a junction tree of its moral graph (the DAG with parents
   "married" and directions dropped).  The cost of inference is the
   total table size of the junction tree, which depends on the
   elimination ordering - NOT simply on the width, because variables
   carry different state counts.  The GA therefore minimises

       w(TD) = log2 ( sum over bags of prod of state counts )

   and this example compares that weighted objective against plain
   width minimisation on a synthetic pedigree-style network.

   Run with: dune exec examples/bayesian_triangulation.exe *)

module Graph = Hd_graph.Graph

(* a layered "pedigree": each individual has two parents from the
   previous layer; founders have none.  Nodes carry 2-6 states. *)
let pedigree ~layers ~per_layer ~seed =
  let rng = Random.State.make [| seed |] in
  let n = layers * per_layer in
  let dag_parents = Array.make n [] in
  for layer = 1 to layers - 1 do
    for i = 0 to per_layer - 1 do
      let child = (layer * per_layer) + i in
      let parent () =
        ((layer - 1) * per_layer) + Random.State.int rng per_layer
      in
      let p1 = parent () in
      let p2 = parent () in
      dag_parents.(child) <- p1 :: (if p2 <> p1 then [ p2 ] else [])
    done
  done;
  (* moralise: connect each node to its parents and parents pairwise *)
  let moral = Graph.create n in
  Array.iteri
    (fun child parents ->
      List.iter (fun p -> Graph.add_edge moral child p) parents;
      List.iter
        (fun p1 -> List.iter (fun p2 -> Graph.add_edge moral p1 p2) parents)
        parents)
    dag_parents;
  let states = Array.init n (fun _ -> 2 + Random.State.int rng 5) in
  (moral, states)

let () =
  let moral, states = pedigree ~layers:6 ~per_layer:8 ~seed:12 in
  Format.printf "moral graph: %d vertices, %d edges, states 2-6@."
    (Graph.n moral) (Graph.m moral);

  let config =
    Hd_ga.Ga_engine.default_config ~population_size:80 ~max_iterations:150
      ~seed:3 ()
  in
  let ws = Hd_core.Eval.of_graph moral in

  (* 1. plain width minimisation *)
  let by_width = Hd_ga.Ga_tw.run config moral in
  let width_sigma = by_width.Hd_ga.Ga_engine.best_individual in
  Format.printf "width-minimising GA: width %d, table size 2^%.2f@."
    by_width.Hd_ga.Ga_engine.best
    (Hd_core.Eval.weighted_width ws ~domain_sizes:states width_sigma);

  (* 2. the Section 4.5 objective: table size *)
  let by_weight = Hd_ga.Ga_tw.run_weighted config moral ~domain_sizes:states in
  let weight_sigma = by_weight.Hd_ga.Ga_engine.best_individual in
  Format.printf "weight-minimising GA: width %d, table size 2^%.2f@."
    (Hd_core.Eval.tw_width ws weight_sigma)
    (Hd_core.Eval.weighted_width ws ~domain_sizes:states weight_sigma);

  (* the weighted objective can beat the width-optimal ordering on
     table size even when its width is no better - the reason the
     Bayesian-network community optimises weight, not width *)
  let w1 = Hd_core.Eval.weighted_width ws ~domain_sizes:states width_sigma in
  let w2 = Hd_core.Eval.weighted_width ws ~domain_sizes:states weight_sigma in
  Format.printf "weighted objective %s by %.2f bits@."
    (if w2 <= w1 then "wins" else "loses")
    (abs_float (w1 -. w2));

  (* the decomposition behind the better ordering, validated *)
  let td = Hd_core.Tree_decomposition.of_ordering moral weight_sigma in
  assert (Hd_core.Tree_decomposition.valid_for_graph moral td);
  Format.printf "junction tree: %d bags, width %d, valid@."
    (Hd_core.Tree_decomposition.n_nodes td)
    (Hd_core.Tree_decomposition.width td)
