(* The width hierarchy in one sweep: for each instance, every width
   notion the library computes — acyclicity, fractional hypertree
   width, generalized hypertree width, hypertree width, treewidth —
   with certainty markers.  The hierarchy

       fhw <= ghw <= hw <= tw + 1

   is the backbone of the "which CSP classes are tractable?" question
   the hypertree decomposition literature answers.

   Run with: dune exec examples/width_hierarchy.exe *)

module Widths = Hd_search.Widths
module St = Hd_search.Search_types

let outcome = function
  | St.Exact w -> Printf.sprintf "%d*" w
  | St.Bounds { lb; ub } -> Printf.sprintf "[%d,%d]" lb ub

let () =
  Printf.printf "%-12s %5s %5s | %7s %8s %8s %6s %8s\n" "instance" "V" "H"
    "acyclic" "fhw(ub)" "ghw" "hw" "tw";
  List.iter
    (fun name ->
      match Hd_instances.Hypergraphs.by_name name with
      | None -> failwith ("missing " ^ name)
      | Some h ->
          let r = Widths.analyze ~time_limit:9.0 h in
          Printf.printf "%-12s %5d %5d | %7b %8.2f %8s %6s %8s\n" name
            r.Widths.n_vertices r.Widths.n_hyperedges r.Widths.acyclic
            r.Widths.fhw_upper (outcome r.Widths.ghw)
            (match r.Widths.hw with Some w -> string_of_int w ^ "*" | None -> "t/o")
            (outcome r.Widths.tw))
    [ "adder_15"; "adder_25"; "bridge_15"; "clique_10"; "grid2d_10"; "b06" ];
  print_endline "\n(* = proved exact; the hierarchy fhw <= ghw <= hw <= tw+1 holds row-wise)"
