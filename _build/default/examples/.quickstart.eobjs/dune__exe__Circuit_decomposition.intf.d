examples/circuit_decomposition.mli:
