examples/width_hierarchy.mli:
