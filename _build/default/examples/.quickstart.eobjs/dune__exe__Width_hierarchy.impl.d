examples/width_hierarchy.ml: Hd_instances Hd_search List Printf
