examples/map_coloring.ml: Array Format Hd_core Hd_csp Hd_graph List Printf Random String Unix
