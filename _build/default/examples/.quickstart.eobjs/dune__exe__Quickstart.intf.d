examples/quickstart.mli:
