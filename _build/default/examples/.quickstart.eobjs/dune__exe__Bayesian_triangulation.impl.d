examples/bayesian_triangulation.ml: Array Format Hd_core Hd_ga Hd_graph List Random
