examples/sat_solving.mli:
