examples/circuit_decomposition.ml: Format Hd_bounds Hd_core Hd_ga Hd_hypergraph Hd_instances Hd_search List Random
