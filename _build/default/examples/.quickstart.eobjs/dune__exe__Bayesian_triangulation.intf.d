examples/bayesian_triangulation.mli:
