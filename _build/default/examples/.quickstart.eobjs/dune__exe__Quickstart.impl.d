examples/quickstart.ml: Format Hd_core Hd_hypergraph Hd_search
