examples/sat_solving.ml: Array Format Hd_core Hd_csp List Random
