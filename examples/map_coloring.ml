(* Map coloring end to end (Example 1 + Section 2.4): model the
   3-coloring of Australia as a CSP, decompose its constraint
   hypergraph, and solve it through the decomposition, mirroring the
   worked runs of Figures 2.8 and 2.9.

   Run with: dune exec examples/map_coloring.exe *)

module Csp = Hd_csp.Csp
module Models = Hd_csp.Models
module Solver = Hd_csp.Solver
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd

let color = function 0 -> "red" | 1 -> "green" | 2 -> "blue" | _ -> "?"

let show csp assignment =
  String.concat ", "
    (List.init (Csp.n_variables csp) (fun v ->
         Printf.sprintf "%s=%s" (Csp.variable_name csp v) (color assignment.(v))))

let () =
  let csp = Models.australia () in
  let h = Csp.hypergraph csp in
  Format.printf "Australia: %d regions, %d border constraints@."
    (Csp.n_variables csp) (Csp.n_constraints csp);

  (* decompose the constraint hypergraph *)
  let rng = Random.State.make [| 1 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let td = Td.of_ordering_hypergraph h sigma in
  Format.printf "tree decomposition width: %d (treewidth of the map graph)@."
    (Td.width td);
  let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
  Format.printf "generalized hypertree width of the decomposition: %d@.@."
    (Ghd.width ghd);

  (* solve as in Figure 2.8: join tree clustering + acyclic solving *)
  (match Solver.solve_with_td csp td with
  | Some a -> Format.printf "via tree decomposition:@.  %s@.@." (show csp a)
  | None -> failwith "Australia is 3-colorable");

  (* solve as in Figure 2.9: project joins of the lambda labels *)
  (match Solver.solve_with_ghd csp ghd with
  | Some a -> Format.printf "via generalized hypertree decomposition:@.  %s@.@." (show csp a)
  | None -> failwith "Australia is 3-colorable");

  (* the decomposition approach scales beyond brute force: a 60-vertex
     grid map has 3^60 assignments, yet its treewidth-4 decomposition
     solves 3-coloring through bags of only 3^5 tuples *)
  let grid = Hd_graph.Graph.grid 15 4 in
  let big = Models.graph_coloring grid ~colors:3 in
  let result, elapsed =
    Hd_engine.Clock.time @@ fun () -> Solver.solve big ~strategy:`Td ~seed:7
  in
  match result with
  | Some a ->
      Format.printf "15x4 grid 3-coloring via TD: %.3fs, consistent %b@."
        elapsed (Csp.consistent big a)
  | None -> failwith "grids are 3-colorable"
