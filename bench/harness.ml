(* Table-printing and statistics helpers for the experiment harness. *)

module Obs = Hd_obs.Obs

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let mean xs =
  List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let std_dev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (max 1 (List.length xs - 1))
  in
  sqrt var

let imin xs = List.fold_left min max_int xs
let imax xs = List.fold_left max min_int xs
let fmean xs = mean (List.map float_of_int xs)

let time = Hd_engine.Clock.time

(* run a seeded experiment [runs] times and summarise the integer
   results *)
type summary = { min : int; max : int; avg : float; std : float; secs : float }

let summarise ~runs f =
  let results = ref [] and secs = ref 0.0 in
  for r = 1 to runs do
    let value, elapsed = time (fun () -> f ~run:r) in
    results := value :: !results;
    secs := !secs +. elapsed
  done;
  let xs = !results in
  {
    min = imin xs;
    max = imax xs;
    avg = fmean xs;
    std = std_dev (List.map float_of_int xs);
    secs = !secs;
  }

let outcome_string (o : Hd_search.Search_types.outcome) =
  match o with
  | Hd_search.Search_types.Exact w -> Printf.sprintf "%d*" w
  | Hd_search.Search_types.Bounds { lb; ub } -> Printf.sprintf "[%d,%d]" lb ub

(* scale parameters chosen on the command line *)
type scale = {
  time_limit : float;  (** per exact-search run *)
  runs : int;  (** repetitions for randomised methods *)
  population : int;
  iterations : int;
  jobs : int;  (** worker domains for the parallel and corpus experiments *)
  full : bool;  (** paper-size instance lists *)
  states : int option;
      (** deterministic budgets: replace the wall-clock limit with a
          state cap, making sweep results machine-independent *)
  baseline : string option;
      (** corpus regression gate: a previous BENCH_report.json to diff
          the fresh sweep against *)
  widths_only : bool;  (** regression gate: skip the >2x time checks *)
}

let default_scale =
  {
    time_limit = 5.0;
    runs = 3;
    population = 60;
    iterations = 150;
    jobs = Hd_parallel.Portfolio.default_jobs ();
    full = false;
    states = None;
    baseline = None;
    widths_only = false;
  }

let budget scale =
  match scale.states with
  | Some n -> { Hd_search.Search_types.time_limit = None; max_states = Some n }
  | None ->
      {
        Hd_search.Search_types.time_limit = Some scale.time_limit;
        max_states = None;
      }

(* per-experiment hd_obs snapshots, collected by [record_table] and
   written out as one BENCH_report.json at the end of the run *)
let table_reports : (string * Obs.Json.t) list ref = ref []

let record_table name f =
  Obs.enable ();
  Obs.reset ();
  let started = Hd_engine.Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = Hd_engine.Clock.now () -. started in
      let snapshot =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.String name);
            ("wall_seconds", Obs.Json.Float elapsed);
            ("report", Obs.report ());
          ]
      in
      table_reports := (name, snapshot) :: !table_reports;
      Obs.disable ())
    f

(* the parallel and query experiments' summaries, reported as their own
   top-level sections of BENCH_report.json when the experiments ran *)
let parallel_section : Obs.Json.t option ref = ref None
let set_parallel_section j = parallel_section := Some j
let query_section : Obs.Json.t option ref = ref None
let set_query_section j = query_section := Some j
let ordering_section : Obs.Json.t option ref = ref None
let set_ordering_section j = ordering_section := Some j
let engine_section : Obs.Json.t option ref = ref None
let set_engine_section j = engine_section := Some j
let corpus_section : Obs.Json.t option ref = ref None
let set_corpus_section j = corpus_section := Some j
let widths_section : Obs.Json.t option ref = ref None
let set_widths_section j = widths_section := Some j

(* nonzero when a gating check failed (the corpus regression diff);
   main exits with it after the report is written *)
let exit_code = ref 0

let write_bench_report ?(path = "BENCH_report.json") () =
  let doc =
    Obs.Json.Obj
      ([
         ("schema", Obs.Json.String "hd_obs/bench/1");
         ( "experiments",
           Obs.Json.List (List.rev_map (fun (_, s) -> s) !table_reports) );
       ]
      @ (match !parallel_section with
        | Some j -> [ ("parallel", j) ]
        | None -> [])
      @ (match !query_section with
        | Some j -> [ ("query", j) ]
        | None -> [])
      @ (match !ordering_section with
        | Some j -> [ ("ordering", j) ]
        | None -> [])
      @ (match !engine_section with
        | Some j -> [ ("engine", j) ]
        | None -> [])
      @ (match !corpus_section with
        | Some j -> [ ("corpus", j) ]
        | None -> [])
      @ match !widths_section with
        | Some j -> [ ("widths", j) ]
        | None -> [])
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string doc);
      output_char oc '\n');
  Printf.printf "\nwrote %s (%d experiments)\n" path
    (List.length !table_reports)
