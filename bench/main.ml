(* Experiment harness: regenerates every table and figure of the
   paper's evaluation at a configurable scale.

     dune exec bench/main.exe                 -- quick pass over all tables
     dune exec bench/main.exe -- table-5.1    -- one table
     dune exec bench/main.exe -- -t 60 -full table-5.1
                                              -- paper-size instance list,
                                                 60s per exact run
     dune exec bench/main.exe -- micro        -- Bechamel kernel benchmarks
     dune exec bench/main.exe -- ablation     -- design-choice ablations
     dune exec bench/main.exe -- -j 4 parallel
                                              -- portfolio race on 4 domains
     dune exec bench/main.exe -- -j 4 -states 20000 corpus
                                              -- deterministic mini-corpus
                                                 sweep on 4 domains
     dune exec bench/main.exe -- -states 20000 -baseline old.json corpus
                                              -- regression gate vs a
                                                 previous report (exit 3
                                                 on regressions)

   Results never match the paper's absolute numbers (different machine,
   scaled budgets); the tables print the paper's reported value next to
   ours so the shape comparison is immediate.  EXPERIMENTS.md records a
   full run. *)

module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module St = Hd_search.Search_types
module Ga_engine = Hd_ga.Ga_engine
open Harness

let graph name =
  match Hd_instances.Graphs.by_name name with
  | Some g -> g
  | None -> failwith ("unknown graph instance " ^ name)

let hypergraph name =
  match Hd_instances.Hypergraphs.by_name name with
  | Some h -> h
  | None -> failwith ("unknown hypergraph instance " ^ name)

let initial_bounds_tw g seed =
  let rng = Random.State.make [| seed |] in
  let ws = Hd_core.Eval.of_graph g in
  let _, ub =
    Hd_core.Ordering_heuristics.best_of rng g ~trials:3
      ~eval:(Hd_core.Eval.tw_width ws)
  in
  (Hd_bounds.Lower_bounds.treewidth ~rng g, ub)

(* ------------------------------------------------------------------ *)
(* Table 5.1 / 5.2: A*-tw                                              *)
(* ------------------------------------------------------------------ *)

let table_5_1 scale =
  header "Table 5.1 -- A*-tw on DIMACS-style graphs (vs QuickBB / BB-tw)";
  Printf.printf "%-12s %5s %7s | %4s %4s %10s %8s | %8s %8s %6s\n" "graph" "V"
    "E" "lb" "ub" "A*-tw" "time" "paperA*" "QuickBB" "BB-tw";
  let instances =
    if scale.full then List.map (fun (n, _, _, _) -> n) Paper.table_5_1
    else
      [ "anna"; "david"; "huck"; "jean"; "queen5_5"; "queen6_6"; "myciel3";
        "myciel4"; "miles250"; "zeroin.i.1" ]
  in
  List.iter
    (fun name ->
      let g = graph name in
      let lb, ub = initial_bounds_tw g 1 in
      let result, secs =
        time (fun () -> Hd_search.Astar_tw.solve ~budget:(budget scale) ~seed:1 g)
      in
      let paper_a, paper_q, paper_b =
        match List.find_opt (fun (n, _, _, _) -> n = name) Paper.table_5_1 with
        | Some (_, a, q, b) -> (a, q, b)
        | None -> ("-", "-", "-")
      in
      Printf.printf "%-12s %5d %7d | %4d %4d %10s %7.2fs | %8s %8s %6s\n" name
        (Graph.n g) (Graph.m g) lb ub
        (outcome_string result.St.outcome)
        secs paper_a paper_q paper_b)
    instances

let table_5_2 scale =
  header "Table 5.2 -- A*-tw on n x n grids (treewidth of gridN is N)";
  Printf.printf "%-8s %5s %5s | %4s %4s %10s %8s | %8s\n" "graph" "V" "E" "lb"
    "ub" "A*-tw" "time" "paper";
  List.iter
    (fun (name, paper) ->
      let g = graph name in
      let lb, ub = initial_bounds_tw g 1 in
      let result, secs =
        time (fun () -> Hd_search.Astar_tw.solve ~budget:(budget scale) ~seed:1 g)
      in
      Printf.printf "%-8s %5d %5d | %4d %4d %10s %7.2fs | %8s\n" name
        (Graph.n g) (Graph.m g) lb ub
        (outcome_string result.St.outcome)
        secs paper)
    Paper.table_5_2

(* ------------------------------------------------------------------ *)
(* Tables 6.1-6.5: GA-tw parameter studies                             *)
(* ------------------------------------------------------------------ *)

let ga_study_instances scale =
  if scale.full then [ "games120"; "myciel7"; "queen16_16"; "le450_25a" ]
  else [ "games120"; "myciel5"; "queen8_8" ]

let run_ga_tw scale g ~crossover ~mutation ~params ~population ~run =
  let config =
    {
      Ga_engine.population_size = population;
      params;
      crossover;
      mutation;
      max_iterations = scale.iterations;
      time_limit = None;
      target = None;
      seed = 1000 + run;
    }
  in
  (Hd_ga.Ga_tw.run config g).Ga_engine.best

let default_params =
  { Ga_engine.mutation_rate = 0.3; crossover_rate = 1.0; tournament_size = 2 }

let table_6_1 scale =
  header "Table 6.1 -- GA-tw crossover operators (pc=1.0, pm=0)";
  Printf.printf "paper ranking: %s\n\n" (String.concat " > " Paper.table_6_1_ranking);
  Printf.printf "%-12s %-5s | %7s %5s %5s\n" "instance" "op" "avg" "min" "max";
  List.iter
    (fun name ->
      let g = graph name in
      let rows =
        List.map
          (fun op ->
            let s =
              summarise ~runs:scale.runs (fun ~run ->
                  run_ga_tw scale g ~crossover:op ~mutation:Hd_ga.Mutation.ISM
                    ~params:
                      { default_params with Ga_engine.mutation_rate = 0.0 }
                    ~population:scale.population ~run)
            in
            (Hd_ga.Crossover.name op, s))
          Hd_ga.Crossover.all
      in
      let sorted = List.sort (fun (_, a) (_, b) -> compare a.avg b.avg) rows in
      List.iter
        (fun (op, s) ->
          Printf.printf "%-12s %-5s | %7.1f %5d %5d\n" name op s.avg s.min s.max)
        sorted)
    (ga_study_instances scale)

let table_6_2 scale =
  header "Table 6.2 -- GA-tw mutation operators (pc=0, pm=1.0)";
  Printf.printf "paper ranking: %s\n\n" (String.concat " > " Paper.table_6_2_ranking);
  Printf.printf "%-12s %-5s | %7s %5s %5s\n" "instance" "op" "avg" "min" "max";
  List.iter
    (fun name ->
      let g = graph name in
      let rows =
        List.map
          (fun op ->
            let s =
              summarise ~runs:scale.runs (fun ~run ->
                  run_ga_tw scale g ~crossover:Hd_ga.Crossover.POS ~mutation:op
                    ~params:
                      {
                        default_params with
                        Ga_engine.crossover_rate = 0.0;
                        mutation_rate = 1.0;
                      }
                    ~population:scale.population ~run)
            in
            (Hd_ga.Mutation.name op, s))
          Hd_ga.Mutation.all
      in
      let sorted = List.sort (fun (_, a) (_, b) -> compare a.avg b.avg) rows in
      List.iter
        (fun (op, s) ->
          Printf.printf "%-12s %-5s | %7.1f %5d %5d\n" name op s.avg s.min s.max)
        sorted)
    (ga_study_instances scale)

let table_6_3 scale =
  header "Table 6.3 -- GA-tw mutation x crossover rates (POS/ISM)";
  let pc_w, pm_w = Paper.table_6_3_winner in
  Printf.printf "paper winner: pc=%.1f pm=%.1f\n\n" pc_w pm_w;
  Printf.printf "%-12s %4s %5s | %7s %5s %5s\n" "instance" "pc" "pm" "avg" "min"
    "max";
  List.iter
    (fun name ->
      let g = graph name in
      List.iter
        (fun pc ->
          List.iter
            (fun pm ->
              let s =
                summarise ~runs:scale.runs (fun ~run ->
                    run_ga_tw scale g ~crossover:Hd_ga.Crossover.POS
                      ~mutation:Hd_ga.Mutation.ISM
                      ~params:
                        {
                          default_params with
                          Ga_engine.crossover_rate = pc;
                          mutation_rate = pm;
                        }
                      ~population:scale.population ~run)
              in
              Printf.printf "%-12s %4.1f %5.2f | %7.1f %5d %5d\n" name pc pm
                s.avg s.min s.max)
            [ 0.01; 0.1; 0.3 ])
        [ 0.8; 0.9; 1.0 ])
    (ga_study_instances scale)

let table_6_4 scale =
  header "Table 6.4 -- GA-tw population sizes (paper: bigger is better)";
  Printf.printf "%-12s %5s | %7s %5s %5s\n" "instance" "pop" "avg" "min" "max";
  List.iter
    (fun name ->
      let g = graph name in
      List.iter
        (fun pop ->
          let s =
            summarise ~runs:scale.runs (fun ~run ->
                run_ga_tw scale g ~crossover:Hd_ga.Crossover.POS
                  ~mutation:Hd_ga.Mutation.ISM
                  ~params:default_params ~population:pop ~run)
          in
          Printf.printf "%-12s %5d | %7.1f %5d %5d\n" name pop s.avg s.min s.max)
        [ scale.population / 2; scale.population; scale.population * 2 ])
    (ga_study_instances scale)

let table_6_5 scale =
  header "Table 6.5 -- tournament selection group sizes (paper: 3-4 best)";
  Printf.printf "%-12s %3s | %7s %5s %5s\n" "instance" "s" "avg" "min" "max";
  List.iter
    (fun name ->
      let g = graph name in
      List.iter
        (fun s_size ->
          let s =
            summarise ~runs:scale.runs (fun ~run ->
                run_ga_tw scale g ~crossover:Hd_ga.Crossover.POS
                  ~mutation:Hd_ga.Mutation.ISM
                  ~params:{ default_params with Ga_engine.tournament_size = s_size }
                  ~population:scale.population ~run)
          in
          Printf.printf "%-12s %3d | %7.1f %5d %5d\n" name s_size s.avg s.min
            s.max)
        [ 2; 3; 4 ])
    (ga_study_instances scale)

let table_6_6 scale =
  header "Table 6.6 -- GA-tw final results vs best-known upper bounds";
  Printf.printf "%-12s %5s %7s | %5s %5s %7s %6s %8s | %5s %5s\n" "graph" "V"
    "E" "min" "max" "avg" "std" "time" "ub" "paper";
  let instances =
    if scale.full then List.map (fun (n, _, _) -> n) Paper.table_6_6
    else
      [ "anna"; "david"; "huck"; "jean"; "queen5_5"; "queen6_6"; "queen7_7";
        "myciel3"; "myciel4"; "myciel5"; "miles250"; "games120" ]
  in
  let improved = ref 0 and matched = ref 0 and worse = ref 0 in
  List.iter
    (fun name ->
      let g = graph name in
      let s =
        summarise ~runs:scale.runs (fun ~run ->
            run_ga_tw scale g ~crossover:Hd_ga.Crossover.POS
              ~mutation:Hd_ga.Mutation.ISM
              ~params:{ default_params with Ga_engine.tournament_size = 3 }
              ~population:scale.population ~run)
      in
      let known_ub, paper_min =
        match List.find_opt (fun (n, _, _) -> n = name) Paper.table_6_6 with
        | Some (_, ub, pm) -> (string_of_int ub, string_of_int pm)
        | None -> ("-", "-")
      in
      (match List.find_opt (fun (n, _, _) -> n = name) Paper.table_6_6 with
      | Some (_, ub, _) ->
          if s.min < ub then incr improved
          else if s.min = ub then incr matched
          else incr worse
      | None -> ());
      Printf.printf "%-12s %5d %7d | %5d %5d %7.1f %6.2f %7.1fs | %5s %5s\n"
        name (Graph.n g) (Graph.m g) s.min s.max s.avg s.std s.secs known_ub
        paper_min)
    instances;
  Printf.printf
    "\nvs known ub: improved %d, matched %d, worse %d  (paper: 22/31/9 over 62 graphs)\n"
    !improved !matched !worse

(* ------------------------------------------------------------------ *)
(* Tables 7.1 / 7.2: GA-ghw and SAIGA-ghw                              *)
(* ------------------------------------------------------------------ *)

let ghw_instances scale =
  if scale.full then List.map (fun (n, _, _) -> n) Paper.table_7_1
  else
    [ "adder_15"; "adder_25"; "bridge_15"; "clique_10"; "clique_15";
      "grid2d_10"; "grid3d_4"; "b06" ]

let table_7_1 scale =
  header "Table 7.1 -- GA-ghw on benchmark hypergraphs";
  Printf.printf "%-12s %5s %5s | %5s %5s %7s %6s %8s | %5s %5s\n" "hypergraph"
    "V" "H" "min" "max" "avg" "std" "time" "ub" "paper";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let s =
        summarise ~runs:scale.runs (fun ~run ->
            let config =
              Ga_engine.default_config ~population_size:scale.population
                ~max_iterations:scale.iterations ~seed:(2000 + run) ()
            in
            (Hd_ga.Ga_ghw.run config h).Ga_engine.best)
      in
      let prev_ub, paper_min =
        match List.find_opt (fun (n, _, _) -> n = name) Paper.table_7_1 with
        | Some (_, ub, pm) -> (string_of_int ub, string_of_int pm)
        | None -> ("-", "-")
      in
      Printf.printf "%-12s %5d %5d | %5d %5d %7.1f %6.2f %7.1fs | %5s %5s\n"
        name (Hypergraph.n_vertices h) (Hypergraph.n_edges h) s.min s.max s.avg
        s.std s.secs prev_ub paper_min)
    (ghw_instances scale)

let table_7_2 scale =
  header "Table 7.2 -- SAIGA-ghw (self-adaptive island GA)";
  Printf.printf "(%s)\n\n" Paper.truncated_note;
  Printf.printf "%-12s %5s %5s | %5s %5s %7s %8s | %6s\n" "hypergraph" "V" "H"
    "min" "max" "avg" "time" "GA-ghw";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let ga_best =
        let config =
          Ga_engine.default_config ~population_size:scale.population
            ~max_iterations:scale.iterations ~seed:2001 ()
        in
        (Hd_ga.Ga_ghw.run config h).Ga_engine.best
      in
      let s =
        summarise ~runs:scale.runs (fun ~run ->
            let config =
              Hd_ga.Saiga_ghw.default_config ~n_islands:4
                ~island_population:(max 10 (scale.population / 4))
                ~epoch_length:(max 5 (scale.iterations / 10))
                ~max_epochs:10 ~seed:(3000 + run) ()
            in
            (Hd_ga.Saiga_ghw.run config h).Hd_ga.Saiga_ghw.best)
      in
      Printf.printf "%-12s %5d %5d | %5d %5d %7.1f %7.1fs | %6d\n" name
        (Hypergraph.n_vertices h) (Hypergraph.n_edges h) s.min s.max s.avg
        s.secs ga_best)
    (ghw_instances scale)

(* ------------------------------------------------------------------ *)
(* Tables 8.1 / 9.1: BB-ghw and A*-ghw                                 *)
(* ------------------------------------------------------------------ *)

let exact_ghw_table title solve scale =
  header title;
  Printf.printf "(%s)\n\n" Paper.truncated_note;
  Printf.printf "%-12s %5s %5s | %4s %4s %10s %8s %9s\n" "hypergraph" "V" "H"
    "lb" "ub" "result" "time" "visited";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let rng = Random.State.make [| 1 |] in
      let lb = Hd_bounds.Lower_bounds.ghw ~rng h in
      let ws = Hd_core.Eval.of_hypergraph h in
      let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
      let ub = Hd_core.Eval.ghw_width ~rng ws sigma in
      let result, secs = time (fun () -> solve ~budget:(budget scale) h) in
      Printf.printf "%-12s %5d %5d | %4d %4d %10s %7.2fs %9d\n" name
        (Hypergraph.n_vertices h) (Hypergraph.n_edges h) lb ub
        (outcome_string result.St.outcome)
        secs result.St.visited)
    (ghw_instances scale)

let table_8_1 scale =
  exact_ghw_table "Table 8.1/8.2 -- BB-ghw (exact bag covers, tw-ksc-width lb)"
    (fun ~budget h -> Hd_search.Bb_ghw.solve ~budget ~seed:1 h)
    scale

let table_9_1 scale =
  exact_ghw_table "Table 9.1/9.2 -- A*-ghw (best-first, anytime lower bounds)"
    (fun ~budget h -> Hd_search.Astar_ghw.solve ~budget ~seed:1 h)
    scale

(* ------------------------------------------------------------------ *)
(* Figure 2 series: the worked example                                 *)
(* ------------------------------------------------------------------ *)

let figure_2 () =
  header "Figures 2.5/2.8/2.9 -- solving Example 5 through decompositions";
  let csp = Hd_csp.Models.example5 () in
  let h = Hd_csp.Csp.hypergraph csp in
  Format.printf "%a@.@." Hypergraph.pp h;
  let sigma = [| 0; 2; 4; 1; 3; 5 |] in
  let td = Hd_core.Tree_decomposition.of_ordering_hypergraph h sigma in
  Format.printf "Figure 2.6(b) tree decomposition (width %d):@.%a@.@."
    (Hd_core.Tree_decomposition.width td)
    Hd_core.Tree_decomposition.pp td;
  let ghd = Hd_core.Ghd.of_ordering h sigma ~cover:`Exact in
  Format.printf "Figure 2.7 generalized hypertree decomposition (width %d):@.%a@.@."
    (Hd_core.Ghd.width ghd) (Hd_core.Ghd.pp h) ghd;
  (match Hd_csp.Solver.solve_with_td csp td with
  | Some a ->
      Format.printf "Figure 2.8: solution from the tree decomposition:@.  ";
      Array.iteri
        (fun v value ->
          Format.printf "%s=%c " (Hd_csp.Csp.variable_name csp v)
            [| 'a'; 'b'; 'c' |].(value))
        a;
      Format.printf "@."
  | None -> failwith "example 5 is satisfiable");
  match Hd_csp.Solver.solve_with_ghd csp ghd with
  | Some a ->
      Format.printf "Figure 2.9: solution from the (complete) GHD:@.  ";
      Array.iteri
        (fun v value ->
          Format.printf "%s=%c " (Hd_csp.Csp.variable_name csp v)
            [| 'a'; 'b'; 'c' |].(value))
        a;
      Format.printf "@."
  | None -> failwith "example 5 is satisfiable"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_setcover scale =
  header "Ablation -- exact vs greedy set covers inside BB-ghw";
  Printf.printf "%-12s | %12s %8s | %12s %8s\n" "hypergraph" "exact" "time"
    "greedy" "time";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let exact, t1 =
        time (fun () ->
            Hd_search.Bb_ghw.solve ~budget:(budget scale) ~seed:1 ~cover:`Exact h)
      in
      let greedy, t2 =
        time (fun () ->
            Hd_search.Bb_ghw.solve ~budget:(budget scale) ~seed:1 ~cover:`Greedy h)
      in
      Printf.printf "%-12s | %12s %7.2fs | %12s %7.2fs\n" name
        (outcome_string exact.St.outcome)
        t1
        (outcome_string greedy.St.outcome)
        t2)
    [ "adder_15"; "bridge_15"; "clique_10"; "clique_15"; "b06" ]

let ablation_dedup scale =
  header "Ablation -- A* duplicate-state detection (our extension)";
  Printf.printf "%-12s | %10s %9s %8s | %10s %9s %8s\n" "graph" "plain"
    "visited" "time" "dedup" "visited" "time";
  List.iter
    (fun name ->
      let g = graph name in
      let plain, t1 =
        time (fun () -> Hd_search.Astar_tw.solve ~budget:(budget scale) ~seed:1 g)
      in
      let dedup, t2 =
        time (fun () ->
            Hd_search.Astar_tw.solve ~budget:(budget scale) ~dedup:true ~seed:1 g)
      in
      Printf.printf "%-12s | %10s %9d %7.2fs | %10s %9d %7.2fs\n" name
        (outcome_string plain.St.outcome)
        plain.St.visited t1
        (outcome_string dedup.St.outcome)
        dedup.St.visited t2)
    [ "queen5_5"; "queen6_6"; "grid5"; "grid6"; "myciel4" ]

let ablation_pruning scale =
  header "Ablation -- PR2 pruning and simplicial reductions in BB-tw";
  Printf.printf "%-10s | %10s %9s | %10s %9s | %10s %9s\n" "graph" "both"
    "visited" "no PR2" "visited" "no reduce" "visited";
  List.iter
    (fun name ->
      let g = graph name in
      let both = Hd_search.Bb_tw.solve ~budget:(budget scale) ~seed:1 g in
      let no_pr2 =
        Hd_search.Bb_tw.solve ~budget:(budget scale) ~seed:1 ~use_pr2:false g
      in
      let no_red =
        Hd_search.Bb_tw.solve ~budget:(budget scale) ~seed:1
          ~use_reductions:false g
      in
      Printf.printf "%-10s | %10s %9d | %10s %9d | %10s %9d\n" name
        (outcome_string both.St.outcome)
        both.St.visited
        (outcome_string no_pr2.St.outcome)
        no_pr2.St.visited
        (outcome_string no_red.St.outcome)
        no_red.St.visited)
    [ "queen5_5"; "grid5"; "myciel4"; "grid6" ]

let ablation_lb scale =
  header "Ablation -- treewidth lower bound heuristics";
  ignore scale;
  Printf.printf "%-12s | %6s %6s %6s %9s\n" "graph" "MMD" "MMD+" "gammaR"
    "combined";
  List.iter
    (fun name ->
      let g = graph name in
      let rng = Random.State.make [| 1 |] in
      Printf.printf "%-12s | %6d %6d %6d %9d\n" name
        (Hd_bounds.Lower_bounds.degeneracy g)
        (Hd_bounds.Lower_bounds.minor_min_width ~rng g)
        (Hd_bounds.Lower_bounds.minor_gamma_r ~rng g)
        (Hd_bounds.Lower_bounds.treewidth ~rng g))
    [ "queen5_5"; "queen6_6"; "grid6"; "myciel5"; "anna"; "DSJC125.1" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro -- Bechamel benchmarks of the computational kernels";
  let open Bechamel in
  let open Toolkit in
  let g = graph "queen8_8" in
  let h = hypergraph "adder_25" in
  let rng = Random.State.make [| 7 |] in
  let sigma_g = Hd_core.Ordering.random rng (Graph.n g) in
  let sigma_h = Hd_core.Ordering.random rng (Hypergraph.n_vertices h) in
  let ws_g = Hd_core.Eval.of_graph g in
  let ws_h = Hd_core.Eval.of_hypergraph h in
  let eg = Hd_graph.Elim_graph.of_graph g in
  let bag =
    Hd_graph.Bitset.of_list (Hypergraph.n_vertices h)
      (List.init 12 (fun i -> i * 9))
  in
  let cover_problem = { Hd_setcover.Set_cover.universe = bag; hypergraph = h } in
  let tests =
    Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
      [
        Test.make ~name:"tw-eval/queen8_8"
          (Staged.stage (fun () -> ignore (Hd_core.Eval.tw_width ws_g sigma_g)));
        Test.make ~name:"ghw-eval/adder_25"
          (Staged.stage (fun () ->
               ignore (Hd_core.Eval.ghw_width ~rng ws_h sigma_h)));
        Test.make ~name:"setcover-exact"
          (Staged.stage (fun () ->
               ignore (Hd_setcover.Set_cover.exact cover_problem)));
        Test.make ~name:"eliminate+restore"
          (Staged.stage (fun () ->
               Hd_graph.Elim_graph.eliminate eg 17;
               Hd_graph.Elim_graph.restore_last eg));
        Test.make ~name:"minor-min-width"
          (Staged.stage (fun () ->
               ignore (Hd_bounds.Lower_bounds.minor_min_width ~rng g)));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> Printf.printf "%-28s %12.1f ns/run\n" name ns
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)


(* ------------------------------------------------------------------ *)
(* Extension experiments beyond the paper                              *)
(* ------------------------------------------------------------------ *)

(* GA vs simulated annealing vs iterated local search: Section 4.5
   reports that SA was the only method matching the GA on the
   triangulation benchmarks; this regenerates that comparison on the
   width objective. *)
let extension_heuristics scale =
  header "Extension -- GA-tw vs SA vs ILS (same evaluation budget)";
  Printf.printf "%-12s | %6s %8s | %6s %8s | %6s %8s\n" "graph" "GA" "evals"
    "SA" "evals" "ILS" "evals";
  List.iter
    (fun name ->
      let g = graph name in
      let budget_evals = scale.population * scale.iterations in
      let ga =
        let config =
          Ga_engine.default_config ~population_size:scale.population
            ~max_iterations:scale.iterations ~seed:1 ()
        in
        Hd_ga.Ga_tw.run config g
      in
      let sa_config =
        {
          (Hd_ga.Local_search.default_config ~max_steps:budget_evals ~seed:1 ())
          with
          Hd_ga.Local_search.cooling =
            (* reach a cold state by the end of the budget *)
            exp (log 0.001 /. float_of_int budget_evals);
        }
      in
      let sa = Hd_ga.Local_search.sa_tw sa_config g in
      let ws = Hd_core.Eval.of_graph g in
      let ils =
        Hd_ga.Local_search.iterated_local_search
          { sa_config with Hd_ga.Local_search.restarts = 8 }
          ~n_genes:(Graph.n g) ~eval:(Hd_core.Eval.tw_width ws)
      in
      Printf.printf "%-12s | %6d %8d | %6d %8d | %6d %8d\n" name
        ga.Ga_engine.best ga.Ga_engine.evaluations
        sa.Hd_ga.Local_search.best sa.Hd_ga.Local_search.evaluations
        ils.Hd_ga.Local_search.best ils.Hd_ga.Local_search.evaluations)
    (ga_study_instances scale)

(* hypertree width vs generalized hypertree width on instances small
   enough for det-k-decomp: the hw >= ghw gap in practice *)
let extension_hw scale =
  header "Extension -- hw (det-k-decomp) vs ghw (BB-ghw) vs fhw (LP covers)";
  Printf.printf "%-12s %4s %4s | %6s %10s %8s %8s\n" "hypergraph" "V" "H" "hw"
    "ghw" "fhw(ub)" "hw-time";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let hw_result, secs =
        time (fun () ->
            try
              let hw, hd =
                Hd_search.Det_k_decomp.hypertree_width
                  ~time_limit:scale.time_limit h
              in
              assert (Hd_search.Det_k_decomp.valid h hd);
              Printf.sprintf "%d*" hw
            with Hd_search.Det_k_decomp.Timeout -> "t/o")
      in
      let ghw = Hd_search.Bb_ghw.solve ~budget:(budget scale) ~seed:1 h in
      let fhw =
        let rng = Random.State.make [| 1 |] in
        let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
        let ws = Hd_core.Eval.of_hypergraph h in
        Hd_lp.Rat.to_string (Hd_core.Eval.fhw_width_q ws sigma)
      in
      Printf.printf "%-12s %4d %4d | %6s %10s %8s %7.2fs\n" name
        (Hypergraph.n_vertices h) (Hypergraph.n_edges h) hw_result
        (outcome_string ghw.St.outcome) fhw secs)
    [ "adder_15"; "adder_25"; "adder_50"; "bridge_15"; "clique_10" ]

(* preprocessing payoff on near-chordal instances *)
let extension_preprocess scale =
  header "Extension -- Bodlaender preprocessing before A*-tw";
  Printf.printf "%-12s | %10s %8s | %10s %8s %9s\n" "graph" "plain" "time"
    "preproc" "time" "kernel-n";
  List.iter
    (fun name ->
      let g = graph name in
      let plain, t1 =
        time (fun () -> Hd_search.Astar_tw.solve ~budget:(budget scale) ~seed:1 g)
      in
      let pre, t2 =
        time (fun () ->
            Hd_search.Preprocess.treewidth_with_preprocessing
              ~budget:(budget scale) ~seed:1 g)
      in
      let kernel =
        let r =
          Hd_search.Preprocess.reduce
            ~lb:(Hd_bounds.Lower_bounds.treewidth g) g
        in
        Graph.n g - List.length r.Hd_search.Preprocess.eliminated
      in
      Printf.printf "%-12s | %10s %7.2fs | %10s %7.2fs %9d\n" name
        (outcome_string plain.St.outcome)
        t1
        (outcome_string pre.St.outcome)
        t2 kernel)
    [ "anna"; "david"; "jean"; "miles250"; "zeroin.i.1"; "queen5_5" ]

(* scaling series over the parametric circuit families: the bounded-
   ghw behaviour the adder/bridge families exhibit in Tables 7-9 *)
let scaling scale =
  header "Scaling -- BB-ghw across the adder_k / bridge_k families";
  Printf.printf "%-12s %5s %5s | %10s %8s\n" "instance" "V" "H" "BB-ghw" "time";
  List.iter
    (fun name ->
      let h = hypergraph name in
      let result, secs =
        time (fun () -> Hd_search.Bb_ghw.solve ~budget:(budget scale) ~seed:1 h)
      in
      Printf.printf "%-12s %5d %5d | %10s %7.2fs\n" name
        (Hypergraph.n_vertices h) (Hypergraph.n_edges h)
        (outcome_string result.St.outcome)
        secs)
    [ "adder_15"; "adder_25"; "adder_50"; "adder_75"; "adder_99";
      "bridge_15"; "bridge_25"; "bridge_50"; "bridge_75"; "bridge_99" ]

(* incremental heuristic kernels vs the retained naive reference
   (docs/PERFORMANCE.md), recorded as BENCH_report.json's "ordering"
   section: per-instance naive-vs-incremental wall times for min-fill
   and min-degree (plus MCS), the byte-identical check, and the
   suffix-reuse / set-cover-memo counters of a GA-ghw run *)
let ordering scale =
  header "Ordering -- incremental heuristic kernels vs naive rescans";
  let module Heur = Hd_core.Ordering_heuristics in
  let instances =
    (* largest bundled graphs: where the O(affected) maintenance pays *)
    let sorted =
      List.sort
        (fun (_, a, _) (_, b, _) -> compare (b : int) a)
        Hd_instances.Graphs.names
    in
    let k = if scale.full then 6 else 3 in
    List.filteri (fun i _ -> i < k) sorted
  in
  Printf.printf "%-12s %5s %7s | %9s %9s %7s %5s | %9s %9s %7s %5s | %8s\n"
    "graph" "V" "E" "fill-nv" "fill-inc" "speedup" "same" "deg-nv" "deg-inc"
    "speedup" "same" "mcs";
  let entries =
    List.map
      (fun (name, _, _) ->
        let g = graph name in
        let side_by_side incr naive =
          let a, t_inc = time (fun () -> incr (Random.State.make [| 1 |]) g) in
          let b, t_nv = time (fun () -> naive (Random.State.make [| 1 |]) g) in
          (a = b, t_inc, t_nv, (if t_inc > 0.0 then t_nv /. t_inc else 1.0))
        in
        let fill_same, fill_inc, fill_nv, fill_speedup =
          side_by_side Heur.min_fill Heur.Naive.min_fill
        in
        let deg_same, deg_inc, deg_nv, deg_speedup =
          side_by_side Heur.min_degree Heur.Naive.min_degree
        in
        let _, mcs_secs =
          time (fun () -> Heur.max_cardinality (Random.State.make [| 1 |]) g)
        in
        Printf.printf
          "%-12s %5d %7d | %8.3fs %8.3fs %6.1fx %5s | %8.3fs %8.3fs %6.1fx %5s | %7.3fs\n"
          name (Graph.n g) (Graph.m g) fill_nv fill_inc fill_speedup
          (if fill_same then "yes" else "NO")
          deg_nv deg_inc deg_speedup
          (if deg_same then "yes" else "NO")
          mcs_secs;
        Obs.Json.Obj
          [
            ("instance", Obs.Json.String name);
            ("vertices", Obs.Json.Int (Graph.n g));
            ("edges", Obs.Json.Int (Graph.m g));
            ("min_fill_naive_seconds", Obs.Json.Float fill_nv);
            ("min_fill_incremental_seconds", Obs.Json.Float fill_inc);
            ("min_fill_speedup", Obs.Json.Float fill_speedup);
            ("min_fill_identical", Obs.Json.Bool fill_same);
            ("min_degree_naive_seconds", Obs.Json.Float deg_nv);
            ("min_degree_incremental_seconds", Obs.Json.Float deg_inc);
            ("min_degree_speedup", Obs.Json.Float deg_speedup);
            ("min_degree_identical", Obs.Json.Bool deg_same);
            ("mcs_seconds", Obs.Json.Float mcs_secs);
          ])
      instances
  in
  let counter name = Hd_obs.Obs.Counter.value (Hd_obs.Obs.Counter.make name) in
  let key_recomputes = counter "ordering.key_recomputes" in
  let dirty_skips = counter "ordering.dirty_skips" in
  (* GA generations through the suffix-reuse evaluator: the memo and
     checkpoint counters the acceptance gate asserts on *)
  let ga_instance = "grid2d_10" in
  let h = hypergraph ga_instance in
  let config =
    Ga_engine.default_config ~population_size:scale.population
      ~max_iterations:scale.iterations ~seed:1 ()
  in
  let report, ga_secs = time (fun () -> Hd_ga.Ga_ghw.run config h) in
  let suffix = counter "ga.suffix_reevals" and full = counter "ga.full_reevals" in
  let hits = counter "setcover.memo_hits" and misses = counter "setcover.memo_misses" in
  Printf.printf
    "\ndirty-set: %d key recomputes, %d skips\n\
     GA-ghw %s: best %d in %.1fs -- %d suffix / %d full re-evals, \
     set-cover memo %d hits / %d misses (%.1f%% hit rate)\n"
    key_recomputes dirty_skips ga_instance report.Ga_engine.best ga_secs suffix
    full hits misses
    (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  set_ordering_section
    (Obs.Json.Obj
       [
         ("instances", Obs.Json.List entries);
         ("key_recomputes", Obs.Json.Int key_recomputes);
         ("dirty_skips", Obs.Json.Int dirty_skips);
         ( "ga",
           Obs.Json.Obj
             [
               ("hypergraph", Obs.Json.String ga_instance);
               ("best", Obs.Json.Int report.Ga_engine.best);
               ("seconds", Obs.Json.Float ga_secs);
               ("suffix_reevals", Obs.Json.Int suffix);
               ("full_reevals", Obs.Json.Int full);
               ("setcover_memo_hits", Obs.Json.Int hits);
               ("setcover_memo_misses", Obs.Json.Int misses);
             ] );
       ])

(* the per-layer payoff of the work-stealing scheduler: blocks
   fork/join, hash-distributed A*, and the partitioned columnar passes
   each race -j N against their sequential twin, every row sharing one
   schema {layer, instance, jobs, seconds_j1, seconds, speedup_vs_j1};
   the original portfolio race keeps its rows under layer "portfolio".

   Determinism is always hard: a parallel result that differs from its
   -j 1 twin fails the experiment on any machine.  The >= 1.5x speedup
   gate on >= 2 scheduler layers is enforced only on a machine with
   >= 4 cores running -j >= 4 -- everywhere else (CI's -j 2 smoke job,
   laptops) the speedup column is report-only. *)
let parallel scale =
  let module Sched = Hd_parallel.Scheduler in
  let module B = Hd_engine.Budget in
  let module Sv = Hd_engine.Solver in
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ();
  let cores = Domain.recommended_domain_count () in
  let jobs = max 1 scale.jobs in
  let workers = max 1 (jobs - 1) in
  header
    (Printf.sprintf "Parallel -- scheduler layers, -j %d vs -j 1 (%d cores)"
       jobs cores);
  Printf.printf "%-10s %-14s | %8s | %8s | %7s  %s\n" "layer" "instance" "-j 1"
    (Printf.sprintf "-j %d" jobs)
    "speedup" "notes";
  let mismatches = ref [] in
  let check_same layer what same =
    if not same then begin
      mismatches := Printf.sprintf "%s: parallel %s differs from -j 1" layer what
                    :: !mismatches;
      Printf.eprintf "parallel: %s -- parallel %s differs from -j 1\n" layer
        what
    end
  in
  let row ?(extra = []) ?(notes = "") ~layer ~instance t1 t2 =
    let speedup = if t2 > 0.0 then t1 /. t2 else 1.0 in
    Printf.printf "%-10s %-14s | %7.2fs | %7.2fs | %6.2fx  %s\n" layer instance
      t1 t2 speedup notes;
    ( (layer, speedup),
      Obs.Json.Obj
        ([
           ("layer", Obs.Json.String layer);
           ("instance", Obs.Json.String instance);
           ("jobs", Obs.Json.Int jobs);
           ("seconds_j1", Obs.Json.Float t1);
           ("seconds", Obs.Json.Float t2);
           ("speedup_vs_j1", Obs.Json.Float speedup);
         ]
        @ extra) )
  in
  (* one scheduler serves all three layer races; its domains spawn
     outside the timed regions, matching production where the shared
     scheduler is created once per process *)
  let blocks_row, hdastar_row, columnar_row =
    Sched.with_scheduler ~workers @@ fun sched ->
    (* layer "blocks": Engine.run forks the biconnected blocks of a
       cut-vertex chain through the Exec runner hook *)
    let blocks_row =
      let copies = max 6 (2 * jobs) in
      let chain = Hd_instances.Graphs.chain ~copies (graph "myciel4") in
      let solve () =
        Hd_engine.Engine.run_by_name ~seed:1 "bb-tw"
          (B.of_spec (budget scale))
          (Sv.Graph chain)
      in
      let seq, t1 = time solve in
      let par, t2 =
        time (fun () ->
            Hd_engine.Exec.with_runner
              { Hd_engine.Exec.run_all = (fun fns -> Sched.run_all sched fns) }
              solve)
      in
      check_same "blocks" "outcome" (par.Sv.outcome = seq.Sv.outcome);
      check_same "blocks" "witness" (par.Sv.ordering = seq.Sv.ordering);
      row ~layer:"blocks"
        ~instance:(Printf.sprintf "myciel4 x%d" copies)
        ~notes:(outcome_string par.Sv.outcome)
        ~extra:[ ("outcome", Obs.Json.String (outcome_string par.Sv.outcome)) ]
        t1 t2
    in
    (* layer "hdastar": the hash-distributed open list vs sequential A*;
       both must prove the same width when neither hits the budget *)
    let hdastar_row =
      let name = if scale.full then "queen5_5" else "myciel4" in
      let g = graph name in
      let seq, t1 =
        time (fun () ->
            Hd_search.Astar_tw.solve ~budget:(budget scale) ~seed:1 g)
      in
      let par, t2 =
        time (fun () ->
            Hd_parallel.Hdastar.solve_tw ~sched
              ~within:(B.of_spec (budget scale))
              ~seed:1 g)
      in
      let notes =
        match (seq.St.outcome, par.Sv.outcome) with
        | St.Exact a, Sv.Exact b ->
            check_same "hdastar" "width" (a = b);
            outcome_string par.Sv.outcome
        | _ -> "budget-capped"
      in
      row ~layer:"hdastar" ~instance:name ~notes
        ~extra:
          [
            ("outcome", Obs.Json.String (outcome_string par.Sv.outcome));
            ("outcome_j1", Obs.Json.String (outcome_string seq.St.outcome));
          ]
        t1 t2
    in
    (* layer "columnar": Yannakakis semijoin/join passes partitioned
       over the scheduler; answers are byte-identical by construction *)
    let columnar_row =
      let module Cq = Hd_query.Cq in
      let module Db = Hd_query.Db in
      let module Y = Hd_query.Yannakakis in
      let n, m = if scale.full then (500, 40_000) else (300, 12_000) in
      let rng = Random.State.make [| 7 |] in
      let db = Db.create () in
      Db.add db ~name:"e"
        (List.init m (fun _ ->
             [|
               Printf.sprintf "v%d" (Random.State.int rng n);
               Printf.sprintf "v%d" (Random.State.int rng n);
             |]));
      let q =
        Cq.parse_string ~source:"bench"
          "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X)."
      in
      let seq, t1 = time (fun () -> Y.run ~mode:Y.Answers db q) in
      let par, t2 = time (fun () -> Y.run ~par:sched ~mode:Y.Answers db q) in
      check_same "columnar" "count" (par.Y.count = seq.Y.count);
      check_same "columnar" "answers" (par.Y.answers = seq.Y.answers);
      row ~layer:"columnar"
        ~instance:(Printf.sprintf "triangle %dv/%de" n m)
        ~notes:(Printf.sprintf "%d answers" par.Y.count)
        ~extra:[ ("answers", Obs.Json.Int par.Y.count) ]
        t1 t2
    in
    (blocks_row, hdastar_row, columnar_row)
  in
  (* layer "portfolio": the original solver race, unchanged semantics *)
  let portfolio_rows =
    List.map
      (fun name ->
        let g = graph name in
        let seq, t1 =
          time (fun () ->
              Hd_parallel.Portfolio.solve_tw ~jobs:1 ~budget:(budget scale)
                ~seed:1 g)
        in
        let par, t2 =
          time (fun () ->
              Hd_parallel.Portfolio.solve_tw ~jobs ~budget:(budget scale)
                ~seed:1 g)
        in
        let winner =
          Option.value par.Hd_parallel.Portfolio.winner ~default:"-"
        in
        row ~layer:"portfolio" ~instance:name
          ~notes:
            (Printf.sprintf "%s  winner %s"
               (outcome_string par.Hd_parallel.Portfolio.outcome)
               winner)
          ~extra:
            [
              ("domains", Obs.Json.Int par.Hd_parallel.Portfolio.domains);
              ("winner", Obs.Json.String winner);
              ( "outcome",
                Obs.Json.String
                  (outcome_string par.Hd_parallel.Portfolio.outcome) );
              ( "outcome_j1",
                Obs.Json.String
                  (outcome_string seq.Hd_parallel.Portfolio.outcome) );
            ]
          t1 t2)
      [ "queen6_6"; "grid6" ]
  in
  let rows = [ blocks_row; hdastar_row; columnar_row ] @ portfolio_rows in
  let scheduler_layers = [ "blocks"; "hdastar"; "columnar" ] in
  let layers_at_speedup =
    List.length
      (List.filter
         (fun l ->
           List.exists (fun ((l', s), _) -> l' = l && s >= 1.5) rows)
         scheduler_layers)
  in
  let enforce = cores >= 4 && jobs >= 4 in
  let speedup_pass = layers_at_speedup >= 2 in
  let determinism_pass = !mismatches = [] in
  Printf.printf
    "\ndeterminism: %s   speedup gate (>=1.5x on >=2 layers): %s%s\n"
    (if determinism_pass then "ok" else "FAIL")
    (if speedup_pass then "pass"
     else Printf.sprintf "%d/2 layers" layers_at_speedup)
    (if enforce then "" else "  [report-only: needs >= 4 cores and -j >= 4]");
  if not determinism_pass then exit_code := 1;
  if enforce && not speedup_pass then exit_code := 1;
  set_parallel_section
    (Obs.Json.Obj
       [
         ("jobs", Obs.Json.Int jobs);
         ("recommended_domains", Obs.Json.Int cores);
         ("layers", Obs.Json.List (List.map snd rows));
         ( "determinism",
           Obs.Json.Obj
             [
               ("pass", Obs.Json.Bool determinism_pass);
               ( "mismatches",
                 Obs.Json.List
                   (List.map (fun m -> Obs.Json.String m) !mismatches) );
             ] );
         ( "gate",
           Obs.Json.Obj
             [
               ("enforced", Obs.Json.Bool enforce);
               ("required_speedup", Obs.Json.Float 1.5);
               ("required_layers", Obs.Json.Int 2);
               ("layers_at_speedup", Obs.Json.Int layers_at_speedup);
               ("pass", Obs.Json.Bool speedup_pass);
             ] );
       ])

(* conjunctive-query answering (hd_query): Yannakakis over the
   decomposition stack vs a brute-force evaluator on random digraphs,
   recorded as BENCH_report.json's "query" section (answer counts,
   semijoin reduction ratios, wall times) *)
let query scale =
  header "Query -- Yannakakis over (G)HDs vs brute force (hd_query)";
  let module Cq = Hd_query.Cq in
  let module Db = Hd_query.Db in
  let module Y = Hd_query.Yannakakis in
  let n, m = if scale.full then (120, 900) else (50, 320) in
  let rng = Random.State.make [| 42 |] in
  let db = Db.create () in
  Db.add db ~name:"e"
    (List.init m (fun _ ->
         [|
           Printf.sprintf "v%d" (Random.State.int rng n);
           Printf.sprintf "v%d" (Random.State.int rng n);
         |]));
  Printf.printf "random digraph: %d vertices, %d edge tuples\n\n" n m;
  Printf.printf "%-10s %-7s | %7s %5s %5s | %9s %9s %7s | %9s %7s\n" "query"
    "plan" "answers" "bags" "semij" "tuples" "reduced" "ratio" "yannakakis"
    "brute";
  let queries =
    [
      ("triangle", "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X).");
      ("4-cycle", "ans(W,X,Y,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W).");
      ("two-hop", "ans(X,Z) :- e(X,Y), e(Y,Z).");
      ("v-path", "ans(X,Z) :- e(X,Y), e(Z,Y).");
    ]
  in
  let entries =
    List.map
      (fun (name, text) ->
        let q = Cq.parse_string ~source:name text in
        let r, secs = time (fun () -> Y.run ~mode:Y.Answers db q) in
        let bf, bf_secs = time (fun () -> Hd_query.Brute_force.count db q) in
        if bf <> r.Y.count then
          failwith (Printf.sprintf "query %s: %d answers vs %d brute-force"
                      name r.Y.count bf);
        let s = r.Y.stats in
        let ratio =
          if s.Y.tuples_materialized = 0 then 1.0
          else
            float_of_int s.Y.tuples_after_reduction
            /. float_of_int s.Y.tuples_materialized
        in
        let plan =
          if s.Y.acyclic then "gyo" else Printf.sprintf "ghd-w%d" s.Y.width
        in
        Printf.printf
          "%-10s %-7s | %7d %5d %5d | %9d %9d %6.2f%% | %8.3fs %6.3fs\n" name
          plan r.Y.count s.Y.bags s.Y.semijoins s.Y.tuples_materialized
          s.Y.tuples_after_reduction (100.0 *. ratio) secs bf_secs;
        Obs.Json.Obj
          [
            ("query", Obs.Json.String name);
            ("plan", Obs.Json.String plan);
            ("width", Obs.Json.Int s.Y.width);
            ("bags", Obs.Json.Int s.Y.bags);
            ("answers", Obs.Json.Int r.Y.count);
            ("semijoins", Obs.Json.Int s.Y.semijoins);
            ("tuples_materialized", Obs.Json.Int s.Y.tuples_materialized);
            ("tuples_after_reduction", Obs.Json.Int s.Y.tuples_after_reduction);
            ("reduction_ratio", Obs.Json.Float ratio);
            ("seconds", Obs.Json.Float secs);
            ("seconds_brute_force", Obs.Json.Float bf_secs);
          ])
      queries
  in
  (* the per-query sweep above materialized bags through both code
     paths, so the cardinality histograms must have observations --
     their absence from BENCH_report.json was a recording bug once *)
  let assert_histogram name =
    let h = Obs.Histogram.make name in
    if Obs.Histogram.count h = 0 then
      failwith (Printf.sprintf "histogram %s is empty in the query experiment"
                  name)
  in
  assert_histogram "query.relation_size";
  assert_histogram "query.bag_size";
  (* batch workload: N conjunctive queries over the one instance,
     row-at-a-time baseline (independent plans, per-tuple Hashtbl
     probes) vs the columnar engine (selection vectors, radix
     partitioning) sharing one decomposition per isomorphism class of
     cyclic query structure -- the hd_query --batch / server "bulk"
     execution strategy.  The acceptance gate: columnar must at least
     halve the wall time or the counter-attributed per-tuple probes. *)
  let module Sig = Hd_server.Signature in
  let batch_texts =
    (* renamed isomorphic copies, so plan sharing has real work to do *)
    List.concat
      [
        List.init 6 (fun i ->
            Printf.sprintf "t%d(A,B,C) :- e(A,B), e(B,C), e(C,A)." i);
        List.init 6 (fun i ->
            Printf.sprintf "c%d(W,X,Y,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W)."
              i);
        List.init 4 (fun i -> Printf.sprintf "h%d(X,Z) :- e(X,Y), e(Y,Z)." i);
        List.init 4 (fun i -> Printf.sprintf "v%d(X,Z) :- e(X,Y), e(Z,Y)." i);
      ]
  in
  let batch =
    List.mapi (fun i t -> Cq.parse_string ~source:(Printf.sprintf "b%d" i) t)
      batch_texts
  in
  let nq = List.length batch in
  let counter name = Obs.Counter.value (Obs.Counter.make name) in
  let deltas names f =
    let before = List.map counter names in
    let result, secs = time f in
    let after = List.map counter names in
    (result, secs, List.map2 (fun n (b, a) -> (n, a - b)) names
                     (List.combine before after))
  in
  let row_names =
    [
      "query.hash_probes"; "query.join_tuples"; "query.reduce_semijoins";
      "query.bag_tuples";
    ]
  in
  let col_names =
    [
      "query.radix_probes"; "query.radix_join_tuples";
      "query.reduce_semijoins"; "query.selvec_semijoins";
      "query.selvec_kept_rows"; "query.radix_bucket_skips";
      "query.bag_tuples";
    ]
  in
  (* row baseline: the status quo ante -- every query plans and
     evaluates independently, row-at-a-time *)
  let row_counts, row_secs, row_deltas =
    deltas row_names (fun () ->
        List.map (fun q -> (Y.run ~engine:Y.Rows ~mode:Y.Count db q).Y.count)
          batch)
  in
  (* columnar: orderings shared per canonical signature, exactly as
     hd_query --batch and the server bulk op do *)
  let orderings : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let decompositions = ref 0 and shared = ref 0 in
  let col_counts, col_secs, col_deltas =
    deltas col_names (fun () ->
        List.map
          (fun q ->
            let ordering =
              match Cq.hypergraph q with
              | exception Invalid_argument _ -> None
              | h ->
                  if Hd_hypergraph.Acyclicity.is_acyclic h then None
                  else
                    let s = Sig.of_hypergraph h in
                    (match Hashtbl.find_opt orderings (Sig.key s) with
                    | Some canon ->
                        incr shared;
                        Some (Sig.of_canonical s canon)
                    | None ->
                        let sigma =
                          Y.ordering_for ~method_:Y.Auto ~jobs:1 ~seed:42
                            ~time_limit:scale.time_limit h
                        in
                        incr decompositions;
                        Hashtbl.replace orderings (Sig.key s)
                          (Sig.to_canonical s sigma);
                        Some sigma)
            in
            (Y.run ~engine:Y.Columnar ?ordering ~mode:Y.Count db q).Y.count)
          batch)
  in
  if row_counts <> col_counts then
    failwith "batch workload: row and columnar answer counts differ";
  let probes_row = List.assoc "query.hash_probes" row_deltas in
  let probes_col = List.assoc "query.radix_probes" col_deltas in
  let wall_speedup = row_secs /. (max 1e-9 col_secs) in
  let probe_ratio =
    float_of_int probes_row /. float_of_int (max 1 probes_col)
  in
  Printf.printf
    "\nbatch: %d queries (%d decompositions computed, %d shared)\n" nq
    !decompositions !shared;
  Printf.printf "%-10s | %9s %12s %12s\n" "engine" "seconds" "probes"
    "join tuples";
  Printf.printf "%-10s | %8.3fs %12d %12d\n" "rows" row_secs probes_row
    (List.assoc "query.join_tuples" row_deltas);
  Printf.printf "%-10s | %8.3fs %12d %12d\n" "columnar" col_secs probes_col
    (List.assoc "query.radix_join_tuples" col_deltas);
  Printf.printf "wall speedup %.2fx, probe ratio %.2fx\n" wall_speedup
    probe_ratio;
  let gate_pass = probe_ratio >= 2.0 || wall_speedup >= 2.0 in
  if not gate_pass then begin
    Printf.printf
      "FAIL: columnar engine is not >=2x better than rows on wall time or \
       probes\n";
    exit_code := 1
  end;
  let json_counts ds = List.map (fun (n, v) -> (n, Obs.Json.Int v)) ds in
  set_query_section
    (Obs.Json.Obj
       [
         ("vertices", Obs.Json.Int n);
         ("edge_tuples", Obs.Json.Int m);
         ("instances", Obs.Json.List entries);
         ( "batch",
           Obs.Json.Obj
             [
               ("queries", Obs.Json.Int nq);
               ("answers", Obs.Json.Int (List.fold_left ( + ) 0 col_counts));
               ("decompositions", Obs.Json.Int !decompositions);
               ("shared_plans", Obs.Json.Int !shared);
               ( "rows",
                 Obs.Json.Obj
                   (("seconds", Obs.Json.Float row_secs)
                   :: json_counts row_deltas) );
               ( "columnar",
                 Obs.Json.Obj
                   (("seconds", Obs.Json.Float col_secs)
                   :: json_counts col_deltas) );
               ("wall_speedup", Obs.Json.Float wall_speedup);
               ("probe_ratio", Obs.Json.Float probe_ratio);
               ( "gate",
                 Obs.Json.String (if gate_pass then "pass" else "fail") );
             ] );
       ])

(* monolithic vs decompose-by-blocks solving through the engine: the
   block-splitting payoff on articulation-point chains (and its
   no-regression on biconnected instances), recorded as
   BENCH_report.json's "engine" section *)
let engine scale =
  header "Engine -- monolithic vs decompose-by-blocks";
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ();
  let cases =
    [
      (* biconnected: the split pass must cost nothing *)
      ("queen5_5", "bb-tw");
      ("myciel4", "astar-tw");
      (* articulation-point chains: one hard block repeated *)
      ("blocks2-queen5_5", "bb-tw");
      ("blocks3-grid4", "astar-tw");
    ]
  in
  Printf.printf "%-18s %-10s | %9s %8s | %9s %8s | %7s\n" "instance" "solver"
    "mono" "mono-s" "split" "split-s" "speedup";
  let entries =
    List.map
      (fun (name, solver) ->
        let g = graph name in
        let problem = Hd_engine.Solver.Graph g in
        let run ~blocks =
          Hd_engine.Engine.run_by_name ~blocks ~seed:1 solver
            (Hd_engine.Budget.create ~time_limit:scale.time_limit ())
            problem
        in
        let mono = run ~blocks:false in
        let split = run ~blocks:true in
        let speedup =
          if split.Hd_engine.Solver.elapsed > 0.0 then
            mono.Hd_engine.Solver.elapsed /. split.Hd_engine.Solver.elapsed
          else 1.0
        in
        Printf.printf
          "%-18s %-10s | %9s %7.3fs | %9s %7.3fs | %6.1fx\n" name solver
          (outcome_string mono.Hd_engine.Solver.outcome)
          mono.Hd_engine.Solver.elapsed
          (outcome_string split.Hd_engine.Solver.outcome)
          split.Hd_engine.Solver.elapsed speedup;
        Obs.Json.Obj
          [
            ("instance", Obs.Json.String name);
            ("solver", Obs.Json.String solver);
            ( "monolithic",
              Obs.Json.Obj
                [
                  ( "outcome",
                    Obs.Json.String
                      (outcome_string mono.Hd_engine.Solver.outcome) );
                  ("seconds", Obs.Json.Float mono.Hd_engine.Solver.elapsed);
                ] );
            ( "blocks",
              Obs.Json.Obj
                [
                  ( "outcome",
                    Obs.Json.String
                      (outcome_string split.Hd_engine.Solver.outcome) );
                  ("seconds", Obs.Json.Float split.Hd_engine.Solver.elapsed);
                ] );
            ("speedup", Obs.Json.Float speedup);
          ])
      cases
  in
  set_engine_section (Obs.Json.Obj [ ("instances", Obs.Json.List entries) ])

(* HyperBench-style corpus sweep (hd_corpus): materialise the bundled
   mini-corpus under _corpus/, race a ghw roster over every instance in
   parallel, and record the width / time / winner table plus the
   ghw<=5 coverage histogram as BENCH_report.json's "corpus" section.
   With -baseline FILE, diff the fresh sweep against a previous report
   and fail the run (exit 3) on width regressions or >2x slowdowns. *)
let corpus scale =
  header
    (Printf.sprintf "Corpus -- mini-HyperBench sweep, -j %d, %s" scale.jobs
       (match scale.states with
       | Some n -> Printf.sprintf "%d states/instance (deterministic)" n
       | None -> Printf.sprintf "%.1fs/instance" scale.time_limit));
  let entries = Hd_corpus.Manifest.ensure_all ~root:"_corpus" in
  Printf.printf "materialised %d instances under _corpus/ (collections: %s)\n"
    (List.length entries)
    (String.concat ", " (Hd_corpus.Manifest.bundled_collections ()));
  let report =
    Hd_corpus.Sweep.sweep ~jobs:scale.jobs ~budget:(budget scale) ~seed:1
      entries
  in
  Hd_corpus.Sweep.print report;
  set_corpus_section (Hd_corpus.Sweep.to_json report);
  match scale.baseline with
  | None -> ()
  | Some path -> (
      Printf.printf "\nregression gate: diffing against %s%s\n" path
        (if scale.widths_only then " (widths and exactness only)" else "");
      match
        Hd_corpus.Regression.check_file
          ~check_times:(not scale.widths_only)
          ~baseline_path:path
          (Hd_corpus.Sweep.to_json report)
      with
      | Ok () -> Printf.printf "regression gate: OK, nothing regressed\n"
      | Error failures ->
          Printf.printf "regression gate: %d failure(s)\n"
            (List.length failures);
          List.iter
            (fun f ->
              Format.printf "  %a@." Hd_corpus.Regression.pp_failure f)
            failures;
          exit_code := 3)

(* the full width ladder -- tw / ghw / fhw (exact rational) / hw --
   side by side on the smallest corpus instances, recorded as
   BENCH_report.json's "widths" section (schema hd_lp/widths/1).
   CI smokes this under a -states budget so the numbers are
   machine-independent *)
let widths scale =
  header "Widths -- tw / ghw / fhw / hw ladder on the smallest corpus instances";
  Hd_search.Solvers.ensure ();
  let entries = Hd_corpus.Manifest.ensure_all ~root:"_corpus" in
  let loaded, _skipped = Hd_corpus.Sweep.load entries in
  let smallest =
    let weight h = Hypergraph.n_vertices h + Hypergraph.n_edges h in
    List.sort (fun (_, a) (_, b) -> compare (weight a) (weight b)) loaded
    |> List.filteri (fun i _ -> i < 3)
  in
  Printf.printf "%-20s %4s %4s | %8s %8s %10s %8s | %8s\n" "instance" "V" "H"
    "tw" "ghw" "fhw" "hw" "time";
  let rows =
    List.map
      (fun ((e : Hd_corpus.Manifest.entry), h) ->
        let problem = Hd_engine.Solver.Hypergraph h in
        let run name =
          Hd_engine.Engine.run_by_name ~seed:1 name
            (Hd_engine.Budget.of_spec (budget scale))
            problem
        in
        let started = Hd_engine.Clock.now () in
        let tw = run "astar-tw" in
        let ghw = run "bb-ghw" in
        let fhw = Hd_search.Bb_fhw.solve ~budget:(budget scale) ~seed:1 h in
        let hw = run "hw-det-k" in
        let secs = Hd_engine.Clock.now () -. started in
        let fhw_str, fhw_exact =
          match fhw.Hd_search.Bb_fhw.outcome_q with
          | Hd_search.Bb_fhw.Exact_q q -> (Hd_lp.Rat.to_string q ^ "*", true)
          | Hd_search.Bb_fhw.Bounds_q { lb; ub } ->
              ( Printf.sprintf "[%s,%s]" (Hd_lp.Rat.to_string lb)
                  (Hd_lp.Rat.to_string ub),
                false )
        in
        let hw_str =
          match hw.Hd_engine.Solver.outcome with
          | Hd_engine.Solver.Exact w -> Printf.sprintf "%d*" w
          | Hd_engine.Solver.Bounds _ -> "t/o"
        in
        let name = e.Hd_corpus.Manifest.collection ^ "/" ^ e.Hd_corpus.Manifest.name in
        Printf.printf "%-20s %4d %4d | %8s %8s %10s %8s | %7.2fs\n" name
          (Hypergraph.n_vertices h) (Hypergraph.n_edges h)
          (outcome_string tw.Hd_engine.Solver.outcome)
          (outcome_string ghw.Hd_engine.Solver.outcome)
          fhw_str hw_str secs;
        Obs.Json.Obj
          [
            ("instance", Obs.Json.String name);
            ("vertices", Obs.Json.Int (Hypergraph.n_vertices h));
            ("edges", Obs.Json.Int (Hypergraph.n_edges h));
            ("tw", Obs.Json.String (outcome_string tw.Hd_engine.Solver.outcome));
            ( "ghw",
              Obs.Json.String (outcome_string ghw.Hd_engine.Solver.outcome) );
            ("fhw", Obs.Json.String fhw_str);
            ("fhw_exact", Obs.Json.Bool fhw_exact);
            ("hw", Obs.Json.String hw_str);
            ("seconds", Obs.Json.Float secs);
          ])
      smallest
  in
  set_widths_section
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String "hd_lp/widths/1");
         ("instances", Obs.Json.List rows);
       ])

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let experiments scale =
  [
    ("table-5.1", fun () -> table_5_1 scale);
    ("table-5.2", fun () -> table_5_2 scale);
    ("table-6.1", fun () -> table_6_1 scale);
    ("table-6.2", fun () -> table_6_2 scale);
    ("table-6.3", fun () -> table_6_3 scale);
    ("table-6.4", fun () -> table_6_4 scale);
    ("table-6.5", fun () -> table_6_5 scale);
    ("table-6.6", fun () -> table_6_6 scale);
    ("table-7.1", fun () -> table_7_1 scale);
    ("table-7.2", fun () -> table_7_2 scale);
    ("table-8.1", fun () -> table_8_1 scale);
    ("table-9.1", fun () -> table_9_1 scale);
    ("figure-2", fun () -> figure_2 ());
    ("extension", fun () ->
        extension_heuristics scale;
        extension_hw scale;
        extension_preprocess scale);
    ("scaling", fun () -> scaling scale);
    ("ordering", fun () -> ordering scale);
    ("engine", fun () -> engine scale);
    ("corpus", fun () -> corpus scale);
    ("widths", fun () -> widths scale);
    ("parallel", fun () -> parallel scale);
    ("query", fun () -> query scale);
    ("micro", fun () -> micro ());
    ( "ablation",
      fun () ->
        ablation_setcover scale;
        ablation_dedup scale;
        ablation_pruning scale;
        ablation_lb scale );
  ]

let () =
  let scale = ref default_scale in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "-t" :: v :: rest ->
        scale := { !scale with time_limit = float_of_string v };
        parse rest
    | "-runs" :: v :: rest ->
        scale := { !scale with runs = int_of_string v };
        parse rest
    | "-pop" :: v :: rest ->
        scale := { !scale with population = int_of_string v };
        parse rest
    | "-iters" :: v :: rest ->
        scale := { !scale with iterations = int_of_string v };
        parse rest
    | "-j" :: v :: rest ->
        scale := { !scale with jobs = int_of_string v };
        parse rest
    | "-full" :: rest ->
        scale := { !scale with full = true };
        parse rest
    | "-states" :: v :: rest ->
        scale := { !scale with states = Some (int_of_string v) };
        parse rest
    | "-baseline" :: v :: rest ->
        scale := { !scale with baseline = Some v };
        parse rest
    | "-widths-only" :: rest ->
        scale := { !scale with widths_only = true };
        parse rest
    | name :: rest ->
        chosen := name :: !chosen;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let table = experiments !scale in
  let to_run =
    match !chosen with [] -> List.map fst table | names -> List.rev names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | Some f -> record_table name f
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst table));
          exit 2)
    to_run;
  write_bench_report ();
  if !exit_code <> 0 then exit !exit_code
