(* hd_server: decomposition-as-a-service.  Speaks the line-JSON
   protocol of docs/SERVER.md on stdin/stdout: submit hypergraphs or
   conjunctive queries, poll/wait/cancel jobs, read stats.  Solves run
   asynchronously, time-sliced over a small domain pool; repeat
   submissions are answered from a canonical-signature cache. *)

module Server = Hd_server.Server
module Obs = Hd_obs.Obs

let run workers slice_ms cache_capacity solver time_limit max_states stats =
  (* recording on by default: the server.* counters are part of the
     service's contract (stats op, --stats report, CI smoke) *)
  Obs.enable ();
  let config =
    {
      Server.workers;
      slice = float_of_int slice_ms /. 1000.0;
      cache_capacity;
      default_solver = solver;
      default_time_limit = time_limit;
      default_max_states = max_states;
    }
  in
  prerr_endline
    (Printf.sprintf
       "hd_server: ready (workers %d, slice %dms, cache %d, solver %s)"
       workers slice_ms cache_capacity solver);
  let outcome = Server.serve ~config stdin stdout in
  (match stats with
  | Some path -> (
      try Obs.write_report path
      with Sys_error msg ->
        prerr_endline ("hd_server: --stats: " ^ msg);
        exit 2)
  | None -> ());
  prerr_endline
    (match outcome with
    | `Shutdown -> "hd_server: shutdown requested, bye"
    | `Eof -> "hd_server: client closed the stream, bye")

open Cmdliner

let workers =
  Arg.(
    value & opt int 2
    & info [ "j"; "workers" ] ~docv:"N"
        ~doc:"Worker domains time-slicing the job queue.")

let slice_ms =
  Arg.(
    value & opt int 50
    & info [ "slice" ] ~docv:"MS"
        ~doc:
          "Milliseconds of compute one job gets per scheduler turn before \
           it is parked and the next runnable job runs.")

let cache_capacity =
  Arg.(
    value & opt int 1024
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Entries in the decomposition cache (LRU beyond that); keyed by \
           canonical hypergraph signature and width kind.")

let solver =
  Arg.(
    value
    & opt string Server.default_config.Server.default_solver
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Default solver for submits that name none (op $(b,solvers) \
           lists the registry).")

let time_limit =
  Arg.(
    value
    & opt (some float) Server.default_config.Server.default_time_limit
    & info [ "t"; "time-limit" ] ~docv:"SECONDS"
        ~doc:
          "Default compute-time budget per job (parked time does not \
           count); submits may override it.")

let max_states =
  Arg.(
    value & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Default cap on generated search states per job.")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "On exit, write the hd_obs JSON report (server.* counters \
           included) to $(docv) ($(b,-) or no value: stdout).")

let cmd =
  let doc = "serve decompositions over a line-JSON protocol" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line from standard input and answers \
         each with one JSON line on standard output; see docs/SERVER.md \
         for the request and response schema.  Solves run asynchronously \
         under budgets, many jobs time-sliced over $(b,--workers) \
         domains, and repeat submissions of the same instance (up to \
         vertex renaming and edge reordering) are answered from a \
         decomposition cache.";
    ]
  in
  Cmd.v
    (Cmd.info "hd_server" ~doc ~man)
    Term.(
      const run $ workers $ slice_ms $ cache_capacity $ solver $ time_limit
      $ max_states $ stats)

let () = exit (Cmd.eval cmd)
