(* hd_decompose: compute tree / generalized hypertree decompositions of
   graphs and hypergraphs with any of the library's methods. *)

module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module St = Hd_search.Search_types

type input = G of Graph.t | H of Hypergraph.t

let load ~instance ~graph_file ~hypergraph_file =
  match (instance, graph_file, hypergraph_file) with
  | Some name, None, None -> (
      match Hd_instances.Graphs.by_name name with
      | Some g -> Ok (G g)
      | None -> (
          match Hd_instances.Hypergraphs.by_name name with
          | Some h -> Ok (H h)
          | None -> Error (Printf.sprintf "unknown instance %S" name)))
  | None, Some path, None -> Ok (G (Hd_graph.Dimacs.parse_file path))
  | None, None, Some path -> Ok (H (Hd_hypergraph.Hg_format.parse_file path))
  | _ -> Error "give exactly one of --instance, --graph, --hypergraph"

let hypergraph_of = function G g -> Hypergraph.of_graph g | H h -> h
let primal_of = function G g -> g | H h -> Hypergraph.primal h

let budget time_limit =
  { St.time_limit; max_states = None }

let report_search label (result : St.result) =
  Format.printf "%s: %a  (visited %d, generated %d, %.2fs)@." label
    St.pp_outcome result.St.outcome result.St.visited result.St.generated
    result.St.elapsed;
  result.St.ordering

let report_ga label (r : Hd_ga.Ga_engine.report) =
  Format.printf
    "%s: width %d  (%d iterations, %d evaluations, %.2fs)@." label
    r.Hd_ga.Ga_engine.best r.Hd_ga.Ga_engine.iterations
    r.Hd_ga.Ga_engine.evaluations r.Hd_ga.Ga_engine.elapsed;
  Some r.Hd_ga.Ga_engine.best_individual

let report_portfolio label (r : Hd_parallel.Portfolio.t) =
  Format.printf "%s: %a  (%d domains%s, %.2fs)@." label St.pp_outcome
    r.Hd_parallel.Portfolio.outcome r.Hd_parallel.Portfolio.domains
    (match r.Hd_parallel.Portfolio.winner with
    | Some w -> ", won by " ^ w
    | None -> "")
    r.Hd_parallel.Portfolio.elapsed;
  List.iter
    (fun (m : Hd_parallel.Portfolio.member_report) ->
      Format.printf "  %-16s %a  (%.2fs)@." m.Hd_parallel.Portfolio.member
        St.pp_outcome m.Hd_parallel.Portfolio.outcome
        m.Hd_parallel.Portfolio.elapsed)
    r.Hd_parallel.Portfolio.members;
  r.Hd_parallel.Portfolio.ordering

let ensure_registry () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ();
  Hd_parallel.Par_solvers.ensure ()

(* --corpus DIR: sweep every instance file under DIR (or materialise a
   bundled collection by name) instead of decomposing one input *)
let run_corpus ~dir ~solvers ~jobs ~time_limit ~seed =
  let entries =
    if Sys.file_exists dir && Sys.is_directory dir then
      Hd_corpus.Manifest.scan dir
    else if List.mem dir (Hd_corpus.Manifest.bundled_collections ()) then
      Hd_corpus.Manifest.ensure ~root:"_corpus" dir
    else begin
      Printf.eprintf
        "hd_decompose: --corpus %s: not a directory and not a bundled \
         collection (bundled: %s)\n"
        dir
        (String.concat ", " (Hd_corpus.Manifest.bundled_collections ()));
      exit 2
    end
  in
  if entries = [] then begin
    Printf.eprintf "hd_decompose: --corpus %s: no instance files (%s)\n" dir
      (String.concat " " Hd_corpus.Manifest.instance_extensions);
    exit 2
  end;
  let roster = match solvers with [] -> None | names -> Some names in
  let budget = { St.time_limit; max_states = None } in
  let report =
    try Hd_corpus.Sweep.sweep ~jobs ?roster ~budget ~seed entries
    with Invalid_argument msg ->
      prerr_endline ("hd_decompose: " ^ msg);
      exit 2
  in
  Hd_corpus.Sweep.print report

let run input method_ ~jobs ~portfolio ~solvers time_limit seed population
    iterations print_decomposition output =
  match load ~instance:input.(0) ~graph_file:input.(1) ~hypergraph_file:input.(2)
  with
  | Error msg ->
      prerr_endline ("hd_decompose: " ^ msg);
      exit 2
  | Ok data -> (
      (* -j sizes the shared work-stealing scheduler (before first
         use) and lets Engine.run fork biconnected blocks through it;
         the -par solver variants pick the same instance up *)
      if jobs > 1 then begin
        Hd_parallel.Scheduler.set_default_workers (jobs - 1);
        Hd_parallel.Scheduler.install_engine_runner
          (Hd_parallel.Scheduler.shared ())
      end;
      let g = primal_of data in
      let h = hypergraph_of data in
      Format.printf "input: %d vertices, %d hyperedges (primal: %d edges)@."
        (Hypergraph.n_vertices h) (Hypergraph.n_edges h) (Graph.m g);
      let ga_config =
        {
          (Hd_ga.Ga_engine.default_config ~population_size:population
             ~max_iterations:iterations ~seed ())
          with
          Hd_ga.Ga_engine.time_limit;
        }
      in
      (* what the witness ordering (if any) should be evaluated as:
         bags for tw, exact covers for ghw, exact LP covers for fhw *)
      let wkind = ref `Tw in
      let ordering =
        match solvers with
        | _ :: _ as names -> (
            (* registry path: run the named engine solver(s), racing
               them as an ad-hoc portfolio when several are given *)
            ensure_registry ();
            (match
               List.filter (fun n -> Hd_engine.Solver.find n = None) names
             with
            | [] -> ()
            | missing ->
                Printf.eprintf
                  "hd_decompose: unknown solver%s %s (available: %s)\n"
                  (if List.length missing > 1 then "s" else "")
                  (String.concat ", " missing)
                  (String.concat ", " (Hd_engine.Solver.names ()));
                exit 2);
            let all_of k =
              List.for_all
                (fun n ->
                  match Hd_engine.Solver.find n with
                  | Some s -> s.Hd_engine.Solver.kind = k
                  | None -> false)
                names
            in
            wkind :=
              if all_of Hd_engine.Solver.Tw then `Tw
              else if all_of Hd_engine.Solver.Fhw then `Fhw
              else `Ghw;
            let problem =
              match data with
              | G g -> Hd_engine.Solver.Graph g
              | H h -> Hd_engine.Solver.Hypergraph h
            in
            match names with
            | [ name ] ->
                report_search name
                  (Hd_engine.Engine.run_by_name ~seed name
                     (Hd_engine.Budget.of_spec (budget time_limit))
                     problem)
            | names ->
                report_portfolio "portfolio"
                  (Hd_parallel.Portfolio.solve_named
                     ?jobs:(if jobs > 1 then Some jobs else None)
                     ~budget:(budget time_limit) ~seed ~names problem))
        | [] ->
        if portfolio then
          (* race the solver roster on [jobs] domains; the objective
             follows the input: treewidth for graphs, ghw for
             hypergraphs *)
          match data with
          | G g ->
              report_portfolio "portfolio-tw"
                (Hd_parallel.Portfolio.solve_tw ~jobs
                   ~budget:(budget time_limit) ~seed g)
          | H h ->
              wkind := `Ghw;
              report_portfolio "portfolio-ghw"
                (Hd_parallel.Portfolio.solve_ghw ~jobs
                   ~budget:(budget time_limit) ~seed h)
        else
        match method_ with
        | `Astar_tw ->
            report_search "A*-tw"
              (Hd_search.Astar_tw.solve ~budget:(budget time_limit) ~seed g)
        | `Bb_tw ->
            report_search "BB-tw"
              (Hd_search.Bb_tw.solve ~budget:(budget time_limit) ~seed g)
        | `Astar_ghw ->
            wkind := `Ghw;
            report_search "A*-ghw"
              (Hd_search.Astar_ghw.solve ~budget:(budget time_limit) ~seed h)
        | `Bb_ghw ->
            wkind := `Ghw;
            report_search "BB-ghw"
              (Hd_search.Bb_ghw.solve ~budget:(budget time_limit) ~seed h)
        | `Ga_tw -> report_ga "GA-tw" (Hd_ga.Ga_tw.run ga_config g)
        | `Ga_ghw ->
            wkind := `Ghw;
            report_ga "GA-ghw" (Hd_ga.Ga_ghw.run ga_config h)
        | `Saiga ->
            wkind := `Ghw;
            let config =
              {
                (Hd_ga.Saiga_ghw.default_config
                   ~n_islands:(if jobs > 1 then jobs else 4)
                   ~seed ())
                with
                Hd_ga.Saiga_ghw.time_limit;
              }
            in
            (* -j 1: the sequential round-robin islands of Section 7.2;
               -j N>1: one domain per island, ring-buffer migration *)
            let r =
              if jobs > 1 then Hd_parallel.Saiga_par.run config h
              else Hd_ga.Saiga_ghw.run config h
            in
            Format.printf "SAIGA-ghw%s: width %d  (%d epochs, %d evaluations, %.2fs)@."
              (if jobs > 1 then Printf.sprintf " (%d islands, parallel)" jobs
               else "")
              r.Hd_ga.Saiga_ghw.best r.Hd_ga.Saiga_ghw.epochs
              r.Hd_ga.Saiga_ghw.evaluations r.Hd_ga.Saiga_ghw.elapsed;
            Some r.Hd_ga.Saiga_ghw.best_individual
        | `Min_fill ->
            let rng = Random.State.make [| seed |] in
            let sigma = Hd_core.Ordering_heuristics.min_fill rng g in
            let ws = Hd_core.Eval.of_graph g in
            Format.printf "min-fill: treewidth upper bound %d@."
              (Hd_core.Eval.tw_width ws sigma);
            Some sigma
        | `Sa ->
            let config =
              {
                (Hd_ga.Local_search.default_config ~seed ()) with
                Hd_ga.Local_search.time_limit;
              }
            in
            let r = Hd_ga.Local_search.sa_tw config g in
            Format.printf "SA-tw: width %d  (%d steps, %.2fs)@."
              r.Hd_ga.Local_search.best r.Hd_ga.Local_search.steps
              r.Hd_ga.Local_search.elapsed;
            Some r.Hd_ga.Local_search.best_individual
        | `Preprocess ->
            report_search "A*-tw+preprocess"
              (Hd_search.Preprocess.treewidth_with_preprocessing
                 ~budget:(budget time_limit) ~seed g)
        | `Fhw ->
            wkind := `Fhw;
            let r = Hd_search.Bb_fhw.solve ~budget:(budget time_limit) ~seed h in
            (match r.Hd_search.Bb_fhw.outcome_q with
            | Hd_search.Bb_fhw.Exact_q q ->
                Format.printf "BB-fhw: fhw = %s (exact)  (visited %d, generated %d, %.2fs)@."
                  (Hd_lp.Rat.to_string q) r.Hd_search.Bb_fhw.visited
                  r.Hd_search.Bb_fhw.generated r.Hd_search.Bb_fhw.elapsed
            | Hd_search.Bb_fhw.Bounds_q { lb; ub } ->
                Format.printf "BB-fhw: fhw in [%s, %s]  (visited %d, generated %d, %.2fs)@."
                  (Hd_lp.Rat.to_string lb) (Hd_lp.Rat.to_string ub)
                  r.Hd_search.Bb_fhw.visited r.Hd_search.Bb_fhw.generated
                  r.Hd_search.Bb_fhw.elapsed);
            r.Hd_search.Bb_fhw.ordering
        | `Hw ->
            wkind := `Ghw;
            (try
               let w, hd =
                 Hd_search.Det_k_decomp.hypertree_width ?time_limit h
               in
               Format.printf "det-k-decomp: hypertree width %d (valid %b)@." w
                 (Hd_search.Det_k_decomp.valid h hd);
               if print_decomposition then Format.printf "%a@." (Ghd.pp h) hd;
               match output with
               | Some path ->
                   Hd_core.Ghd_io.write_file path
                     ~n_vertices:(Hypergraph.n_vertices h)
                     ~n_edges:(Hypergraph.n_edges h) hd;
                   Format.printf "wrote %s (.ghd format)@." path
               | None -> ()
             with Hd_search.Det_k_decomp.Timeout ->
               Format.printf "det-k-decomp: time limit exceeded@.");
            None
        | `Analyze ->
            wkind := `Ghw;
            let report =
              Hd_search.Widths.analyze
                ?time_limit:(Option.map (fun t -> t) time_limit)
                ~seed h
            in
            Format.printf "%a@." Hd_search.Widths.pp report;
            None
        | `Bounds ->
            let rng = Random.State.make [| seed |] in
            Format.printf "treewidth lower bound: %d@."
              (Hd_bounds.Lower_bounds.treewidth ~rng g);
            Format.printf "ghw lower bound (tw-ksc-width): %d@."
              (Hd_bounds.Lower_bounds.ghw ~rng h);
            None
      in
      match ordering with
      | None -> ()
      | Some sigma -> (
          match !wkind with
          | `Tw -> (
              let td = Td.of_ordering g sigma in
              Format.printf "witness tree decomposition: width %d, valid %b@."
                (Td.width td) (Td.valid_for_graph g td);
              if print_decomposition then Format.printf "%a@." Td.pp td;
              match output with
              | Some path ->
                  Hd_core.Td_io.write_file path ~n_vertices:(Graph.n g)
                    (Td.simplify td);
                  Format.printf "wrote %s (PACE .td format)@." path
              | None -> ())
          | `Fhw -> (
              (* the exact rational lives in the witness ordering: the
                 registry only carries its ceiling *)
              let ws = Hd_core.Eval.of_hypergraph h in
              let q = Hd_core.Eval.fhw_width_q ws sigma in
              Format.printf
                "witness ordering: exact fractional width %s (fhw <= %s)@."
                (Hd_lp.Rat.to_string q) (Hd_lp.Rat.to_string q);
              match output with
              | Some path ->
                  let td = Td.of_ordering g sigma in
                  Hd_core.Td_io.write_file path ~n_vertices:(Graph.n g)
                    (Td.simplify td);
                  Format.printf "wrote %s (PACE .td format)@." path
              | None -> ())
          | `Ghw ->
              let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
              Format.printf
                "witness generalized hypertree decomposition: width %d, valid %b@."
                (Ghd.width ghd) (Ghd.valid h ghd);
              if print_decomposition then Format.printf "%a@." (Ghd.pp h) ghd))

open Cmdliner

let instance =
  Arg.(value & opt (some string) None & info [ "i"; "instance" ] ~doc:"Named benchmark instance (see hd_decompose --list).")

let instance_pos =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"INSTANCE" ~doc:"Named benchmark instance (same as $(b,--instance)).")

let graph_file =
  Arg.(value & opt (some file) None & info [ "graph" ] ~doc:"DIMACS graph file.")

let hypergraph_file =
  Arg.(value & opt (some file) None & info [ "hypergraph" ] ~doc:"Hypergraph file (atom format).")

let method_ =
  let methods =
    [
      ("astar-tw", `Astar_tw);
      ("bb-tw", `Bb_tw);
      ("astar-ghw", `Astar_ghw);
      ("bb-ghw", `Bb_ghw);
      ("ga-tw", `Ga_tw);
      ("ga-ghw", `Ga_ghw);
      ("saiga", `Saiga);
      ("min-fill", `Min_fill);
      ("sa", `Sa);
      ("preprocess", `Preprocess);
      ("fhw", `Fhw);
      ("hw", `Hw);
      ("analyze", `Analyze);
      ("bounds", `Bounds);
    ]
  in
  Arg.(
    value
    & opt (enum methods) `Bb_ghw
    & info [ "m"; "method" ] ~doc:"Decomposition method.")

let time_limit =
  Arg.(value & opt (some float) (Some 30.0) & info [ "t"; "time-limit" ] ~doc:"Time limit in seconds.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains: portfolio members raced by $(b,--portfolio), \
           islands run in parallel by $(b,-m saiga).  1 (the default) stays \
           sequential.")

let portfolio =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race complementary solvers on $(b,-j) domains sharing one \
           incumbent (treewidth roster for graphs, ghw roster for \
           hypergraphs) instead of running a single $(b,--method).")

let population =
  Arg.(value & opt int 200 & info [ "population" ] ~doc:"GA population size.")

let iterations =
  Arg.(value & opt int 500 & info [ "iterations" ] ~doc:"GA iteration count.")

let print_decomposition =
  Arg.(value & flag & info [ "p"; "print" ] ~doc:"Print the decomposition.")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List named instances and exit.")

let solver =
  Arg.(
    value
    & opt (some string) None
    & info [ "solver" ] ~docv:"NAME[,NAME...]"
        ~doc:
          "Run the named solver(s) from the engine registry (see \
           $(b,--list-solvers)) instead of $(b,--method).  Several \
           comma-separated names race as a portfolio sharing one incumbent.")

let list_solvers_flag =
  Arg.(
    value & flag
    & info [ "list-solvers" ]
        ~doc:"List the registered engine solvers and exit.")

let corpus =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Batch mode: sweep every instance file ($(b,.hg), $(b,.cq), \
           $(b,.txt)) under directory $(docv), racing the $(b,--solver) \
           roster (default: the ghw roster) on $(b,-j) worker domains under \
           a $(b,-t) per-instance budget, and print the width/time/winner \
           table.  $(docv) may also name a bundled collection (e.g. \
           $(b,csp-synth)), materialised under _corpus/ first.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~doc:"Write the tree decomposition to a PACE .td file.")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect hd_obs counters and spans during the run and write the \
           JSON report to $(docv) ($(b,-) or no value: stdout).")

let main instance instance_pos graph_file hypergraph_file method_ jobs
    portfolio solver corpus time_limit seed population iterations
    print_decomposition list_flag list_solvers_flag output stats =
  if list_solvers_flag then begin
    ensure_registry ();
    (* grouped by the width measure each solver optimises *)
    let all = Hd_engine.Solver.all () in
    List.iter
      (fun kind ->
        match
          List.filter (fun s -> s.Hd_engine.Solver.kind = kind) all
        with
        | [] -> ()
        | members ->
            Printf.printf "%s:\n" (Hd_engine.Solver.kind_name kind);
            List.iter
              (fun (s : Hd_engine.Solver.t) ->
                Printf.printf "  %-16s %s\n" s.Hd_engine.Solver.name
                  s.Hd_engine.Solver.doc)
              members)
      [
        Hd_engine.Solver.Tw;
        Hd_engine.Solver.Ghw;
        Hd_engine.Solver.Fhw;
        Hd_engine.Solver.Hw;
      ]
  end
  else if list_flag then begin
    print_endline "graphs:";
    List.iter
      (fun (n, v, e) -> Printf.printf "  %-12s %5d vertices %6d edges\n" n v e)
      Hd_instances.Graphs.names;
    print_endline "hypergraphs:";
    List.iter
      (fun (n, v, e) -> Printf.printf "  %-12s %5d vertices %6d edges\n" n v e)
      Hd_instances.Hypergraphs.names
  end
  else begin
    match corpus with
    | Some dir ->
        if stats <> None then Hd_obs.Obs.enable ();
        let solvers =
          match solver with
          | None -> []
          | Some s ->
              String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun n -> n <> "")
        in
        run_corpus ~dir ~solvers ~jobs ~time_limit ~seed;
        (match stats with
        | Some path -> (
            try Hd_obs.Obs.write_report path
            with Sys_error msg ->
              prerr_endline ("hd_decompose: --stats: " ^ msg);
              exit 2)
        | None -> ())
    | None ->
    let instance = match instance with Some _ -> instance | None -> instance_pos in
    (* convenience: `--stats queen5_5` — cmdliner binds the instance name
       to --stats's optional FILE value; if that value names a known
       instance and no instance was given otherwise, reinterpret it and
       send the report to stdout *)
    let instance, stats =
      match (instance, graph_file, hypergraph_file, stats) with
      | None, None, None, Some s
        when Hd_instances.Graphs.by_name s <> None
             || Hd_instances.Hypergraphs.by_name s <> None ->
          (Some s, Some "-")
      | _ -> (instance, stats)
    in
    if stats <> None then Hd_obs.Obs.enable ();
    let solvers =
      match solver with
      | None -> []
      | Some s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun n -> n <> "")
    in
    run
      [| instance; graph_file; hypergraph_file |]
      method_ ~jobs ~portfolio ~solvers time_limit seed population iterations
      print_decomposition output;
    match stats with
    | Some path -> (
        try Hd_obs.Obs.write_report path
        with Sys_error msg ->
          prerr_endline ("hd_decompose: --stats: " ^ msg);
          exit 2)
    | None -> ()
  end

let cmd =
  let doc = "tree and generalized hypertree decompositions" in
  Cmd.v
    (Cmd.info "hd_decompose" ~doc)
    Term.(
      const main $ instance $ instance_pos $ graph_file $ hypergraph_file
      $ method_ $ jobs $ portfolio $ solver $ corpus $ time_limit $ seed
      $ population $ iterations $ print_decomposition $ list_flag
      $ list_solvers_flag $ output $ stats)

let () = exit (Cmd.eval cmd)
