(* hd_query: answer conjunctive queries over CSV/TSV relational
   instances via Yannakakis semijoin programs on (generalized)
   hypertree decompositions. *)

module Cq = Hd_query.Cq
module Db = Hd_query.Db
module Y = Hd_query.Yannakakis
module Sig = Hd_server.Signature

let load_query ~query_file ~query_string =
  match (query_file, query_string) with
  | Some path, None -> Cq.parse_file path
  | None, Some text -> Cq.parse_string text
  | _ ->
      prerr_endline "hd_query: give exactly one of QUERY, --expr or --batch";
      exit 2

let load_db data =
  let db = Db.create () in
  List.iter
    (fun path ->
      if Sys.is_directory path then Db.load_dir db path
      else Db.load_file db path)
    data;
  if Db.relation_names db = [] then begin
    prerr_endline "hd_query: no relations loaded (give --data DIR or files)";
    exit 2
  end;
  db

(* batch evaluation: parse every rule of the file, share one
   decomposition per isomorphism class of cyclic query structure
   (canonical signatures, orderings replayed through the canonical
   relabelling), report per-query and amortised timings *)
(* -j > 1: size the shared work-stealing scheduler once and run the
   columnar passes partitioned-parallel on it (results are
   byte-identical to -j 1) *)
let par_of_jobs jobs =
  if jobs > 1 then begin
    Hd_parallel.Scheduler.set_default_workers (jobs - 1);
    Some (Hd_parallel.Scheduler.shared ())
  end
  else None

let run_batch batch_file data mode method_ engine jobs seed time_limit limit =
  let qs = Cq.parse_multi_file batch_file in
  if qs = [] then begin
    prerr_endline "hd_query: --batch file contains no rules";
    exit 2
  end;
  let db = load_db data in
  let par = par_of_jobs jobs in
  (* canonical signature key -> ordering in canonical vertex ids *)
  let orderings : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let decompositions = ref 0 and reused = ref 0 in
  let decomp_secs = ref 0.0 in
  let total, total_secs =
    Hd_engine.Clock.time @@ fun () ->
    List.fold_left
      (fun (i, acc) q ->
        let ordering =
          match Cq.hypergraph q with
          | exception Invalid_argument _ -> None
          | h ->
              if
                method_ = Y.Auto
                && Hd_hypergraph.Acyclicity.is_acyclic h
              then None
              else begin
                let s = Sig.of_hypergraph h in
                match Hashtbl.find_opt orderings (Sig.key s) with
                | Some canon ->
                    incr reused;
                    Some (Sig.of_canonical s canon)
                | None ->
                    let sigma, secs =
                      Hd_engine.Clock.time @@ fun () ->
                      Y.ordering_for ~method_ ~jobs ~seed ~time_limit h
                    in
                    incr decompositions;
                    decomp_secs := !decomp_secs +. secs;
                    Hashtbl.replace orderings (Sig.key s)
                      (Sig.to_canonical s sigma);
                    Some sigma
              end
        in
        let r, elapsed =
          Hd_engine.Clock.time @@ fun () ->
          Y.run ~engine ~method_ ~jobs ~seed ~time_limit ?ordering ?par ~mode
            db q
        in
        let s = r.Y.stats in
        Printf.printf "[%d] %s  (%s, width %d, %.3fs%s)\n" i
          (match mode with
          | Y.Answers -> Printf.sprintf "%d answers" r.Y.count
          | Y.Count -> Printf.sprintf "count %d" r.Y.count
          | Y.Boolean -> Printf.sprintf "boolean %b" r.Y.nonempty)
          (if s.Y.acyclic then "acyclic" else "GHD")
          s.Y.width elapsed
          (match ordering with Some _ -> ", shared plan" | None -> "");
        (if mode = Y.Answers then
           let sorted = List.sort compare r.Y.answers in
           let shown =
             match limit with
             | Some k -> List.filteri (fun j _ -> j < k) sorted
             | None -> sorted
           in
           List.iter
             (fun row ->
               print_endline ("    " ^ String.concat "," (Array.to_list row)))
             shown);
        (i + 1, acc + r.Y.count))
      (0, 0) qs
  in
  let n, _ = total in
  Printf.eprintf
    "hd_query: batch of %d queries in %.3fs (%.1fms/query amortised); %d \
     decompositions computed (%.3fs), %d shared\n"
    n total_secs
    (1000.0 *. total_secs /. float_of_int (max 1 n))
    !decompositions !decomp_secs !reused

let run query_file query_string batch data mode method_ engine jobs seed
    time_limit limit brute stats =
  if stats <> None then Hd_obs.Obs.enable ();
  match batch with
  | Some batch_file ->
      if query_file <> None || query_string <> None || brute then begin
        prerr_endline
          "hd_query: --batch excludes QUERY, --expr and --brute-force";
        exit 2
      end;
      run_batch batch_file data mode method_ engine jobs seed time_limit limit;
      (match stats with
      | Some path -> (
          try Hd_obs.Obs.write_report path
          with Sys_error msg ->
            prerr_endline ("hd_query: --stats: " ^ msg);
            exit 2)
      | None -> ())
  | None ->
  let q = load_query ~query_file ~query_string in
  let db = load_db data in
  let print_truncated answers =
    let sorted = List.sort compare answers in
    let shown =
      match limit with
      | Some k -> List.filteri (fun i _ -> i < k) sorted
      | None -> sorted
    in
    List.iter
      (fun row -> print_endline (String.concat "," (Array.to_list row)))
      shown;
    match limit with
    | Some k when List.length sorted > k ->
        Printf.eprintf "... %d more answers suppressed by --limit\n"
          (List.length sorted - k)
    | _ -> ()
  in
  if brute then begin
    (* the oracle: same output, no decomposition *)
    (match mode with
    | Y.Answers -> print_truncated (Hd_query.Brute_force.answers db q)
    | Y.Count -> Printf.printf "%d\n" (Hd_query.Brute_force.count db q)
    | Y.Boolean ->
        Printf.printf "%b\n" (Hd_query.Brute_force.boolean db q))
  end
  else begin
    let r, elapsed =
      Hd_engine.Clock.time @@ fun () ->
      Y.run ~engine ~method_ ~jobs ~seed ~time_limit ?par:(par_of_jobs jobs)
        ~mode db q
    in
    (match mode with
    | Y.Answers -> print_truncated r.Y.answers
    | Y.Count -> Printf.printf "%d\n" r.Y.count
    | Y.Boolean -> Printf.printf "%b\n" r.Y.nonempty);
    let s = r.Y.stats in
    Printf.eprintf
      "hd_query: %s in %.3fs  (plan: %s, width %d, %d bags; %d tuples \
       materialized -> %d after %d semijoins)\n"
      (match mode with
      | Y.Answers -> Printf.sprintf "%d answers" r.Y.count
      | Y.Count -> Printf.sprintf "count %d" r.Y.count
      | Y.Boolean -> Printf.sprintf "boolean %b" r.Y.nonempty)
      elapsed
      (if s.Y.acyclic then "acyclic join tree" else "GHD")
      s.Y.width s.Y.bags s.Y.tuples_materialized s.Y.tuples_after_reduction
      s.Y.semijoins
  end;
  match stats with
  | Some path -> (
      try Hd_obs.Obs.write_report path
      with Sys_error msg ->
        prerr_endline ("hd_query: --stats: " ^ msg);
        exit 2)
  | None -> ()

open Cmdliner

let query_file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"QUERY"
        ~doc:
          "Query file: one datalog-style rule, e.g. \
           $(b,ans(X,Y) :- r(X,Z), s(Z,Y).)")

let query_string =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"RULE" ~doc:"Inline query text instead of a file.")

let batch =
  Arg.(
    value
    & opt (some file) None
    & info [ "batch" ] ~docv:"FILE"
        ~doc:
          "Batch evaluation: $(docv) holds many '.'-terminated rules. \
           Queries with isomorphic cyclic structure share one \
           decomposition (canonical-signature matching); per-query and \
           amortised timings are reported.")

let engine =
  Arg.(
    value
    & opt (enum [ ("columnar", Y.Columnar); ("rows", Y.Rows) ]) Y.Columnar
    & info [ "engine" ]
        ~doc:
          "Execution kernel: $(b,columnar) (vector-at-a-time, selection \
           vectors, radix partitioning; the default) or $(b,rows) (the \
           row-at-a-time reference).")

let data =
  Arg.(
    value
    & opt_all string []
    & info [ "d"; "data" ] ~docv:"PATH"
        ~doc:
          "Relational instance: a directory of $(b,.csv)/$(b,.tsv) files \
           (one relation per file, named after it) or a single file. \
           Repeatable.")

let mode =
  Arg.(
    value
    & opt
        (enum
           [ ("answers", Y.Answers); ("count", Y.Count); ("boolean", Y.Boolean) ])
        Y.Answers
    & info [ "mode" ]
        ~doc:
          "What to compute: $(b,answers) enumerates the distinct answers, \
           $(b,count) counts them, $(b,boolean) decides emptiness.")

let method_ =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Y.Auto);
             ("minfill", Y.Min_fill);
             ("bb-ghw", Y.Bb_ghw);
             ("portfolio", Y.Portfolio);
           ])
        Y.Auto
    & info [ "m"; "method" ]
        ~doc:
          "Plan selection: $(b,auto) uses the GYO join tree when the query \
           is acyclic and a min-fill GHD otherwise; $(b,minfill), \
           $(b,bb-ghw) and $(b,portfolio) force a GHD plan with that \
           ordering search.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:"Worker domains for $(b,--method portfolio).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let time_limit =
  Arg.(
    value & opt float 10.0
    & info [ "t"; "time-limit" ]
        ~doc:"Time limit (seconds) for the decomposition search.")

let limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) answers.")

let brute =
  Arg.(
    value & flag
    & info [ "brute-force" ]
        ~doc:
          "Evaluate by brute-force backtracking instead of Yannakakis (the \
           testing oracle).")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect hd_obs counters and spans (semijoin sizes, intermediate \
           cardinalities, enumeration work) and write the JSON report to \
           $(docv) ($(b,-) or no value: stdout).")

let cmd =
  let doc = "answer conjunctive queries via Yannakakis over (G)HDs" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Count the directed triangles of the sample instance:";
      `Pre
        "  hd_query examples/query/triangle.cq --data examples/query/data \
         --mode count";
      `P "Boolean check with an inline rule:";
      `Pre
        "  hd_query -e 'ok() :- e(X,Y), e(Y,X).' --data examples/query/data \
         --mode boolean";
    ]
  in
  Cmd.v
    (Cmd.info "hd_query" ~doc ~man)
    Term.(
      const run $ query_file $ query_string $ batch $ data $ mode $ method_
      $ engine $ jobs $ seed $ time_limit $ limit $ brute $ stats)

let () = exit (Cmd.eval cmd)
