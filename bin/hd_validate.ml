(* hd_validate: check a PACE-format tree decomposition (.td) against a
   graph or hypergraph instance, reporting validity and width —
   interoperates with external treewidth solvers and validators. *)

module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition

let run instance graph_file hypergraph_file td_file stats =
  if stats <> None then Hd_obs.Obs.enable ();
  let h =
    match (instance, graph_file, hypergraph_file) with
    | Some name, None, None -> (
        match Hd_instances.Graphs.by_name name with
        | Some g -> Hypergraph.of_graph g
        | None -> (
            match Hd_instances.Hypergraphs.by_name name with
            | Some h -> h
            | None ->
                prerr_endline ("hd_validate: unknown instance " ^ name);
                exit 2))
    | None, Some path, None -> Hypergraph.of_graph (Hd_graph.Dimacs.parse_file path)
    | None, None, Some path -> Hd_hypergraph.Hg_format.parse_file path
    | _ ->
        prerr_endline
          "hd_validate: give exactly one of --instance, --graph, --hypergraph";
        exit 2
  in
  let td =
    try Hd_core.Td_io.parse_file td_file
    with Failure msg | Sys_error msg ->
      prerr_endline ("hd_validate: " ^ msg);
      exit 2
  in
  let valid =
    Hd_obs.Obs.with_span "validate.check" @@ fun () ->
    Td.valid_for_hypergraph h td
  in
  Format.printf "bags: %d@.width: %d@.valid tree decomposition: %b@."
    (Td.n_nodes td) (Td.width td) valid;
  (match stats with
  | Some path -> (
      try Hd_obs.Obs.write_report path
      with Sys_error msg ->
        prerr_endline ("hd_validate: --stats: " ^ msg);
        exit 2)
  | None -> ());
  if not valid then exit 1

open Cmdliner

let instance =
  Arg.(value & opt (some string) None & info [ "i"; "instance" ] ~doc:"Named instance.")

let graph_file =
  Arg.(value & opt (some file) None & info [ "graph" ] ~doc:"DIMACS graph file.")

let hypergraph_file =
  Arg.(value & opt (some file) None & info [ "hypergraph" ] ~doc:"Hypergraph file.")

let td_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TD_FILE" ~doc:"PACE .td file.")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect hd_obs counters and spans during the run and write the \
           JSON report to $(docv) ($(b,-) or no value: stdout).")

let cmd =
  let doc = "validate a PACE-format tree decomposition against an instance" in
  Cmd.v
    (Cmd.info "hd_validate" ~doc)
    Term.(const run $ instance $ graph_file $ hypergraph_file $ td_file $ stats)

let () = exit (Cmd.eval cmd)
