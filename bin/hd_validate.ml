(* hd_validate: check a PACE-format tree decomposition (.td) or a
   hypertree decomposition witness (.ghd) against a graph or
   hypergraph instance, reporting validity and width — interoperates
   with external treewidth solvers and validators.

   .ghd witnesses get the full hypertree treatment: the three GHD
   conditions plus the descendant/special condition.  --fhw
   additionally prices every bag with an exact rational fractional
   cover (the fhw of the decomposition), verified in exact
   arithmetic. *)

module Graph = Hd_graph.Graph
module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Rat = Hd_lp.Rat

(* exact fractional width of a decomposition: max over bags of rho*,
   each weighting audited by Fractional.verify before being trusted *)
let fractional_width h td =
  let width = ref Rat.zero in
  let ok = ref true in
  Array.iter
    (fun bag ->
      if not (Bitset.is_empty bag) then begin
        let problem = { Hd_setcover.Set_cover.universe = bag; hypergraph = h } in
        let rho, weights = Hd_setcover.Fractional.cover problem in
        if not (Hd_setcover.Fractional.verify problem weights) then ok := false;
        if Rat.compare rho !width > 0 then width := rho
      end)
    td.Td.bags;
  (!width, !ok)

let run instance graph_file hypergraph_file td_file fhw stats =
  if stats <> None then Hd_obs.Obs.enable ();
  let h =
    match (instance, graph_file, hypergraph_file) with
    | Some name, None, None -> (
        match Hd_instances.Graphs.by_name name with
        | Some g -> Hypergraph.of_graph g
        | None -> (
            match Hd_instances.Hypergraphs.by_name name with
            | Some h -> h
            | None ->
                prerr_endline ("hd_validate: unknown instance " ^ name);
                exit 2))
    | None, Some path, None -> Hypergraph.of_graph (Hd_graph.Dimacs.parse_file path)
    | None, None, Some path -> Hd_hypergraph.Hg_format.parse_file path
    | _ ->
        prerr_endline
          "hd_validate: give exactly one of --instance, --graph, --hypergraph";
        exit 2
  in
  let is_ghd = Filename.check_suffix td_file ".ghd" in
  let valid =
    if is_ghd then begin
      (* hypertree decomposition witness: GHD conditions + special
         condition, as det-k-decomp's output must satisfy *)
      let ghd =
        try Hd_core.Ghd_io.parse_file td_file
        with Failure msg | Invalid_argument msg | Sys_error msg ->
          prerr_endline ("hd_validate: " ^ msg);
          exit 2
      in
      let td = ghd.Ghd.td in
      let ghd_ok =
        Hd_obs.Obs.with_span "validate.check" @@ fun () -> Ghd.valid h ghd
      in
      let special_ok =
        Hd_obs.Obs.with_span "validate.special" @@ fun () ->
        Hd_search.Det_k_decomp.special_condition_holds h ghd
      in
      Format.printf
        "bags: %d@.width: %d (hypertree width of witness)@.valid ghd: %b@.special \
         condition: %b@.valid hypertree decomposition: %b@."
        (Td.n_nodes td) (Ghd.width ghd) ghd_ok special_ok (ghd_ok && special_ok);
      if fhw then begin
        let q, cover_ok = fractional_width h td in
        Format.printf "fractional width of witness: %s (covers verified: %b)@."
          (Rat.to_string q) cover_ok;
        if not cover_ok then exit 1
      end;
      ghd_ok && special_ok
    end
    else begin
      let td =
        try Hd_core.Td_io.parse_file td_file
        with Failure msg | Sys_error msg ->
          prerr_endline ("hd_validate: " ^ msg);
          exit 2
      in
      let valid =
        Hd_obs.Obs.with_span "validate.check" @@ fun () ->
        Td.valid_for_hypergraph h td
      in
      Format.printf "bags: %d@.width: %d@.valid tree decomposition: %b@."
        (Td.n_nodes td) (Td.width td) valid;
      if fhw then begin
        let q, cover_ok = fractional_width h td in
        Format.printf "fractional width of witness: %s (covers verified: %b)@."
          (Rat.to_string q) cover_ok;
        if not cover_ok then exit 1
      end;
      valid
    end
  in
  (match stats with
  | Some path -> (
      try Hd_obs.Obs.write_report path
      with Sys_error msg ->
        prerr_endline ("hd_validate: --stats: " ^ msg);
        exit 2)
  | None -> ());
  if not valid then exit 1

open Cmdliner

let instance =
  Arg.(value & opt (some string) None & info [ "i"; "instance" ] ~doc:"Named instance.")

let graph_file =
  Arg.(value & opt (some file) None & info [ "graph" ] ~doc:"DIMACS graph file.")

let hypergraph_file =
  Arg.(value & opt (some file) None & info [ "hypergraph" ] ~doc:"Hypergraph file.")

let td_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TD_FILE"
        ~doc:
          "Decomposition file: PACE $(b,.td), or $(b,.ghd) for a hypertree \
           decomposition witness (checked against the descendant/special \
           condition as well).")

let fhw_flag =
  Arg.(
    value & flag
    & info [ "fhw" ]
        ~doc:
          "Also price every bag with an exact rational fractional edge cover \
           and report the fractional width of the witness (covers are \
           re-verified in exact arithmetic; exits non-zero if any cover \
           fails its audit).")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect hd_obs counters and spans during the run and write the \
           JSON report to $(docv) ($(b,-) or no value: stdout).")

let cmd =
  let doc = "validate a tree or hypertree decomposition against an instance" in
  Cmd.v
    (Cmd.info "hd_validate" ~doc)
    Term.(
      const run $ instance $ graph_file $ hypergraph_file $ td_file $ fhw_flag
      $ stats)

let () = exit (Cmd.eval cmd)
