(* hd_solve: solve CSPs through their decompositions, demonstrating the
   end-to-end pipeline of Section 2.4. *)

module Csp = Hd_csp.Csp
module Models = Hd_csp.Models
module Solver = Hd_csp.Solver

let build_problem = function
  | `Australia -> Models.australia ()
  | `Example5 -> Models.example5 ()
  | `Queens n -> Models.n_queens n
  | `Coloring (name, colors) -> (
      match Hd_instances.Graphs.by_name name with
      | Some g -> Models.graph_coloring g ~colors
      | None -> failwith (Printf.sprintf "unknown graph instance %S" name))
  | `Random seed ->
      Models.random_csp ~seed ~n_vars:20 ~domain_size:3 ~n_constraints:25
        ~arity:2 ~tightness:0.4

let describe csp assignment =
  let parts =
    List.init (Csp.n_variables csp) (fun v ->
        Printf.sprintf "%s=%d" (Csp.variable_name csp v) assignment.(v))
  in
  String.concat " " parts

let run problem strategy seed stats =
  if stats <> None then Hd_obs.Obs.enable ();
  let csp = build_problem problem in
  Format.printf "CSP: %d variables, %d constraints@." (Csp.n_variables csp)
    (Csp.n_constraints csp);
  let h = Csp.hypergraph csp in
  Format.printf "constraint hypergraph: %d vertices, %d hyperedges@."
    (Hd_hypergraph.Hypergraph.n_vertices h)
    (Hd_hypergraph.Hypergraph.n_edges h);
  let solve name f =
    let result, elapsed = Hd_engine.Clock.time f in
    (match result with
    | Some a ->
        Format.printf "%s: solution in %.3fs  [consistent: %b]@." name elapsed
          (Csp.consistent csp a);
        if Csp.n_variables csp <= 30 then
          Format.printf "  %s@." (describe csp a)
    | None -> Format.printf "%s: no solution (%.3fs)@." name elapsed);
    result
  in
  (match Solver.solve_if_acyclic csp with
  | Some _ -> Format.printf "constraint hypergraph is alpha-acyclic@."
  | None -> Format.printf "constraint hypergraph is cyclic@.");
  let from_decomposition =
    match strategy with
    | `Td -> solve "tree-decomposition solving" (fun () -> Solver.solve csp ~strategy:`Td ~seed)
    | `Ghd -> solve "GHD solving" (fun () -> Solver.solve csp ~strategy:`Ghd ~seed)
    | `Adaptive ->
        solve "adaptive consistency" (fun () ->
            Hd_csp.Adaptive_consistency.solve_auto ~seed csp)
    | `Both ->
        ignore (solve "tree-decomposition solving" (fun () -> Solver.solve csp ~strategy:`Td ~seed));
        ignore (solve "GHD solving" (fun () -> Solver.solve csp ~strategy:`Ghd ~seed));
        solve "adaptive consistency" (fun () ->
            Hd_csp.Adaptive_consistency.solve_auto ~seed csp)
  in
  let oracle = solve "backtracking oracle" (fun () -> Csp.solve_backtracking csp) in
  (match (from_decomposition, oracle) with
  | Some _, Some _ | None, None -> Format.printf "agreement: ok@."
  | _ ->
      Format.printf "agreement: MISMATCH@.";
      exit 1);
  match stats with
  | Some path -> (
      try Hd_obs.Obs.write_report path
      with Sys_error msg ->
        prerr_endline ("hd_solve: --stats: " ^ msg);
        exit 2)
  | None -> ()

open Cmdliner

let problem =
  let parse s =
    match String.split_on_char ':' s with
    | [ "australia" ] -> Ok `Australia
    | [ "example5" ] -> Ok `Example5
    | [ "queens"; n ] -> Ok (`Queens (int_of_string n))
    | [ "coloring"; name; k ] -> Ok (`Coloring (name, int_of_string k))
    | [ "random"; seed ] -> Ok (`Random (int_of_string seed))
    | _ ->
        Error
          (`Msg
            "expected australia | example5 | queens:N | coloring:NAME:K | random:SEED")
  in
  let print ppf _ = Format.fprintf ppf "<problem>" in
  Arg.(
    value
    & opt (conv (parse, print)) `Australia
    & info [ "problem" ] ~doc:"Problem to solve.")

let strategy =
  Arg.(
    value
    & opt
        (enum
           [ ("td", `Td); ("ghd", `Ghd); ("adaptive", `Adaptive); ("both", `Both) ])
        `Both
    & info [ "strategy" ] ~doc:"Decomposition strategy.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let stats =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect hd_obs counters and spans during the run and write the \
           JSON report to $(docv) ($(b,-) or no value: stdout).")

let cmd =
  let doc = "solve CSPs from tree and generalized hypertree decompositions" in
  Cmd.v
    (Cmd.info "hd_solve" ~doc)
    Term.(const run $ problem $ strategy $ seed $ stats)

let () = exit (Cmd.eval cmd)
