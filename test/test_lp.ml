(* hd_lp: arbitrary-precision integers, exact rationals, and the
   rational simplex — including the cross-checks the fhw solvers rely
   on: exact simplex vs brute-force vertex enumeration and vs the
   historical float simplex. *)

module Bigint = Hd_lp.Bigint
module Rat = Hd_lp.Rat
module Simplex = Hd_lp.Simplex

let check = Alcotest.check
let bigint = Alcotest.testable Bigint.pp Bigint.equal
let rat = Alcotest.testable Rat.pp Rat.equal

(* --- Bigint --- *)

let test_bigint_basics () =
  check bigint "0" Bigint.zero (Bigint.of_int 0);
  check bigint "round trip" (Bigint.of_int 123456789) (Bigint.of_string "123456789");
  check Alcotest.string "negative" "-42" (Bigint.to_string (Bigint.of_int (-42)));
  check Alcotest.(option int) "to_int" (Some (-42))
    (Bigint.to_int_opt (Bigint.of_int (-42)));
  check Alcotest.int "compare" (-1)
    (Bigint.compare (Bigint.of_int 5) (Bigint.of_int 7));
  check bigint "min_int survives of_int"
    (Bigint.neg (Bigint.of_string (string_of_int max_int)))
    (Bigint.add (Bigint.of_int min_int) Bigint.one)

let test_bigint_big () =
  (* 2^200 by repeated squaring, checked against the decimal string *)
  let two = Bigint.of_int 2 in
  let rec pow b = function
    | 0 -> Bigint.one
    | n when n land 1 = 1 -> Bigint.mul b (pow b (n - 1))
    | n ->
        let h = pow b (n / 2) in
        Bigint.mul h h
  in
  let p200 = pow two 200 in
  check Alcotest.string "2^200"
    "1606938044258990275541962092341162602522202993782792835301376"
    (Bigint.to_string p200);
  let q, r = Bigint.divmod p200 (Bigint.of_string "1000000007") in
  check bigint "divmod identity" p200
    (Bigint.add (Bigint.mul q (Bigint.of_string "1000000007")) r)

let prop_bigint_matches_int =
  QCheck.Test.make ~count:500 ~name:"bigint ring ops match native ints"
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let ba = Bigint.of_int a and bb = Bigint.of_int b in
      Bigint.to_int_opt (Bigint.add ba bb) = Some (a + b)
      && Bigint.to_int_opt (Bigint.sub ba bb) = Some (a - b)
      && Bigint.to_int_opt (Bigint.mul ba bb) = Some (a * b)
      && Bigint.compare ba bb = compare a b
      && Bigint.to_string ba = string_of_int a
      && (b = 0
         ||
         let q, r = Bigint.divmod ba bb in
         Bigint.to_int_opt q = Some (a / b) && Bigint.to_int_opt r = Some (a mod b)))

let prop_bigint_divmod =
  QCheck.Test.make ~count:200 ~name:"divmod identity on large products"
    QCheck.(triple (int_range 1 max_int) (int_range 1 max_int) (int_range 1 max_int))
    (fun (a, b, d) ->
      let n = Bigint.mul (Bigint.of_int a) (Bigint.of_int b) in
      let d = Bigint.of_int d in
      let q, r = Bigint.divmod n d in
      Bigint.equal n (Bigint.add (Bigint.mul q d) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs d) < 0)

(* --- Rat --- *)

let test_rat_basics () =
  check rat "normalisation" (Rat.make 3 2) (Rat.make (-6) (-4));
  check Alcotest.string "3/2" "3/2" (Rat.to_string (Rat.make 3 2));
  check Alcotest.string "integral" "3" (Rat.to_string (Rat.make 6 2));
  check rat "of_string" (Rat.make (-7) 5) (Rat.of_string "-7/5");
  check rat "add" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check rat "mul" (Rat.make 1 3) (Rat.mul (Rat.make 1 2) (Rat.make 2 3));
  check rat "div" (Rat.make 3 4) (Rat.div (Rat.make 1 2) (Rat.make 2 3));
  check Alcotest.int "ceil 3/2" 2 (Rat.ceil (Rat.make 3 2));
  check Alcotest.int "floor 3/2" 1 (Rat.floor (Rat.make 3 2));
  check Alcotest.int "ceil -3/2" (-1) (Rat.ceil (Rat.make (-3) 2));
  check Alcotest.int "floor -3/2" (-2) (Rat.floor (Rat.make (-3) 2));
  check Alcotest.int "ceil integer" 4 (Rat.ceil (Rat.of_int 4));
  check Alcotest.int "compare_int" (-1) (Rat.compare_int (Rat.make 3 2) 2)

let prop_rat_field =
  QCheck.Test.make ~count:500 ~name:"rat field laws on random fractions"
    QCheck.(
      pair
        (pair (int_range (-500) 500) (int_range 1 500))
        (pair (int_range (-500) 500) (int_range 1 500)))
    (fun ((an, ad), (bn, bd)) ->
      let a = Rat.make an ad and b = Rat.make bn bd in
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a b) (Rat.mul b a)
      && Rat.equal (Rat.sub (Rat.add a b) b) a
      && (Rat.sign b = 0 || Rat.equal (Rat.mul (Rat.div a b) b) a)
      && Rat.compare a b = compare (an * bd) (bn * ad))

(* --- Simplex: exact vs float vs brute force --- *)

(* Brute-force LP solver by vertex enumeration: for [min c.x, Ax >= b,
   x >= 0] with n variables, some optimal solution (when one exists)
   lies at a vertex of the feasible polyhedron, i.e. a point where n
   linearly independent constraints (rows of A or axes x_j = 0) are
   tight.  Enumerate all n-subsets of the m + n constraints, solve each
   linear system by exact Gaussian elimination, keep the best feasible
   solution. *)
let brute_force ~objective ~constraints ~bounds =
  let n = Array.length objective and m = Array.length constraints in
  let rows =
    Array.append
      (Array.mapi (fun i row -> (Array.copy row, bounds.(i))) constraints)
      (Array.init n (fun j ->
           (Array.init n (fun j' -> if j = j' then Rat.one else Rat.zero), Rat.zero)))
  in
  let total = Array.length rows in
  let best = ref None in
  let solve subset =
    (* gaussian elimination on the n x n system given by [subset] *)
    let a = Array.map (fun i -> Array.copy (fst rows.(i))) subset in
    let b = Array.map (fun i -> snd rows.(i)) subset in
    let x = Array.make n Rat.zero in
    let ok = ref true in
    (try
       for col = 0 to n - 1 do
         let p = ref (-1) in
         for r = col to n - 1 do
           if !p < 0 && Rat.sign a.(r).(col) <> 0 then p := r
         done;
         if !p < 0 then begin
           ok := false;
           raise Exit
         end;
         let tmp = a.(col) in
         a.(col) <- a.(!p);
         a.(!p) <- tmp;
         let tb = b.(col) in
         b.(col) <- b.(!p);
         b.(!p) <- tb;
         for r = 0 to n - 1 do
           if r <> col && Rat.sign a.(r).(col) <> 0 then begin
             let f = Rat.div a.(r).(col) a.(col).(col) in
             for c = col to n - 1 do
               a.(r).(c) <- Rat.sub a.(r).(c) (Rat.mul f a.(col).(c))
             done;
             b.(r) <- Rat.sub b.(r) (Rat.mul f b.(col))
           end
         done
       done
     with Exit -> ());
    if !ok then begin
      for j = 0 to n - 1 do
        x.(j) <- Rat.div b.(j) a.(j).(j)
      done;
      (* feasibility: x >= 0 and every original constraint satisfied *)
      let feasible =
        Array.for_all (fun v -> Rat.sign v >= 0) x
        && Array.for_all
             (fun i ->
               let row, bnd = rows.(i) in
               let dot = ref Rat.zero in
               for j = 0 to n - 1 do
                 dot := Rat.add !dot (Rat.mul row.(j) x.(j))
               done;
               Rat.compare !dot bnd >= 0)
             (Array.init m (fun i -> i))
      in
      if feasible then begin
        let value = ref Rat.zero in
        for j = 0 to n - 1 do
          value := Rat.add !value (Rat.mul objective.(j) x.(j))
        done;
        match !best with
        | Some v when Rat.compare v !value <= 0 -> ()
        | _ -> best := Some !value
      end
    end
  in
  let rec subsets start acc k =
    if k = 0 then solve (Array.of_list (List.rev acc))
    else
      for i = start to total - k do
        subsets (i + 1) (i :: acc) (k - 1)
      done
  in
  subsets 0 [] n;
  !best

let random_cover_lp rng =
  (* a random 0/1 covering LP: n <= 4 columns, m <= 4 rows, every row
     non-empty so the instance is feasible and bounded *)
  let n = 1 + Random.State.int rng 4 and m = 1 + Random.State.int rng 4 in
  let constraints =
    Array.init m (fun _ ->
        let row = Array.init n (fun _ ->
            if Random.State.bool rng then Rat.one else Rat.zero)
        in
        if Array.for_all (fun v -> Rat.sign v = 0) row then
          row.(Random.State.int rng n) <- Rat.one;
        row)
  in
  let objective = Array.init n (fun _ -> Rat.of_int (1 + Random.State.int rng 3)) in
  let bounds = Array.init m (fun _ -> Rat.of_int (1 + Random.State.int rng 2)) in
  (objective, constraints, bounds)

let prop_simplex_vs_brute_force =
  QCheck.Test.make ~count:120 ~name:"exact simplex = brute-force vertex enumeration"
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x51 |] in
      let objective, constraints, bounds = random_cover_lp rng in
      match Simplex.minimize ~objective ~constraints ~bounds with
      | Simplex.Optimal { value; solution } ->
          (* the reported solution must be feasible and achieve value *)
          let recomputed = ref Rat.zero in
          Array.iteri
            (fun j c -> recomputed := Rat.add !recomputed (Rat.mul c solution.(j)))
            objective;
          Rat.equal value !recomputed
          && Array.for_all (fun v -> Rat.sign v >= 0) solution
          && (match brute_force ~objective ~constraints ~bounds with
             | Some bf -> Rat.equal bf value
             | None -> false)
      | Simplex.Infeasible | Simplex.Unbounded ->
          (* covering LPs with non-empty rows are feasible and bounded *)
          false)

let prop_simplex_vs_float =
  QCheck.Test.make ~count:120 ~name:"exact simplex matches float simplex"
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x52 |] in
      let objective, constraints, bounds = random_cover_lp rng in
      match Simplex.minimize ~objective ~constraints ~bounds with
      | Simplex.Optimal { value; _ } -> (
          match
            Hd_setcover.Simplex.minimize
              ~objective:(Array.map Rat.to_float objective)
              ~constraints:(Array.map (Array.map Rat.to_float) constraints)
              ~bounds:(Array.map Rat.to_float bounds)
          with
          | Hd_setcover.Simplex.Optimal { value = fv; _ } ->
              Float.abs (fv -. Rat.to_float value) < 1e-6
          | _ -> false)
      | _ -> false)

let test_simplex_triangle () =
  (* the fractional vertex: cover the triangle's three vertices with
     three pair-edges — optimum 3/2 at weight 1/2 each, not integral *)
  let objective = Array.make 3 Rat.one in
  let constraints =
    [|
      [| Rat.one; Rat.zero; Rat.one |];
      [| Rat.one; Rat.one; Rat.zero |];
      [| Rat.zero; Rat.one; Rat.one |];
    |]
  in
  let bounds = Array.make 3 Rat.one in
  match Simplex.minimize ~objective ~constraints ~bounds with
  | Simplex.Optimal { value; solution } ->
      check rat "rho* = 3/2 exactly" (Rat.make 3 2) value;
      Array.iter (fun w -> check rat "w = 1/2" (Rat.make 1 2) w) solution
  | _ -> Alcotest.fail "triangle LP must be optimal"

let test_simplex_infeasible () =
  (* x1 >= 1 with objective forcing... an all-zero row can never reach 1 *)
  match
    Simplex.minimize ~objective:[| Rat.one |]
      ~constraints:[| [| Rat.zero |] |] ~bounds:[| Rat.one |]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "0*x >= 1 must be infeasible"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "hd_lp"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "2^200" `Quick test_bigint_big;
        ] );
      ("rat", [ Alcotest.test_case "basics" `Quick test_rat_basics ]);
      ( "simplex",
        [
          Alcotest.test_case "triangle 3/2" `Quick test_simplex_triangle;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
        ] );
      qsuite "properties"
        [
          prop_bigint_matches_int;
          prop_bigint_divmod;
          prop_rat_field;
          prop_simplex_vs_brute_force;
          prop_simplex_vs_float;
        ];
    ]
