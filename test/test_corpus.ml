(* hd_corpus: format detection and parsing (golden files), the
   manifest cache, deterministic sweeps, and the regression gate *)

module Hypergraph = Hd_hypergraph.Hypergraph
module Corpus = Hd_corpus.Corpus
module Manifest = Hd_corpus.Manifest
module Sweep = Hd_corpus.Sweep
module Regression = Hd_corpus.Regression
module Mini = Hd_instances.Mini_corpus
module Obs = Hd_obs.Obs
module Json = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* dune runtest runs in test/'s build dir; dune exec from the root *)
let golden name =
  let p = Filename.concat "corpus_golden" name in
  if Sys.file_exists p then p else Filename.concat "test" p

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* parsing: golden files                                               *)
(* ------------------------------------------------------------------ *)

let test_good_hg () =
  let h = Corpus.load_file (golden "good.hg") in
  check_int "vertices" 4 (Hypergraph.n_vertices h);
  check_int "edges" 4 (Hypergraph.n_edges h);
  check_string "edge name" "e1" (Hypergraph.edge_name h 0)

let test_good_cq () =
  let h = Corpus.load_file (golden "good.cq") in
  (* the head atom is blanked: only the three body atoms remain, and
     the head variables do not become extra vertices *)
  check_int "vertices" 3 (Hypergraph.n_vertices h);
  check_int "edges" 3 (Hypergraph.n_edges h);
  check_string "first body atom" "r" (Hypergraph.edge_name h 0)

let test_detect () =
  check "atoms" true (Corpus.detect "e(a,b)." = Corpus.Atoms);
  check "cq" true (Corpus.detect "q(X) :- e(X,Y)." = Corpus.Cq);
  (* a ":-" inside a comment is not a rule separator *)
  check "comment hides :-" true
    (Corpus.detect "% q(X) :- e(X,Y)\ne(a,b)." = Corpus.Atoms)

let expect_parse_failure path ~fragments =
  match Corpus.load_file path with
  | _ -> Alcotest.failf "%s parsed but should not have" path
  | exception Failure msg ->
      List.iter
        (fun fragment ->
          check
            (Printf.sprintf "%s message has %S (got %S)" path fragment msg)
            true
            (contains ~needle:fragment msg))
        fragments

let test_malformed_hg () =
  (* the error names the file, not just a line number *)
  expect_parse_failure (golden "malformed.hg")
    ~fragments:[ "malformed.hg"; "line 3"; "e2" ]

let test_malformed_cq () =
  (* blanking the rule head keeps newlines, so the reported line still
     points into the original file: the bad '.' is on line 4 *)
  expect_parse_failure (golden "malformed.cq")
    ~fragments:[ "malformed.cq"; "line 4"; "s" ]

let test_name_of_path () =
  check_string "hg" "adder_05" (Corpus.name_of_path "/x/y/adder_05.hg");
  check_string "bare" "q1" (Corpus.name_of_path "q1")

(* ------------------------------------------------------------------ *)
(* the bundled mini-corpus                                             *)
(* ------------------------------------------------------------------ *)

let test_mini_corpus_parses () =
  check "at least 50 bundled instances" true (Mini.total () >= 50);
  check "two collections" true
    (Mini.collection_names () = [ "csp-synth"; "cq-mini" ]);
  List.iter
    (fun (collection, files) ->
      check (collection ^ " non-empty") true (files <> []);
      List.iter
        (fun (filename, text) ->
          let h = Corpus.parse_string ~source:filename text in
          check (filename ^ " has vertices") true (Hypergraph.n_vertices h > 0);
          check (filename ^ " has edges") true (Hypergraph.n_edges h > 0))
        files)
    (Mini.collections ())

let test_mini_corpus_deterministic () =
  (* same bytes on every call: the on-disk cache stays valid *)
  check "stable" true (Mini.collections () = Mini.collections ())

(* ------------------------------------------------------------------ *)
(* manifest: materialisation, cache hits/misses, scanning              *)
(* ------------------------------------------------------------------ *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hd_corpus_test_%d_%d" (Unix.getpid ()) !n)
    in
    (* the manifest creates missing directories itself *)
    d

let counter name = Obs.Counter.value (Obs.Counter.make name)

let test_manifest_cache () =
  Obs.enable ();
  let root = fresh_dir () in
  let hits0 = counter "corpus.cache_hits"
  and misses0 = counter "corpus.cache_misses" in
  let entries = Manifest.ensure ~root "cq-mini" in
  let n = List.length entries in
  check "bundled collection non-empty" true (n > 0);
  (* first materialisation: every file written, nothing found *)
  check_int "cold misses" n (counter "corpus.cache_misses" - misses0);
  check_int "cold hits" 0 (counter "corpus.cache_hits" - hits0);
  let entries2 = Manifest.ensure ~root "cq-mini" in
  (* second run: every file found, nothing written *)
  check_int "warm hits" n (counter "corpus.cache_hits" - hits0);
  check_int "warm misses" n (counter "corpus.cache_misses" - misses0);
  check "same entries" true (entries = entries2);
  List.iter
    (fun (e : Manifest.entry) ->
      check (e.Manifest.path ^ " exists") true (Sys.file_exists e.Manifest.path))
    entries

let test_manifest_unknown_collection () =
  match Manifest.ensure ~root:(fresh_dir ()) "no-such-collection" with
  | _ -> Alcotest.fail "unknown collection accepted"
  | exception Invalid_argument msg ->
      check "lists bundled collections" true (contains ~needle:"csp-synth" msg)

let test_manifest_scan () =
  let root = fresh_dir () in
  let ensured = Manifest.ensure ~root "cq-mini" in
  let scanned = Manifest.scan root in
  check_int "scan finds what ensure wrote" (List.length ensured)
    (List.length scanned);
  List.iter
    (fun (e : Manifest.entry) ->
      check_string "collection" "cq-mini" e.Manifest.collection)
    scanned;
  (* scan is sorted by (collection, name) *)
  let names = List.map (fun (e : Manifest.entry) -> e.Manifest.name) scanned in
  check "sorted" true (names = List.sort compare names);
  (* files directly under the root form a collection named after it *)
  let flat = fresh_dir () in
  Unix.mkdir flat 0o755;
  let oc = open_out (Filename.concat flat "one.hg") in
  output_string oc "e(a,b).\n";
  close_out oc;
  match Manifest.scan flat with
  | [ e ] ->
      check_string "root collection" (Filename.basename flat)
        e.Manifest.collection;
      check_string "root instance" "one" e.Manifest.name
  | entries -> Alcotest.failf "expected 1 entry, got %d" (List.length entries)

(* ------------------------------------------------------------------ *)
(* sweeps: determinism, skips, roster validation                       *)
(* ------------------------------------------------------------------ *)

let deterministic_budget = { Hd_search.Search_types.time_limit = None; max_states = Some 2000 }

let small_instances () =
  let texts =
    match List.assoc_opt "cq-mini" (Mini.collections ()) with
    | Some files -> files
    | None -> Alcotest.fail "cq-mini missing"
  in
  List.filteri (fun i _ -> i < 8) texts
  |> List.map (fun (filename, text) ->
         ( "cq-mini",
           Corpus.name_of_path filename,
           Corpus.parse_string ~source:filename text ))

let row_key (r : Sweep.row) = (r.Sweep.name, r.Sweep.winner, r.Sweep.width, r.Sweep.exact)

let test_sweep_deterministic () =
  let instances = small_instances () in
  let sweep () =
    Sweep.sweep_loaded ~jobs:1 ~roster:[ "min-fill-ghw"; "bb-ghw" ]
      ~budget:deterministic_budget ~seed:1 instances
  in
  let a = sweep () and b = sweep () in
  (* the winner table is stable run to run at -j 1 under a state-capped
     budget: winners never depend on wall-clock *)
  check "winner tables equal" true
    (List.map row_key a.Sweep.rows = List.map row_key b.Sweep.rows);
  check_int "all swept" (List.length instances) (List.length a.Sweep.rows);
  let s = Sweep.summarise a in
  check_int "summary total" (List.length instances) s.Sweep.total;
  check_int "coverage buckets" 5 (Array.length s.Sweep.coverage);
  (* every swept instance lands in exactly one width bucket *)
  check_int "coverage accounts for every instance" s.Sweep.total
    (Array.fold_left ( + ) s.Sweep.gt5 s.Sweep.coverage)

let test_sweep_parallel_matches_sequential () =
  let instances = small_instances () in
  let run jobs =
    Sweep.sweep_loaded ~jobs ~roster:[ "min-fill-ghw"; "bb-ghw" ]
      ~budget:deterministic_budget ~seed:1 instances
  in
  let seq = run 1 and par = run 2 in
  check "parallel sweep agrees with sequential" true
    (List.map row_key seq.Sweep.rows = List.map row_key par.Sweep.rows)

let test_sweep_unknown_solver () =
  match
    Sweep.sweep_loaded ~roster:[ "no-such-solver" ]
      ~budget:deterministic_budget (small_instances ())
  with
  | _ -> Alcotest.fail "unknown roster member accepted"
  | exception Invalid_argument msg ->
      check "names the bad solver" true (contains ~needle:"no-such-solver" msg)

let test_sweep_skips_malformed () =
  let root = fresh_dir () in
  let entries = Manifest.ensure ~root "cq-mini" in
  let bad = Filename.concat root "broken.cq" in
  let oc = open_out bad in
  output_string oc "q(X) :- e(X,\n";
  close_out oc;
  let report =
    Sweep.sweep ~roster:[ "min-fill-ghw" ] ~budget:deterministic_budget
      (Manifest.scan root)
  in
  check_int "good instances swept" (List.length entries)
    (List.length report.Sweep.rows);
  (match report.Sweep.skipped with
  | [ (path, msg) ] ->
      check "skip names the file" true (contains ~needle:"broken.cq" path);
      check "skip keeps the parse error" true (contains ~needle:"broken.cq" msg)
  | skipped -> Alcotest.failf "expected 1 skip, got %d" (List.length skipped));
  let s = Sweep.summarise report in
  check_int "summary counts the skip" 1 s.Sweep.skipped_count

(* ------------------------------------------------------------------ *)
(* the regression gate                                                 *)
(* ------------------------------------------------------------------ *)

let jrow ?(seconds = 0.2) ~name ~width ~exact () =
  Json.Obj
    [
      ("collection", Json.String "c");
      ("instance", Json.String name);
      ("width", Json.Int width);
      ("exact", Json.Bool exact);
      ("seconds", Json.Float seconds);
    ]

let jdoc rows = Json.Obj [ ("instances", Json.List rows) ]

let messages failures =
  List.map (fun (f : Regression.failure) -> f.Regression.message) failures

let test_regression_clean () =
  let doc =
    jdoc [ jrow ~name:"a" ~width:2 ~exact:true (); jrow ~name:"b" ~width:3 ~exact:false () ]
  in
  check_int "self-diff is clean" 0
    (List.length (Regression.diff ~baseline:doc ~current:doc ()));
  (* improvements and new instances are fine *)
  let better =
    jdoc
      [
        jrow ~name:"a" ~width:1 ~exact:true ();
        jrow ~name:"b" ~width:3 ~exact:true ();
        jrow ~name:"new" ~width:9 ~exact:false ();
      ]
  in
  check_int "improvement is clean" 0
    (List.length (Regression.diff ~baseline:doc ~current:better ()))

let test_regression_width () =
  let baseline = jdoc [ jrow ~name:"a" ~width:2 ~exact:false () ] in
  let current = jdoc [ jrow ~name:"a" ~width:4 ~exact:false () ] in
  match Regression.diff ~baseline ~current () with
  | [ f ] ->
      check "width failure" true
        (contains ~needle:"width regressed" f.Regression.message)
  | fs -> Alcotest.failf "expected 1 failure, got %s" (String.concat "; " (messages fs))

let test_regression_missing_and_exactness () =
  let baseline =
    jdoc [ jrow ~name:"gone" ~width:2 ~exact:true (); jrow ~name:"a" ~width:2 ~exact:true () ]
  in
  let current = jdoc [ jrow ~name:"a" ~width:2 ~exact:false () ] in
  let fs = Regression.diff ~baseline ~current () in
  check_int "two failures" 2 (List.length fs);
  check "missing reported" true
    (List.exists (fun m -> contains ~needle:"missing" m) (messages fs));
  check "exactness reported" true
    (List.exists (fun m -> contains ~needle:"exactness" m) (messages fs))

let test_regression_times () =
  let baseline =
    jdoc
      [
        jrow ~name:"slow" ~width:2 ~exact:true ~seconds:0.2 ();
        jrow ~name:"tiny" ~width:2 ~exact:true ~seconds:0.01 ();
      ]
  in
  let current =
    jdoc
      [
        jrow ~name:"slow" ~width:2 ~exact:true ~seconds:0.5 ();
        jrow ~name:"tiny" ~width:2 ~exact:true ~seconds:0.04 ();
      ]
  in
  (* times are ignored by default *)
  check_int "no time checks by default" 0
    (List.length (Regression.diff ~baseline ~current ()));
  (match Regression.diff ~check_times:true ~baseline ~current () with
  | [ f ] ->
      check "slowdown reported" true
        (contains ~needle:"slowdown" f.Regression.message);
      check_string "on the slow instance" "slow" f.Regression.instance
  | fs -> Alcotest.failf "expected 1 failure, got %s" (String.concat "; " (messages fs)))

let test_regression_sweep_roundtrip () =
  (* a real sweep report self-diffs clean through JSON, both as the
     bare corpus section and wrapped the way BENCH_report.json nests it *)
  let report =
    Sweep.sweep_loaded ~jobs:1 ~roster:[ "min-fill-ghw" ]
      ~budget:deterministic_budget (small_instances ())
  in
  let section = Sweep.to_json report in
  let reparsed = Json.parse (Json.to_string section) in
  check_int "bare section" 0
    (List.length (Regression.diff ~baseline:reparsed ~current:section ()));
  let wrapped = Json.Obj [ ("corpus", section) ] in
  check_int "wrapped document" 0
    (List.length (Regression.diff ~baseline:wrapped ~current:section ()))

let () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ();
  Alcotest.run "hd_corpus"
    [
      ( "parsing",
        [
          Alcotest.test_case "good.hg" `Quick test_good_hg;
          Alcotest.test_case "good.cq" `Quick test_good_cq;
          Alcotest.test_case "detect" `Quick test_detect;
          Alcotest.test_case "malformed.hg names file+line" `Quick
            test_malformed_hg;
          Alcotest.test_case "malformed.cq keeps line numbers" `Quick
            test_malformed_cq;
          Alcotest.test_case "name_of_path" `Quick test_name_of_path;
        ] );
      ( "mini-corpus",
        [
          Alcotest.test_case "all instances parse" `Quick
            test_mini_corpus_parses;
          Alcotest.test_case "deterministic" `Quick
            test_mini_corpus_deterministic;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "cache hits and misses" `Quick test_manifest_cache;
          Alcotest.test_case "unknown collection" `Quick
            test_manifest_unknown_collection;
          Alcotest.test_case "scan" `Quick test_manifest_scan;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic at -j 1" `Quick
            test_sweep_deterministic;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_sweep_parallel_matches_sequential;
          Alcotest.test_case "unknown solver rejected" `Quick
            test_sweep_unknown_solver;
          Alcotest.test_case "malformed instances skipped" `Quick
            test_sweep_skips_malformed;
        ] );
      ( "regression",
        [
          Alcotest.test_case "clean diffs" `Quick test_regression_clean;
          Alcotest.test_case "width regression" `Quick test_regression_width;
          Alcotest.test_case "missing + exactness" `Quick
            test_regression_missing_and_exactness;
          Alcotest.test_case "time checks opt-in" `Quick test_regression_times;
          Alcotest.test_case "sweep report round-trips" `Quick
            test_regression_sweep_roundtrip;
        ] );
    ]
