module Hypergraph = Hd_hypergraph.Hypergraph
module Hg_format = Hd_hypergraph.Hg_format
module Acyclicity = Hd_hypergraph.Acyclicity
module Graph = Hd_graph.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

(* the hypergraph of the paper's Example 5 / Figure 2.6:
   h1 = {x1,x2,x3}, h2 = {x1,x5,x6}, h3 = {x3,x4,x5} *)
let example5 () =
  Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ]

let test_basics () =
  let h = example5 () in
  check_int "n" 6 (Hypergraph.n_vertices h);
  check_int "m" 3 (Hypergraph.n_edges h);
  check_int "max edge size" 3 (Hypergraph.max_edge_size h);
  check_list "edge 0" [ 0; 1; 2 ] (Hypergraph.edge_list h 0);
  check_list "incident x1" [ 0; 1 ] (Hypergraph.incident h 0);
  check_list "incident x4" [ 2 ] (Hypergraph.incident h 3);
  check "covered" true (Hypergraph.all_vertices_covered h)

let test_dedup_sort () =
  let h = Hypergraph.create ~n:4 [ [ 3; 1; 1; 0 ] ] in
  check_list "sorted deduped" [ 0; 1; 3 ] (Hypergraph.edge_list h 0)

let test_invalid () =
  Alcotest.check_raises "empty edge"
    (Invalid_argument "Hypergraph.create: empty hyperedge") (fun () ->
      ignore (Hypergraph.create ~n:3 [ [] ]));
  check "out of range rejected" true
    (try
       ignore (Hypergraph.create ~n:3 [ [ 5 ] ]);
       false
     with Invalid_argument _ -> true)

let test_primal () =
  let h = example5 () in
  let g = Hypergraph.primal h in
  check_int "primal n" 6 (Graph.n g);
  (* each 3-edge contributes a triangle; they overlap in single
     vertices, so 9 distinct edges *)
  check_int "primal m" 9 (Graph.m g);
  check "x1-x2" true (Graph.mem_edge g 0 1);
  check "x1-x5" true (Graph.mem_edge g 0 4);
  check "x1 and x4 not adjacent" false (Graph.mem_edge g 0 3)

let test_dual () =
  let h = example5 () in
  let d = Hypergraph.dual h in
  check_int "dual n" 3 (Graph.n d);
  (* h1-h2 share x1, h1-h3 share x3, h2-h3 share x5 *)
  check_int "dual m" 3 (Graph.m d)

let test_of_graph () =
  let g = Graph.cycle 4 in
  let h = Hypergraph.of_graph g in
  check_int "edges" 4 (Hypergraph.n_edges h);
  check_int "max size" 2 (Hypergraph.max_edge_size h)

let test_isolated_vertex () =
  let h = Hypergraph.create ~n:3 [ [ 0; 1 ] ] in
  check "vertex 2 uncovered" false (Hypergraph.covers_vertex h 2);
  check "not all covered" false (Hypergraph.all_vertices_covered h)

let test_format_roundtrip () =
  let h = example5 () in
  let text = Hg_format.to_string h in
  let h' = Hg_format.parse_string text in
  check_int "n" (Hypergraph.n_vertices h) (Hypergraph.n_vertices h');
  check_int "m" (Hypergraph.n_edges h) (Hypergraph.n_edges h');
  (* parsing renumbers vertices by first appearance; compare edges by
     vertex NAME, which survives the roundtrip *)
  let named hg =
    List.init (Hypergraph.n_edges hg) (fun e ->
        List.sort compare
          (List.map (Hypergraph.vertex_name hg) (Hypergraph.edge_list hg e)))
  in
  Alcotest.(check (list (list string))) "edges survive" (named h) (named h')

let test_format_parse () =
  let h =
    Hg_format.parse_string
      "% a comment\n adder(x, y, z),\n and_1(x, u),\n or(u, y , z)."
  in
  check_int "vars" 4 (Hypergraph.n_vertices h);
  check_int "edges" 3 (Hypergraph.n_edges h);
  Alcotest.(check string) "edge name" "and_1" (Hypergraph.edge_name h 1);
  Alcotest.(check string) "vertex name" "x" (Hypergraph.vertex_name h 0);
  check_list "and_1 scope" [ 0; 3 ] (Hypergraph.edge_list h 1)

let test_format_multiline_atom () =
  (* an atom whose argument list spans several lines *)
  let h =
    Hg_format.parse_string
      "adder(x,\n      y,\n      z),\n% comment between atoms\nor(z,\n   w)."
  in
  check_int "vars" 4 (Hypergraph.n_vertices h);
  check_int "edges" 2 (Hypergraph.n_edges h);
  check_list "or scope" [ 2; 3 ] (Hypergraph.edge_list h 1)

let test_format_empty_edge_body () =
  (* empty edge bodies are tolerated and skipped *)
  let h = Hg_format.parse_string "a(x,y), b(), c(y,z)." in
  check_int "edges" 2 (Hypergraph.n_edges h);
  check_int "vars" 3 (Hypergraph.n_vertices h);
  Alcotest.(check string) "second edge" "c" (Hypergraph.edge_name h 1);
  (* ...but a file with only empty bodies still fails *)
  match Hg_format.parse_string "a()." with
  | _ -> Alcotest.fail "expected failure on an all-empty input"
  | exception Failure _ -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

let test_format_error_lines () =
  let expect_error text fragment =
    match Hg_format.parse_string ~source:"input.hg" text with
    | _ -> Alcotest.failf "expected a parse failure for %S" text
    | exception Failure msg ->
        check
          (Printf.sprintf "error %S mentions %S" msg fragment)
          true (contains msg fragment)
  in
  (* the unterminated atom starts on line 2 *)
  expect_error "a(x,y),\nb(x" "line 2";
  expect_error "a(x,y),\nb(x" "input.hg";
  (* the stray character is on line 3 *)
  expect_error "a(x,y),\nb(x,z),\n?" "line 3";
  expect_error "a(x,y), b." "line 1";
  expect_error "a(x,(y))." "unexpected '('"

(* property: primal graph adjacency iff two vertices share an edge *)
let prop_primal =
  QCheck.Test.make ~count:100 ~name:"primal adjacency iff shared hyperedge"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let edges =
        List.init
          (1 + Random.State.int rng 6)
          (fun _ ->
            List.init (1 + Random.State.int rng 4) (fun _ ->
                Random.State.int rng n))
      in
      let edges = List.filter (fun e -> e <> []) edges in
      QCheck.assume (edges <> []);
      let h = Hypergraph.create ~n edges in
      let g = Hypergraph.primal h in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let share =
            List.exists (fun e -> List.mem u e && List.mem v e) edges
          in
          if Graph.mem_edge g u v <> share then ok := false
        done
      done;
      !ok)



let test_remove_subsumed () =
  let h =
    Hypergraph.create ~n:4
      [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1 ]; [ 2; 3 ]; [ 2 ] ]
  in
  let r = Hypergraph.remove_subsumed h in
  (* [0;1] twice and [2] are subsumed; [0;1;2] and [2;3] survive *)
  check_int "edges after" 2 (Hypergraph.n_edges r);
  check "covered still" true (Hypergraph.all_vertices_covered r);
  Alcotest.(check (list (list int)))
    "surviving edges"
    [ [ 0; 1; 2 ]; [ 2; 3 ] ]
    (Hypergraph.edges r);
  (* no subsumption: identity *)
  let h2 = example5 () in
  check_int "identity" 3 (Hypergraph.n_edges (Hypergraph.remove_subsumed h2))

let prop_remove_subsumed_preserves =
  QCheck.Test.make ~count:80 ~name:"remove_subsumed keeps primal and coverage"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let edges =
        List.init
          (1 + Random.State.int rng 8)
          (fun _ ->
            List.init (1 + Random.State.int rng 4) (fun _ ->
                Random.State.int rng n))
      in
      let h = Hypergraph.create ~n edges in
      let r = Hypergraph.remove_subsumed h in
      Hypergraph.n_edges r <= Hypergraph.n_edges h
      && Graph.edges (Hypergraph.primal r) = Graph.edges (Hypergraph.primal h)
      && List.for_all
           (fun v -> Hypergraph.covers_vertex r v = Hypergraph.covers_vertex h v)
           (List.init n Fun.id))

(* --- acyclicity / join trees (GYO) --- *)

let test_acyclic_path () =
  (* a chain of overlapping hyperedges is the textbook acyclic case *)
  let h = Hypergraph.create ~n:5 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  check "acyclic" true (Acyclicity.is_acyclic h);
  match Acyclicity.join_tree h with
  | None -> Alcotest.fail "join tree must exist"
  | Some parent -> check "join tree valid" true (Acyclicity.is_join_tree h parent)

let test_cyclic_triangle () =
  (* three pairwise-overlapping binary edges: the classic cycle *)
  let h = Hypergraph.create ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  check "cyclic" false (Acyclicity.is_acyclic h);
  check "no join tree" true (Acyclicity.join_tree h = None);
  (* adding a covering edge makes it acyclic again *)
  let h2 = Hypergraph.create ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0; 1; 2 ] ] in
  check "covered triangle acyclic" true (Acyclicity.is_acyclic h2)

let test_figure_2_3 () =
  (* Figure 2.3's hypergraph has a join tree *)
  let h =
    Hypergraph.create ~n:8
      [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 2; 4; 5 ]; [ 5; 6 ]; [ 2; 5; 7 ] ]
  in
  check "figure 2.3 acyclic" true (Acyclicity.is_acyclic h)

let test_duplicate_edges_acyclic () =
  let h = Hypergraph.create ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  check "duplicates reduce" true (Acyclicity.is_acyclic h)

let prop_join_tree_valid =
  QCheck.Test.make ~count:200 ~name:"GYO join tree satisfies connectedness"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let edges =
        List.init
          (1 + Random.State.int rng 6)
          (fun _ ->
            List.init (1 + Random.State.int rng 4) (fun _ ->
                Random.State.int rng n))
      in
      let h = Hypergraph.create ~n edges in
      match Acyclicity.join_tree h with
      | None -> true (* cyclicity is checked against ghw elsewhere *)
      | Some parent -> Acyclicity.is_join_tree h parent)

let () =
  Alcotest.run "hypergraph"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "dedup and sort" `Quick test_dedup_sort;
          Alcotest.test_case "invalid input" `Quick test_invalid;
          Alcotest.test_case "primal" `Quick test_primal;
          Alcotest.test_case "dual" `Quick test_dual;
          Alcotest.test_case "of_graph" `Quick test_of_graph;
          Alcotest.test_case "isolated vertex" `Quick test_isolated_vertex;
          Alcotest.test_case "remove subsumed" `Quick test_remove_subsumed;
        ] );
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_format_roundtrip;
          Alcotest.test_case "parse" `Quick test_format_parse;
          Alcotest.test_case "multi-line atoms" `Quick test_format_multiline_atom;
          Alcotest.test_case "empty edge bodies" `Quick test_format_empty_edge_body;
          Alcotest.test_case "error line numbers" `Quick test_format_error_lines;
        ] );
      ( "acyclicity",
        [
          Alcotest.test_case "acyclic path" `Quick test_acyclic_path;
          Alcotest.test_case "cyclic triangle" `Quick test_cyclic_triangle;
          Alcotest.test_case "figure 2.3" `Quick test_figure_2_3;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_acyclic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_primal; prop_join_tree_valid; prop_remove_subsumed_preserves ]
      );
    ]
