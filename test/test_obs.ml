module Obs = Hd_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test starts from a clean, enabled registry and leaves the
   process-wide singleton disabled again *)
let with_obs f () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

(* --- counters --- *)

let test_counter_monotonic () =
  let c = Obs.Counter.make "test.monotonic" in
  check_int "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  check_int "incr" 2 (Obs.Counter.value c);
  Obs.Counter.add c 40;
  check_int "add" 42 (Obs.Counter.value c);
  Obs.Counter.add c 0;
  check_int "add zero is a no-op" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: counters are monotonic") (fun () ->
      Obs.Counter.add c (-1))

let test_counter_registry () =
  let a = Obs.Counter.make "test.shared" in
  let b = Obs.Counter.make "test.shared" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  check_int "same name, same counter" 2 (Obs.Counter.value a);
  check "listed once" true
    (List.length
       (List.filter
          (fun c -> Obs.Counter.name c = "test.shared")
          (Obs.Counter.all ()))
    = 1)

let test_histogram () =
  let h = Obs.Histogram.make "test.hist" in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 1; 7; 1000 ];
  check_int "count" 5 (Obs.Histogram.count h);
  check_int "sum" 1009 (Obs.Histogram.sum h);
  check "mean" true (abs_float (Obs.Histogram.mean h -. 201.8) < 1e-9)

(* --- disabled mode --- *)

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Counter.make "test.disabled" in
  let h = Obs.Histogram.make "test.disabled_hist" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Histogram.observe h 5;
  let ran = ref false in
  Obs.with_span "test.disabled_span" (fun () -> ran := true);
  check "with_span still runs the body" true !ran;
  check_int "counter untouched" 0 (Obs.Counter.value c);
  check_int "histogram untouched" 0 (Obs.Histogram.count h);
  Obs.enable ();
  let spans =
    match Obs.Json.member "spans" (Obs.report ()) with
    | Some (Obs.Json.List l) -> l
    | _ -> Alcotest.fail "report has no spans list"
  in
  check "no span recorded" true
    (not
       (List.exists
          (function
            | Obs.Json.Obj fields ->
                List.assoc_opt "name" fields
                = Some (Obs.Json.String "test.disabled_span")
            | _ -> false)
          spans))

(* --- spans --- *)

let span_names json =
  match json with
  | Obs.Json.Obj fields -> (
      match List.assoc_opt "spans" fields with
      | Some (Obs.Json.List spans) ->
          List.filter_map
            (function
              | Obs.Json.Obj f -> (
                  match List.assoc_opt "name" f with
                  | Some (Obs.Json.String s) -> Some (s, Obs.Json.Obj f)
                  | _ -> None)
              | _ -> None)
            spans
      | _ -> [])
  | _ -> []

let test_span_nesting () =
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "inner" (fun () -> ()));
  Obs.with_span "outer" (fun () -> ());
  let report = Obs.report () in
  match span_names report with
  | [ ("outer", Obs.Json.Obj outer) ] ->
      (match List.assoc_opt "calls" outer with
      | Some (Obs.Json.Int 2) -> ()
      | _ -> Alcotest.fail "outer should have 2 calls");
      (match List.assoc_opt "children" outer with
      | Some (Obs.Json.List [ Obs.Json.Obj inner ]) -> (
          check "inner name" true
            (List.assoc_opt "name" inner = Some (Obs.Json.String "inner"));
          match List.assoc_opt "calls" inner with
          | Some (Obs.Json.Int 2) -> ()
          | _ -> Alcotest.fail "inner should have 2 calls")
      | _ -> Alcotest.fail "outer should have exactly one child");
      ()
  | l ->
      Alcotest.failf "expected a single root span 'outer', got %d roots"
        (List.length l)

let test_span_exception_safe () =
  (try Obs.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  match span_names (Obs.report ()) with
  | [ ("raises", _); ("after", _) ] | [ ("after", _); ("raises", _) ] -> ()
  | l ->
      Alcotest.failf
        "span stack corrupted by exception: %d roots instead of 2"
        (List.length l)

let test_with_span_result () =
  check_int "returns the body's value" 42 (Obs.with_span "v" (fun () -> 42))

(* --- JSON --- *)

let test_json_print_parse_roundtrip () =
  let c = Obs.Counter.make "test.roundtrip" in
  Obs.Counter.add c 7;
  Obs.Histogram.observe (Obs.Histogram.make "test.roundtrip_hist") 3;
  Obs.with_span "root" (fun () -> Obs.with_span "leaf" (fun () -> ()));
  let printed = Obs.report_string () in
  let reparsed = Obs.Json.parse printed in
  check_string "print/parse/print is stable" printed
    (Obs.Json.to_string reparsed)

let test_json_parse_values () =
  let j = Obs.Json.parse {| {"a": [1, -2.5, true, null], "b": "x\n\"y"} |} in
  (match Obs.Json.member "a" j with
  | Some (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float f; Obs.Json.Bool true; Obs.Json.Null ]) ->
      check "float" true (abs_float (f +. 2.5) < 1e-9)
  | _ -> Alcotest.fail "list contents");
  (match Obs.Json.member "b" j with
  | Some (Obs.Json.String s) -> check_string "escapes" "x\n\"y" s
  | _ -> Alcotest.fail "string member");
  check "missing member" true (Obs.Json.member "zzz" j = None)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (match Obs.Json.parse_opt s with None -> true | Some _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

let test_report_shape () =
  Obs.Counter.incr (Obs.Counter.make "test.shape");
  let r = Obs.report () in
  check "schema" true
    (Obs.Json.member "schema" r = Some (Obs.Json.String "hd_obs/1"));
  (match Obs.Json.member "counters" r with
  | Some (Obs.Json.Obj counters) ->
      check "our counter serialised" true
        (List.assoc_opt "test.shape" counters = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "counters object missing");
  match Obs.Json.member "enabled" r with
  | Some (Obs.Json.Bool true) -> ()
  | _ -> Alcotest.fail "enabled flag missing"

(* --- multi-domain safety --- *)

let test_multicore_counters_exact () =
  (* hammer one counter and one histogram from several domains at
     once: with the pre-Atomic plain-int fields, concurrent increments
     were lost and these totals came out short *)
  let n_domains = 4 and per_domain = 100_000 in
  let c = Obs.Counter.make "test.hammer" in
  let h = Obs.Histogram.make "test.hammer_hist" in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Counter.incr c;
              if i land 1023 = 0 then Obs.Histogram.observe h (d + 1)
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost counter increments" (n_domains * per_domain)
    (Obs.Counter.value c);
  check_int "no lost histogram observations"
    (n_domains * (per_domain / 1024))
    (Obs.Histogram.count h)

let test_multicore_spans_merge () =
  (* every domain opens the same span name; the report must show one
     merged node with the combined call count *)
  let n_domains = 3 and calls = 50 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to calls do
              Obs.with_span "hammer.outer" (fun () ->
                  Obs.with_span "hammer.inner" (fun () -> ()))
            done))
  in
  List.iter Domain.join domains;
  match
    List.assoc_opt "hammer.outer" (span_names (Obs.report ()))
  with
  | Some (Obs.Json.Obj fields) -> (
      (match List.assoc_opt "calls" fields with
      | Some (Obs.Json.Int n) -> check_int "merged calls" (n_domains * calls) n
      | _ -> Alcotest.fail "outer span has no calls field");
      match List.assoc_opt "children" fields with
      | Some (Obs.Json.List [ Obs.Json.Obj inner ]) ->
          check "inner merged once" true
            (List.assoc_opt "calls" inner
            = Some (Obs.Json.Int (n_domains * calls)))
      | _ -> Alcotest.fail "expected one merged inner child")
  | _ -> Alcotest.fail "merged span missing from report"

let test_reset () =
  let c = Obs.Counter.make "test.reset" in
  Obs.Counter.add c 5;
  Obs.with_span "gone" (fun () -> ());
  Obs.reset ();
  check_int "counter zeroed but still registered" 0 (Obs.Counter.value c);
  check "counter still listed" true
    (List.exists
       (fun c -> Obs.Counter.name c = "test.reset")
       (Obs.Counter.all ()));
  check "spans cleared" true (span_names (Obs.report ()) = [])

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "monotonic" `Quick (with_obs test_counter_monotonic);
          Alcotest.test_case "registry idempotent" `Quick
            (with_obs test_counter_registry);
          Alcotest.test_case "histogram" `Quick (with_obs test_histogram);
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op" `Quick (with_obs test_disabled_noop) ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick (with_obs test_span_nesting);
          Alcotest.test_case "exception safety" `Quick
            (with_obs test_span_exception_safe);
          Alcotest.test_case "return value" `Quick
            (with_obs test_with_span_result);
        ] );
      ( "multicore",
        [
          Alcotest.test_case "exact counts under domains" `Quick
            (with_obs test_multicore_counters_exact);
          Alcotest.test_case "span trees merge" `Quick
            (with_obs test_multicore_spans_merge);
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick
            (with_obs test_json_print_parse_roundtrip);
          Alcotest.test_case "parse values" `Quick
            (with_obs test_json_parse_values);
          Alcotest.test_case "parse errors" `Quick
            (with_obs test_json_parse_errors);
          Alcotest.test_case "report shape" `Quick (with_obs test_report_shape);
          Alcotest.test_case "reset" `Quick (with_obs test_reset);
        ] );
    ]
