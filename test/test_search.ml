module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Ordering = Hd_core.Ordering
module Eval = Hd_core.Eval
module Ghd = Hd_core.Ghd
module St = Hd_search.Search_types
module Astar_tw = Hd_search.Astar_tw
module Bb_tw = Hd_search.Bb_tw
module Bb_ghw = Hd_search.Bb_ghw
module Astar_ghw = Hd_search.Astar_ghw

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let exact_of result =
  match result.St.outcome with
  | St.Exact w -> w
  | St.Bounds { lb; ub } ->
      Alcotest.failf "expected exact result, got [%d,%d]" lb ub

let random_graph seed n p =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

(* brute-force treewidth by trying all orderings (tiny n) *)
let brute_force_tw g =
  let n = Graph.n g in
  let ws = Eval.of_graph g in
  let best = ref max_int in
  let sigma = Array.init n Fun.id in
  let rec permute k =
    if k = n then best := min !best (Eval.tw_width ws sigma)
    else
      for i = k to n - 1 do
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t;
        permute (k + 1);
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t
      done
  in
  permute 0;
  !best

let brute_force_ghw h =
  let n = Hypergraph.n_vertices h in
  let ws = Eval.of_hypergraph h in
  let best = ref max_int in
  let sigma = Array.init n Fun.id in
  let rec permute k =
    if k = n then best := min !best (Eval.ghw_width_exact ws sigma)
    else
      for i = k to n - 1 do
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t;
        permute (k + 1);
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t
      done
  in
  permute 0;
  !best

(* --- A*-tw on graphs of known treewidth --- *)

let test_astar_known () =
  check_int "K5" 4 (exact_of (Astar_tw.solve (Graph.complete 5)));
  check_int "C7" 2 (exact_of (Astar_tw.solve (Graph.cycle 7)));
  check_int "P6" 1 (exact_of (Astar_tw.solve (Graph.path 6)));
  check_int "grid3" 3 (exact_of (Astar_tw.solve (Graph.grid 3 3)));
  check_int "grid4" 4 (exact_of (Astar_tw.solve (Graph.grid 4 4)))

let test_astar_trivial () =
  check_int "empty" (-1) (exact_of (Astar_tw.solve (Graph.create 0)));
  check_int "single" 0 (exact_of (Astar_tw.solve (Graph.create 1)));
  check_int "two isolated" 0 (exact_of (Astar_tw.solve (Graph.create 2)))

let test_astar_ordering_witness () =
  let g = Graph.grid 3 3 in
  let result = Astar_tw.solve g in
  match result.St.ordering with
  | None -> Alcotest.fail "expected a witness ordering"
  | Some sigma ->
      check "perm" true (Ordering.is_permutation sigma);
      let ws = Eval.of_graph g in
      check_int "witness width matches" (exact_of result) (Eval.tw_width ws sigma)

let test_astar_budget () =
  (* a zero-state budget forces the anytime path *)
  let g = Graph.grid 5 5 in
  let result =
    Astar_tw.solve ~budget:{ St.time_limit = None; max_states = Some 5 } g
  in
  (match result.St.outcome with
  | St.Bounds { lb; ub } ->
      check "lb<=ub" true (lb <= ub);
      check "lb sane (grid5 tw=5)" true (lb <= 5 && ub >= 5)
  | St.Exact w -> check_int "exact despite budget is fine" 5 w);
  check "has ordering" true (result.St.ordering <> None)

let prop_astar_matches_brute_force =
  QCheck.Test.make ~count:40 ~name:"A*-tw = brute force (n<=6)"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let g = random_graph seed n 0.5 in
      exact_of (Astar_tw.solve g) = brute_force_tw g)

let prop_astar_dedup_agrees =
  QCheck.Test.make ~count:25 ~name:"A*-tw dedup = A*-tw"
    QCheck.(make QCheck.Gen.(pair (2 -- 7) int))
    (fun (n, seed) ->
      let g = random_graph seed n 0.4 in
      exact_of (Astar_tw.solve ~dedup:true g) = exact_of (Astar_tw.solve g))

(* --- BB-tw --- *)

let test_bb_known () =
  check_int "K6" 5 (exact_of (Bb_tw.solve (Graph.complete 6)));
  check_int "C8" 2 (exact_of (Bb_tw.solve (Graph.cycle 8)));
  check_int "grid4" 4 (exact_of (Bb_tw.solve (Graph.grid 4 4)))

let prop_bb_matches_astar =
  QCheck.Test.make ~count:30 ~name:"BB-tw = A*-tw"
    QCheck.(make QCheck.Gen.(pair (2 -- 7) int))
    (fun (n, seed) ->
      let g = random_graph seed n 0.45 in
      exact_of (Bb_tw.solve g) = exact_of (Astar_tw.solve g))

(* --- BB-ghw / A*-ghw --- *)

let test_ghw_clique () =
  (* K6 as binary hypergraph: cover 6 vertices with 2-edges -> ghw 3 *)
  let h = Hypergraph.of_graph (Graph.complete 6) in
  check_int "BB K6" 3 (exact_of (Bb_ghw.solve h));
  check_int "A* K6" 3 (exact_of (Astar_ghw.solve h))

let test_ghw_acyclic () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ] ] in
  check_int "BB acyclic" 1 (exact_of (Bb_ghw.solve h));
  check_int "A* acyclic" 1 (exact_of (Astar_ghw.solve h))

let test_ghw_example5 () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  check_int "example 5 ghw" 2 (exact_of (Bb_ghw.solve h));
  check_int "example 5 ghw (A*)" 2 (exact_of (Astar_ghw.solve h))

let test_ghw_witness () =
  let h = Hypergraph.of_graph (Graph.cycle 6) in
  let result = Bb_ghw.solve h in
  let w = exact_of result in
  match result.St.ordering with
  | None -> Alcotest.fail "expected a witness ordering"
  | Some sigma ->
      let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
      check "witness ghd valid" true (Ghd.valid h ghd);
      check_int "witness width" w (Ghd.width ghd)

let random_hypergraph seed ~n =
  let rng = Random.State.make [| seed |] in
  let m = 2 + Random.State.int rng 5 in
  let edges =
    List.init m (fun _ ->
        List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
  in
  (* cover all vertices via singleton edges where needed *)
  let h0 = Hypergraph.create ~n (edges @ [ [ 0 ] ]) in
  let missing =
    List.filter (fun v -> not (Hypergraph.covers_vertex h0 v)) (List.init n Fun.id)
  in
  Hypergraph.create ~n (edges @ [ [ 0 ] ] @ List.map (fun v -> [ v ]) missing)

let prop_ghw_bb_matches_brute =
  QCheck.Test.make ~count:25 ~name:"BB-ghw = brute force (n<=6)"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      exact_of (Bb_ghw.solve h) = brute_force_ghw h)

let prop_ghw_astar_matches_bb =
  QCheck.Test.make ~count:25 ~name:"A*-ghw = BB-ghw"
    QCheck.(make QCheck.Gen.(pair (2 -- 7) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      exact_of (Astar_ghw.solve h) = exact_of (Bb_ghw.solve h))

let prop_ghw_le_tw_plus_one =
  (* ghw(H) <= tw(H) + 1: cover each bag vertex-by-vertex... more
     precisely ghw <= tw+1 holds when every vertex lies in some edge *)
  QCheck.Test.make ~count:20 ~name:"ghw <= tw + 1"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let tw = exact_of (Astar_tw.solve (Hypergraph.primal h)) in
      let ghw = exact_of (Bb_ghw.solve h) in
      ghw <= tw + 1)


let prop_ghw1_iff_acyclic =
  (* alpha-acyclicity characterises generalized hypertree width 1 *)
  QCheck.Test.make ~count:40 ~name:"ghw = 1 iff alpha-acyclic"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let acyclic = Hd_hypergraph.Acyclicity.is_acyclic h in
      let ghw = exact_of (Bb_ghw.solve h) in
      (ghw = 1) = acyclic)


(* --- det-k-decomp: hypertree width proper --- *)

module Dkd = Hd_search.Det_k_decomp

let test_hw_example5 () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let w, hd = Dkd.hypertree_width h in
  check_int "hw example 5" 2 w;
  check "hd valid (4 conditions)" true (Dkd.valid h hd)

let test_hw_clique () =
  let h = Hypergraph.of_graph (Graph.complete 6) in
  let w, hd = Dkd.hypertree_width h in
  check_int "hw K6" 3 w;
  check "valid" true (Dkd.valid h hd);
  check "k=2 impossible" true (Dkd.decide h ~k:2 = None)

let test_hw_acyclic () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ] ] in
  let w, hd = Dkd.hypertree_width h in
  check_int "acyclic hw 1" 1 w;
  check "valid" true (Dkd.valid h hd)

let prop_hw1_iff_acyclic =
  QCheck.Test.make ~count:40 ~name:"hw = 1 iff alpha-acyclic"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let w, _ = Dkd.hypertree_width h in
      (w = 1) = Hd_hypergraph.Acyclicity.is_acyclic h)

let prop_ghw_le_hw =
  QCheck.Test.make ~count:30 ~name:"ghw <= hw and hd is valid"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let hw, hd = Dkd.hypertree_width h in
      let ghw = exact_of (Bb_ghw.solve h) in
      ghw <= hw && Dkd.valid h hd)

let prop_hw_le_tw_plus_one =
  QCheck.Test.make ~count:20 ~name:"hw <= tw + 1"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let tw = exact_of (Astar_tw.solve (Hypergraph.primal h)) in
      let hw, _ = Dkd.hypertree_width h in
      hw <= tw + 1)

let test_descendant_condition_detects () =
  (* a GHD built by bucket elimination may violate condition 4; the
     checker must accept det-k-decomp output and correctly evaluate
     arbitrary GHDs *)
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let rng = Random.State.make [| 3 |] in
  let ok = ref true in
  for _ = 1 to 20 do
    let sigma = Ordering.random rng 6 in
    let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
    (* the checker must at least run and be consistent with validity *)
    ignore (Dkd.descendant_condition_holds h ghd);
    if not (Ghd.valid h ghd) then ok := false
  done;
  check "ghds remain valid" true !ok


(* --- BB-fhw: exact fractional hypertree width --- *)

module Bb_fhw = Hd_search.Bb_fhw
module Rat = Hd_lp.Rat

let exact_q_of (r : Bb_fhw.result_q) =
  match r.Bb_fhw.outcome_q with
  | Bb_fhw.Exact_q q -> q
  | Bb_fhw.Bounds_q { lb; ub } ->
      Alcotest.failf "expected exact fhw, got [%s,%s]" (Rat.to_string lb)
        (Rat.to_string ub)

(* exhaustive fhw: min over all orderings of the max bag rho* (tiny n);
   one shared workspace so the LP memo amortises across orderings *)
let brute_force_fhw h =
  let n = Hypergraph.n_vertices h in
  let ws = Eval.of_hypergraph h in
  let best = ref None in
  let sigma = Array.init n Fun.id in
  let rec permute k =
    if k = n then begin
      let w = Eval.fhw_width_q ws sigma in
      match !best with
      | Some b when Rat.compare b w <= 0 -> ()
      | _ -> best := Some w
    end
    else
      for i = k to n - 1 do
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t;
        permute (k + 1);
        let t = sigma.(k) in
        sigma.(k) <- sigma.(i);
        sigma.(i) <- t
      done
  in
  permute 0;
  Option.get !best

let test_fhw_triangle () =
  (* the separating instance: fhw = 3/2 strictly below ghw = hw = 2 *)
  let h = Hypergraph.create ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let r = Bb_fhw.solve ~seed:1 h in
  check "triangle fhw = 3/2" true (Rat.equal (Rat.make 3 2) (exact_q_of r));
  check_int "triangle ghw = 2" 2 (exact_of (Bb_ghw.solve h));
  (* the registry view reports the ceiling *)
  Hd_search.Solvers.ensure ();
  let via_registry =
    Hd_engine.Engine.run_by_name ~seed:1 "fhw-bb"
      (Hd_engine.Budget.create ())
      (Hd_engine.Solver.Hypergraph h)
  in
  check_int "registry reports ceil(3/2) = 2" 2
    (match via_registry.Hd_engine.Solver.outcome with
    | Hd_engine.Solver.Exact w -> w
    | Hd_engine.Solver.Bounds _ -> -1);
  (* the exact rational is recoverable from the witness ordering *)
  match r.Bb_fhw.ordering with
  | None -> Alcotest.fail "expected a witness ordering"
  | Some sigma ->
      let ws = Eval.of_hypergraph h in
      check "witness realises 3/2" true
        (Rat.equal (Rat.make 3 2) (Eval.fhw_width_q ws sigma))

let prop_fhw_bb_matches_brute =
  QCheck.Test.make ~count:20 ~name:"BB-fhw = brute force (n<=5)"
    QCheck.(make QCheck.Gen.(pair (2 -- 5) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      Rat.equal (exact_q_of (Bb_fhw.solve ~seed:1 h)) (brute_force_fhw h))

let prop_width_hierarchy =
  (* fhw <= ghw <= hw <= 3*ghw + 1 (the last from Adler, Gottlob &
     Grohe via the paper's Section 9 discussion) *)
  QCheck.Test.make ~count:20 ~name:"fhw <= ghw <= hw <= 3*ghw + 1"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      let fhw = exact_q_of (Bb_fhw.solve ~seed:1 h) in
      let ghw = exact_of (Bb_ghw.solve h) in
      let hw, hd = Dkd.hypertree_width h in
      Rat.compare_int fhw ghw <= 0
      && ghw <= hw
      && hw <= (3 * ghw) + 1
      && Dkd.valid h hd)

(* --- .ghd witnesses: round-trip and corruption rejection --- *)

let test_ghd_io_roundtrip () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let w, hd = Dkd.hypertree_width h in
  let text =
    Hd_core.Ghd_io.to_string ~n_vertices:6
      ~n_edges:(Hypergraph.n_edges h) hd
  in
  let hd2 = Hd_core.Ghd_io.parse_string text in
  check "roundtrip ghd valid" true (Ghd.valid h hd2);
  check "roundtrip special condition" true (Dkd.special_condition_holds h hd2);
  check_int "roundtrip width" w (Ghd.width hd2)

let test_ghd_corrupted_witness_rejected () =
  (* in-memory corruption: replace a bag's lambda with an edge that
     does not cover it — condition 3 must fail *)
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let _, hd = Dkd.hypertree_width h in
  let bad_lambda = Array.copy hd.Ghd.lambda in
  (* find a node whose bag edge 1 ({0,4,5}) cannot cover *)
  let victim =
    let td = hd.Ghd.td in
    let rec find i =
      if i >= Hd_core.Tree_decomposition.n_nodes td then
        Alcotest.fail "no corruptible node"
      else
        let bag = Hd_core.Tree_decomposition.bag td i in
        if
          Hd_graph.Bitset.exists
            (fun v -> not (List.mem v [ 0; 4; 5 ]))
            bag
        then i
        else find (i + 1)
    in
    find 0
  in
  bad_lambda.(victim) <- [| 1 |];
  let corrupted = Ghd.make ~td:hd.Ghd.td ~lambda:bad_lambda in
  check "corrupted lambda rejected" false (Ghd.valid h corrupted);
  (* a GHD that satisfies conditions 1-3 but violates the descendant
     condition: path hypergraph {0,1},{1,2}; the root's lambda reaches
     vertex 2, which lives in the subtree but not in the root's bag *)
  let p = Hypergraph.create ~n:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let td =
    Hd_core.Tree_decomposition.make
      ~bags:
        [|
          Hd_graph.Bitset.of_list 3 [ 0; 1 ];
          Hd_graph.Bitset.of_list 3 [ 1; 2 ];
        |]
      ~parent:[| -1; 0 |]
  in
  let sneaky = Ghd.make ~td ~lambda:[| [| 0; 1 |]; [| 1 |] |] in
  check "sneaky ghd passes conditions 1-3" true (Ghd.valid p sneaky);
  check "sneaky ghd fails the special condition" false
    (Dkd.special_condition_holds p sneaky);
  check "Dkd.valid rejects it" false (Dkd.valid p sneaky)

(* --- preprocessing --- *)

module Prep = Hd_search.Preprocess

let test_preprocess_tree () =
  (* trees reduce away completely with floor 1 *)
  let g = Graph.create 7 in
  List.iter
    (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6) ];
  let r = Prep.reduce g in
  check_int "floor" 1 r.Prep.low;
  check_int "all eliminated" 7 (List.length r.Prep.eliminated);
  check_int "kernel empty" 0 (Graph.m r.Prep.reduced)

let test_preprocess_cycle () =
  (* C6 has no simplicial vertex, but with the minor lower bound 2 the
     degree-2 vertices become strongly almost simplicial and the whole
     cycle reduces *)
  let g = Graph.cycle 6 in
  let r = Prep.reduce ~lb:2 g in
  check_int "floor" 2 r.Prep.low;
  check_int "kernel empty" 0 (Graph.m r.Prep.reduced);
  (* without the seed bound nothing fires on the first step *)
  let r0 = Prep.reduce g in
  check_int "no reduction at lb=0" 0 (List.length r0.Prep.eliminated)

let test_preprocess_solve_known () =
  List.iter
    (fun (g, tw) ->
      check_int "preprocessed treewidth" tw
        (exact_of (Prep.treewidth_with_preprocessing g)))
    [
      (Graph.complete 6, 5);
      (Graph.cycle 9, 2);
      (Graph.path 9, 1);
      (Graph.grid 4 4, 4);
    ]

let prop_preprocess_agrees =
  QCheck.Test.make ~count:40 ~name:"preprocessing preserves treewidth"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let g = random_graph seed n 0.4 in
      let direct = exact_of (Astar_tw.solve g) in
      let result = Prep.treewidth_with_preprocessing g in
      exact_of result = direct
      &&
      match result.St.ordering with
      | None -> false
      | Some sigma ->
          Ordering.is_permutation sigma
          &&
          let ws = Eval.of_graph g in
          Eval.tw_width ws sigma = direct)


(* --- the width analyzer --- *)

let test_widths_analyze () =
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let r = Hd_search.Widths.analyze ~time_limit:10.0 h in
  check "not acyclic" false r.Hd_search.Widths.acyclic;
  check_int "tw" 2 (match r.Hd_search.Widths.tw with St.Exact w -> w | _ -> -1);
  check_int "ghw" 2 (match r.Hd_search.Widths.ghw with St.Exact w -> w | _ -> -1);
  Alcotest.(check (option int)) "hw" (Some 2) r.Hd_search.Widths.hw;
  check "fhw <= ghw" true (r.Hd_search.Widths.fhw_upper <= 2.0 +. 1e-6);
  (* an acyclic instance: every width is 1 *)
  let a = Hypergraph.create ~n:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let ra = Hd_search.Widths.analyze ~time_limit:10.0 a in
  check "acyclic" true ra.Hd_search.Widths.acyclic;
  check_int "acyclic ghw" 1
    (match ra.Hd_search.Widths.ghw with St.Exact w -> w | _ -> -1);
  Alcotest.(check (option int)) "acyclic hw" (Some 1) ra.Hd_search.Widths.hw


let test_ghw_budget_states () =
  let h = Hypergraph.of_graph (Graph.grid 4 4) in
  let tight = { St.time_limit = None; max_states = Some 3 } in
  (match (Bb_ghw.solve ~budget:tight h).St.outcome with
  | St.Bounds { lb; ub } -> check "bb bounds ordered" true (lb <= ub)
  | St.Exact _ -> () (* initial bounds may already close it *));
  match (Astar_ghw.solve ~budget:tight h).St.outcome with
  | St.Bounds { lb; ub } -> check "a* bounds ordered" true (lb <= ub)
  | St.Exact _ -> ()

let test_bb_ghw_greedy_mode () =
  (* greedy covers give an upper-bound-only method: the result must be
     a Bounds outcome whose ub dominates the exact optimum *)
  let h = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ] in
  let exact = exact_of (Bb_ghw.solve h) in
  match (Bb_ghw.solve ~cover:`Greedy h).St.outcome with
  | St.Bounds { ub; _ } -> check "greedy ub >= exact" true (ub >= exact)
  | St.Exact w ->
      (* initial lb = ub short-circuit may still prove exactness *)
      check_int "short-circuit exact" exact w

let test_outcome_helpers () =
  check_int "value exact" 4 (St.value (St.Exact 4));
  check_int "value bounds" 7 (St.value (St.Bounds { lb = 3; ub = 7 }));
  Alcotest.(check string) "pp exact" "4 (exact)"
    (Format.asprintf "%a" St.pp_outcome (St.Exact 4));
  Alcotest.(check string) "pp bounds" "[3,7]"
    (Format.asprintf "%a" St.pp_outcome (St.Bounds { lb = 3; ub = 7 }))

let test_det_k_timeout () =
  (* an already-passed deadline must raise, not answer *)
  let h = Hypergraph.of_graph (Graph.complete 8) in
  check "timeout raised" true
    (try
       ignore
         (Hd_search.Det_k_decomp.decide
            ~within:(Hd_engine.Budget.create ~time_limit:(-1.0) ())
            h ~k:3);
       false
     with Hd_search.Det_k_decomp.Timeout -> true)


let prop_ghw_subsumption_invariant =
  QCheck.Test.make ~count:25 ~name:"ghw invariant under subsumption removal"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let h = random_hypergraph seed ~n in
      (* duplicate some edges and add subsets to stress the reduction *)
      let extra =
        List.filteri (fun i _ -> i mod 2 = 0) (Hypergraph.edges h)
      in
      let stressed = Hypergraph.create ~n (Hypergraph.edges h @ extra) in
      exact_of (Bb_ghw.solve stressed) = exact_of (Bb_ghw.solve h))

(* --- observability counters --- *)

module Obs = Hd_obs.Obs

let test_obs_counters_deterministic () =
  let g =
    match Hd_instances.Graphs.by_name "queen5_5" with
    | Some g -> g
    | None -> Alcotest.fail "queen5_5 instance missing"
  in
  (* a state budget (not a time limit) keeps the trajectory — and so
     every counter — identical across the two runs *)
  let budget = { St.time_limit = None; max_states = Some 20000 } in
  let snapshot () =
    Obs.enable ();
    Obs.reset ();
    ignore (Astar_tw.solve ~budget ~seed:7 g);
    let value name =
      match
        List.find_opt (fun c -> Obs.Counter.name c = name) (Obs.Counter.all ())
      with
      | Some c -> Obs.Counter.value c
      | None -> Alcotest.failf "counter %s not registered" name
    in
    let s =
      ( value "search.nodes_expanded",
        value "search.pr1_fires",
        value "search.pr2_fires",
        value "search.duplicates_pruned" )
    in
    Obs.disable ();
    s
  in
  let (expanded, pr1, pr2, dups) as first = snapshot () in
  let second = snapshot () in
  check "nodes_expanded > 0" true (expanded > 0);
  check "pr1 + pr2 >= 0" true (pr1 + pr2 >= 0);
  check "duplicates >= 0" true (dups >= 0);
  check "two seeded runs agree" true (first = second)

let test_pq () =
  let q = Hd_search.Pq.create ~compare ~dummy:0 in
  List.iter (Hd_search.Pq.push q) [ 5; 1; 4; 1; 3 ];
  check_int "size" 5 (Hd_search.Pq.size q);
  check_int "peek" 1 (Hd_search.Pq.peek q);
  let popped = List.init 5 (fun _ -> Hd_search.Pq.pop q) in
  Alcotest.(check (list int)) "sorted pops" [ 1; 1; 3; 4; 5 ] popped;
  check "empty" true (Hd_search.Pq.is_empty q);
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Hd_search.Pq.pop q))

let test_pq_no_leak () =
  (* popped elements must become unreachable: A* states hold their
     whole parent chain, so stale heap slots pin dead subtrees.  This
     test fails against the pre-fix pq.ml, which left popped elements
     live at data.(size) and grew the array with a live element. *)
  let n = 64 in
  let q = Hd_search.Pq.create ~compare:(fun a b -> compare !a !b) ~dummy:(ref (-1)) in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let cell = ref i in
    Weak.set weak i (Some cell);
    Hd_search.Pq.push q cell
  done;
  (* pop everything but one so the queue itself stays alive *)
  for _ = 1 to n - 1 do
    ignore (Hd_search.Pq.pop q)
  done;
  Gc.full_major ();
  let still_live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr still_live
  done;
  (* exactly the one un-popped element (plus, at most, the last popped
     value still referenced from this frame via [ignore]'s argument —
     which it is not) may survive *)
  check "popped elements collected" true (!still_live <= 1);
  check_int "queue still works" 1 (Hd_search.Pq.size q)

let prop_pq_sorts =
  QCheck.Test.make ~count:100 ~name:"pq pops in sorted order"
    QCheck.(list int)
    (fun xs ->
      let q = Hd_search.Pq.create ~compare ~dummy:0 in
      List.iter (Hd_search.Pq.push q) xs;
      let out = List.init (List.length xs) (fun _ -> Hd_search.Pq.pop q) in
      out = List.sort compare xs)

let () =
  Alcotest.run "search"
    [
      ( "pq",
        [
          Alcotest.test_case "heap basics" `Quick test_pq;
          Alcotest.test_case "no space leak" `Quick test_pq_no_leak;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_pq_sorts ] );
      ( "astar-tw",
        [
          Alcotest.test_case "known treewidths" `Quick test_astar_known;
          Alcotest.test_case "trivial graphs" `Quick test_astar_trivial;
          Alcotest.test_case "witness ordering" `Quick test_astar_ordering_witness;
          Alcotest.test_case "budget" `Quick test_astar_budget;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_astar_matches_brute_force; prop_astar_dedup_agrees ] );
      ( "bb-tw",
        [ Alcotest.test_case "known treewidths" `Quick test_bb_known ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_bb_matches_astar ] );
      ( "robustness",
        [
          Alcotest.test_case "state budgets" `Quick test_ghw_budget_states;
          Alcotest.test_case "greedy cover mode" `Quick test_bb_ghw_greedy_mode;
          Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
          Alcotest.test_case "det-k timeout" `Quick test_det_k_timeout;
        ] );
      ( "widths",
        [ Alcotest.test_case "analyze" `Quick test_widths_analyze ] );
      ( "bb-fhw",
        [ Alcotest.test_case "triangle 3/2" `Quick test_fhw_triangle ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_fhw_bb_matches_brute; prop_width_hierarchy ] );
      ( "ghd io",
        [
          Alcotest.test_case "roundtrip" `Quick test_ghd_io_roundtrip;
          Alcotest.test_case "corrupted witnesses rejected" `Quick
            test_ghd_corrupted_witness_rejected;
        ] );
      ( "obs",
        [
          Alcotest.test_case "deterministic counters" `Quick
            test_obs_counters_deterministic;
        ] );
      ( "preprocess",
        [
          Alcotest.test_case "tree" `Quick test_preprocess_tree;
          Alcotest.test_case "cycle" `Quick test_preprocess_cycle;
          Alcotest.test_case "known treewidths" `Quick test_preprocess_solve_known;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_preprocess_agrees ] );
      ( "det-k-decomp",
        [
          Alcotest.test_case "example 5" `Quick test_hw_example5;
          Alcotest.test_case "clique" `Quick test_hw_clique;
          Alcotest.test_case "acyclic" `Quick test_hw_acyclic;
          Alcotest.test_case "descendant condition" `Quick test_descendant_condition_detects;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_hw1_iff_acyclic; prop_ghw_le_hw; prop_hw_le_tw_plus_one ] );
      ( "ghw",
        [
          Alcotest.test_case "clique" `Quick test_ghw_clique;
          Alcotest.test_case "acyclic" `Quick test_ghw_acyclic;
          Alcotest.test_case "example 5" `Quick test_ghw_example5;
          Alcotest.test_case "witness" `Quick test_ghw_witness;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_ghw_bb_matches_brute;
              prop_ghw_astar_matches_bb;
              prop_ghw_le_tw_plus_one;
              prop_ghw1_iff_acyclic;
              prop_ghw_subsumption_invariant;
            ] );
    ]
